"""Setuptools shim.

All real metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` works on environments without the
``wheel`` package (e.g. offline boxes).
"""

from setuptools import setup

setup()
