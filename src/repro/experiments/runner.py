"""Scenario runner: one interface over both simulator substrates.

The experiment harness asks one question over and over: *given a link and
a mix of flows, what per-flow throughput does each CCA class get?*  This
module answers it against any substrate — ``backend="packet"`` for the
high-fidelity discrete-event simulator (1–2 flow validation figures),
``backend="fluid"`` for the fluid simulator (large NE sweeps), or
``backend="fluid-vec"`` for the vectorized fluid substrate (bitwise the
same trajectories as ``fluid``, with all trials of a scenario advanced
as one numpy batch) — with multi-trial averaging and seeded per-trial
jitter, mirroring the paper's 10-trial methodology.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from statistics import mean
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.fluidsim.core import FluidSpec, run_fluid
from repro.fluidsim.vec import (
    BatchPoint,
    run_fluid_vec,
    run_fluid_vec_batch,
)
from repro.scenario import BACKENDS, expand_mix
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.engine import Engine
    from repro.obs.bus import Telemetry

__all__ = [
    "BACKENDS",
    "FLUID_SUBSTRATE_ENV",
    "ScenarioResult",
    "distribution_throughput_fn",
    "distribution_utility_fn",
    "expand_mix",
    "fluid_substrate",
    "group_payoff_fn",
    "run_mix",
    "run_mix_batch",
    "spaced_seed",
    "use_fluid_substrate",
]

#: Env var redirecting ``backend="fluid"`` requests to another fluid
#: substrate ("fluid-vec").  The vectorized substrate reproduces the
#: scalar trajectories bit for bit, so the redirect changes wall time
#: only — results (and therefore cache fingerprints, which key the
#: *declared* backend) are unchanged.  Environment-based so worker
#: processes inherit it.
FLUID_SUBSTRATE_ENV = "REPRO_FLUID_SUBSTRATE"

_FLUID_SUBSTRATES = ("fluid", "fluid-vec")


def fluid_substrate(backend: str) -> str:
    """The substrate that actually serves ``backend``.

    ``"fluid"`` may be redirected to ``"fluid-vec"`` through
    :data:`FLUID_SUBSTRATE_ENV` (the CLI's ``--backend fluid-vec`` on
    figures and campaigns); every other backend maps to itself.
    """
    if backend != "fluid":
        return backend
    override = os.environ.get(FLUID_SUBSTRATE_ENV, "").strip().lower()
    if not override:
        return backend
    if override not in _FLUID_SUBSTRATES:
        raise ValueError(
            f"{FLUID_SUBSTRATE_ENV} must be one of "
            f"{_FLUID_SUBSTRATES}, got {override!r}"
        )
    return override


@contextmanager
def use_fluid_substrate(backend: Optional[str]) -> Iterator[None]:
    """Temporarily serve ``backend="fluid"`` requests via ``backend``.

    ``None`` or ``"fluid"`` is a no-op.  Sets (and restores)
    :data:`FLUID_SUBSTRATE_ENV` so engine pool workers spawned inside
    the block inherit the redirect.
    """
    if backend in (None, "fluid"):
        yield
        return
    if backend not in _FLUID_SUBSTRATES:
        raise ValueError(
            f"fluid substrate must be one of {_FLUID_SUBSTRATES}, "
            f"got {backend!r}"
        )
    previous = os.environ.get(FLUID_SUBSTRATE_ENV)
    os.environ[FLUID_SUBSTRATE_ENV] = backend
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FLUID_SUBSTRATE_ENV, None)
        else:
            os.environ[FLUID_SUBSTRATE_ENV] = previous


def spaced_seed(seed: int, k: int) -> int:
    """A collision-free per-point base seed for distribution sweeps.

    Trial ``t`` of point ``k`` runs with ``spaced_seed(seed, k) + t``.
    The old ``seed + 1000 * k`` spacing collided with the per-trial
    offsets whenever ``trials > 1000`` (or when adjacent ``k`` grids
    were combined), silently reusing jitter between points.  Hashing
    into a 2**56 space keeps any realistic trial count disjoint while
    remaining deterministic in ``(seed, k)``.
    """
    digest = hashlib.sha256(f"{seed}:{k}".encode("ascii")).digest()
    return int.from_bytes(digest[:7], "big")


@dataclass(frozen=True)
class ScenarioResult:
    """Per-CCA scenario aggregates, averaged over trials.

    Attributes:
        per_flow: Mean per-flow throughput by CCA (bytes/second).
        aggregate: Total throughput by CCA (bytes/second).
        mean_queuing_delay: Mean bottleneck queuing delay (seconds).
        loss_rate: Mean per-flow loss rate by CCA (fraction of sent
            data lost; bytes for the fluid backend, packets for the
            packet backend).
        retransmits: Mean per-flow retransmission count by CCA.
        drop_rate: Bottleneck drop rate (shared by all flows).
    """

    per_flow: Dict[str, float]
    aggregate: Dict[str, float]
    mean_queuing_delay: float
    loss_rate: Dict[str, float] = field(default_factory=dict)
    retransmits: Dict[str, float] = field(default_factory=dict)
    drop_rate: float = 0.0

    def per_flow_mbps(self, cc: str) -> float:
        """Per-flow mean throughput of class ``cc`` in Mbps."""
        return self.per_flow.get(cc, 0.0) * 8.0 / 1e6

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form (the result-cache payload)."""
        return {
            "per_flow": dict(self.per_flow),
            "aggregate": dict(self.aggregate),
            "mean_queuing_delay": self.mean_queuing_delay,
            "loss_rate": dict(self.loss_rate),
            "retransmits": dict(self.retransmits),
            "drop_rate": self.drop_rate,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioResult":
        """Rebuild a result from :meth:`to_dict` output (exact floats)."""
        return cls(
            per_flow=dict(data["per_flow"]),
            aggregate=dict(data["aggregate"]),
            mean_queuing_delay=data["mean_queuing_delay"],
            loss_rate=dict(data.get("loss_rate", {})),
            retransmits=dict(data.get("retransmits", {})),
            drop_rate=data.get("drop_rate", 0.0),
        )


def run_mix(
    link: LinkConfig,
    mix: Sequence[Tuple[str, int]],
    duration: float = 60.0,
    warmup: Optional[float] = None,
    backend: str = "fluid",
    trials: int = 1,
    seed: int = 0,
    rtts: Optional[Dict[str, float]] = None,
    loss_mode: str = "proportional",
    obs: Optional["Telemetry"] = None,
) -> ScenarioResult:
    """Run a flow mix and return per-CCA mean throughputs.

    Args:
        link: Bottleneck configuration.
        mix: Pairs of (cc name, flow count), e.g. ``[("cubic", 5),
            ("bbr", 5)]``.  Zero counts are allowed and skipped.
        duration: Flow lifetime per trial (the paper uses 120 s).
        warmup: Measurement exclusion window; defaults to ``duration/6``
            to skip the startup transient.
        backend: ``"packet"``, ``"fluid"``, or ``"fluid-vec"``.
        trials: Trials to average; trial ``t`` uses seed ``seed + t``.
        seed: Base RNG seed (fluid backend jitter / loss lottery).
        rtts: Optional per-CCA base RTT override in seconds.
        loss_mode: Fluid-backend CUBIC synchronization mode.
        obs: Optional telemetry bus threaded into the substrate;
            defaults to the process-wide bus (usually disabled).
    """
    warmup = _validate_mix_args(backend, trials, duration, warmup)
    backend = fluid_substrate(backend)

    from repro.check import resolve as resolve_check
    from repro.obs.bus import resolve

    obs = resolve(obs)
    check = resolve_check(None)
    if check is not None:
        check.set_context(
            backend=backend,
            mix=[[cc, count] for cc, count in mix],
            duration=duration,
            warmup=warmup,
            seed=seed,
        )

    if backend == "fluid-vec":
        trial_results = run_fluid_vec_batch(
            _vec_trial_points(
                link, mix, duration, warmup, trials, seed, rtts, loss_mode
            ),
            obs=obs,
            check=check,
        )
    else:
        trial_results = [
            _run_once(
                link,
                mix,
                duration,
                warmup,
                backend,
                seed + trial,
                rtts,
                loss_mode,
                obs,
            )
            for trial in range(trials)
        ]
    return _aggregate_trials(mix, trial_results)


def run_mix_batch(
    requests: Sequence[Dict[str, Any]],
    obs: Optional["Telemetry"] = None,
) -> List[ScenarioResult]:
    """Run several :func:`run_mix` requests, batching fluid-vec work.

    Each request is a mapping of :func:`run_mix` keyword arguments
    (minus ``obs``); results come back in request order.  Every trial
    of every ``backend="fluid-vec"`` request is pooled into a *single*
    vectorized simulation — the execution engine's chunked dispatch
    relies on this to amortize tick overhead across whole sweeps.
    Other backends fall back to sequential :func:`run_mix` calls.  The
    vectorized substrate is batch-invariant bit for bit, so the
    returned results are identical to per-request calls.
    """
    from repro.check import resolve as resolve_check
    from repro.obs.bus import resolve

    obs = resolve(obs)
    results: List[Optional[ScenarioResult]] = [None] * len(requests)
    vec_points: List[BatchPoint] = []
    vec_slots: List[Tuple[int, Sequence[Tuple[str, int]], int]] = []
    for index, request in enumerate(requests):
        declared = request.get("backend", "fluid")
        if fluid_substrate(declared) == "fluid-vec":
            warmup = _validate_mix_args(
                declared,
                request.get("trials", 1),
                request.get("duration", 60.0),
                request.get("warmup"),
            )
            points = _vec_trial_points(
                request["link"],
                request["mix"],
                request.get("duration", 60.0),
                warmup,
                request.get("trials", 1),
                request.get("seed", 0),
                request.get("rtts"),
                request.get("loss_mode", "proportional"),
            )
            vec_slots.append((index, request["mix"], len(points)))
            vec_points.extend(points)
        else:
            results[index] = run_mix(obs=obs, **request)
    if vec_points:
        check = resolve_check(None)
        if check is not None:
            check.set_context(
                backend="fluid-vec", batched_points=len(vec_points)
            )
        sims = run_fluid_vec_batch(vec_points, obs=obs, check=check)
        cursor = 0
        for index, mix, count in vec_slots:
            results[index] = _aggregate_trials(
                mix, sims[cursor:cursor + count]
            )
            cursor += count
    return results  # type: ignore[return-value]


def _validate_mix_args(
    backend: str,
    trials: int,
    duration: float,
    warmup: Optional[float],
) -> float:
    """Shared run_mix argument validation; returns the resolved warmup."""
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if warmup is None:
        warmup = duration / 6.0
    if not 0 <= warmup < duration:
        raise ValueError(
            f"warmup must lie in [0, duration), got warmup={warmup} "
            f"with duration={duration}"
        )
    return warmup


def _vec_trial_points(
    link: LinkConfig,
    mix: Sequence[Tuple[str, int]],
    duration: float,
    warmup: float,
    trials: int,
    seed: int,
    rtts: Optional[Dict[str, float]],
    loss_mode: str,
) -> List[BatchPoint]:
    """One :class:`BatchPoint` per trial, seeded exactly like the
    sequential trial loop (trial ``t`` runs with ``seed + t``)."""
    flows = tuple(
        FluidSpec(cc=cc, rtt=rtt) for cc, rtt in expand_mix(mix, rtts)
    )
    return [
        BatchPoint(
            link=link,
            flows=flows,
            duration=duration,
            warmup=warmup,
            loss_mode=loss_mode,
            seed=seed + trial,
            start_jitter=min(1.0, duration / 30.0),
        )
        for trial in range(trials)
    ]


def _aggregate_trials(
    mix: Sequence[Tuple[str, int]],
    trial_results: Sequence[Any],
) -> ScenarioResult:
    """Average per-trial simulation results into a ScenarioResult."""
    per_flow_samples: Dict[str, List[float]] = {}
    aggregate_samples: Dict[str, List[float]] = {}
    loss_samples: Dict[str, List[float]] = {}
    retx_samples: Dict[str, List[float]] = {}
    delay_samples: List[float] = []
    drop_samples: List[float] = []
    for result in trial_results:
        delay_samples.append(result.mean_queuing_delay)
        drop_samples.append(result.drop_rate)
        for cc, _count in mix:
            cc = cc.lower()
            flows = result.by_cc(cc)
            if not flows:
                continue
            per_flow_samples.setdefault(cc, []).append(
                result.mean_throughput(cc)
            )
            aggregate_samples.setdefault(cc, []).append(
                result.aggregate_throughput(cc)
            )
            loss_samples.setdefault(cc, []).append(
                mean(f.loss_rate for f in flows)
            )
            retx_samples.setdefault(cc, []).append(
                mean(f.retransmits for f in flows)
            )

    return ScenarioResult(
        per_flow={cc: mean(v) for cc, v in per_flow_samples.items()},
        aggregate={cc: mean(v) for cc, v in aggregate_samples.items()},
        mean_queuing_delay=mean(delay_samples),
        loss_rate={cc: mean(v) for cc, v in loss_samples.items()},
        retransmits={cc: mean(v) for cc, v in retx_samples.items()},
        drop_rate=mean(drop_samples),
    )


def _run_once(
    link: LinkConfig,
    mix: Sequence[Tuple[str, int]],
    duration: float,
    warmup: float,
    backend: str,
    seed: int,
    rtts: Optional[Dict[str, float]],
    loss_mode: str,
    obs: Optional["Telemetry"] = None,
):
    flows = expand_mix(mix, rtts)
    if backend == "packet":
        specs = [FlowSpec(cc=cc, rtt=rtt) for cc, rtt in flows]
        return run_dumbbell(
            link, specs, duration=duration, warmup=warmup, obs=obs
        )
    fluid_specs = [FluidSpec(cc=cc, rtt=rtt) for cc, rtt in flows]
    run = run_fluid_vec if backend == "fluid-vec" else run_fluid
    return run(
        link,
        fluid_specs,
        duration=duration,
        warmup=warmup,
        seed=seed,
        start_jitter=min(1.0, duration / 30.0),
        loss_mode=loss_mode,
        obs=obs,
    )


def distribution_throughput_fn(
    link: LinkConfig,
    n_flows: int,
    challenger: str = "bbr",
    incumbent: str = "cubic",
    duration: float = 60.0,
    backend: str = "fluid",
    trials: int = 1,
    seed: int = 0,
    engine: Optional["Engine"] = None,
):
    """Build a §4.4-style throughput function over distributions.

    Returns ``fn(k) -> (per-flow incumbent λ, per-flow challenger λ)`` for
    ``k`` challenger flows out of ``n_flows`` — the shape
    :class:`repro.core.game.ThroughputTable` and
    :func:`repro.core.game.bisect_nash` consume.  Evaluations route
    through the execution engine (explicit, installed default, or the
    sequential fallback), so identical distribution points are reused
    across sweeps when a result cache is configured.
    """

    def fn(k: int) -> Tuple[float, float]:
        if not 0 <= k <= n_flows:
            raise ValueError(f"k must be in [0, {n_flows}], got {k}")
        from repro.exec.engine import resolve as resolve_engine

        result = resolve_engine(engine).run_mix(
            link,
            [(incumbent, n_flows - k), (challenger, k)],
            duration=duration,
            backend=backend,
            trials=trials,
            seed=spaced_seed(seed, k),
        )
        return (
            result.per_flow.get(incumbent, 0.0),
            result.per_flow.get(challenger, 0.0),
        )

    return fn


def distribution_utility_fn(
    link: LinkConfig,
    n_flows: int,
    delay_weight: float,
    challenger: str = "bbr",
    incumbent: str = "cubic",
    duration: float = 60.0,
    backend: str = "fluid",
    trials: int = 1,
    seed: int = 0,
    engine: Optional["Engine"] = None,
):
    """A §4.3-style utility game: ``U = throughput − w·delay``.

    The utility is a linear combination of per-flow throughput
    (bytes/second) and the *shared* queuing delay (seconds), scaled so
    ``delay_weight`` is in "Mbps of throughput a user would trade for
    100 ms of delay".  Because the delay term is common to both CCAs at
    any distribution, the paper conjectures the NE structure is
    throughput-driven; feed this into
    :class:`repro.core.game.ThroughputTable` (whose machinery is
    payoff-agnostic) to test that.
    """
    if delay_weight < 0:
        raise ValueError(
            f"delay_weight must be non-negative, got {delay_weight}"
        )
    # Mbps-per-100ms → (bytes/s) per second-of-delay.
    weight = delay_weight * (1e6 / 8.0) / 0.1

    def fn(k: int) -> Tuple[float, float]:
        if not 0 <= k <= n_flows:
            raise ValueError(f"k must be in [0, {n_flows}], got {k}")
        from repro.exec.engine import resolve as resolve_engine

        result = resolve_engine(engine).run_mix(
            link,
            [(incumbent, n_flows - k), (challenger, k)],
            duration=duration,
            backend=backend,
            trials=trials,
            seed=spaced_seed(seed, k),
        )
        penalty = weight * result.mean_queuing_delay
        u_incumbent = result.per_flow.get(incumbent, 0.0) - penalty
        u_challenger = result.per_flow.get(challenger, 0.0) - penalty
        return (u_incumbent, u_challenger)

    return fn


def group_payoff_fn(
    link: LinkConfig,
    group_rtts: Sequence[float],
    group_sizes: Sequence[int],
    challenger: str = "bbr",
    incumbent: str = "cubic",
    duration: float = 60.0,
    trials: int = 1,
    seed: int = 0,
    engine: Optional["Engine"] = None,
):
    """Payoff function for the multi-RTT :class:`repro.core.game.GroupGame`.

    The returned callable maps a tuple of per-group challenger counts to
    per-group ``(incumbent per-flow λ, challenger per-flow λ)`` pairs,
    measured with the fluid backend (per-flow RTTs differ, so the packet
    backend also works but is far slower).  Evaluations are memoized in
    the execution engine's result cache (when one is configured) under a
    ``group_payoff`` descriptor, so best-response walks that revisit a
    state — and repeated figure sweeps — reuse the measurement.
    """
    if len(group_rtts) != len(group_sizes):
        raise ValueError("group_rtts and group_sizes must align")

    def measure(state: Sequence[int]) -> List[Tuple[float, float]]:
        specs = []
        membership = []  # (group, is_challenger)
        for g, (rtt, size) in enumerate(zip(group_rtts, group_sizes)):
            k = state[g]
            for i in range(size):
                cc = challenger if i < k else incumbent
                specs.append(FluidSpec(cc=cc, rtt=rtt))
                membership.append((g, i < k))

        totals: Dict[Tuple[int, bool], List[float]] = {}
        for trial in range(trials):
            result = run_fluid(
                link,
                specs,
                duration=duration,
                warmup=duration / 6.0,
                seed=seed + trial,
                start_jitter=min(1.0, duration / 30.0),
            )
            for flow, (g, is_challenger) in zip(
                result.flows, membership
            ):
                totals.setdefault((g, is_challenger), []).append(
                    flow.throughput
                )
        payoffs = []
        for g in range(len(group_sizes)):
            inc = totals.get((g, False), [])
            cha = totals.get((g, True), [])
            payoffs.append(
                (mean(inc) if inc else 0.0, mean(cha) if cha else 0.0)
            )
        return payoffs

    def payoff(state: Sequence[int]):
        for g, size in enumerate(group_sizes):
            if not 0 <= state[g] <= size:
                raise ValueError(
                    f"group {g}: count {state[g]} outside [0, {size}]"
                )
        from repro.exec.engine import resolve as resolve_engine
        from repro.exec.fingerprint import link_params

        params = {
            "link": link_params(link),
            "rtts": [float(r) for r in group_rtts],
            "sizes": [int(s) for s in group_sizes],
            "state": [int(k) for k in state],
            "challenger": challenger.lower(),
            "incumbent": incumbent.lower(),
            "duration": duration,
            "trials": trials,
            "seed": seed,
        }
        payload = resolve_engine(engine).cached_payload(
            "group_payoff",
            params,
            lambda: {"payoffs": [list(p) for p in measure(state)]},
        )
        return [(p[0], p[1]) for p in payload["payoffs"]]

    return payoff
