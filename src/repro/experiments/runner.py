"""Scenario runner: one interface over both simulator substrates.

The experiment harness asks one question over and over: *given a link and
a mix of flows, what per-flow throughput does each CCA class get?*  This
module answers it against either substrate — ``backend="packet"`` for the
high-fidelity discrete-event simulator (1–2 flow validation figures) or
``backend="fluid"`` for the fluid simulator (large NE sweeps) — with
multi-trial averaging and seeded per-trial jitter, mirroring the paper's
10-trial methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.fluidsim.core import FluidSpec, run_fluid
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import Telemetry

BACKENDS = ("packet", "fluid")


@dataclass(frozen=True)
class ScenarioResult:
    """Per-CCA scenario aggregates, averaged over trials.

    Attributes:
        per_flow: Mean per-flow throughput by CCA (bytes/second).
        aggregate: Total throughput by CCA (bytes/second).
        mean_queuing_delay: Mean bottleneck queuing delay (seconds).
        loss_rate: Mean per-flow loss rate by CCA (fraction of sent
            data lost; bytes for the fluid backend, packets for the
            packet backend).
        retransmits: Mean per-flow retransmission count by CCA.
        drop_rate: Bottleneck drop rate (shared by all flows).
    """

    per_flow: Dict[str, float]
    aggregate: Dict[str, float]
    mean_queuing_delay: float
    loss_rate: Dict[str, float] = field(default_factory=dict)
    retransmits: Dict[str, float] = field(default_factory=dict)
    drop_rate: float = 0.0

    def per_flow_mbps(self, cc: str) -> float:
        """Per-flow mean throughput of class ``cc`` in Mbps."""
        return self.per_flow.get(cc, 0.0) * 8.0 / 1e6


def run_mix(
    link: LinkConfig,
    mix: Sequence[Tuple[str, int]],
    duration: float = 60.0,
    warmup: Optional[float] = None,
    backend: str = "fluid",
    trials: int = 1,
    seed: int = 0,
    rtts: Optional[Dict[str, float]] = None,
    loss_mode: str = "proportional",
    obs: Optional["Telemetry"] = None,
) -> ScenarioResult:
    """Run a flow mix and return per-CCA mean throughputs.

    Args:
        link: Bottleneck configuration.
        mix: Pairs of (cc name, flow count), e.g. ``[("cubic", 5),
            ("bbr", 5)]``.  Zero counts are allowed and skipped.
        duration: Flow lifetime per trial (the paper uses 120 s).
        warmup: Measurement exclusion window; defaults to ``duration/6``
            to skip the startup transient.
        backend: ``"packet"`` or ``"fluid"``.
        trials: Trials to average; trial ``t`` uses seed ``seed + t``.
        seed: Base RNG seed (fluid backend jitter / loss lottery).
        rtts: Optional per-CCA base RTT override in seconds.
        loss_mode: Fluid-backend CUBIC synchronization mode.
        obs: Optional telemetry bus threaded into the substrate;
            defaults to the process-wide bus (usually disabled).
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if warmup is None:
        warmup = duration / 6.0

    from repro.obs.bus import resolve

    obs = resolve(obs)

    per_flow_samples: Dict[str, List[float]] = {}
    aggregate_samples: Dict[str, List[float]] = {}
    loss_samples: Dict[str, List[float]] = {}
    retx_samples: Dict[str, List[float]] = {}
    delay_samples: List[float] = []
    drop_samples: List[float] = []
    for trial in range(trials):
        result = _run_once(
            link,
            mix,
            duration,
            warmup,
            backend,
            seed + trial,
            rtts,
            loss_mode,
            obs,
        )
        delay_samples.append(result.mean_queuing_delay)
        drop_samples.append(result.drop_rate)
        for cc, _count in mix:
            cc = cc.lower()
            flows = result.by_cc(cc)
            if not flows:
                continue
            per_flow_samples.setdefault(cc, []).append(
                result.mean_throughput(cc)
            )
            aggregate_samples.setdefault(cc, []).append(
                result.aggregate_throughput(cc)
            )
            loss_samples.setdefault(cc, []).append(
                mean(f.loss_rate for f in flows)
            )
            retx_samples.setdefault(cc, []).append(
                mean(f.retransmits for f in flows)
            )

    return ScenarioResult(
        per_flow={cc: mean(v) for cc, v in per_flow_samples.items()},
        aggregate={cc: mean(v) for cc, v in aggregate_samples.items()},
        mean_queuing_delay=mean(delay_samples),
        loss_rate={cc: mean(v) for cc, v in loss_samples.items()},
        retransmits={cc: mean(v) for cc, v in retx_samples.items()},
        drop_rate=mean(drop_samples),
    )


def _run_once(
    link: LinkConfig,
    mix: Sequence[Tuple[str, int]],
    duration: float,
    warmup: float,
    backend: str,
    seed: int,
    rtts: Optional[Dict[str, float]],
    loss_mode: str,
    obs: Optional["Telemetry"] = None,
):
    def rtt_for(cc: str) -> Optional[float]:
        if rtts is None:
            return None
        return rtts.get(cc.lower())

    if backend == "packet":
        specs = [
            FlowSpec(cc=cc, rtt=rtt_for(cc))
            for cc, count in mix
            for _ in range(count)
        ]
        return run_dumbbell(
            link, specs, duration=duration, warmup=warmup, obs=obs
        )
    fluid_specs = [
        FluidSpec(cc=cc, rtt=rtt_for(cc))
        for cc, count in mix
        for _ in range(count)
    ]
    return run_fluid(
        link,
        fluid_specs,
        duration=duration,
        warmup=warmup,
        seed=seed,
        start_jitter=min(1.0, duration / 30.0),
        loss_mode=loss_mode,
        obs=obs,
    )


def distribution_throughput_fn(
    link: LinkConfig,
    n_flows: int,
    challenger: str = "bbr",
    incumbent: str = "cubic",
    duration: float = 60.0,
    backend: str = "fluid",
    trials: int = 1,
    seed: int = 0,
):
    """Build a §4.4-style throughput function over distributions.

    Returns ``fn(k) -> (per-flow incumbent λ, per-flow challenger λ)`` for
    ``k`` challenger flows out of ``n_flows`` — the shape
    :class:`repro.core.game.ThroughputTable` and
    :func:`repro.core.game.bisect_nash` consume.
    """

    def fn(k: int) -> Tuple[float, float]:
        if not 0 <= k <= n_flows:
            raise ValueError(f"k must be in [0, {n_flows}], got {k}")
        result = run_mix(
            link,
            [(incumbent, n_flows - k), (challenger, k)],
            duration=duration,
            backend=backend,
            trials=trials,
            seed=seed + 1000 * k,
        )
        return (
            result.per_flow.get(incumbent, 0.0),
            result.per_flow.get(challenger, 0.0),
        )

    return fn


def distribution_utility_fn(
    link: LinkConfig,
    n_flows: int,
    delay_weight: float,
    challenger: str = "bbr",
    incumbent: str = "cubic",
    duration: float = 60.0,
    backend: str = "fluid",
    trials: int = 1,
    seed: int = 0,
):
    """A §4.3-style utility game: ``U = throughput − w·delay``.

    The utility is a linear combination of per-flow throughput
    (bytes/second) and the *shared* queuing delay (seconds), scaled so
    ``delay_weight`` is in "Mbps of throughput a user would trade for
    100 ms of delay".  Because the delay term is common to both CCAs at
    any distribution, the paper conjectures the NE structure is
    throughput-driven; feed this into
    :class:`repro.core.game.ThroughputTable` (whose machinery is
    payoff-agnostic) to test that.
    """
    if delay_weight < 0:
        raise ValueError(
            f"delay_weight must be non-negative, got {delay_weight}"
        )
    # Mbps-per-100ms → (bytes/s) per second-of-delay.
    weight = delay_weight * (1e6 / 8.0) / 0.1

    def fn(k: int) -> Tuple[float, float]:
        if not 0 <= k <= n_flows:
            raise ValueError(f"k must be in [0, {n_flows}], got {k}")
        result = run_mix(
            link,
            [(incumbent, n_flows - k), (challenger, k)],
            duration=duration,
            backend=backend,
            trials=trials,
            seed=seed + 1000 * k,
        )
        penalty = weight * result.mean_queuing_delay
        u_incumbent = result.per_flow.get(incumbent, 0.0) - penalty
        u_challenger = result.per_flow.get(challenger, 0.0) - penalty
        return (u_incumbent, u_challenger)

    return fn


def group_payoff_fn(
    link: LinkConfig,
    group_rtts: Sequence[float],
    group_sizes: Sequence[int],
    challenger: str = "bbr",
    incumbent: str = "cubic",
    duration: float = 60.0,
    trials: int = 1,
    seed: int = 0,
):
    """Payoff function for the multi-RTT :class:`repro.core.game.GroupGame`.

    The returned callable maps a tuple of per-group challenger counts to
    per-group ``(incumbent per-flow λ, challenger per-flow λ)`` pairs,
    measured with the fluid backend (per-flow RTTs differ, so the packet
    backend also works but is far slower).
    """
    if len(group_rtts) != len(group_sizes):
        raise ValueError("group_rtts and group_sizes must align")

    def payoff(state: Sequence[int]):
        specs = []
        membership = []  # (group, is_challenger)
        for g, (rtt, size) in enumerate(zip(group_rtts, group_sizes)):
            k = state[g]
            if not 0 <= k <= size:
                raise ValueError(
                    f"group {g}: count {k} outside [0, {size}]"
                )
            for i in range(size):
                cc = challenger if i < k else incumbent
                specs.append(FluidSpec(cc=cc, rtt=rtt))
                membership.append((g, i < k))

        totals: Dict[Tuple[int, bool], List[float]] = {}
        for trial in range(trials):
            result = run_fluid(
                link,
                specs,
                duration=duration,
                warmup=duration / 6.0,
                seed=seed + trial,
                start_jitter=min(1.0, duration / 30.0),
            )
            for flow, (g, is_challenger) in zip(
                result.flows, membership
            ):
                totals.setdefault((g, is_challenger), []).append(
                    flow.throughput
                )
        payoffs = []
        for g in range(len(group_sizes)):
            inc = totals.get((g, False), [])
            cha = totals.get((g, True), [])
            payoffs.append(
                (mean(inc) if inc else 0.0, mean(cha) if cha else 0.0)
            )
        return payoffs

    return payoff
