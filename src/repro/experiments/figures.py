"""Regeneration of every figure in the paper's evaluation.

Each ``figureN*`` function reruns the corresponding experiment and returns
one :class:`~repro.experiments.results.FigureResult` (or a list, for
multi-panel figures).  Two fidelity presets are provided:

* ``scale="quick"`` — reduced durations/point counts/flow counts sized for
  CI and ``pytest-benchmark`` runs (seconds to a few minutes per figure);
* ``scale="full"``  — the paper's parameters (2-minute flows, 10 trials,
  dense sweeps; expect hours for Figures 9–11).

Quick mode preserves every qualitative property the paper reports (who
wins, crossover locations in BDP, region containment); absolute numbers
shift slightly with the shorter averaging windows.  Figure 2 is a network
schematic and Table 1 a notation table — nothing to regenerate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.game import FlowGroup, GroupGame, bisect_nash
from repro.core.multi_flow import predict_multi_flow
from repro.core.nash import nash_region, predict_nash
from repro.core.two_flow import predict_two_flow
from repro.core.ware import ware_prediction
from repro.exec import Engine, ScenarioPoint
from repro.exec import resolve as resolve_engine
from repro.experiments.results import FigureResult
from repro.experiments.runner import (
    distribution_throughput_fn,
    group_payoff_fn,
)
from repro.util.config import LinkConfig

SCALES = ("quick", "full")


def _check_scale(scale: str) -> bool:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale == "full"


def _mbps(x: float) -> float:
    return x * 8.0 / 1e6


# -- Figure 1: the Ware et al. gap --------------------------------------------


def figure1(
    scale: str = "quick", engine: Optional[Engine] = None
) -> FigureResult:
    """Figure 1: Ware et al. prediction vs. BBR's actual share.

    1 CUBIC vs. 1 BBR at 50 Mbps / 40 ms; buffer swept up to 50 BDP.
    """
    full = _check_scale(scale)
    buffers = (
        [x * 0.5 for x in range(2, 101)]
        if full
        else [1, 2, 3, 5, 10, 20, 35, 50]
    )
    # BBR needs tens of seconds to become cwnd-limited after its startup
    # transient, so even quick mode keeps near-paper-length flows here.
    duration = 120.0 if full else 100.0
    fig = FigureResult(
        figure_id="fig1",
        title="BBR bandwidth share, 50 Mbps / 40 ms (Ware et al. vs actual)",
        xlabel="buffer (BDP)",
        ylabel="bandwidth (Mbps)",
    )
    links = [LinkConfig.from_mbps_ms(50, 40, depth) for depth in buffers]
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", 1), ("bbr", 1)),
                duration=duration,
                backend="packet",
            )
            for link in links
        ]
    )
    ware = [
        _mbps(ware_prediction(link, duration=duration).bbr_bandwidth)
        for link in links
    ]
    fig.add("ware", buffers, ware)
    fig.add("actual", buffers, [r.per_flow_mbps("bbr") for r in results])
    return fig


# -- Figure 3: 2-flow model validation ----------------------------------------


def figure3(
    capacity_mbps: float = 50,
    rtt_ms: float = 40,
    scale: str = "quick",
    engine: Optional[Engine] = None,
) -> FigureResult:
    """One panel of Figure 3: model vs. Ware vs. actual across buffers."""
    full = _check_scale(scale)
    buffers = (
        [x * 0.5 for x in range(2, 61)]
        if full
        else [1, 2, 3, 5, 10, 18, 30]
    )
    # Near-paper-length flows: see figure1's duration note.
    duration = 120.0 if full else 100.0
    fig = FigureResult(
        figure_id=f"fig3-{capacity_mbps:g}mbps-{rtt_ms:g}ms",
        title=(
            f"2-flow validation, {capacity_mbps:g} Mbps / {rtt_ms:g} ms"
        ),
        xlabel="buffer (BDP)",
        ylabel="BBR bandwidth (Mbps)",
    )
    links = [
        LinkConfig.from_mbps_ms(capacity_mbps, rtt_ms, depth)
        for depth in buffers
    ]
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", 1), ("bbr", 1)),
                duration=duration,
                backend="packet",
            )
            for link in links
        ]
    )
    fig.add(
        "ware",
        buffers,
        [
            _mbps(ware_prediction(link, duration=duration).bbr_bandwidth)
            for link in links
        ],
    )
    fig.add(
        "model",
        buffers,
        [_mbps(predict_two_flow(link).bbr_bandwidth) for link in links],
    )
    fig.add("actual", buffers, [r.per_flow_mbps("bbr") for r in results])
    return fig


def figure3_all(
    scale: str = "quick", engine: Optional[Engine] = None
) -> List[FigureResult]:
    """All four panels of Figure 3 ({50,100} Mbps × {40,80} ms)."""
    return [
        figure3(capacity, rtt, scale, engine=engine)
        for capacity in (50, 100)
        for rtt in (40, 80)
    ]


# -- Figure 4: multi-flow validation ------------------------------------------


def figure4(
    n_per_class: int = 5,
    scale: str = "quick",
    seed: int = 0,
    engine: Optional[Engine] = None,
) -> FigureResult:
    """One panel of Figure 4: N CUBIC vs N BBR, 100 Mbps / 40 ms.

    Plots the model's predicted region (sync/desync bounds), Ware's
    per-flow prediction, and the fluid-simulated per-flow BBR throughput.
    """
    full = _check_scale(scale)
    buffers = (
        list(range(1, 31))
        if full
        else [1, 2, 3, 5, 10, 15, 20, 30]
    )
    duration = 120.0 if full else 90.0
    trials = 10 if full else 3
    fig = FigureResult(
        figure_id=f"fig4-{n_per_class}v{n_per_class}",
        title=(
            f"{n_per_class} CUBIC vs {n_per_class} BBR, 100 Mbps / 40 ms"
        ),
        xlabel="buffer (BDP)",
        ylabel="per-flow bandwidth (Mbps)",
    )
    links = [LinkConfig.from_mbps_ms(100, 40, depth) for depth in buffers]
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", n_per_class), ("bbr", n_per_class)),
                duration=duration,
                backend="fluid",
                trials=trials,
                seed=seed,
            )
            for link in links
        ]
    )
    sync, desync, ware = [], [], []
    for link in links:
        pred = predict_multi_flow(link, n_per_class, n_per_class)
        sync.append(_mbps(pred.per_flow_bbr_sync))
        desync.append(_mbps(pred.per_flow_bbr_desync))
        ware.append(
            _mbps(
                ware_prediction(
                    link, n_bbr=n_per_class, duration=duration
                ).bbr_bandwidth
            )
            / n_per_class
        )
    fig.add("sync-bound", buffers, sync)
    fig.add("desync-bound", buffers, desync)
    fig.add("ware", buffers, ware)
    fig.add("actual", buffers, [r.per_flow_mbps("bbr") for r in results])
    return fig


# -- Figure 5: diminishing returns --------------------------------------------


def figure5(
    n_flows: int = 10,
    buffer_bdp: float = 3,
    scale: str = "quick",
    seed: int = 0,
    engine: Optional[Engine] = None,
) -> FigureResult:
    """One panel of Figure 5: BBR per-flow bandwidth vs. #BBR flows."""
    full = _check_scale(scale)
    duration = 120.0 if full else 90.0
    trials = 10 if full else 2
    step = 1 if (full or n_flows <= 10) else 2
    counts = list(range(1, n_flows + 1, step))
    if counts[-1] != n_flows:
        counts.append(n_flows)
    link = LinkConfig.from_mbps_ms(100, 40, buffer_bdp)
    fig = FigureResult(
        figure_id=f"fig5-{n_flows}flows-{buffer_bdp:g}bdp",
        title=(
            f"Diminishing returns: {n_flows} flows, "
            f"{buffer_bdp:g} BDP buffer"
        ),
        xlabel="# BBR flows",
        ylabel="per-flow bandwidth (Mbps)",
    )
    fair = _mbps(link.capacity) / n_flows
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", n_flows - n_bbr), ("bbr", n_bbr)),
                duration=duration,
                backend="fluid",
                trials=trials,
                seed=seed,
            )
            for n_bbr in counts
        ]
    )
    sync, desync = [], []
    for n_bbr in counts:
        pred = predict_multi_flow(link, n_flows - n_bbr, n_bbr)
        sync.append(_mbps(pred.per_flow_bbr_sync))
        desync.append(_mbps(pred.per_flow_bbr_desync))
    fig.add("sync-bound", counts, sync)
    fig.add("desync-bound", counts, desync)
    fig.add("actual", counts, [r.per_flow_mbps("bbr") for r in results])
    fig.add("fair-share", counts, [fair] * len(counts))
    return fig


# -- Figure 6: NE geometry ----------------------------------------------------


def figure6(
    n_flows: int = 10, buffer_bdp: float = 3, scale: str = "quick"
) -> FigureResult:
    """Figure 6 (quantified): per-flow BBR bandwidth line vs. fair share.

    The paper's Figure 6 is a schematic; here it is generated from the
    model so the A→B line and the crossing point C are concrete.
    """
    _check_scale(scale)
    link = LinkConfig.from_mbps_ms(100, 40, buffer_bdp)
    counts = list(range(1, n_flows + 1))
    fair = _mbps(link.capacity) / n_flows
    fig = FigureResult(
        figure_id="fig6",
        title="Nash Equilibrium geometry (model-generated)",
        xlabel="# BBR flows",
        ylabel="per-flow BBR bandwidth (Mbps)",
    )
    sync, desync = [], []
    for n_bbr in counts:
        pred = predict_multi_flow(link, n_flows - n_bbr, n_bbr)
        sync.append(_mbps(pred.per_flow_bbr_sync))
        desync.append(_mbps(pred.per_flow_bbr_desync))
    fig.add("bbr-per-flow-sync", counts, sync)
    fig.add("bbr-per-flow-desync", counts, desync)
    fig.add("fair-share", counts, [fair] * len(counts))
    ne = predict_nash(link, n_flows)
    fig.notes = (
        f"Model NE (point C): N_b in "
        f"[{min(ne.n_bbr_sync, ne.n_bbr_desync):.2f}, "
        f"{max(ne.n_bbr_sync, ne.n_bbr_desync):.2f}] of {n_flows}"
    )
    return fig


# -- Figure 7: other congestion control algorithms ----------------------------


def figure7(
    scale: str = "quick",
    seed: int = 0,
    algorithms: Sequence[str] = ("bbr", "bbr2", "copa", "vivace"),
    engine: Optional[Engine] = None,
) -> FigureResult:
    """Figure 7: per-flow throughput of X vs. #X flows, X ∈ {BBR, BBRv2,
    Copa, PCC Vivace}, 10 flows at 100 Mbps with a 2 BDP buffer."""
    full = _check_scale(scale)
    n_flows = 10
    duration = 120.0 if full else 60.0
    trials = 3 if full else 1
    link = LinkConfig.from_mbps_ms(100, 40, 2)
    fair = _mbps(link.capacity) / n_flows
    fig = FigureResult(
        figure_id="fig7",
        title="Per-flow bandwidth vs #non-CUBIC flows (2 BDP buffer)",
        xlabel="# non-CUBIC flows",
        ylabel="per-flow bandwidth (Mbps)",
    )
    counts = list(range(1, n_flows + 1))
    # One flat point grid over (algorithm × count); the engine fans the
    # whole grid out at once instead of one algorithm at a time.
    grid = [(algo, k) for algo in algorithms for k in counts]
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", n_flows - k), (algo, k)),
                duration=duration,
                backend="fluid",
                trials=trials,
                seed=seed,
            )
            for algo, k in grid
        ]
    )
    by_algo: Dict[str, List[float]] = {algo: [] for algo in algorithms}
    for (algo, _k), result in zip(grid, results):
        by_algo[algo].append(result.per_flow_mbps(algo))
    for algo in algorithms:
        fig.add(algo, counts, by_algo[algo])
    fig.add("fair-share", counts, [fair] * len(counts))
    return fig


# -- Figure 8: throughput and delay along the distribution sweep --------------


def figure8(
    scale: str = "quick", seed: int = 0, engine: Optional[Engine] = None
) -> Tuple[FigureResult, FigureResult]:
    """Figure 8: (a) CUBIC/BBR per-flow throughput and (b) shared queuing
    delay, as the number of BBR flows grows (10 flows, 2 BDP, 40 ms)."""
    full = _check_scale(scale)
    n_flows = 10
    duration = 120.0 if full else 60.0
    trials = 3 if full else 1
    link = LinkConfig.from_mbps_ms(100, 40, 2)
    counts = list(range(0, n_flows + 1))
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", n_flows - k), ("bbr", k)),
                duration=duration,
                backend="fluid",
                trials=trials,
                seed=seed,
            )
            for k in counts
        ]
    )
    cubic, bbr, delay = [], [], []
    for k, result in zip(counts, results):
        cubic.append(result.per_flow_mbps("cubic") if k < n_flows else 0.0)
        bbr.append(result.per_flow_mbps("bbr") if k > 0 else 0.0)
        delay.append(result.mean_queuing_delay * 1e3)
    fig_a = FigureResult(
        figure_id="fig8a",
        title="Average per-flow throughput vs #BBR flows",
        xlabel="# non-CUBIC flows",
        ylabel="per-flow bandwidth (Mbps)",
    )
    fig_a.add("cubic", counts, cubic)
    fig_a.add("bbr", counts, bbr)
    fig_b = FigureResult(
        figure_id="fig8b",
        title="Average queuing delay vs #BBR flows",
        xlabel="# non-CUBIC flows",
        ylabel="queuing delay (ms)",
    )
    fig_b.add("queuing-delay", counts, delay)
    return fig_a, fig_b


# -- Figure 9: NE validation --------------------------------------------------


def figure9(
    capacity_mbps: float = 100,
    rtt_ms: float = 40,
    scale: str = "quick",
    seed: int = 0,
    challenger: str = "bbr",
    engine: Optional[Engine] = None,
) -> FigureResult:
    """One panel of Figure 9: predicted Nash Region vs. empirical NE.

    Quick mode uses 20 flows and bisection NE search (the paper uses 50
    flows and exhaustive enumeration over 10 trials).

    The empirical sweep is *defined as* a campaign
    (:func:`repro.campaign.studies.fig9_campaign`, also checked in at
    ``examples/campaigns/fig9-ne-quick.toml``): the figure path and
    ``repro-bbr campaign run`` execute the same units against the same
    cache fingerprints.
    """
    # Deferred: repro.campaign imports repro.experiments for the scale
    # presets, so the reverse edge must stay inside the function.
    from repro.campaign.expand import expand_units
    from repro.campaign.run import iter_units
    from repro.campaign.studies import fig9_campaign

    _check_scale(scale)
    spec = fig9_campaign(
        capacity_mbps=capacity_mbps,
        rtt_ms=rtt_ms,
        scale=scale,
        seed=seed,
        challenger=challenger,
    )
    stage = spec.stages[0]
    n_flows = stage.flows
    buffer_axis = spec.axis("buffer_bdp")
    assert buffer_axis is not None  # fig9_campaign always sweeps buffers.
    buffers = list(buffer_axis.values)
    fig = FigureResult(
        figure_id=(
            f"fig9-{capacity_mbps:g}mbps-{rtt_ms:g}ms"
            + ("" if challenger == "bbr" else f"-{challenger}")
        ),
        title=(
            f"NE: predicted region vs observed, {n_flows} flows, "
            f"{capacity_mbps:g} Mbps / {rtt_ms:g} ms ({challenger})"
        ),
        xlabel="buffer (BDP)",
        ylabel="# CUBIC flows at NE",
    )
    base = LinkConfig.from_mbps_ms(capacity_mbps, rtt_ms, 1)
    region = nash_region(base, n_flows, buffers)
    fig.add("sync-bound", buffers, [p.n_cubic_sync for p in region])
    fig.add("desync-bound", buffers, [p.n_cubic_desync for p in region])

    # Streamed: only the (x, y) floats survive each outcome, keyed by
    # unit index so completion order cannot scramble the curve.
    observed: Dict[int, List[Tuple[float, float]]] = {}
    for outcome in iter_units(spec, expand_units(spec), engine=engine):
        observed[outcome.index] = [
            (row["buffer_bdp"], row["ne_incumbent"])
            for row in outcome.rows
        ]
    observed_x, observed_y = [], []
    for index in sorted(observed):
        for x, y in observed[index]:
            observed_x.append(x)
            observed_y.append(y)
    fig.add("observed-ne", observed_x, observed_y)
    return fig


def figure9_all(
    scale: str = "quick", seed: int = 0, engine: Optional[Engine] = None
) -> List[FigureResult]:
    """All six panels of Figure 9 ({50,100} Mbps × {20,40,80} ms)."""
    return [
        figure9(capacity, rtt, scale, seed, engine=engine)
        for capacity in (50, 100)
        for rtt in (20, 40, 80)
    ]


# -- Figure 10: multi-RTT NE --------------------------------------------------


def figure10(
    scale: str = "quick", seed: int = 0, engine: Optional[Engine] = None
) -> FigureResult:
    """Figure 10: NE for three RTT groups (10/30/50 ms) sharing 100 Mbps.

    Reports the total CUBIC count at the NE per buffer depth and how it
    splits across the RTT groups (§4.5: the shortest-RTT flows choose
    CUBIC first).
    """
    full = _check_scale(scale)
    group_size = 10 if full else 3
    duration = 120.0 if full else 90.0
    buffers = (
        [2, 5, 10, 15, 20, 30, 40, 50] if full else [2, 10, 35]
    )
    rtts = [0.010, 0.030, 0.050]
    sizes = [group_size] * 3
    # Buffer normalized to the BDP of the shortest-RTT flow, as in §4.5.
    base = LinkConfig.from_mbps_ms(100, 10, 1)

    fig = FigureResult(
        figure_id="fig10",
        title=(
            f"Multi-RTT NE: 3×{group_size} flows at 10/30/50 ms, 100 Mbps"
        ),
        xlabel="buffer (BDP of shortest RTT)",
        ylabel="# CUBIC flows at NE",
    )
    totals, by_group = [], {rtt: [] for rtt in rtts}
    for depth in buffers:
        link = base.with_buffer_bdp(depth)
        payoff = group_payoff_fn(
            link, rtts, sizes, duration=duration, seed=seed, engine=engine
        )
        game = GroupGame(
            groups=[FlowGroup(rtt=r, size=s) for r, s in zip(rtts, sizes)],
            payoff=payoff,
        )
        # Best-response descent from diverse starts, then NE verification.
        candidates = set()
        starts = [
            (0, group_size // 2, group_size),
            tuple(sizes),
        ]
        for start in starts:
            path = game.best_response_path(start)
            candidates.add(path[-1])
        equilibria = [s for s in candidates if game.is_nash(s)]
        if not equilibria:
            equilibria = [min(candidates)]  # Report the best effort.
        state = equilibria[0]
        n_cubic_by_group = [
            size - k for size, k in zip(sizes, state)
        ]
        totals.append(sum(n_cubic_by_group))
        for rtt, n_cubic in zip(rtts, n_cubic_by_group):
            by_group[rtt].append(n_cubic)
    fig.add("n-cubic-total", buffers, totals)
    for rtt in rtts:
        fig.add(f"n-cubic-{rtt * 1e3:g}ms", buffers, by_group[rtt])
    return fig


# -- Figure 11: BBRv2 NE ------------------------------------------------------


def figure11(
    capacity_mbps: float = 50,
    scale: str = "quick",
    seed: int = 0,
    engine: Optional[Engine] = None,
) -> FigureResult:
    """One panel of Figure 11: CUBIC-vs-BBRv2 NE against the BBR-predicted
    region (the paper finds more CUBIC flows at the NE than with BBR)."""
    full = _check_scale(scale)
    n_flows = 50 if full else 20
    duration = 120.0 if full else 110.0
    rtts_ms = (20, 40, 80) if full else (40,)
    buffers = (
        [0.5] + [float(b) for b in range(1, 51)]
        if full
        else [2, 5, 10, 20, 35, 50]
    )
    fig = FigureResult(
        figure_id=f"fig11-{capacity_mbps:g}mbps",
        title=(
            f"BBRv2 NE vs BBR-predicted region, {n_flows} flows, "
            f"{capacity_mbps:g} Mbps"
        ),
        xlabel="buffer (BDP)",
        ylabel="# CUBIC flows at NE",
    )
    base = LinkConfig.from_mbps_ms(capacity_mbps, 40, 1)
    region = nash_region(base, n_flows, buffers)
    fig.add("bbr-sync-bound", buffers, [p.n_cubic_sync for p in region])
    fig.add(
        "bbr-desync-bound", buffers, [p.n_cubic_desync for p in region]
    )
    for rtt_ms in rtts_ms:
        observed_x, observed_y = [], []
        for depth in buffers:
            link = LinkConfig.from_mbps_ms(capacity_mbps, rtt_ms, depth)
            fn = distribution_throughput_fn(
                link,
                n_flows,
                challenger="bbr2",
                duration=duration,
                backend="fluid",
                seed=seed,
                engine=engine,
            )
            equilibria, _cache = bisect_nash(n_flows, fn)
            for k in equilibria:
                observed_x.append(depth)
                observed_y.append(n_flows - k)
        fig.add(f"observed-{rtt_ms}ms", observed_x, observed_y)
    return fig


# -- Figure 12: ultra-deep buffers --------------------------------------------


def figure12(
    scale: str = "quick", engine: Optional[Engine] = None
) -> FigureResult:
    """Figure 12: model over-estimation in ultra-deep buffers.

    1 CUBIC vs 1 BBR swept to 250 BDP.  Quick mode shrinks the link
    (20 Mbps / 20 ms) so the packet simulator covers the deep-buffer
    regime in seconds; the regime boundary (≈100 BDP) is in BDP units and
    scale-free, like the paper's other BDP-normalized results.
    """
    full = _check_scale(scale)
    if full:
        capacity_mbps, rtt_ms, duration = 50.0, 40.0, 120.0
        buffers = [1, 5, 10, 25, 50, 75, 100, 125, 150, 200, 250]
    else:
        capacity_mbps, rtt_ms, duration = 20.0, 20.0, 120.0
        buffers = [1, 5, 20, 60, 100, 150, 250]
    fig = FigureResult(
        figure_id="fig12",
        title=(
            f"Ultra-deep buffers, {capacity_mbps:g} Mbps / {rtt_ms:g} ms "
            "(model overestimates past ~100 BDP)"
        ),
        xlabel="buffer (BDP)",
        ylabel="BBR bandwidth (Mbps)",
    )
    links = [
        LinkConfig.from_mbps_ms(capacity_mbps, rtt_ms, depth)
        for depth in buffers
    ]
    results = resolve_engine(engine).run_points(
        [
            ScenarioPoint(
                link=link,
                mix=(("cubic", 1), ("bbr", 1)),
                duration=duration,
                backend="packet",
            )
            for link in links
        ]
    )
    fig.add(
        "ware",
        buffers,
        [
            _mbps(ware_prediction(link, duration=duration).bbr_bandwidth)
            for link in links
        ],
    )
    fig.add(
        "model",
        buffers,
        [_mbps(predict_two_flow(link).bbr_bandwidth) for link in links],
    )
    fig.add("actual", buffers, [r.per_flow_mbps("bbr") for r in results])
    return fig


#: Registry used by the CLI: figure id → zero-argument quick generator.
def _traced_figure(fig_id: str, fn):
    """Bracket one figure runner in a ``figure`` span when tracing is on.

    The registry below is the CLI's only entry to the runners, so this
    one wrapper gives every figure its top-level span without touching
    the sweep bodies (their engine-level spans nest inside).
    """

    def wrapper(scale: str = "quick"):
        from repro.obs.trace import resolve as resolve_tracer

        tracer = resolve_tracer(None)
        if tracer is None:
            return fn(scale=scale)
        with tracer.span(
            "figure", cat="figure", figure=fig_id, scale=scale
        ):
            return fn(scale=scale)

    return wrapper


_FIGURES_RAW: Dict[str, object] = {
    "fig1": figure1,
    "fig3": figure3_all,
    "fig4": lambda scale="quick": [
        figure4(5, scale),
        figure4(10, scale),
    ],
    "fig5": lambda scale="quick": [
        figure5(10, 3, scale),
        figure5(20, 3, scale),
        figure5(10, 10, scale),
        figure5(20, 10, scale),
    ],
    "fig6": figure6,
    "fig7": figure7,
    "fig8": lambda scale="quick": list(figure8(scale)),
    "fig9": figure9_all,
    "fig10": figure10,
    "fig11": lambda scale="quick": [
        figure11(50, scale),
        figure11(100, scale),
    ],
    "fig12": figure12,
}

FIGURES: Dict[str, object] = {
    key: _traced_figure(key, fn) for key, fn in _FIGURES_RAW.items()
}
