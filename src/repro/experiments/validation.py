"""Model-accuracy validation reports (the quantitative core of §3.1).

``validate_two_flow`` sweeps buffer depths, measures the 1-CUBIC-vs-1-BBR
split on a simulator backend, and scores the paper's model against the
Ware et al. baseline with the metrics of :mod:`repro.analysis.metrics` —
producing the "our model is within X%, Ware is off by Y%" summary the
paper states in prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.analysis.metrics import (
    fraction_within,
    mean_absolute_error,
    mean_relative_error,
)
from repro.core.two_flow import predict_two_flow
from repro.core.ware import ware_prediction
from repro.experiments.runner import run_mix
from repro.util.config import LinkConfig


@dataclass(frozen=True)
class ValidationRow:
    """One buffer depth of a validation sweep (bandwidths in bytes/s)."""

    buffer_bdp: float
    actual: float
    model: float
    ware: float


@dataclass
class ValidationReport:
    """A scored model-vs-baseline-vs-measurement sweep."""

    link: LinkConfig
    backend: str
    duration: float
    rows: List[ValidationRow]

    def _series(self, name: str) -> List[float]:
        return [getattr(row, name) for row in self.rows]

    @property
    def model_mae(self) -> float:
        """Mean absolute error of the paper's model, bytes/second."""
        return mean_absolute_error(
            self._series("model"), self._series("actual")
        )

    @property
    def ware_mae(self) -> float:
        """Mean absolute error of Ware et al., bytes/second."""
        return mean_absolute_error(
            self._series("ware"), self._series("actual")
        )

    @property
    def model_mre(self) -> float:
        """Mean relative error of the paper's model."""
        return mean_relative_error(
            self._series("model"), self._series("actual")
        )

    @property
    def ware_mre(self) -> float:
        """Mean relative error of Ware et al."""
        return mean_relative_error(
            self._series("ware"), self._series("actual")
        )

    def model_within(self, tolerance: float) -> float:
        """Fraction of points where the model is within ``tolerance``."""
        return fraction_within(
            self._series("model"), self._series("actual"), tolerance
        )

    @property
    def model_wins(self) -> bool:
        """Whether the paper's model beats Ware et al. on MAE."""
        return self.model_mae < self.ware_mae

    def render(self) -> str:
        """Human-readable table plus the headline summary."""
        lines = [
            f"2-flow validation on the {self.backend} backend: "
            f"{self.link.capacity_mbps:g} Mbps / {self.link.rtt_ms:g} ms, "
            f"{self.duration:g} s flows",
            f"{'BDP':>6} {'actual':>10} {'model':>10} {'ware':>10}  (Mbps)",
        ]
        for row in self.rows:
            lines.append(
                f"{row.buffer_bdp:6.1f} "
                f"{row.actual * 8 / 1e6:10.2f} "
                f"{row.model * 8 / 1e6:10.2f} "
                f"{row.ware * 8 / 1e6:10.2f}"
            )
        lines.append(
            f"model: MAE {self.model_mae * 8 / 1e6:.2f} Mbps "
            f"({self.model_mre:.1%} rel)   "
            f"ware: MAE {self.ware_mae * 8 / 1e6:.2f} Mbps "
            f"({self.ware_mre:.1%} rel)   "
            f"→ {'model wins' if self.model_wins else 'ware wins'}"
        )
        return "\n".join(lines)


def validate_two_flow(
    link: LinkConfig,
    buffer_bdps: Sequence[float],
    duration: float = 120.0,
    backend: str = "packet",
    trials: int = 1,
    seed: int = 0,
) -> ValidationReport:
    """Run the §3.1 validation sweep and score both models."""
    if not buffer_bdps:
        raise ValueError("at least one buffer depth is required")
    rows = []
    for depth in buffer_bdps:
        cfg = link.with_buffer_bdp(depth)
        result = run_mix(
            cfg,
            [("cubic", 1), ("bbr", 1)],
            duration=duration,
            backend=backend,
            trials=trials,
            seed=seed,
        )
        rows.append(
            ValidationRow(
                buffer_bdp=depth,
                actual=result.per_flow.get("bbr", 0.0),
                model=predict_two_flow(cfg).bbr_bandwidth,
                ware=ware_prediction(cfg, duration=duration).bbr_bandwidth,
            )
        )
    return ValidationReport(
        link=link, backend=backend, duration=duration, rows=rows
    )
