"""Experiment harness: scenario runner and per-figure regenerators.

``figures.FIGURES`` maps figure ids (fig1 … fig12) to generators; each
returns :class:`~repro.experiments.results.FigureResult` objects with CSV
export and terminal rendering.  ``runner.run_mix`` is the generic
"run this flow mix, give me per-CCA throughput" entry point.
"""

from repro.experiments.figures import FIGURES
from repro.experiments.results import FigureResult, Series
from repro.experiments.runner import (
    ScenarioResult,
    distribution_throughput_fn,
    group_payoff_fn,
    run_mix,
)

__all__ = [
    "FIGURES",
    "FigureResult",
    "Series",
    "ScenarioResult",
    "distribution_throughput_fn",
    "group_payoff_fn",
    "run_mix",
]
