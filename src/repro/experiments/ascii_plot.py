"""Terminal rendering of figure data (no plotting libraries offline).

A deliberately small scatter/line renderer: series are drawn with distinct
marker characters on a shared canvas with axis labels, plus a plain data
table for exact values.  Good enough to eyeball the shapes the paper's
figures show (crossovers, diminishing returns, predicted regions).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Marker characters assigned to series in order.
MARKERS = "ox+*#@%&"

SeriesData = Tuple[str, Sequence[float], Sequence[float]]


def _bounds(values: Sequence[float]) -> Tuple[float, float]:
    lo, hi = min(values), max(values)
    if lo == hi:
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def render_plot(
    series: List[SeriesData],
    xlabel: str = "x",
    ylabel: str = "y",
    width: int = 72,
    height: int = 18,
) -> str:
    """Render series as an ASCII scatter plot with a legend."""
    points = [
        (x, y)
        for _name, xs, ys in series
        for x, y in zip(xs, ys)
        if y == y  # skip NaNs
    ]
    if not points:
        return "(no data)"
    x_lo, x_hi = _bounds([p[0] for p in points])
    y_lo, y_hi = _bounds([p[1] for p in points])
    y_lo = min(y_lo, 0.0)

    grid = [[" "] * width for _ in range(height)]
    for idx, (_name, xs, ys) in enumerate(series):
        marker = MARKERS[idx % len(MARKERS)]
        for x, y in zip(xs, ys):
            if y != y:
                continue
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    label_width = 9
    for i, row in enumerate(grid):
        y_val = y_hi - (y_hi - y_lo) * i / (height - 1)
        prefix = f"{y_val:8.1f} |" if i % 3 == 0 else " " * label_width + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    lines.append(
        " " * label_width
        + f"{x_lo:<10.1f}{xlabel:^{max(width - 20, 1)}}{x_hi:>10.1f}"
    )
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}"
        for i, (name, _x, _y) in enumerate(series)
    )
    lines.append(f"  [{ylabel}]  {legend}")
    return "\n".join(lines)


def render_table(xlabel: str, series: List[SeriesData]) -> str:
    """Render series as an aligned text table over the union of x values.

    Repeated x values within a series (e.g. multiple Nash Equilibria
    found at one buffer depth across trials) are averaged for the table;
    the plot and CSV retain every point.
    """
    xs = sorted({x for _n, sx, _sy in series for x in sx})
    names = [name for name, _x, _y in series]
    col_width = max(12, max((len(n) for n in names), default=12) + 2)
    header = f"{xlabel:>12} " + "".join(f"{n:>{col_width}}" for n in names)
    rows = [header]
    lookup = []
    for _n, sx, sy in series:
        grouped = {}
        for x, y in zip(sx, sy):
            grouped.setdefault(x, []).append(y)
        lookup.append(
            {x: sum(ys) / len(ys) for x, ys in grouped.items()}
        )
    for x in xs:
        cells = []
        for table in lookup:
            value = table.get(x)
            cells.append(
                f"{value:>{col_width}.2f}"
                if value is not None
                else " " * (col_width - 1) + "-"
            )
        rows.append(f"{x:>12.2f} " + "".join(cells))
    return "\n".join(rows)
