"""Dumbbell topology builder: N flows through one drop-tail bottleneck.

This reproduces the paper's testbed (Figure 2): every flow crosses the same
bottleneck link and drop-tail buffer; each flow's base RTT is realized by
per-flow propagation delay lines on the data and ACK paths, so flows may
have distinct base RTTs (as in the paper's §4.5 multi-RTT experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry
    from repro.sim.aqm import CoDelConfig, REDConfig

from repro.cc.base import make_controller
from repro.sim.endpoints import Receiver, Sender
from repro.sim.engine import EventLoop
from repro.sim.link import DelayLine, Link
from repro.sim.packet import Packet
from repro.sim.stats import FlowStats
from repro.util.config import LinkConfig


@dataclass
class FlowSpec:
    """Configuration for one flow in the dumbbell.

    Attributes:
        cc: Registered congestion-control algorithm name (e.g. ``"cubic"``).
        rtt: Base RTT in seconds; None means "use the link config's RTT".
        start_time: When the flow begins sending, in seconds.
        max_bytes: Optional transfer size — the flow stops sending once
            it has transmitted this much (short-flow workloads).
        cc_kwargs: Extra keyword arguments for the controller constructor.
    """

    cc: str
    rtt: Optional[float] = None
    start_time: float = 0.0
    max_bytes: Optional[int] = None
    cc_kwargs: Dict[str, object] = field(default_factory=dict)


@dataclass
class FlowResult:
    """Measured outcome for one flow over the measurement interval."""

    flow_id: int
    cc: str
    throughput: float  # bytes/second
    mean_rtt: Optional[float]
    min_rtt: Optional[float]
    loss_rate: float
    delivered_bytes: int
    retransmits: int = 0

    @property
    def throughput_mbps(self) -> float:
        """Throughput in Mbps, the unit used in the paper's figures."""
        return self.throughput * 8.0 / 1e6


@dataclass
class SimulationResult:
    """Outcome of one dumbbell run."""

    flows: List[FlowResult]
    duration: float
    warmup: float
    mean_queue_bytes: float
    mean_queuing_delay: float
    drop_rate: float
    events_processed: int = 0

    def by_cc(self, cc: str) -> List[FlowResult]:
        """All flow results running algorithm ``cc``."""
        return [f for f in self.flows if f.cc == cc.lower()]

    def mean_throughput(self, cc: Optional[str] = None) -> float:
        """Mean per-flow throughput (bytes/s), optionally filtered by CCA."""
        flows = self.by_cc(cc) if cc else self.flows
        if not flows:
            return 0.0
        return sum(f.throughput for f in flows) / len(flows)

    def aggregate_throughput(self, cc: Optional[str] = None) -> float:
        """Total throughput (bytes/s), optionally filtered by CCA."""
        flows = self.by_cc(cc) if cc else self.flows
        return sum(f.throughput for f in flows)


class DumbbellNetwork:
    """N senders → shared drop-tail bottleneck → N receivers.

    Args:
        link: Bottleneck configuration (capacity, base RTT, buffer depth).
        flows: One :class:`FlowSpec` per flow.
        mss: Segment size in bytes for all flows.
        red: Optional :class:`repro.sim.aqm.REDConfig` to run the
            bottleneck with RED instead of pure drop-tail (the paper's
            §5 "Taming the Zoo" direction).
        codel: Optional :class:`repro.sim.aqm.CoDelConfig` for CoDel at
            the bottleneck.  Mutually exclusive with ``red``.
            When neither is given, the AQM (and its ECN flag) is derived
            from ``link.aqm`` — the canonical scenario-schema path; the
            explicit arguments exist for direct experimentation and
            override the spec.  A non-constant ``link.capacity_trace``
            schedules bottleneck capacity changes on the event loop.
        obs: Optional telemetry bus, threaded through the event loop,
            bottleneck link, senders, and congestion controllers.  When
            the bus has a ``sample_interval``, a
            :class:`repro.sim.trace.CwndTracer` is attached that streams
            periodic controller samples onto the bus.
        check: Optional :class:`repro.check.Checker`, threaded through
            the same components as ``obs``.  Defaults to the
            process-wide checker (installed by ``--check`` or
            ``REPRO_CHECK=1``), which is usually None, i.e. disabled.
    """

    def __init__(
        self,
        link: LinkConfig,
        flows: Sequence[FlowSpec],
        mss: Optional[int] = None,
        red: Optional["REDConfig"] = None,
        codel: Optional["CoDelConfig"] = None,
        obs: Optional["Telemetry"] = None,
        check: Optional["Checker"] = None,
    ) -> None:
        from repro.check import resolve as resolve_check
        from repro.scenario import CoDelSpec, REDSpec
        from repro.sim.aqm import RED, CoDel, CoDelConfig, REDConfig

        if not flows:
            raise ValueError("at least one flow is required")
        if red is not None and codel is not None:
            raise ValueError("choose at most one AQM (red or codel)")
        check = resolve_check(check)
        self.link_config = link
        self.flow_specs = list(flows)
        self.mss = mss if mss is not None else link.mss
        self.obs = obs
        self.check = check
        self.loop = EventLoop(obs=obs, check=check)

        # Derive the AQM from the scenario spec unless explicit configs
        # override it (the legacy direct-experimentation path).
        ecn = False
        spec_aqm = getattr(link, "aqm", None)
        if red is None and codel is None and spec_aqm is not None:
            if isinstance(spec_aqm, REDSpec):
                red = REDConfig(
                    min_threshold=spec_aqm.min_frac * link.buffer_bytes,
                    max_threshold=spec_aqm.max_frac * link.buffer_bytes,
                    max_p=spec_aqm.max_p,
                    weight=spec_aqm.weight,
                    seed=spec_aqm.seed,
                )
                ecn = spec_aqm.ecn
            elif isinstance(spec_aqm, CoDelSpec):
                codel = CoDelConfig(
                    target=spec_aqm.target, interval=spec_aqm.interval
                )
                ecn = spec_aqm.ecn

        aqm = None
        if red is not None:
            aqm = RED(red)
        elif codel is not None:
            aqm = CoDel(codel)
        trace = getattr(link, "capacity_trace", None)
        dynamic = trace is not None and not trace.is_constant
        initial_scale = trace.scale_at(0.0) if dynamic else 1.0
        self.bottleneck = Link(
            loop=self.loop,
            capacity=link.capacity * initial_scale
            if dynamic
            else link.capacity,
            delay=0.0,
            buffer_bytes=link.buffer_bytes,
            deliver=self._route_data,
            aqm=aqm,
            ecn=ecn,
            obs=obs,
            check=check,
        )
        if dynamic:
            base = link.capacity
            for when, scale in trace.change_events():
                self.loop.call_at(
                    when,
                    lambda s=scale: self.bottleneck.set_capacity(base * s),
                )

        self.senders: List[Sender] = []
        self.stats: List[FlowStats] = []
        self._data_paths: Dict[int, DelayLine] = {}

        for flow_id, spec in enumerate(self.flow_specs):
            rtt = spec.rtt if spec.rtt is not None else link.rtt
            if rtt <= 0:
                raise ValueError(f"flow {flow_id}: rtt must be positive")
            cc = make_controller(spec.cc, mss=self.mss, **spec.cc_kwargs)
            cc.obs = obs
            cc.check = check
            cc.flow_id = flow_id
            stats = FlowStats(flow_id)
            sender = Sender(
                loop=self.loop,
                flow_id=flow_id,
                cc=cc,
                transmit=self.bottleneck.enqueue,
                stats=stats,
                start_time=spec.start_time,
                max_bytes=spec.max_bytes,
                obs=obs,
                check=check,
            )
            ack_path = DelayLine(self.loop, rtt / 2.0, sender.on_ack)
            receiver = Receiver(self.loop, stats, ack_path.send)
            self._data_paths[flow_id] = DelayLine(
                self.loop, rtt / 2.0, receiver.on_packet
            )
            self.senders.append(sender)
            self.stats.append(stats)

        if obs is not None and obs.sample_interval is not None:
            from repro.sim.trace import CwndTracer

            self.tracer: Optional[CwndTracer] = CwndTracer(
                self, obs.sample_interval, obs=obs
            )
        else:
            self.tracer = None

    def _route_data(self, packet: Packet) -> None:
        self._data_paths[packet.flow_id].send(packet)

    def run(self, duration: float, warmup: float = 0.0) -> SimulationResult:
        """Run for ``duration`` seconds; measure over ``[warmup, duration]``.

        The paper's experiments average over the full 2-minute flow
        lifetime, which corresponds to ``warmup=0``; passing a positive
        warm-up excludes the startup transient instead.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not 0 <= warmup < duration:
            raise ValueError(
                f"warmup must lie in [0, duration), got {warmup}"
            )
        self.loop.run_until(duration)
        flows = []
        for spec, stats in zip(self.flow_specs, self.stats):
            flows.append(
                FlowResult(
                    flow_id=stats.flow_id,
                    cc=spec.cc.lower(),
                    throughput=stats.throughput(warmup, duration),
                    mean_rtt=stats.mean_rtt,
                    min_rtt=stats.min_rtt,
                    loss_rate=stats.loss_rate,
                    delivered_bytes=stats.delivered_bytes,
                    retransmits=stats.retransmits,
                )
            )
        link_stats = self.bottleneck.stats
        mean_queue = link_stats.mean_occupancy(duration)
        if self.obs is not None:
            self.obs.count(
                "link.forwarded_packets", link_stats.forwarded_packets
            )
            self.obs.gauge("link.mean_queue_bytes", mean_queue)
        return SimulationResult(
            flows=flows,
            duration=duration,
            warmup=warmup,
            mean_queue_bytes=mean_queue,
            mean_queuing_delay=mean_queue / self.link_config.capacity,
            drop_rate=link_stats.drop_rate,
            events_processed=self.loop.events_processed,
        )


def run_dumbbell(
    link: LinkConfig,
    flows: Sequence[FlowSpec],
    duration: float,
    warmup: float = 0.0,
    mss: Optional[int] = None,
    red: Optional["REDConfig"] = None,
    codel: Optional["CoDelConfig"] = None,
    obs: Optional["Telemetry"] = None,
    check: Optional["Checker"] = None,
) -> SimulationResult:
    """Convenience one-shot: build a dumbbell, run it, return the result.

    ``obs`` defaults to the process-wide telemetry bus (usually None,
    i.e. disabled); pass one explicitly to instrument a single run.
    ``check`` likewise defaults to the process-wide invariant checker
    (see :mod:`repro.check`).
    """
    from repro.obs.bus import resolve

    return DumbbellNetwork(
        link,
        flows,
        mss=mss,
        red=red,
        codel=codel,
        obs=resolve(obs),
        check=check,
    ).run(duration, warmup)
