"""Discrete-event simulation core.

A minimal, fast event loop built on :mod:`heapq`.  Events are ``(time,
sequence, callback)`` triples; the sequence number breaks ties so that
events scheduled earlier run earlier, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry


class EventLoop:
    """A deterministic discrete-event scheduler.

    Typical use::

        loop = EventLoop()
        loop.call_at(0.0, start_flow)
        loop.run_until(120.0)

    Args:
        obs: Optional :class:`repro.obs.bus.Telemetry` bus.  When set,
            each ``run_until``/``run_all`` records its processed-event
            count (counter ``sim.events``) and wall-clock time (timer
            ``sim.run``).  The loop always maintains
            :attr:`events_processed` regardless, so runs are auditable
            even with telemetry disabled.
        check: Optional :class:`repro.check.Checker`.  When set, every
            dispatch is audited for clock monotonicity and a bounded
            pending queue (checks ``sim.clock`` / ``sim.queue_bound``).
    """

    def __init__(
        self,
        obs: Optional["Telemetry"] = None,
        check: Optional["Checker"] = None,
    ) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self.obs = obs
        self.check = check
        #: Total events executed by this loop across all run calls.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule event in the past: {when} < {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._counter), callback))

    def call_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.call_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Run events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed.  The clock is
        left at ``end_time`` even if the queue drains early.
        """
        self._running = True
        queue = self._queue
        obs = self.obs
        check = self.check
        wall_start = time.perf_counter() if obs is not None else 0.0
        processed = 0
        try:
            while queue and self._running:
                when, _seq, callback = queue[0]
                if when > end_time:
                    break
                heapq.heappop(queue)
                if check is not None:
                    check.event_loop_tick(when, self._now, len(queue))
                self._now = when
                callback()
                processed += 1
        finally:
            self._running = False
            self.events_processed += processed
            if obs is not None:
                obs.count("sim.events", processed)
                obs.record_time("sim.run", time.perf_counter() - wall_start)
        if self._now < end_time:
            self._now = end_time

    def run_all(self, max_events: int = 10_000_000) -> int:
        """Run until the queue is empty; returns the number of events run.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        self._running = True
        count = 0
        queue = self._queue
        obs = self.obs
        check = self.check
        wall_start = time.perf_counter() if obs is not None else 0.0
        try:
            while queue and self._running:
                when, _seq, callback = heapq.heappop(queue)
                if check is not None:
                    check.event_loop_tick(when, self._now, len(queue))
                self._now = when
                callback()
                count += 1
                if count >= max_events:
                    raise RuntimeError(
                        f"event loop exceeded {max_events} events"
                    )
        finally:
            self._running = False
            self.events_processed += count
            if obs is not None:
                obs.count("sim.events", count)
                obs.record_time("sim.run", time.perf_counter() - wall_start)
        return count

    def stop(self) -> None:
        """Stop a ``run_until``/``run_all`` after the current event."""
        self._running = False

    def pending(self) -> int:
        """Number of events currently queued."""
        return len(self._queue)

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or None if the queue is empty."""
        if not self._queue:
            return None
        return self._queue[0][0]
