"""Active queue management: RED and CoDel.

The paper's discussion (§5 "Taming the Zoo", and the Chien & Sinclair
result it cites — NE efficiency between TCP variants differs between
drop-tail and RED buffers) motivates asking how the CUBIC/BBR game
changes under AQM.  This module provides two disciplines the
packet-level bottleneck can run on top of its drop-tail buffer: classic
RED (tail early-drop on an averaged queue *size*) and CoDel (head drop
on packet *sojourn time*, RFC 8289).  Both expose the same two-hook
interface the :class:`repro.sim.link.Link` calls:
``on_enqueue(queue_bytes)`` and ``on_dequeue(now, sojourn)``.

RED:

* an EWMA of the queue size is maintained on every arrival;
* below ``min_threshold`` packets are always accepted;
* above ``max_threshold`` they are always dropped;
* in between they are dropped with probability ramping to ``max_p``,
  spread out by the standard ``count`` correction so drops are roughly
  uniformly spaced rather than bursty.

(Floyd & Jacobson 1993, with the "gentle" region omitted for clarity.)
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class REDConfig:
    """RED parameters, in bytes.

    Attributes:
        min_threshold: EWMA queue size below which nothing is dropped.
        max_threshold: EWMA queue size above which everything is dropped.
        max_p: Drop probability as the EWMA reaches ``max_threshold``.
        weight: EWMA weight for queue-size averaging (Floyd's w_q).
        seed: RNG seed for the drop lottery (determinism across runs).
    """

    min_threshold: float
    max_threshold: float
    max_p: float = 0.1
    weight: float = 0.002
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.min_threshold < self.max_threshold:
            raise ValueError(
                "need 0 < min_threshold < max_threshold, got "
                f"{self.min_threshold}/{self.max_threshold}"
            )
        if not 0 < self.max_p <= 1:
            raise ValueError(f"max_p must be in (0, 1], got {self.max_p}")
        if not 0 < self.weight <= 1:
            raise ValueError(
                f"weight must be in (0, 1], got {self.weight}"
            )

    @classmethod
    def for_buffer(
        cls, buffer_bytes: float, seed: int = 0
    ) -> "REDConfig":
        """Floyd's rule-of-thumb thresholds for a given physical buffer:
        min at 1/6 of the buffer, max at 1/2 (max = 3 × min)."""
        return cls(
            min_threshold=buffer_bytes / 6.0,
            max_threshold=buffer_bytes / 2.0,
            seed=seed,
        )


class RED:
    """RED drop decision state for one queue."""

    def __init__(self, config: REDConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self.avg = 0.0
        self._count = -1  # Packets since the last early drop.

    def should_drop(self, queue_bytes: float) -> bool:
        """Update the average with the instantaneous queue and decide.

        Called once per packet arrival, *before* enqueueing.
        """
        cfg = self.config
        self.avg = (1.0 - cfg.weight) * self.avg + cfg.weight * queue_bytes
        if self.avg < cfg.min_threshold:
            self._count = -1
            return False
        if self.avg >= cfg.max_threshold:
            self._count = 0
            return True
        self._count += 1
        base_p = (
            cfg.max_p
            * (self.avg - cfg.min_threshold)
            / (cfg.max_threshold - cfg.min_threshold)
        )
        # Floyd's uniformization: p_a = p_b / (1 − count·p_b).
        denominator = 1.0 - self._count * base_p
        drop_p = base_p / denominator if denominator > 0 else 1.0
        if self._rng.random() < drop_p:
            self._count = 0
            return True
        return False

    # -- unified AQM interface used by the Link --------------------------

    def on_enqueue(self, queue_bytes: float) -> bool:
        """RED drops at enqueue time (tail drop with early detection)."""
        return self.should_drop(queue_bytes)

    def on_dequeue(self, now: float, sojourn: float) -> bool:
        """RED never drops at dequeue."""
        return False


@dataclass(frozen=True)
class CoDelConfig:
    """CoDel parameters (RFC 8289 defaults).

    Attributes:
        target: Acceptable standing queue delay (sojourn), seconds.
        interval: Sliding window over which the sojourn must stay above
            target before dropping starts, seconds (≈ a worst-case RTT).
    """

    target: float = 0.005
    interval: float = 0.100

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError(f"target must be positive, got {self.target}")
        if self.interval <= self.target:
            raise ValueError(
                "interval must exceed target, got "
                f"{self.interval} <= {self.target}"
            )


class CoDel:
    """Controlled-Delay AQM (Nichols & Jacobson, RFC 8289, simplified).

    CoDel measures each packet's *sojourn time* through the queue and
    enters a dropping state when the sojourn has exceeded ``target`` for
    a full ``interval``; while dropping, drops are spaced at
    ``interval/√count``, which backs loss-based senders off just enough
    to hold the standing queue near ``target``.  Deployed widely (fq_codel
    is the Linux default qdisc) — the natural "modern AQM" to test the
    paper's "Taming the Zoo" question against.
    """

    def __init__(self, config: Optional[CoDelConfig] = None) -> None:
        self.config = config if config is not None else CoDelConfig()
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0

    def on_enqueue(self, queue_bytes: float) -> bool:
        """CoDel never drops at enqueue (head-drop discipline)."""
        return False

    def on_dequeue(self, now: float, sojourn: float) -> bool:
        """Decide whether the packet now exiting the queue is dropped."""
        cfg = self.config
        ok_to_drop = self._update_first_above(now, sojourn)
        if self._dropping:
            if not ok_to_drop:
                self._dropping = False
            elif now >= self._drop_next:
                self._count += 1
                self._drop_next = now + cfg.interval / math.sqrt(
                    self._count
                )
                return True
            return False
        if ok_to_drop and (
            now - self._drop_next < cfg.interval
            or now - self._first_above_time >= cfg.interval
        ):
            self._dropping = True
            # Resume near the previous drop rate if we dropped recently.
            if now - self._drop_next < cfg.interval:
                self._count = max(self._count - 2, 1)
            else:
                self._count = 1
            self._drop_next = now + cfg.interval / math.sqrt(self._count)
            return True
        return False

    def _update_first_above(self, now: float, sojourn: float) -> bool:
        cfg = self.config
        if sojourn < cfg.target:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + cfg.interval
            return False
        return now >= self._first_above_time
