"""Periodic controller-state tracing for the packet-level simulator.

Attach a :class:`CwndTracer` to a :class:`~repro.sim.network.DumbbellNetwork`
before ``run()`` to sample every sender's cwnd, pacing rate, and (for
BBR-family controllers) state-machine state at a fixed interval.  This is
the tooling equivalent of the kernel's ``ss -i`` polling that testbed
studies rely on, and what lets tests assert things like "the BBR flow
really was cwnd-limited" (§5) or "the CUBIC flows were synchronized"
(§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.sim.network import DumbbellNetwork

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.bus import Telemetry


@dataclass
class TraceSample:
    """One polled snapshot of one flow's controller."""

    time: float
    flow_id: int
    cwnd: float
    in_flight: int
    pacing_rate: Optional[float]
    state: Optional[str]


@dataclass
class CwndTracer:
    """Polls all senders of a dumbbell at a fixed interval.

    Args:
        network: The dumbbell to trace.
        interval: Sampling period in seconds.
        obs: Optional telemetry bus; every poll is mirrored onto the bus
            as a per-flow ``sample`` record (tagged with the CCA name),
            which is how tracer output lands in the unified JSONL trace
            (:mod:`repro.obs.export`).
    """

    network: DumbbellNetwork
    interval: float
    samples: List[TraceSample] = field(default_factory=list)
    obs: Optional["Telemetry"] = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(
                f"interval must be positive, got {self.interval}"
            )
        self.network.loop.call_later(self.interval, self._poll)

    def _poll(self) -> None:
        now = self.network.loop.now
        for sender in self.network.senders:
            cc = sender.cc
            state = getattr(cc, "state", None)
            self.samples.append(
                TraceSample(
                    time=now,
                    flow_id=sender.flow_id,
                    cwnd=cc.cwnd,
                    in_flight=sender.in_flight_bytes,
                    pacing_rate=cc.pacing_rate,
                    state=state,
                )
            )
            if self.obs is not None:
                self.obs.sample(
                    now,
                    sender.flow_id,
                    cc=cc.name,
                    cwnd=cc.cwnd,
                    in_flight=sender.in_flight_bytes,
                    pacing_rate=cc.pacing_rate,
                    state=state,
                )
        self.network.loop.call_later(self.interval, self._poll)

    def for_flow(self, flow_id: int) -> List[TraceSample]:
        """All samples of one flow, in time order."""
        return [s for s in self.samples if s.flow_id == flow_id]

    def series(self, flow_id: int, attribute: str):
        """(times, values) arrays for one flow attribute, e.g. "cwnd"."""
        flow_samples = self.for_flow(flow_id)
        times = [s.time for s in flow_samples]
        values = [getattr(s, attribute) for s in flow_samples]
        return times, values

    def state_durations(self, flow_id: int) -> Dict[str, float]:
        """Approximate time spent per state (BBR-family flows)."""
        durations: Dict[str, float] = {}
        for sample in self.for_flow(flow_id):
            if sample.state is None:
                continue
            durations[sample.state] = (
                durations.get(sample.state, 0.0) + self.interval
            )
        return durations
