"""Packet-level discrete-event network simulator.

This subpackage is the substrate replacing the paper's emulated-link
testbed: a deterministic event loop (:mod:`repro.sim.engine`), a drop-tail
bottleneck link (:mod:`repro.sim.link`), bulk senders/receivers with
Linux-style delivery-rate sampling (:mod:`repro.sim.endpoints`), and a
dumbbell topology builder (:mod:`repro.sim.network`).
"""

from repro.sim.aqm import RED, CoDel, CoDelConfig, REDConfig
from repro.sim.engine import EventLoop
from repro.sim.link import DelayLine, Link, LinkStats
from repro.sim.network import (
    DumbbellNetwork,
    FlowResult,
    FlowSpec,
    SimulationResult,
    run_dumbbell,
)
from repro.sim.packet import Ack, LossEvent, Packet, RateSample
from repro.sim.stats import FlowStats
from repro.sim.trace import CwndTracer, TraceSample

__all__ = [
    "RED",
    "REDConfig",
    "CoDel",
    "CoDelConfig",
    "CwndTracer",
    "TraceSample",
    "EventLoop",
    "DelayLine",
    "Link",
    "LinkStats",
    "DumbbellNetwork",
    "FlowResult",
    "FlowSpec",
    "SimulationResult",
    "run_dumbbell",
    "Ack",
    "LossEvent",
    "Packet",
    "RateSample",
    "FlowStats",
]
