"""Per-flow statistics collection for the packet-level simulator.

Throughput is measured receiver-side (delivered bytes), binned into fixed
intervals so experiments can exclude warm-up transients — mirroring how the
paper measures iperf goodput over 2-minute flows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class FlowStats:
    """Counters and binned delivery record for a single flow."""

    def __init__(self, flow_id: int, bin_width: float = 0.1) -> None:
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        self.flow_id = flow_id
        self.bin_width = bin_width
        self.delivered_bytes = 0
        self.sent_packets = 0
        self.lost_packets = 0
        self.retransmits = 0
        self.ack_count = 0
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self.min_rtt: Optional[float] = None
        self.max_rtt: Optional[float] = None
        self._bins: Dict[int, int] = defaultdict(int)

    def record_delivery(self, now: float, size: int) -> None:
        """Record ``size`` bytes delivered to the receiver at time ``now``."""
        self.delivered_bytes += size
        self._bins[int(now / self.bin_width)] += size

    def record_rtt(self, rtt: float) -> None:
        """Record an RTT sample measured by an ACK."""
        self._rtt_sum += rtt
        self._rtt_count += 1
        if self.min_rtt is None or rtt < self.min_rtt:
            self.min_rtt = rtt
        if self.max_rtt is None or rtt > self.max_rtt:
            self.max_rtt = rtt

    def record_loss(self, packets: int = 1) -> None:
        """Record packets declared lost by the sender.

        Every declared-lost packet must be re-sent to complete the
        transfer, so the loss simultaneously counts as scheduled
        retransmissions (the quantity ``ss -i`` reports as ``retrans``).
        """
        self.lost_packets += packets
        self.retransmits += packets

    @property
    def mean_rtt(self) -> Optional[float]:
        """Mean of all RTT samples, or None if no ACKs were received."""
        if self._rtt_count == 0:
            return None
        return self._rtt_sum / self._rtt_count

    def _edge_bin(self, t: float) -> int:
        """Rounding-safe bin index for a measurement-window edge.

        ``int(t / bin_width)`` truncates, so float error below an exact
        multiple (``0.3 / 0.1 == 2.999...``) pulls the edge one bin
        early and leaks warm-up deliveries into the measured window.
        Snap quotients within relative 1e-9 of an integer to it.
        """
        quotient = t / self.bin_width
        nearest = round(quotient)
        if abs(quotient - nearest) <= 1e-9 * max(1.0, abs(nearest)):
            return int(nearest)
        return int(quotient)

    def throughput(self, start: float, end: float) -> float:
        """Mean delivered rate in bytes/second over ``[start, end)``."""
        if end <= start:
            raise ValueError(f"empty interval [{start}, {end})")
        first = self._edge_bin(start)
        last = self._edge_bin(end)
        total = sum(
            size for idx, size in self._bins.items() if first <= idx < last
        )
        return total / (end - start)

    def throughput_series(self, end: float) -> List[float]:
        """Delivered rate per bin (bytes/second) from time 0 to ``end``."""
        n_bins = self._edge_bin(end)
        return [
            self._bins.get(i, 0) / self.bin_width for i in range(n_bins)
        ]

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets declared lost."""
        if self.sent_packets == 0:
            return 0.0
        return self.lost_packets / self.sent_packets
