"""Sender and receiver endpoints for the packet-level simulator.

The sender is a bulk (always-backlogged) source, like the iperf senders in
the paper's testbed.  It enforces the congestion controller's cwnd, paces
packets when the controller requests it (BBR-family), detects losses from
ACK gaps (the network never reorders, so a gap of more than
``REORDER_THRESHOLD`` packets means a drop), and maintains a retransmission
timeout as a last resort for tail losses.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from repro.cc.base import CongestionControl
from repro.cc.laws.base import smooth_rtt
from repro.sim.engine import EventLoop
from repro.sim.packet import Ack, LossEvent, Packet, RateSample
from repro.sim.stats import FlowStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry

#: Packets of reordering tolerated before a gap is declared a loss
#: (fast-retransmit style dupack threshold).
REORDER_THRESHOLD = 3

#: Minimum retransmission timeout, seconds.
MIN_RTO = 0.2


class Sender:
    """A bulk TCP-like sender driving one congestion controller.

    Args:
        loop: Simulation event loop.
        flow_id: Unique flow identifier.
        cc: The congestion controller instance.
        transmit: Callback that injects a packet into the network.
        stats: Statistics recorder for this flow.
        start_time: Absolute time at which the flow starts sending.
        obs: Optional telemetry bus; loss declarations emit
            ``flow.loss``/``flow.retransmit`` events and RTO firings
            emit ``flow.rto``.
        check: Optional :class:`repro.check.Checker`.  When set, each
            processed ACK runs per-flow bounds checks (in-flight ≥ 0,
            cwnd ≥ floor, legal pacing gain/phase for BBR-family
            controllers; checks ``flow.*`` / ``cc.*``).
    """

    def __init__(
        self,
        loop: EventLoop,
        flow_id: int,
        cc: CongestionControl,
        transmit: Callable[[Packet], None],
        stats: FlowStats,
        start_time: float = 0.0,
        max_bytes: Optional[int] = None,
        obs: Optional["Telemetry"] = None,
        check: Optional["Checker"] = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.loop = loop
        self.flow_id = flow_id
        self.cc = cc
        self.transmit = transmit
        self.stats = stats
        self.mss = cc.mss
        self.max_bytes = max_bytes
        self.obs = obs
        self.check = check

        self._next_seq = 0
        self._in_flight_bytes = 0
        self._outstanding: Dict[int, Packet] = {}
        self._order: Deque[int] = deque()
        self._delivered = 0
        self._delivered_time = 0.0
        self._next_send_time = 0.0
        self._send_timer_pending = False
        self._srtt: Optional[float] = None
        self._last_ack_time = start_time
        self._rto_pending = False
        self._highest_acked = -1
        self._last_ecn_reaction = float("-inf")

        loop.call_at(start_time, self._on_start)

    @property
    def in_flight_bytes(self) -> int:
        """Bytes currently unacknowledged and not declared lost."""
        return self._in_flight_bytes

    def _on_start(self) -> None:
        self._delivered_time = self.loop.now
        self._last_ack_time = self.loop.now
        self._arm_rto()
        self._maybe_send()

    # -- transmission ----------------------------------------------------

    @property
    def done_sending(self) -> bool:
        """True once a finite flow has transmitted its whole transfer."""
        return (
            self.max_bytes is not None
            and self._next_seq * self.mss >= self.max_bytes
        )

    def _maybe_send(self) -> None:
        """Send packets while cwnd (and the pacer) permit."""
        now = self.loop.now
        while (
            not self.done_sending
            and self._in_flight_bytes + self.mss <= self.cc.cwnd
        ):
            rate = self.cc.pacing_rate
            if rate is not None and rate > 0:
                if now < self._next_send_time:
                    self._arm_send_timer(self._next_send_time)
                    return
                gap = self.mss / rate
                base = max(self._next_send_time, now - gap)
                self._next_send_time = base + gap
            self._send_packet(now)

    def _arm_send_timer(self, when: float) -> None:
        if self._send_timer_pending:
            return
        self._send_timer_pending = True

        def fire() -> None:
            self._send_timer_pending = False
            self._maybe_send()

        self.loop.call_at(when, fire)

    def _send_packet(self, now: float) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            seq=self._next_seq,
            size=self.mss,
            sent_time=now,
            delivered_at_send=self._delivered,
            delivered_time_at_send=self._delivered_time,
            app_limited=False,
            is_retransmit=False,
        )
        self._next_seq += 1
        self._outstanding[packet.seq] = packet
        self._order.append(packet.seq)
        self._in_flight_bytes += packet.size
        self.stats.sent_packets += 1
        self.cc.on_sent(now, self._in_flight_bytes)
        self.transmit(packet)

    # -- acknowledgements ------------------------------------------------

    def on_ack(self, ack: Ack) -> None:
        """Process an ACK delivered by the reverse path."""
        now = self.loop.now
        packet = self._outstanding.pop(ack.seq, None)
        if packet is None:
            return  # ACK for a packet already declared lost.
        self._last_ack_time = now
        self._in_flight_bytes -= packet.size
        self._delivered += packet.size
        self._delivered_time = now
        if ack.seq > self._highest_acked:
            self._highest_acked = ack.seq

        rtt = now - packet.sent_time
        self._srtt = smooth_rtt(self._srtt, rtt)
        self.stats.record_rtt(rtt)
        self.stats.ack_count += 1

        delivery_rate = 0.0
        interval = now - packet.delivered_time_at_send
        if interval > 0:
            delivery_rate = (
                self._delivered - packet.delivered_at_send
            ) / interval

        self._detect_losses(ack.seq)
        if ack.ecn:
            self._on_ecn_echo(now)

        sample = RateSample(
            rtt=rtt,
            delivery_rate=delivery_rate,
            delivered=self._delivered,
            delivered_at_send=packet.delivered_at_send,
            acked_bytes=packet.size,
            in_flight=self._in_flight_bytes,
            is_app_limited=packet.app_limited,
            now=now,
        )
        self.cc.on_ack(sample)
        self.cc.clamp_cwnd()
        check = self.check
        if check is not None:
            check.flow_update(
                now, self.flow_id, self.cc, self._in_flight_bytes
            )
        self._maybe_send()

    def _on_ecn_echo(self, now: float) -> None:
        """React to an ECN-Echo: a congestion event without byte loss.

        Classic ECN semantics (RFC 3168): the sender responds as it
        would to a loss, at most once per RTT — subsequent CE marks
        within the same window are new echoes of the same congestion
        event.  Nothing is retransmitted and no loss is recorded in the
        flow stats; the controller sees a :class:`LossEvent` with zero
        lost bytes/packets (rate-based controllers that only react to
        actual byte loss, like BBR, ignore it by design).
        """
        window = self._srtt if self._srtt is not None else MIN_RTO
        if now - self._last_ecn_reaction < window:
            return
        self._last_ecn_reaction = now
        if self.obs is not None:
            self.obs.event(
                "flow.ecn_echo",
                time=now,
                flow_id=self.flow_id,
                cc=self.cc.name,
            )
            self.obs.count("flow.ecn_reactions")
        self.cc.on_loss(
            LossEvent(
                lost_bytes=0,
                in_flight=self._in_flight_bytes,
                now=now,
                lost_packets=0,
            )
        )
        self.cc.clamp_cwnd()

    def _detect_losses(self, acked_seq: int) -> None:
        """Declare outstanding packets below the ACKed seq lost (gap-based)."""
        lost_bytes = 0
        lost_packets = 0
        while self._order:
            seq = self._order[0]
            if seq not in self._outstanding:
                self._order.popleft()
                continue
            if seq >= acked_seq - (REORDER_THRESHOLD - 1):
                break
            packet = self._outstanding.pop(seq)
            self._order.popleft()
            self._in_flight_bytes -= packet.size
            lost_bytes += packet.size
            lost_packets += 1
        if lost_packets:
            self.stats.record_loss(lost_packets)
            if self.obs is not None:
                self.obs.event(
                    "flow.loss",
                    time=self.loop.now,
                    flow_id=self.flow_id,
                    cc=self.cc.name,
                    lost_packets=lost_packets,
                    lost_bytes=lost_bytes,
                )
                self.obs.event(
                    "flow.retransmit",
                    time=self.loop.now,
                    flow_id=self.flow_id,
                    cc=self.cc.name,
                    packets=lost_packets,
                )
                self.obs.count("flow.lost_packets", lost_packets)
            event = LossEvent(
                lost_bytes=lost_bytes,
                in_flight=self._in_flight_bytes,
                now=self.loop.now,
                lost_packets=lost_packets,
            )
            self.cc.on_loss(event)
            self.cc.clamp_cwnd()

    # -- retransmission timeout ------------------------------------------

    def _rto_interval(self) -> float:
        if self._srtt is None:
            return 1.0
        return max(MIN_RTO, 4.0 * self._srtt)

    def _arm_rto(self) -> None:
        if self._rto_pending:
            return
        self._rto_pending = True
        self.loop.call_later(self._rto_interval(), self._on_rto_timer)

    def _on_rto_timer(self) -> None:
        self._rto_pending = False
        if self.done_sending and not self._outstanding:
            return  # Finite flow complete: stop rearming the timer.
        now = self.loop.now
        idle = now - self._last_ack_time
        if self._outstanding and idle >= self._rto_interval():
            # Everything in flight is presumed lost (tail loss).
            lost_bytes = self._in_flight_bytes
            lost_packets = len(self._outstanding)
            self._outstanding.clear()
            self._order.clear()
            self._in_flight_bytes = 0
            self.stats.record_loss(lost_packets)
            if self.obs is not None:
                self.obs.event(
                    "flow.rto",
                    time=now,
                    flow_id=self.flow_id,
                    cc=self.cc.name,
                    lost_packets=lost_packets,
                    lost_bytes=lost_bytes,
                )
                self.obs.count("flow.rto_firings")
                self.obs.count("flow.lost_packets", lost_packets)
            self.cc.on_loss(
                LossEvent(
                    lost_bytes=lost_bytes,
                    in_flight=0,
                    now=now,
                    lost_packets=lost_packets,
                )
            )
            self.cc.clamp_cwnd()
            self._last_ack_time = now
            self._maybe_send()
        self._arm_rto()


class Receiver:
    """Per-flow receiver: records deliveries and echoes ACKs."""

    def __init__(
        self,
        loop: EventLoop,
        stats: FlowStats,
        send_ack: Callable[[Ack], None],
    ) -> None:
        self.loop = loop
        self.stats = stats
        self.send_ack = send_ack

    def on_packet(self, packet: Packet) -> None:
        """Handle a data packet exiting the network."""
        now = self.loop.now
        self.stats.record_delivery(now, packet.size)
        ack = Ack(
            flow_id=packet.flow_id,
            seq=packet.seq,
            size=packet.size,
            data_sent_time=packet.sent_time,
            delivered_at_send=packet.delivered_at_send,
            delivered_time_at_send=packet.delivered_time_at_send,
            app_limited=packet.app_limited,
            recv_time=now,
            ecn=packet.ecn,
        )
        self.send_ack(ack)
