"""Packet and ACK records for the packet-level simulator.

The sender implements delivery-rate estimation in the style used by Linux
TCP (and required by BBR): every data packet snapshots the connection's
``delivered`` counter when it is sent, and the matching ACK turns that
snapshot into a :class:`~repro.cc.signals.RateSample`.

:class:`RateSample` and :class:`LossEvent` are defined in
:mod:`repro.cc.signals` (they are the controller-facing interface) and
re-exported here for convenience.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.signals import LossEvent, RateSample

__all__ = ["Packet", "Ack", "RateSample", "LossEvent"]


@dataclass(slots=True)
class Packet:
    """A data segment traversing the dumbbell network.

    ``delivered_at_send``/``delivered_time_at_send`` snapshot the sender's
    delivery counter so the ACK can compute a delivery-rate sample, exactly
    like Linux's ``tcp_rate_skb_sent``.  ``ecn`` is the CE codepoint: an
    ECN-enabled AQM sets it at the bottleneck instead of dropping.
    """

    flow_id: int
    seq: int
    size: int
    sent_time: float
    delivered_at_send: int
    delivered_time_at_send: float
    app_limited: bool
    is_retransmit: bool
    ecn: bool = False


@dataclass(slots=True)
class Ack:
    """Acknowledgement for a single data packet (QUIC-style per-packet ACK).

    The receiver echoes the data packet's bookkeeping fields so the sender
    can reconstruct RTT and delivery-rate samples without per-connection
    state at the receiver.  ``ecn`` echoes the data packet's CE mark
    (ECN-Echo).
    """

    flow_id: int
    seq: int
    size: int
    data_sent_time: float
    delivered_at_send: int
    delivered_time_at_send: float
    app_limited: bool
    recv_time: float
    ecn: bool = False
