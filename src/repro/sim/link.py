"""Bottleneck link with a FIFO drop-tail queue.

This is the network element at the center of every experiment in the paper
(Figure 2): a fixed-capacity link fed by a drop-tail buffer, followed by a
fixed propagation delay.  The link serializes packets one at a time at
``capacity`` bytes/second; packets arriving while it is busy wait in the
queue, and packets arriving when the queue is full are dropped (and the
drop reported to the :class:`~repro.sim.stats.LinkStats` recorder).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.sim.engine import EventLoop
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry


class LinkStats:
    """Aggregate counters and a queue-occupancy time integral for one link."""

    def __init__(self) -> None:
        self.forwarded_packets = 0
        self.forwarded_bytes = 0
        # Totals: tail drops + AQM early drops.
        self.dropped_packets = 0
        self.dropped_bytes = 0
        # AQM early drops alone (tail drops = total − aqm).
        self.aqm_dropped_packets = 0
        self.aqm_dropped_bytes = 0
        # ECN CE marks (marked packets are forwarded, not dropped).
        self.marked_packets = 0
        self.marked_bytes = 0
        # Capacity changes applied by a time-varying trace.
        self.capacity_changes = 0
        self._occupancy_integral = 0.0
        self._last_change_time = 0.0
        self._last_occupancy = 0

    def record_occupancy(self, now: float, occupancy_bytes: int) -> None:
        """Accumulate the time-weighted queue occupancy integral."""
        self._occupancy_integral += self._last_occupancy * (
            now - self._last_change_time
        )
        self._last_change_time = now
        self._last_occupancy = occupancy_bytes

    def mean_occupancy(self, now: float) -> float:
        """Time-averaged queue occupancy in bytes over [0, now]."""
        if now <= 0:
            return 0.0
        total = self._occupancy_integral + self._last_occupancy * (
            now - self._last_change_time
        )
        return total / now

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        offered = self.forwarded_packets + self.dropped_packets
        if offered == 0:
            return 0.0
        return self.dropped_packets / offered


class Link:
    """A drop-tail bottleneck: FIFO buffer + serializer + propagation delay.

    Args:
        loop: The event loop driving the simulation.
        capacity: Serialization rate in bytes per second.
        delay: One-way propagation delay in seconds, applied after
            serialization.
        buffer_bytes: Drop-tail buffer capacity in bytes.  The packet
            currently being serialized does not count against the buffer,
            matching how token-bucket emulators (and the paper's model)
            account for buffer space.
        deliver: Callback invoked with each packet when it exits the link.
        on_drop: Optional callback invoked with each dropped packet.
        aqm: Optional :class:`repro.sim.aqm.RED` instance; when present,
            arriving packets may be dropped early even though the
            physical buffer still has room (the drop-tail limit is still
            enforced on top).
        ecn: When True, AQM decisions *mark* packets (set the CE bit)
            instead of dropping them; the drop-tail limit still drops.
            Requires ``aqm``.
        obs: Optional telemetry bus.  When set, each drop emits a
            ``link.drop`` event and bumps the ``link.dropped_packets`` /
            ``link.dropped_bytes`` counters, and the queue depth is
            sampled into the ``link.queue_bytes`` gauge on every
            enqueue.
        check: Optional :class:`repro.check.Checker`.  When set, every
            enqueue and service completion runs a byte-conservation
            audit: offered bytes must equal forwarded + dropped +
            queued + in-service, the queue must respect the buffer
            bound, and the occupancy-integral gauge must track the
            queue exactly (checks ``link.*``).
    """

    def __init__(
        self,
        loop: EventLoop,
        capacity: float,
        delay: float,
        buffer_bytes: float,
        deliver: Callable[[Packet], None],
        on_drop: Optional[Callable[[Packet], None]] = None,
        aqm: Optional[object] = None,
        ecn: bool = False,
        obs: Optional["Telemetry"] = None,
        check: Optional["Checker"] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        if buffer_bytes <= 0:
            raise ValueError(
                f"buffer_bytes must be positive, got {buffer_bytes}"
            )
        if ecn and aqm is None:
            raise ValueError("ecn marking requires an aqm discipline")
        self.loop = loop
        self.capacity = capacity
        self.ecn = ecn
        self.delay = delay
        self.buffer_bytes = buffer_bytes
        self.deliver = deliver
        self.on_drop = on_drop
        self.aqm = aqm
        self.obs = obs
        self.check = check
        self.stats = LinkStats()
        self._queue: Deque[tuple] = deque()  # (packet, enqueue_time)
        self._queued_bytes = 0
        self._busy = False
        # Conservation-audit tallies, maintained only when a checker is
        # attached (the audit needs every byte offered since t=0).
        self._offered_bytes = 0
        self._in_service_bytes = 0

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the buffer (excludes in-service)."""
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        """Packets currently waiting in the buffer."""
        return len(self._queue)

    def queuing_delay(self) -> float:
        """Delay a packet arriving now would experience before service."""
        return self._queued_bytes / self.capacity

    def set_capacity(self, capacity: float) -> None:
        """Change the serialization rate (time-varying capacity traces).

        Applies to the *next* packet entering service; the packet
        currently serializing finishes at the rate it started with.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats.capacity_changes += 1
        if self.obs is not None:
            self.obs.count("link.capacity_changes")
            self.obs.event(
                "link.capacity_change",
                time=self.loop.now,
                capacity=capacity,
            )
        if self.check is not None:
            self.check.capacity_change(self.loop.now, capacity)

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the link; returns False if it was dropped."""
        check = self.check
        if check is not None:
            self._offered_bytes += packet.size
        if self.aqm is not None and self.aqm.on_enqueue(
            self._queued_bytes
        ):
            if self.ecn:
                self._record_mark(packet)
            else:
                self._record_drop(packet, aqm=True)
                if check is not None:
                    self._audit(check)
                return False
        if self._busy:
            if self._queued_bytes + packet.size > self.buffer_bytes:
                self._record_drop(packet)
                if check is not None:
                    self._audit(check)
                return False
            self._queue.append((packet, self.loop.now))
            self._queued_bytes += packet.size
            self.stats.record_occupancy(self.loop.now, self._queued_bytes)
        else:
            self._start_service(packet)
        if self.obs is not None:
            self.obs.gauge("link.queue_bytes", self._queued_bytes)
        if check is not None:
            self._audit(check)
        return True

    def _audit(self, check: "Checker") -> None:
        """Byte-conservation audit (sanitizer-enabled runs only)."""
        check.link_audit(
            self.loop.now,
            offered=self._offered_bytes,
            forwarded=self.stats.forwarded_bytes,
            dropped=self.stats.dropped_bytes,
            queued=self._queued_bytes,
            in_service=self._in_service_bytes,
            buffer_bytes=self.buffer_bytes,
            gauge=self.stats._last_occupancy,
            aqm_dropped=self.stats.aqm_dropped_bytes,
            marked=self.stats.marked_bytes,
        )

    def _record_drop(self, packet: Packet, aqm: bool = False) -> None:
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += packet.size
        if aqm:
            self.stats.aqm_dropped_packets += 1
            self.stats.aqm_dropped_bytes += packet.size
        if self.obs is not None:
            self.obs.count("link.dropped_packets")
            self.obs.count("link.dropped_bytes", packet.size)
            if aqm:
                self.obs.count("link.aqm_drops")
            self.obs.event(
                "link.drop",
                time=self.loop.now,
                flow_id=packet.flow_id,
                seq=packet.seq,
                queued_bytes=self._queued_bytes,
                aqm=aqm,
            )
        if self.on_drop is not None:
            self.on_drop(packet)

    def _record_mark(self, packet: Packet) -> None:
        """Set the CE bit instead of dropping (ECN-enabled AQM)."""
        packet.ecn = True
        self.stats.marked_packets += 1
        self.stats.marked_bytes += packet.size
        if self.obs is not None:
            self.obs.count("link.ecn_marks")
            self.obs.event(
                "link.mark",
                time=self.loop.now,
                flow_id=packet.flow_id,
                seq=packet.seq,
                queued_bytes=self._queued_bytes,
            )

    def _start_service(self, packet: Packet) -> None:
        self._busy = True
        if self.check is not None:
            self._in_service_bytes = packet.size
        service_time = packet.size / self.capacity
        self.loop.call_later(
            service_time, lambda p=packet: self._finish_service(p)
        )

    def _finish_service(self, packet: Packet) -> None:
        check = self.check
        if check is not None:
            self._in_service_bytes = 0
        self.stats.forwarded_packets += 1
        self.stats.forwarded_bytes += packet.size
        # Propagation: deliver after the one-way delay.
        self.loop.call_later(self.delay, lambda p=packet: self.deliver(p))
        now = self.loop.now
        while self._queue:
            nxt, enqueued_at = self._queue.popleft()
            self._queued_bytes -= nxt.size
            self.stats.record_occupancy(now, self._queued_bytes)
            if self.aqm is not None and self.aqm.on_dequeue(
                now, now - enqueued_at
            ):
                if self.ecn:
                    # Head mark (CoDel-style CE): forward it marked.
                    self._record_mark(nxt)
                else:
                    # Head drop (CoDel-style): discard, try the next one.
                    self._record_drop(nxt, aqm=True)
                    continue
            self._start_service(nxt)
            if check is not None:
                self._audit(check)
            return
        self._busy = False
        if check is not None:
            self._audit(check)


class DelayLine:
    """A pure delay element (used for the uncongested reverse ACK path)."""

    def __init__(
        self,
        loop: EventLoop,
        delay: float,
        deliver: Callable[[object], None],
    ) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.loop = loop
        self.delay = delay
        self.deliver = deliver

    def send(self, item: object) -> None:
        """Deliver ``item`` after the configured delay."""
        self.loop.call_later(self.delay, lambda it=item: self.deliver(it))
