"""Parallel scenario executor with content-addressed caching.

:class:`Engine` is the one place independent scenario points are turned
into results.  Sweeps declare their point lists (:class:`ScenarioPoint`)
and submit them through :meth:`Engine.run_points`; the engine answers
each point from the result cache when it can and fans the rest out over
a ``ProcessPoolExecutor`` when ``jobs > 1``.  Cache lookups always
happen in the parent process, so hits never pay worker startup; workers
run with telemetry disabled and return picklable
:class:`~repro.experiments.runner.ScenarioResult` objects.

Defaults preserve the historical behavior exactly: ``jobs=1`` executes
inline (telemetry threading included) and ``cache=None`` disables
persistence.  Results are returned in submission order regardless of
completion order, and a batch containing duplicate points simulates
each distinct point once.

A process-wide *default engine* mirrors the telemetry bus convention
(:mod:`repro.obs.bus`): call chains that do not thread an engine
explicitly (the figure generators, the NE throughput functions) pick up
the installed default via :func:`resolve`, and fall back to a shared
sequential, cache-less engine.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exec.cache import ResultCache
from repro.exec.fingerprint import ScenarioPoint, fingerprint_payload
from repro.util.config import LinkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.experiments imports repro.exec
    # (for the figure sweeps), so the reverse edge must stay deferred.
    from repro.experiments.runner import ScenarioResult

__all__ = [
    "Engine",
    "ProgressFn",
    "get_default",
    "set_default",
    "use",
    "resolve",
]

#: Progress callback: ``(points done, points submitted, cache hits)``,
#: all cumulative over the engine's lifetime.
ProgressFn = Callable[[int, int, int], None]


def _execute_point(point: ScenarioPoint) -> Tuple["ScenarioResult", float]:
    """Worker entry: run one scenario point, telemetry disabled.

    Returns ``(result, wall_seconds)``; the wall time is measured inside
    the worker so queueing delay is not attributed to the simulation.
    """
    from repro.obs import bus

    # Fork-start workers inherit the parent's default telemetry bus;
    # recording into that copy would be silently discarded, so run dark.
    bus.set_default(None)
    start = perf_counter()
    result = _run_point(point, obs=None)
    return result, perf_counter() - start


def _run_point(point: ScenarioPoint, obs: Any) -> "ScenarioResult":
    from repro.check import resolve as resolve_check
    from repro.experiments.runner import run_mix

    check = resolve_check(None)
    if check is not None:
        # Violations raised inside this point should carry its cache
        # identity (run_mix adds the scenario parameters itself).
        check.set_context(fingerprint=point.fingerprint())
    return run_mix(
        point.link,
        list(point.mix),
        duration=point.duration,
        warmup=point.warmup,
        backend=point.backend,
        trials=point.trials,
        seed=point.seed,
        rtts=point.rtts_dict(),
        loss_mode=point.loss_mode,
        obs=obs,
    )


class Engine:
    """Executes scenario points with caching and optional parallelism.

    Args:
        jobs: Maximum worker processes for a batch; 1 (the default)
            executes inline in the calling process.
        cache: A :class:`ResultCache`, or None to disable persistence.
        obs: Telemetry bus for the ``exec.*`` counters/timers; None
            resolves the process default at each call, so an engine
            created before ``obs.use(...)`` still records.
        progress: Optional callback invoked after every resolved point
            with ``(done, submitted, cache_hits)`` cumulative counts.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        obs: Any = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self._obs = obs
        self.submitted = 0
        self.done = 0
        self.hits = 0
        self.misses = 0
        self.simulated = 0
        self.cache_errors = 0
        self.worker_failures = 0

    # -- telemetry ---------------------------------------------------------

    def _resolve_obs(self) -> Any:
        from repro.obs.bus import resolve as resolve_obs

        return resolve_obs(self._obs)

    @property
    def stats(self) -> Dict[str, int]:
        """Cumulative execution counters, independent of telemetry."""
        return {
            "submitted": self.submitted,
            "done": self.done,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "simulated": self.simulated,
            "cache_errors": self.cache_errors,
            "worker_failures": self.worker_failures,
        }

    def _notify(self) -> None:
        if self.progress is not None:
            self.progress(self.done, self.submitted, self.hits)

    def _cache_lookup(self, fingerprint: str, obs: Any) -> Optional[Dict]:
        """Parent-side cache probe with hit/miss/corruption accounting."""
        if self.cache is None:
            return None
        path = self.cache.path_for(fingerprint)
        existed = path.exists()
        payload = self.cache.get(fingerprint)
        if payload is None and existed:
            self.cache_errors += 1
            if obs is not None:
                obs.count("exec.cache.errors")
        return payload

    def _account(self, hit: bool, obs: Any) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self.done += 1
        if obs is not None:
            obs.count("exec.cache.hits" if hit else "exec.cache.misses")

    def _record_executed(
        self,
        fingerprint: str,
        result: "ScenarioResult",
        elapsed: float,
        obs: Any,
    ) -> None:
        self.simulated += 1
        if obs is not None:
            obs.count("exec.points.simulated")
            obs.record_time("exec.point.wall", elapsed)
        if self.cache is not None:
            self.cache.put(fingerprint, result.to_dict())
            if obs is not None:
                obs.count("exec.cache.stores")

    # -- execution ---------------------------------------------------------

    def iter_points(
        self, points: Sequence[ScenarioPoint]
    ) -> Iterator[Tuple[int, "ScenarioResult", float]]:
        """Resolve points, yielding ``(index, result, wall_seconds)`` as
        each one completes.

        ``index`` is the point's position in the submitted sequence;
        ``wall_seconds`` is the simulation time (0.0 for cache hits).
        Cache hits are yielded first, in submission order, during the
        initial scan; simulated points follow in completion order.
        Duplicate points share one execution and yield once per index.

        This is the checkpointing surface: callers that persist partial
        progress (the campaign journal) consume this iterator so a
        killed process loses at most the in-flight points — everything
        already yielded has also been written to the result cache.
        """
        points = list(points)
        obs = self._resolve_obs()
        self.submitted += len(points)
        if obs is not None:
            obs.count("exec.points.submitted", len(points))

        from repro.experiments.runner import ScenarioResult

        # fingerprint -> indices still waiting on it (duplicates share
        # one execution).
        pending: Dict[str, List[int]] = {}
        pending_points: Dict[str, ScenarioPoint] = {}
        for i, point in enumerate(points):
            fingerprint = point.fingerprint()
            if fingerprint in pending:
                pending[fingerprint].append(i)
                self._account(hit=False, obs=obs)
                continue
            payload = self._cache_lookup(fingerprint, obs)
            if payload is not None:
                result = ScenarioResult.from_dict(payload)
                self._account(hit=True, obs=obs)
                self._notify()
                yield i, result, 0.0
            else:
                pending[fingerprint] = [i]
                pending_points[fingerprint] = point
                self._account(hit=False, obs=obs)

        def finish(
            fingerprint: str, result: "ScenarioResult", elapsed: float
        ) -> None:
            self._record_executed(fingerprint, result, elapsed, obs)
            self._notify()

        if self.jobs > 1 and len(pending_points) > 1:
            yield from self._iter_parallel(
                pending, pending_points, finish, obs
            )
        else:
            for fingerprint, point in pending_points.items():
                start = perf_counter()
                # Inline execution keeps the caller's telemetry wiring.
                result = _run_point(point, obs=obs)
                elapsed = perf_counter() - start
                finish(fingerprint, result, elapsed)
                for idx in pending[fingerprint]:
                    yield idx, result, elapsed

    def _iter_parallel(
        self,
        pending: Dict[str, List[int]],
        pending_points: Dict[str, ScenarioPoint],
        finish: Callable[[str, "ScenarioResult", float], None],
        obs: Any,
    ) -> Iterator[Tuple[int, "ScenarioResult", float]]:
        """Fan distinct points out over workers, yielding completions.

        A dead worker poisons the whole pool (``BrokenProcessPool``) and
        would historically abort the batch, discarding every
        completed-but-unprocessed result.  Instead the lost points are
        retried inline exactly once and ``exec.worker_failures`` is
        counted; a second failure (now in-process) propagates.
        """
        workers = min(self.jobs, len(pending_points))
        remaining = dict(pending_points)
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_point, point): fingerprint
                    for fingerprint, point in pending_points.items()
                }
                outstanding = set(futures)
                while outstanding:
                    ready, outstanding = wait(
                        outstanding, return_when=FIRST_COMPLETED
                    )
                    for future in ready:
                        result, elapsed = future.result()
                        fingerprint = futures[future]
                        finish(fingerprint, result, elapsed)
                        del remaining[fingerprint]
                        for idx in pending[fingerprint]:
                            yield idx, result, elapsed
        except BrokenProcessPool:
            self.worker_failures += 1
            if obs is not None:
                obs.count("exec.worker_failures")
            for fingerprint, point in list(remaining.items()):
                start = perf_counter()
                result = _run_point(point, obs=obs)
                elapsed = perf_counter() - start
                finish(fingerprint, result, elapsed)
                del remaining[fingerprint]
                for idx in pending[fingerprint]:
                    yield idx, result, elapsed

    def run_points(
        self, points: Sequence[ScenarioPoint]
    ) -> List["ScenarioResult"]:
        """Resolve every point, in submission order.

        Cache hits are answered immediately; remaining distinct points
        run inline (``jobs == 1``) or across worker processes.  All
        points of a batch are resolved before this returns.
        """
        points = list(points)
        results: List[Optional["ScenarioResult"]] = [None] * len(points)
        for index, result, _elapsed in self.iter_points(points):
            results[index] = result
        return results  # type: ignore[return-value]  # all filled above

    def run_mix(
        self,
        link: LinkConfig,
        mix: Sequence[Tuple[str, int]],
        duration: float = 60.0,
        warmup: Optional[float] = None,
        backend: str = "fluid",
        trials: int = 1,
        seed: int = 0,
        rtts: Optional[Dict[str, float]] = None,
        loss_mode: str = "proportional",
    ) -> "ScenarioResult":
        """Cached, engine-routed equivalent of
        :func:`repro.experiments.runner.run_mix`."""
        point = ScenarioPoint(
            link=link,
            mix=tuple((cc, count) for cc, count in mix),
            duration=duration,
            warmup=warmup,
            backend=backend,
            trials=trials,
            seed=seed,
            rtts=tuple(rtts.items()) if rtts else None,
            loss_mode=loss_mode,
        )
        return self.run_points([point])[0]

    def cached_payload(
        self,
        kind: str,
        params: Dict[str, Any],
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Memoize an arbitrary JSON-serializable task through the cache.

        Used for scenario families that are not plain ``run_mix`` points
        (e.g. the multi-RTT group-game payoffs), so they share the same
        store, invalidation, and counters.
        """
        obs = self._resolve_obs()
        fingerprint = fingerprint_payload(kind, params)
        self.submitted += 1
        if obs is not None:
            obs.count("exec.points.submitted")
        payload = self._cache_lookup(fingerprint, obs)
        if payload is not None:
            self._account(hit=True, obs=obs)
            self._notify()
            return payload
        self._account(hit=False, obs=obs)
        start = perf_counter()
        payload = compute()
        elapsed = perf_counter() - start
        self.simulated += 1
        if obs is not None:
            obs.count("exec.points.simulated")
            obs.record_time("exec.point.wall", elapsed)
        if self.cache is not None:
            self.cache.put(fingerprint, payload)
            if obs is not None:
                obs.count("exec.cache.stores")
        self._notify()
        return payload


# -- default-engine plumbing (mirrors repro.obs.bus) -------------------------

_default: Optional[Engine] = None
_fallback: Optional[Engine] = None


def get_default() -> Optional[Engine]:
    """The installed default engine, or None when none is installed."""
    return _default


def set_default(engine: Optional[Engine]) -> None:
    """Install ``engine`` as the process-wide default (None uninstalls)."""
    global _default
    _default = engine


@contextmanager
def use(engine: Optional[Engine]) -> Iterator[Optional[Engine]]:
    """Temporarily install ``engine`` as the default."""
    previous = get_default()
    set_default(engine)
    try:
        yield engine
    finally:
        set_default(previous)


def resolve(engine: Optional[Engine]) -> Engine:
    """An explicit engine wins; else the default; else a shared
    sequential, cache-less fallback (historical behavior)."""
    if engine is not None:
        return engine
    if _default is not None:
        return _default
    global _fallback
    if _fallback is None:
        _fallback = Engine()
    return _fallback
