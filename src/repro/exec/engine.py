"""Parallel scenario executor with content-addressed caching.

:class:`Engine` is the one place independent scenario points are turned
into results.  Sweeps declare their point lists (:class:`ScenarioPoint`)
and submit them through :meth:`Engine.run_points`; the engine answers
each point from the result cache when it can and fans the rest out over
a persistent ``ProcessPoolExecutor`` when ``jobs > 1``.  Cache lookups
always happen in the parent process, so hits never pay worker startup;
workers run with telemetry disabled and return picklable
:class:`~repro.experiments.runner.ScenarioResult` objects.

The worker pool is created lazily on the first parallel batch and kept
alive for the engine's lifetime (``close()`` shuts it down), so a long
campaign of small batches — e.g. the one-point-at-a-time evaluations of
an NE bisection — pays pool startup once, not per batch, and single
pending points still fan out when ``jobs > 1``.  Accounting and
submission are lock-guarded, so multiple threads (the campaign layer's
concurrent adaptive units) may drive one engine and share its workers.

Observability: ``exec.*`` telemetry counters as before, plus wall-clock
spans (:mod:`repro.obs.trace`) around cache lookups, point execution,
and cache stores.  Workers inherit tracing through ``REPRO_TRACE``
(and per-point profiling through ``REPRO_PROFILE_POINTS``), record into
a process-local tracer, and ship finished spans — plus a pid/RSS
heartbeat — back with each result; the parent merges the spans so the
exported trace shows one lane per worker pid.  ``done``/``hits``
advance exactly once per submitted point, *when the point resolves*
(cache hits during the scan, executed points as results land, inline
``BrokenProcessPool`` retries when the retry finishes).

Defaults preserve the historical behavior exactly: ``jobs=1`` executes
inline (telemetry threading included) and ``cache=None`` disables
persistence.  Results are returned in submission order regardless of
completion order, and a batch containing duplicate points simulates
each distinct point once.

A process-wide *default engine* mirrors the telemetry bus convention
(:mod:`repro.obs.bus`): call chains that do not thread an engine
explicitly (the figure generators, the NE throughput functions) pick up
the installed default via :func:`resolve`, and fall back to a shared
sequential, cache-less engine.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager, nullcontext
from threading import Lock
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exec.cache import ResultCache
from repro.exec.fingerprint import ScenarioPoint, fingerprint_payload
from repro.util.config import LinkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.experiments imports repro.exec
    # (for the figure sweeps), so the reverse edge must stay deferred.
    from repro.experiments.runner import ScenarioResult

__all__ = [
    "Engine",
    "HeartbeatFn",
    "ProgressFn",
    "get_default",
    "set_default",
    "use",
    "resolve",
]

#: Progress callback: ``(points done, points submitted, cache hits)``,
#: all cumulative over the engine's lifetime.
ProgressFn = Callable[[int, int, int], None]

#: Worker-health callback: ``(pid, rss_kb)`` after each resolved point.
HeartbeatFn = Callable[[int, int], None]

#: Env var: profile each executed point and keep the N slowest.
PROFILE_ENV = "REPRO_PROFILE_POINTS"

#: Hotspot rows kept per profiled point / reported per engine.
PROFILE_ROWS = 15
HOTSPOT_ROWS = 20

#: Points whose estimated cost (flow count x duration x trials, in
#: flow-seconds) falls below this are *cheap*: per-point dispatch
#: overhead (a future, a pickle round-trip, a worker wakeup) is
#: comparable to the simulation itself, so cheap points are grouped
#: into per-worker chunks instead of submitted one per future.
CHUNK_COST_THRESHOLD = 20_000.0

#: Upper bound on points per chunk (memory guard for the vectorized
#: batch path).
CHUNK_MAX_POINTS = 32


def _point_cost(point: ScenarioPoint) -> float:
    """Estimated cost of a point in flow-seconds (x trials)."""
    flows = sum(count for _cc, count in point.mix)
    return point.duration * point.trials * max(1, flows)


def _chunkable(point: ScenarioPoint) -> bool:
    return _point_cost(point) < CHUNK_COST_THRESHOLD


def _span(tracer: Any, name: str, **args: Any):
    """A tracer span, or a no-op context when tracing is disabled."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, cat="exec", **args)


def profile_points_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> int:
    """How many slowest points ``REPRO_PROFILE_POINTS`` asks to keep."""
    env = os.environ if environ is None else environ
    value = (env.get(PROFILE_ENV) or "").strip()
    try:
        return max(0, int(value)) if value else 0
    except ValueError:
        return 0


def _profile_rows(prof: Any, limit: int = PROFILE_ROWS) -> List[Dict]:
    """Reduce a cProfile run to its top rows by cumulative time."""
    rows: List[Dict] = []
    for entry in prof.getstats():
        code = entry.code
        if isinstance(code, str):
            name = code
        else:
            name = (
                f"{os.path.basename(code.co_filename)}:"
                f"{code.co_firstlineno}({code.co_name})"
            )
        rows.append(
            {
                "func": name,
                "calls": entry.callcount,
                "tot_s": entry.inlinetime,
                "cum_s": entry.totaltime,
            }
        )
    rows.sort(key=lambda row: -row["cum_s"])
    return rows[:limit]


def _run_profiled(
    fn: Callable[[], "ScenarioResult"],
) -> Tuple["ScenarioResult", List[Dict]]:
    import cProfile

    prof = cProfile.Profile()
    result = prof.runcall(fn)
    return result, _profile_rows(prof)


def _execute_point(
    point: ScenarioPoint,
) -> Tuple["ScenarioResult", float, Dict]:
    """Worker entry: run one scenario point, telemetry disabled.

    Returns ``(result, wall_seconds, extras)``; the wall time is
    measured inside the worker so queueing delay is not attributed to
    the simulation.  ``extras`` carries the worker's pid, max RSS, its
    drained trace spans (when ``REPRO_TRACE`` is inherited), and the
    point's profile hotspots (when ``REPRO_PROFILE_POINTS`` is set).
    """
    from repro.obs import bus, trace
    from repro.obs.progress import rss_self_kb

    # Fork-start workers inherit the parent's default telemetry bus;
    # recording into that copy would be silently discarded, so run dark.
    # Tracing is different: spans recorded here are shipped back with
    # the result, so a fresh local tracer is installed when the parent
    # exported REPRO_TRACE.
    bus.set_default(None)
    tracer = trace.Tracer() if trace.enabled_from_env() else None
    trace.set_default(tracer)

    profile = profile_points_from_env() > 0
    rows: List[Dict] = []
    start = perf_counter()
    with _span(tracer, "point", fingerprint=point.fingerprint()[:12]):
        with _span(tracer, "simulate", backend=point.backend):
            if profile:
                result, rows = _run_profiled(
                    lambda: _run_point(point, obs=None)
                )
            else:
                result = _run_point(point, obs=None)
    elapsed = perf_counter() - start
    extras = {
        "pid": os.getpid(),
        "rss_kb": rss_self_kb(),
        "spans": tracer.drain() if tracer is not None else [],
        "profile": rows,
    }
    return result, elapsed, extras


def _mix_request(point: ScenarioPoint) -> Dict[str, Any]:
    """A point's :func:`repro.experiments.runner.run_mix` kwargs."""
    return {
        "link": point.link,
        "mix": list(point.mix),
        "duration": point.duration,
        "warmup": point.warmup,
        "backend": point.backend,
        "trials": point.trials,
        "seed": point.seed,
        "rtts": point.rtts_dict(),
        "loss_mode": point.loss_mode,
    }


def _run_point(point: ScenarioPoint, obs: Any) -> "ScenarioResult":
    from repro.check import resolve as resolve_check
    from repro.experiments.runner import run_mix

    check = resolve_check(None)
    if check is not None:
        # Violations raised inside this point should carry its cache
        # identity (run_mix adds the scenario parameters itself).
        check.set_context(fingerprint=point.fingerprint())
    return run_mix(obs=obs, **_mix_request(point))


def _run_chunk(
    points: Sequence[ScenarioPoint], obs: Any, tracer: Any
) -> List[Tuple["ScenarioResult", float]]:
    """Execute a chunk of points, pooling the fluid-vec members.

    All ``backend="fluid-vec"`` points of the chunk run as *one*
    vectorized :func:`repro.experiments.runner.run_mix_batch` call
    (bit-identical to per-point execution — the substrate is
    batch-invariant); their shared wall time is attributed evenly.
    Other backends execute sequentially with the usual per-point spans.
    Returns ``(result, wall_seconds)`` aligned with ``points``.
    """
    from repro.experiments.runner import fluid_substrate, run_mix_batch

    outcomes: List[Optional[Tuple["ScenarioResult", float]]]
    outcomes = [None] * len(points)
    vec = [
        i
        for i, p in enumerate(points)
        if fluid_substrate(p.backend) == "fluid-vec"
    ]
    if vec:
        start = perf_counter()
        with _span(tracer, "point_batch", n=len(vec), backend="fluid-vec"):
            batch = run_mix_batch(
                [_mix_request(points[i]) for i in vec], obs=obs
            )
        share = (perf_counter() - start) / len(vec)
        for i, result in zip(vec, batch):
            outcomes[i] = (result, share)
    for i, point in enumerate(points):
        if outcomes[i] is not None:
            continue
        start = perf_counter()
        with _span(tracer, "point", fingerprint=point.fingerprint()[:12]):
            with _span(tracer, "simulate", backend=point.backend):
                result = _run_point(point, obs=obs)
        outcomes[i] = (result, perf_counter() - start)
    return outcomes  # type: ignore[return-value]  # all filled above


def _execute_chunk(
    points: Sequence[ScenarioPoint],
) -> List[Tuple["ScenarioResult", float, Dict]]:
    """Worker entry: run a chunk of cheap points in one process.

    The chunked counterpart of :func:`_execute_point`: one future (and
    one pickle round-trip) covers the whole chunk.  Trace spans are
    drained once and ride with the last entry; every entry carries the
    worker's pid/RSS heartbeat.  Chunks are never profiled — the
    engine falls back to per-point dispatch when profiling is on.
    """
    from repro.obs import bus, trace
    from repro.obs.progress import rss_self_kb

    bus.set_default(None)
    tracer = trace.Tracer() if trace.enabled_from_env() else None
    trace.set_default(tracer)

    outcomes = _run_chunk(points, obs=None, tracer=tracer)
    rss_kb = rss_self_kb()
    executed = []
    for i, (result, elapsed) in enumerate(outcomes):
        spans: List = []
        if tracer is not None and i == len(outcomes) - 1:
            spans = tracer.drain()
        extras = {
            "pid": os.getpid(),
            "rss_kb": rss_kb,
            "spans": spans,
            "profile": [],
        }
        executed.append((result, elapsed, extras))
    return executed


class Engine:
    """Executes scenario points with caching and optional parallelism.

    Args:
        jobs: Maximum worker processes; 1 (the default) executes inline
            in the calling process.
        cache: A :class:`ResultCache`, or None to disable persistence.
        obs: Telemetry bus for the ``exec.*`` counters/timers; None
            resolves the process default at each call, so an engine
            created before ``obs.use(...)`` still records.
        progress: Optional callback invoked after every resolved point
            with ``(done, submitted, cache_hits)`` cumulative counts.
        tracer: A :class:`repro.obs.trace.Tracer` for wall-clock spans;
            None resolves the process default (which honors
            ``REPRO_TRACE``) at each call.
        heartbeat: Optional callback ``(pid, rss_kb)`` after every
            executed point — the worker-health feed for
            :class:`repro.obs.progress.ProgressTracker`.
        profile_slowest: Keep cProfile hotspots for this many slowest
            executed points (0 disables).  The CLI also exports
            ``REPRO_PROFILE_POINTS`` so pool workers profile too.
        chunking: Group cheap points (estimated cost below
            :data:`CHUNK_COST_THRESHOLD`) into per-worker chunks, and
            pool each chunk's ``fluid-vec`` points into one vectorized
            call.  Results are identical either way; chunking only
            removes dispatch overhead.  Automatically suspended while
            profiling (profiles are per-point by construction).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        obs: Any = None,
        progress: Optional[ProgressFn] = None,
        tracer: Any = None,
        heartbeat: Optional[HeartbeatFn] = None,
        profile_slowest: int = 0,
        chunking: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if profile_slowest < 0:
            raise ValueError(
                f"profile_slowest must be >= 0, got {profile_slowest}"
            )
        self.jobs = jobs
        self.chunking = chunking
        self.cache = cache
        self.progress = progress
        self.heartbeat = heartbeat
        self.profile_slowest = profile_slowest
        self._obs = obs
        self._tracer = tracer
        self._lock = Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self.submitted = 0
        self.done = 0
        self.hits = 0
        self.misses = 0
        self.simulated = 0
        self.cache_errors = 0
        self.worker_failures = 0
        self.close_errors = 0
        #: ``[{"wall_s", "fingerprint", "rows"}]`` for the slowest
        #: profiled points, descending by wall time.
        self.profiled: List[Dict] = []

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except (OSError, RuntimeError):
            # Interpreter/pool teardown races: the executor's machinery
            # may already be gone when the GC finalizes us.  Recoverable
            # (the pool is dying anyway) — count it and move on.
            self.close_errors += 1
            try:
                obs = self._resolve_obs()
                if obs is not None:
                    obs.count("exec.close_errors")
            except Exception:
                pass  # Telemetry must never mask finalization.
        except Exception as exc:
            raise RuntimeError(
                f"Engine.close() failed during finalization: {exc}"
            ) from exc

    def _pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            return self._executor

    def _discard_pool(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- telemetry ---------------------------------------------------------

    def _resolve_obs(self) -> Any:
        from repro.obs.bus import resolve as resolve_obs

        return resolve_obs(self._obs)

    def _resolve_tracer(self) -> Any:
        from repro.obs.trace import resolve as resolve_tracer

        return resolve_tracer(self._tracer)

    @property
    def stats(self) -> Dict[str, int]:
        """Cumulative execution counters, independent of telemetry."""
        return {
            "submitted": self.submitted,
            "done": self.done,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "simulated": self.simulated,
            "cache_errors": self.cache_errors,
            "worker_failures": self.worker_failures,
            "close_errors": self.close_errors,
        }

    def _notify(self) -> None:
        if self.progress is not None:
            self.progress(self.done, self.submitted, self.hits)

    def _cache_lookup(self, fingerprint: str, obs: Any) -> Optional[Dict]:
        """Parent-side cache probe with hit/miss/corruption accounting."""
        if self.cache is None:
            return None
        path = self.cache.path_for(fingerprint)
        existed = path.exists()
        payload = self.cache.get(fingerprint)
        if payload is None and existed:
            with self._lock:
                self.cache_errors += 1
            if obs is not None:
                obs.count("exec.cache.errors")
        return payload

    def _account_hit(self, obs: Any) -> None:
        """A point answered from cache: done and hits advance together."""
        with self._lock:
            self.hits += 1
            self.done += 1
        if obs is not None:
            obs.count("exec.cache.hits")
        self._notify()

    def _account_miss(self, obs: Any) -> None:
        """A point that must execute; ``done`` advances on completion."""
        with self._lock:
            self.misses += 1
        if obs is not None:
            obs.count("exec.cache.misses")

    def _complete_index(self) -> None:
        """One submitted index resolved by execution (once, ever)."""
        with self._lock:
            self.done += 1
        self._notify()

    def _record_executed(
        self,
        fingerprint: str,
        result: "ScenarioResult",
        elapsed: float,
        obs: Any,
        tracer: Any,
    ) -> None:
        with self._lock:
            self.simulated += 1
        if obs is not None:
            obs.count("exec.points.simulated")
            obs.record_time("exec.point.wall", elapsed)
        if self.cache is not None:
            with _span(tracer, "cache_store"):
                self.cache.put(fingerprint, result.to_dict())
            if obs is not None:
                obs.count("exec.cache.stores")

    def _keep_profile(
        self, fingerprint: str, elapsed: float, rows: List[Dict]
    ) -> None:
        """Retain the ``profile_slowest`` slowest points' hotspots."""
        if not rows or self.profile_slowest <= 0:
            return
        with self._lock:
            self.profiled.append(
                {
                    "wall_s": elapsed,
                    "fingerprint": fingerprint,
                    "rows": rows,
                }
            )
            self.profiled.sort(key=lambda entry: -entry["wall_s"])
            del self.profiled[self.profile_slowest:]

    def hotspots(self, limit: int = HOTSPOT_ROWS) -> List[Dict]:
        """Aggregate hotspot rows across the kept slowest points."""
        merged: Dict[str, Dict] = {}
        with self._lock:
            kept = [entry["rows"] for entry in self.profiled]
        for rows in kept:
            for row in rows:
                agg = merged.get(row["func"])
                if agg is None:
                    merged[row["func"]] = dict(row)
                else:
                    agg["calls"] += row["calls"]
                    agg["tot_s"] += row["tot_s"]
                    agg["cum_s"] += row["cum_s"]
        ranked = sorted(merged.values(), key=lambda row: -row["cum_s"])
        return ranked[:limit]

    def _absorb_extras(
        self, extras: Dict, elapsed: float, fingerprint: str, tracer: Any
    ) -> None:
        """Merge one worker result's spans/heartbeat/profile parent-side."""
        if tracer is not None and extras.get("spans"):
            tracer.merge(extras["spans"])
        if self.heartbeat is not None:
            self.heartbeat(extras.get("pid", 0), extras.get("rss_kb", 0))
        self._keep_profile(fingerprint, elapsed, extras.get("profile", []))

    # -- execution ---------------------------------------------------------

    def iter_points(
        self, points: Sequence[ScenarioPoint]
    ) -> Iterator[Tuple[int, "ScenarioResult", float]]:
        """Resolve points, yielding ``(index, result, wall_seconds)`` as
        each one completes.

        ``index`` is the point's position in the submitted sequence;
        ``wall_seconds`` is the simulation time (0.0 for cache hits).
        Cache hits are yielded first, in submission order, during the
        initial scan; simulated points follow in completion order.
        Duplicate points share one execution and yield once per index.

        This is the checkpointing surface: callers that persist partial
        progress (the campaign journal) consume this iterator so a
        killed process loses at most the in-flight points — everything
        already yielded has also been written to the result cache.
        """
        points = list(points)
        obs = self._resolve_obs()
        tracer = self._resolve_tracer()
        with self._lock:
            self.submitted += len(points)
        if obs is not None:
            obs.count("exec.points.submitted", len(points))

        from repro.experiments.runner import ScenarioResult

        # fingerprint -> indices still waiting on it (duplicates share
        # one execution).
        pending: Dict[str, List[int]] = {}
        pending_points: Dict[str, ScenarioPoint] = {}
        for i, point in enumerate(points):
            fingerprint = point.fingerprint()
            if fingerprint in pending:
                pending[fingerprint].append(i)
                self._account_miss(obs)
                continue
            with _span(tracer, "cache_lookup"):
                payload = self._cache_lookup(fingerprint, obs)
            if payload is not None:
                result = ScenarioResult.from_dict(payload)
                self._account_hit(obs)
                yield i, result, 0.0
            else:
                pending[fingerprint] = [i]
                pending_points[fingerprint] = point
                self._account_miss(obs)

        def finish(
            fingerprint: str, result: "ScenarioResult", elapsed: float
        ) -> None:
            self._record_executed(fingerprint, result, elapsed, obs, tracer)

        if self.jobs > 1 and pending_points:
            yield from self._iter_parallel(
                pending, pending_points, finish, obs, tracer
            )
        else:
            yield from self._iter_inline(
                pending, pending_points, finish, obs, tracer
            )

    def _run_inline(
        self, point: ScenarioPoint, obs: Any, tracer: Any
    ) -> Tuple["ScenarioResult", float]:
        """Execute one point in this process, spans/profile included."""
        start = perf_counter()
        with _span(tracer, "point", fingerprint=point.fingerprint()[:12]):
            with _span(tracer, "simulate", backend=point.backend):
                # Inline execution keeps the caller's telemetry wiring.
                if self.profile_slowest > 0:
                    result, rows = _run_profiled(
                        lambda: _run_point(point, obs=obs)
                    )
                else:
                    result, rows = _run_point(point, obs=obs), []
        elapsed = perf_counter() - start
        self._keep_profile(point.fingerprint(), elapsed, rows)
        if self.heartbeat is not None:
            from repro.obs.progress import rss_self_kb

            self.heartbeat(os.getpid(), rss_self_kb())
        return result, elapsed

    def _chunking_active(self) -> bool:
        """Chunk cheap points?  Suspended while profiling: profiles
        are attributed per point, and chunks are never profiled."""
        return (
            self.chunking
            and self.profile_slowest == 0
            and profile_points_from_env() == 0
        )

    def _iter_inline(
        self,
        pending: Dict[str, List[int]],
        pending_points: Dict[str, ScenarioPoint],
        finish: Callable[[str, "ScenarioResult", float], None],
        obs: Any,
        tracer: Any,
    ) -> Iterator[Tuple[int, "ScenarioResult", float]]:
        # Inline, only vectorizable points gain from chunking (other
        # backends would execute the same sequential loop either way);
        # pool them into batched calls and run the rest as before.
        pooled: List[str] = []
        if self._chunking_active():
            from repro.experiments.runner import fluid_substrate

            pooled = [
                fingerprint
                for fingerprint, point in pending_points.items()
                if fluid_substrate(point.backend) == "fluid-vec"
                and _chunkable(point)
            ]
        if len(pooled) < 2:
            pooled = []
        for lo in range(0, len(pooled), CHUNK_MAX_POINTS):
            unit = pooled[lo:lo + CHUNK_MAX_POINTS]
            outcomes = _run_chunk(
                [pending_points[fp] for fp in unit], obs, tracer
            )
            if self.heartbeat is not None:
                from repro.obs.progress import rss_self_kb

                self.heartbeat(os.getpid(), rss_self_kb())
            for fingerprint, (result, elapsed) in zip(unit, outcomes):
                finish(fingerprint, result, elapsed)
                for idx in pending[fingerprint]:
                    self._complete_index()
                    yield idx, result, elapsed
        pooled_set = set(pooled)
        for fingerprint, point in pending_points.items():
            if fingerprint in pooled_set:
                continue
            result, elapsed = self._run_inline(point, obs, tracer)
            finish(fingerprint, result, elapsed)
            for idx in pending[fingerprint]:
                self._complete_index()
                yield idx, result, elapsed

    def _dispatch_units(
        self, pending_points: Dict[str, ScenarioPoint]
    ) -> List[List[str]]:
        """Group fingerprints into submission units for the pool.

        Expensive points (and everything, when chunking is off) are
        solo units.  Cheap points are split into ``jobs`` roughly equal
        chunks — one per worker — capped at :data:`CHUNK_MAX_POINTS`.
        """
        if not self._chunking_active():
            return [[fp] for fp in pending_points]
        cheap = [
            fp for fp, point in pending_points.items() if _chunkable(point)
        ]
        cheap_set = set(cheap)
        units = [[fp] for fp in pending_points if fp not in cheap_set]
        if len(cheap) < 2:
            units.extend([fp] for fp in cheap)
            return units
        size = min(
            CHUNK_MAX_POINTS, -(-len(cheap) // self.jobs)  # ceil div
        )
        units.extend(
            cheap[lo:lo + size] for lo in range(0, len(cheap), size)
        )
        return units

    def _iter_parallel(
        self,
        pending: Dict[str, List[int]],
        pending_points: Dict[str, ScenarioPoint],
        finish: Callable[[str, "ScenarioResult", float], None],
        obs: Any,
        tracer: Any,
    ) -> Iterator[Tuple[int, "ScenarioResult", float]]:
        """Fan distinct points out over workers, yielding completions.

        Cheap points are grouped into per-worker chunks (one future,
        one pickle round-trip for the lot) when chunking is active;
        expensive points still get a future each.

        A dead worker poisons the whole pool (``BrokenProcessPool``) and
        would historically abort the batch, discarding every
        completed-but-unprocessed result.  Instead the pool is discarded
        (the next batch builds a fresh one), the lost points are retried
        inline exactly once — advancing ``done`` only when the retry
        lands, never twice — and ``exec.worker_failures`` is counted; a
        second failure (now in-process) propagates.
        """
        remaining = dict(pending_points)
        try:
            pool = self._pool()
            futures = {}
            for unit in self._dispatch_units(pending_points):
                if len(unit) == 1:
                    future = pool.submit(
                        _execute_point, pending_points[unit[0]]
                    )
                else:
                    future = pool.submit(
                        _execute_chunk,
                        [pending_points[fp] for fp in unit],
                    )
                futures[future] = unit
            outstanding = set(futures)
            while outstanding:
                ready, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in ready:
                    unit = futures.pop(future)
                    # Dropping the future releases its pickled result;
                    # keeping every completed future alive for the
                    # whole batch made peak memory scale with batch
                    # size instead of with in-flight work.
                    executed = future.result()
                    if len(unit) == 1:
                        executed = [executed]
                    for fingerprint, (result, elapsed, extras) in zip(
                        unit, executed
                    ):
                        self._absorb_extras(
                            extras, elapsed, fingerprint, tracer
                        )
                        finish(fingerprint, result, elapsed)
                        del remaining[fingerprint]
                        for idx in pending[fingerprint]:
                            self._complete_index()
                            yield idx, result, elapsed
        except BrokenProcessPool:
            self._discard_pool()
            with self._lock:
                self.worker_failures += 1
            if obs is not None:
                obs.count("exec.worker_failures")
            for fingerprint, point in list(remaining.items()):
                result, elapsed = self._run_inline(point, obs, tracer)
                finish(fingerprint, result, elapsed)
                del remaining[fingerprint]
                for idx in pending[fingerprint]:
                    self._complete_index()
                    yield idx, result, elapsed

    def run_points(
        self, points: Sequence[ScenarioPoint]
    ) -> List["ScenarioResult"]:
        """Resolve every point, in submission order.

        Cache hits are answered immediately; remaining distinct points
        run inline (``jobs == 1``) or across worker processes.  All
        points of a batch are resolved before this returns.
        """
        points = list(points)
        results: List[Optional["ScenarioResult"]] = [None] * len(points)
        for index, result, _elapsed in self.iter_points(points):
            results[index] = result
        return results  # type: ignore[return-value]  # all filled above

    def run_mix(
        self,
        link: LinkConfig,
        mix: Sequence[Tuple[str, int]],
        duration: float = 60.0,
        warmup: Optional[float] = None,
        backend: str = "fluid",
        trials: int = 1,
        seed: int = 0,
        rtts: Optional[Dict[str, float]] = None,
        loss_mode: str = "proportional",
    ) -> "ScenarioResult":
        """Cached, engine-routed equivalent of
        :func:`repro.experiments.runner.run_mix`."""
        point = ScenarioPoint(
            link=link,
            mix=tuple((cc, count) for cc, count in mix),
            duration=duration,
            warmup=warmup,
            backend=backend,
            trials=trials,
            seed=seed,
            rtts=tuple(rtts.items()) if rtts else None,
            loss_mode=loss_mode,
        )
        return self.run_points([point])[0]

    def cached_payload(
        self,
        kind: str,
        params: Dict[str, Any],
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Memoize an arbitrary JSON-serializable task through the cache.

        Used for scenario families that are not plain ``run_mix`` points
        (e.g. the multi-RTT group-game payoffs), so they share the same
        store, invalidation, and counters.
        """
        obs = self._resolve_obs()
        tracer = self._resolve_tracer()
        fingerprint = fingerprint_payload(kind, params)
        with self._lock:
            self.submitted += 1
        if obs is not None:
            obs.count("exec.points.submitted")
        with _span(tracer, "cache_lookup"):
            payload = self._cache_lookup(fingerprint, obs)
        if payload is not None:
            self._account_hit(obs)
            return payload
        self._account_miss(obs)
        start = perf_counter()
        with _span(tracer, "point", kind=kind):
            payload = compute()
        elapsed = perf_counter() - start
        with self._lock:
            self.simulated += 1
        if obs is not None:
            obs.count("exec.points.simulated")
            obs.record_time("exec.point.wall", elapsed)
        if self.cache is not None:
            with _span(tracer, "cache_store"):
                self.cache.put(fingerprint, payload)
            if obs is not None:
                obs.count("exec.cache.stores")
        self._complete_index()
        return payload


# -- default-engine plumbing (mirrors repro.obs.bus) -------------------------

_default: Optional[Engine] = None
_fallback: Optional[Engine] = None


def get_default() -> Optional[Engine]:
    """The installed default engine, or None when none is installed."""
    return _default


def set_default(engine: Optional[Engine]) -> None:
    """Install ``engine`` as the process-wide default (None uninstalls)."""
    global _default
    _default = engine


@contextmanager
def use(engine: Optional[Engine]) -> Iterator[Optional[Engine]]:
    """Temporarily install ``engine`` as the default."""
    previous = get_default()
    set_default(engine)
    try:
        yield engine
    finally:
        set_default(previous)


def resolve(engine: Optional[Engine]) -> Engine:
    """An explicit engine wins; else the default; else a shared
    sequential, cache-less fallback (historical behavior)."""
    if engine is not None:
        return engine
    if _default is not None:
        return _default
    global _fallback
    if _fallback is None:
        _fallback = Engine()
    return _fallback
