"""Canonical scenario fingerprints for the execution engine.

A *fingerprint* is a stable content hash of everything that determines a
scenario's numeric outcome: the link, the expanded flow mix, durations,
backend, trials, seed, per-CCA RTT overrides, the fluid loss mode, the
cache schema, and the package version.  Two :class:`ScenarioPoint`
instances that would produce byte-identical simulator inputs hash to the
same fingerprint even when they were *spelled* differently (mixed-case
CCA names, zero-count mix entries, ``warmup=None`` vs. the resolved
``duration / 6`` default, RTT dicts in different insertion orders).

Fingerprints key the on-disk result cache (:mod:`repro.exec.cache`);
bumping :data:`CACHE_SCHEMA` or the package version changes every
fingerprint, so stale cache entries self-invalidate by simply never
being looked up again.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro import __version__
from repro.scenario import BACKENDS, expand_mix
from repro.util.config import LinkConfig

__all__ = [
    "CACHE_SCHEMA",
    "ScenarioPoint",
    "fingerprint_payload",
    "link_params",
]

#: Cache payload schema version.  Bump whenever the fingerprinted inputs
#: or the cached payload layout change incompatibly; old entries then
#: miss (different fingerprint) instead of being misread.
CACHE_SCHEMA = 4  # v4: spec-derived link identity (AQM / capacity trace).

#: Package version folded into every fingerprint so results cached by an
#: older simulator never masquerade as current ones.  Module-level (not
#: inlined) so tests can exercise version-bump invalidation.
REPRO_VERSION = __version__


def link_params(link: LinkConfig) -> Dict[str, Any]:
    """The JSON-serializable identity of a bottleneck configuration.

    Derived from the spec's own canonical form
    (:meth:`repro.scenario.BottleneckSpec.to_dict`) so a field added to
    the schema can never be silently dropped from fingerprints.
    """
    return link.to_dict()


def fingerprint_payload(kind: str, params: Dict[str, Any]) -> str:
    """Hash an arbitrary task descriptor into a cache fingerprint.

    ``kind`` namespaces descriptor families (``"run_mix"``,
    ``"group_payoff"``, ...) so two families can never collide even if
    their parameter dicts coincide.  The hash covers a canonical JSON
    encoding (sorted keys, no whitespace) plus the schema and package
    versions.
    """
    envelope = {
        "kind": kind,
        "schema": CACHE_SCHEMA,
        "version": REPRO_VERSION,
        "params": params,
    }
    encoded = json.dumps(
        envelope, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ScenarioPoint:
    """One independent ``run_mix`` invocation, in canonical form.

    The constructor normalizes its inputs so that logically identical
    points compare (and hash) equal: CCA names are lowercased, zero-count
    mix entries dropped, ``warmup`` resolved to its ``duration / 6``
    default, and RTT overrides sorted.  Mix *order* is preserved — flow
    order determines per-flow seeding in the fluid substrate, so it is
    part of the scenario's identity.
    """

    link: LinkConfig
    mix: Tuple[Tuple[str, int], ...]
    duration: float = 60.0
    warmup: Optional[float] = None
    backend: str = "fluid"
    trials: int = 1
    seed: int = 0
    rtts: Optional[Tuple[Tuple[str, float], ...]] = None
    loss_mode: str = "proportional"

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend}"
            )
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if self.duration <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration}"
            )
        mix = tuple(
            (cc.lower(), int(count))
            for cc, count in self.mix
            if count > 0
        )
        if not mix:
            raise ValueError("mix must contain at least one non-zero entry")
        object.__setattr__(self, "mix", mix)
        if self.warmup is None:
            object.__setattr__(self, "warmup", self.duration / 6.0)
        if not 0 <= self.warmup < self.duration:
            raise ValueError(
                f"warmup must lie in [0, duration), got warmup="
                f"{self.warmup} with duration={self.duration}"
            )
        if self.rtts is not None:
            items = (
                self.rtts.items()
                if isinstance(self.rtts, dict)
                else self.rtts
            )
            object.__setattr__(
                self,
                "rtts",
                tuple(sorted((cc.lower(), float(r)) for cc, r in items)),
            )

    def rtts_dict(self) -> Optional[Dict[str, float]]:
        """RTT overrides in the mapping form ``run_mix`` consumes."""
        return dict(self.rtts) if self.rtts is not None else None

    def params(self) -> Dict[str, Any]:
        """The task descriptor hashed by :meth:`fingerprint`."""
        from repro.experiments.runner import expand_mix

        return {
            "link": link_params(self.link),
            # The expanded per-flow (cc, rtt) list is exactly what the
            # substrates consume, so it is the canonical mix identity.
            "flows": [
                [cc, rtt] for cc, rtt in expand_mix(self.mix, self.rtts_dict())
            ],
            "mix": [[cc, count] for cc, count in self.mix],
            "duration": self.duration,
            "warmup": self.warmup,
            "backend": self.backend,
            "trials": self.trials,
            "seed": self.seed,
            "loss_mode": self.loss_mode,
        }

    def fingerprint(self) -> str:
        """The content-address of this scenario's result."""
        return fingerprint_payload("run_mix", self.params())
