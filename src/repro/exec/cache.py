"""Content-addressed on-disk result cache.

Results live as JSON files keyed by scenario fingerprint, sharded by the
first two hex digits to keep directories small::

    <root>/ab/abcdef....json

Each file carries a schema version, the package version that produced
it, its own fingerprint (so a file renamed or copied to the wrong key is
rejected), and the payload.  Writes are atomic (temp file + ``os.replace``)
so a killed run never leaves a half-written entry, and the canonical
JSON encoding (sorted keys) makes re-writing the same result
byte-identical.  Corrupt or mismatched files are treated as misses and
logged — never raised.

The default root is ``~/.cache/repro-bbr`` (or ``$XDG_CACHE_HOME/repro-bbr``),
overridable with the ``REPRO_CACHE_DIR`` environment variable or an
explicit ``--cache-dir``.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exec.fingerprint import CACHE_SCHEMA, REPRO_VERSION

__all__ = ["ResultCache", "default_cache_root"]

logger = logging.getLogger("repro.exec.cache")


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory (persists the rename itself).

    Some platforms/filesystems refuse to open or fsync directories;
    durability of the *entry contents* does not depend on this, so any
    OSError is swallowed.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def default_cache_root() -> Path:
    """The cache directory used when none is given explicitly."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-bbr"


class ResultCache:
    """A content-addressed store of scenario results.

    Args:
        root: Cache directory; ``None`` uses :func:`default_cache_root`.
            Created lazily on first write.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def path_for(self, fingerprint: str) -> Path:
        """Where the entry for ``fingerprint`` lives (existing or not)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The cached payload for ``fingerprint``, or None on any miss.

        Missing files, unreadable files, malformed JSON, schema
        mismatches, and fingerprint mismatches all return None; the
        non-trivial failures are logged at WARNING so silent corruption
        is still observable.
        """
        path = self.path_for(fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            logger.warning("cache read failed for %s: %s", path, exc)
            return None
        try:
            entry = json.loads(raw)
            if entry["schema"] != CACHE_SCHEMA:
                logger.warning(
                    "cache entry %s has schema %r (want %r); ignoring",
                    path,
                    entry["schema"],
                    CACHE_SCHEMA,
                )
                return None
            if entry["fingerprint"] != fingerprint:
                logger.warning(
                    "cache entry %s does not match its key; ignoring", path
                )
                return None
            payload = entry["payload"]
        except (ValueError, KeyError, TypeError) as exc:
            logger.warning("corrupt cache entry %s: %s", path, exc)
            return None
        if not isinstance(payload, dict):
            logger.warning("corrupt cache entry %s: non-dict payload", path)
            return None
        return payload

    def put(self, fingerprint: str, payload: Dict[str, Any]) -> Path:
        """Atomically and durably store ``payload`` under ``fingerprint``.

        Returns the entry path.  The encoding is canonical (sorted keys),
        so storing an identical payload twice produces byte-identical
        files.  The temp file is fsync'd before the rename (and the
        shard directory after it, best-effort), so a crash straddling
        ``put`` can never leave a truncated entry at the final path.
        """
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "version": REPRO_VERSION,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        encoded = json.dumps(
            entry, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)
        return path

    def stats(self) -> Dict[str, Any]:
        """Entry count, total bytes, schema for ``repro-bbr cache info``."""
        entries = 0
        total_bytes = 0
        if self.root.exists():
            for path in self.root.glob("??/*.json"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue  # Entry vanished mid-walk (concurrent clear).
                entries += 1
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "schema": CACHE_SCHEMA,
        }

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed.

        Only sharded ``*.json`` entries are touched, so a mistakenly
        configured root never loses unrelated files.  Emptied shard
        directories are removed; the root itself is left in place.
        """
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("??/*.json"):
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        for shard in self.root.glob("??"):
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # Not empty (foreign files): leave it.
        return removed

    def __contains__(self, fingerprint: str) -> bool:
        return self.path_for(fingerprint).exists()

    def __len__(self) -> int:
        """Number of entries on disk (walks the shard directories)."""
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("??/*.json"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"
