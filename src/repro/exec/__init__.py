"""repro.exec — the shared scenario-execution layer.

Every sweep in the experiment harness reduces to resolving independent
*scenario points* (one ``run_mix`` invocation each).  This package is
the one place that happens:

* :mod:`repro.exec.fingerprint` — canonical, stable content hashes of
  scenario descriptors (:class:`ScenarioPoint`);
* :mod:`repro.exec.cache` — a content-addressed on-disk result store
  with atomic writes and schema/version self-invalidation
  (:class:`ResultCache`);
* :mod:`repro.exec.engine` — :class:`Engine`, which answers points from
  the cache and fans misses out over worker processes (``jobs > 1``),
  with ``exec.*`` telemetry counters and per-point wall timers.

Defaults preserve historical behavior: no cache, sequential execution.
The CLI wires ``--jobs/--cache-dir/--no-cache`` into an engine and
installs it as the process default (:func:`use`), which the figure
generators and NE throughput functions pick up via :func:`resolve`.
"""

from repro.exec.cache import ResultCache, default_cache_root
from repro.exec.engine import (
    Engine,
    get_default,
    resolve,
    set_default,
    use,
)
from repro.exec.fingerprint import (
    CACHE_SCHEMA,
    ScenarioPoint,
    fingerprint_payload,
    link_params,
)

__all__ = [
    "CACHE_SCHEMA",
    "Engine",
    "ResultCache",
    "ScenarioPoint",
    "default_cache_root",
    "fingerprint_payload",
    "get_default",
    "link_params",
    "resolve",
    "set_default",
    "use",
]
