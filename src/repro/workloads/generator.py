"""Workload generation: realistic flow populations for the simulators.

§5 of the paper flags "more diverse workloads" — short flows, chunky
video, churn — as the regime its steady-state model does not cover.
This module builds those populations so the repository can probe that
regime (see ``examples/mixed_workloads.py`` and
``benchmarks/test_ext_workloads.py``):

* long-lived bulk flows (the paper's baseline),
* Poisson-arriving short flows with heavy-tailed sizes (web-like),
* periodic on/off flows (chunked video-like).

Generators emit :class:`WorkloadFlow` records that convert to either
simulator's spec type.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.fluidsim.core import FluidSpec
from repro.sim.network import FlowSpec


@dataclass(frozen=True)
class WorkloadFlow:
    """One flow of a generated workload (simulator-agnostic)."""

    cc: str
    start_time: float
    rtt: Optional[float] = None
    stop_time: Optional[float] = None
    size_bytes: Optional[float] = None

    def to_fluid_spec(self) -> FluidSpec:
        """Convert to a fluid-simulator spec."""
        return FluidSpec(
            cc=self.cc,
            rtt=self.rtt,
            start_time=self.start_time,
            stop_time=self.stop_time,
            size_bytes=self.size_bytes,
        )

    def to_flow_spec(self) -> FlowSpec:
        """Convert to a packet-simulator spec (stop_time unsupported
        there; finite flows use max_bytes)."""
        return FlowSpec(
            cc=self.cc,
            rtt=self.rtt,
            start_time=self.start_time,
            max_bytes=(
                int(self.size_bytes) if self.size_bytes is not None else None
            ),
        )


def long_lived(
    cc: str, count: int, rtt: Optional[float] = None, start: float = 0.0
) -> List[WorkloadFlow]:
    """``count`` bulk flows of one CCA, all starting at ``start``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [
        WorkloadFlow(cc=cc, start_time=start, rtt=rtt)
        for _ in range(count)
    ]


def poisson_short_flows(
    cc: str,
    arrival_rate: float,
    duration: float,
    mean_size: float,
    rng: random.Random,
    rtt: Optional[float] = None,
    size_shape: float = 1.5,
) -> List[WorkloadFlow]:
    """Poisson flow arrivals with Pareto-tailed sizes (web traffic).

    Args:
        arrival_rate: Mean arrivals per second.
        duration: Generation horizon in seconds.
        mean_size: Mean transfer size in bytes.
        rng: Seeded random source (determinism across trials).
        size_shape: Pareto shape α (>1); 1.5 gives the heavy tail
            typical of web objects.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_size <= 0:
        raise ValueError(f"mean_size must be positive, got {mean_size}")
    if size_shape <= 1:
        raise ValueError(f"size_shape must exceed 1, got {size_shape}")
    # Pareto with mean = x_min · α/(α−1)  →  x_min = mean·(α−1)/α.
    x_min = mean_size * (size_shape - 1.0) / size_shape
    flows = []
    t = 0.0
    while True:
        t += rng.expovariate(arrival_rate)
        if t >= duration:
            break
        size = x_min * (1.0 - rng.random()) ** (-1.0 / size_shape)
        flows.append(
            WorkloadFlow(
                cc=cc, start_time=t, rtt=rtt, size_bytes=size
            )
        )
    return flows


def on_off_flows(
    cc: str,
    count: int,
    on_seconds: float,
    off_seconds: float,
    duration: float,
    rng: random.Random,
    rtt: Optional[float] = None,
) -> List[WorkloadFlow]:
    """Periodic on/off flows (chunked-video-like), one WorkloadFlow per
    ON burst, with per-flow random phase."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if on_seconds <= 0 or off_seconds < 0:
        raise ValueError("on_seconds must be positive, off_seconds >= 0")
    period = on_seconds + off_seconds
    flows = []
    for _ in range(count):
        phase = rng.uniform(0.0, period)
        t = phase
        while t < duration:
            stop = min(t + on_seconds, duration)
            if stop > t:
                flows.append(
                    WorkloadFlow(
                        cc=cc, start_time=t, rtt=rtt, stop_time=stop
                    )
                )
            t += period
    return flows


def to_fluid_specs(flows: Sequence[WorkloadFlow]) -> List[FluidSpec]:
    """Convert a workload to fluid-simulator specs."""
    return [f.to_fluid_spec() for f in flows]


def to_flow_specs(flows: Sequence[WorkloadFlow]) -> List[FlowSpec]:
    """Convert a workload to packet-simulator specs."""
    return [f.to_flow_spec() for f in flows]


def expected_offered_load(
    flows: Sequence[WorkloadFlow], duration: float
) -> float:
    """Mean offered rate (bytes/second) of the *finite* flows.

    Long-lived flows are elastic (they take whatever is left), so only
    sized transfers contribute; useful for sizing background churn as a
    fraction of capacity.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    total = sum(
        f.size_bytes for f in flows if f.size_bytes is not None
    )
    return total / duration
