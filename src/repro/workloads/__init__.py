"""Workload generators: long-lived, Poisson short-flow, and on/off
populations for probing beyond the paper's long-flow regime (§5)."""

from repro.workloads.generator import (
    WorkloadFlow,
    expected_offered_load,
    long_lived,
    on_off_flows,
    poisson_short_flows,
    to_flow_specs,
    to_fluid_specs,
)

__all__ = [
    "WorkloadFlow",
    "expected_offered_load",
    "long_lived",
    "on_off_flows",
    "poisson_short_flows",
    "to_flow_specs",
    "to_fluid_specs",
]
