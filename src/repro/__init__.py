"""repro — reproduction of *Are we heading towards a BBR-dominant
Internet?* (Mishra, Tiu & Leong, IMC 2022).

The package provides:

* :mod:`repro.core` — the paper's CUBIC/BBR throughput model, the Ware et
  al. baseline, and the game-theoretic Nash-equilibrium analysis;
* :mod:`repro.cc` — from-scratch congestion-control implementations
  (Reno, CUBIC, BBRv1, BBRv2, Copa, PCC Vivace);
* :mod:`repro.sim` — a packet-level discrete-event dumbbell simulator;
* :mod:`repro.fluidsim` — a fluid-flow simulator for large sweeps;
* :mod:`repro.experiments` — regenerators for every evaluation figure.

Quick start::

    from repro import LinkConfig, predict_two_flow, predict_nash

    link = LinkConfig.from_mbps_ms(100, 40, buffer_bdp=5)
    print(predict_two_flow(link).bbr_fraction)     # BBR's share vs CUBIC
    print(predict_nash(link, n_flows=50))          # NE distribution
"""

from repro.core import (
    ModelPrediction,
    MultiFlowPrediction,
    NashPrediction,
    ThroughputTable,
    predict_multi_flow,
    predict_nash,
    predict_two_flow,
    ware_prediction,
)
from repro.util.config import LinkConfig

__version__ = "1.0.0"

__all__ = [
    "LinkConfig",
    "ModelPrediction",
    "MultiFlowPrediction",
    "NashPrediction",
    "ThroughputTable",
    "predict_multi_flow",
    "predict_nash",
    "predict_two_flow",
    "ware_prediction",
    "__version__",
]
