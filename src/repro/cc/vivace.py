"""PCC Vivace congestion control (Dong et al., NSDI 2018).

Vivace is a rate-based, online-learning algorithm: time is sliced into
monitor intervals (MIs), each MI measures a utility

    U(x) = x^t − b · x · max(0, dRTT/dt) − c · x · L

with ``x`` the sending rate, ``L`` the observed loss rate, and ``t = 0.9``.
Paired MIs at rates ``r(1+ε)`` and ``r(1−ε)`` estimate the utility
gradient, and the rate moves in the gradient's direction with a
confidence-amplified step.

Vivace comes in two flavours: Vivace-Loss (``b = 0``) and
Vivace-Latency (``b = 900``); the latency-sensitive variant deliberately
concedes to buffer-filling competitors (Vivace §3).  The IMC paper's
Figure 7 shows "PCC Vivace" claiming a *disproportionately large* share
against CUBIC when its flows are few — the behaviour of Vivace-Loss — so
``latency_coeff`` defaults to 0 here, with the latency variant available
via the constructor.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cc.base import CongestionControl, register
from repro.cc.signals import LossEvent, RateSample

#: Utility exponent on throughput.
THROUGHPUT_EXPONENT = 0.9

#: Latency-gradient penalty coefficient of the latency-sensitive variant.
LATENCY_COEFF = 900.0

#: Loss penalty coefficient.
LOSS_COEFF = 11.35

#: Rate perturbation for gradient probing.
EPSILON = 0.05

#: Maximum confidence amplifier (consecutive same-direction doublings).
MAX_AMPLIFIER = 8.0

#: Floor on the sending rate, bytes/second (≈0.12 Mbps).
MIN_RATE = 15_000.0


@register("vivace")
class Vivace(CongestionControl):
    """PCC Vivace controller (rate-paced; cwnd used only as a safety cap)."""

    name = "vivace"
    loss_based = False  # Loss enters the utility, not a window cut.

    def __init__(
        self,
        mss: int = 1500,
        initial_rate: float = 125_000.0,
        latency_coeff: float = 0.0,
        loss_coeff: float = LOSS_COEFF,
    ):
        super().__init__(mss=mss)
        if initial_rate <= 0:
            raise ValueError(
                f"initial_rate must be positive, got {initial_rate}"
            )
        self.latency_coeff = latency_coeff
        self.loss_coeff = loss_coeff
        self.rate = initial_rate  # bytes/second
        self.pacing_rate = initial_rate
        self._srtt: Optional[float] = None

        # Monitor-interval state: phase 0 probes r(1+ε), phase 1 probes
        # r(1−ε), then the pair is scored and the base rate updated.
        self._mi_phase = 0
        self._mi_start: Optional[float] = None
        self._mi_end: Optional[float] = None
        self._mi_acked = 0
        self._mi_lost = 0
        self._mi_rtts: List[Tuple[float, float]] = []
        self._pair_utilities: List[float] = []

        self._amplifier = 1.0
        self._last_direction = 0

    # -- utility ----------------------------------------------------------

    def utility(
        self, rate: float, rtt_gradient: float, loss_rate: float
    ) -> float:
        """Vivace's utility for a rate in bytes/s (scored in Mbps units)."""
        x_mbps = rate * 8.0 / 1e6
        if x_mbps <= 0:
            return 0.0
        return (
            x_mbps ** THROUGHPUT_EXPONENT
            - self.latency_coeff * x_mbps * max(0.0, rtt_gradient)
            - self.loss_coeff * x_mbps * loss_rate
        )

    def _probe_rate(self) -> float:
        if self._mi_phase == 0:
            return self.rate * (1.0 + EPSILON)
        return self.rate * (1.0 - EPSILON)

    # -- CongestionControl interface -----------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        self._srtt = (
            sample.rtt
            if self._srtt is None
            else 0.875 * self._srtt + 0.125 * sample.rtt
        )
        if self._mi_start is None:
            self._begin_mi(now)
        self._mi_acked += sample.acked_bytes
        self._mi_rtts.append((now, sample.rtt))

        if self._mi_end is not None and now >= self._mi_end:
            self._finish_mi(now)

        # Keep a generous window so the pacer, not cwnd, is the limit.
        self.cwnd = max(
            2.0 * self.pacing_rate * (self._srtt or 0.05), self.min_cwnd
        )

    def on_loss(self, event: LossEvent) -> None:
        self._mi_lost += event.lost_packets

    # -- monitor intervals -------------------------------------------------------

    def _begin_mi(self, now: float) -> None:
        duration = max(self._srtt or 0.05, 0.01)
        self._mi_start = now
        self._mi_end = now + duration
        self._mi_acked = 0
        self._mi_lost = 0
        self._mi_rtts = []
        self.pacing_rate = max(self._probe_rate(), MIN_RATE)

    def _finish_mi(self, now: float) -> None:
        assert self._mi_start is not None
        elapsed = max(now - self._mi_start, 1e-6)
        achieved = self._mi_acked / elapsed
        lost_bytes = self._mi_lost * self.mss
        total = self._mi_acked + lost_bytes
        loss_rate = lost_bytes / total if total > 0 else 0.0
        rtt_gradient = self._rtt_gradient(elapsed)
        self._pair_utilities.append(
            self.utility(achieved, rtt_gradient, loss_rate)
        )

        if self._mi_phase == 0:
            self._mi_phase = 1
        else:
            self._mi_phase = 0
            self._apply_gradient_step(now)
            self._pair_utilities = []
        self._begin_mi(now)

    def _rtt_gradient(self, elapsed: float) -> float:
        """Slope of RTT over the MI (s/s), from first/last halves' means."""
        samples = self._mi_rtts
        if len(samples) < 4:
            return 0.0
        half = len(samples) // 2
        first = sum(rtt for _, rtt in samples[:half]) / half
        second = sum(rtt for _, rtt in samples[half:]) / (
            len(samples) - half
        )
        return (second - first) / elapsed

    def _apply_gradient_step(self, now: float) -> None:
        if len(self._pair_utilities) != 2:
            return
        u_plus, u_minus = self._pair_utilities
        if u_plus == u_minus:
            # No gradient signal: hold the rate, drop the confidence.
            self._amplifier = 1.0
            self._last_direction = 0
            return
        direction = 1 if u_plus > u_minus else -1
        if direction == self._last_direction:
            self._amplifier = min(self._amplifier * 2.0, MAX_AMPLIFIER)
        else:
            self._amplifier = 1.0
        self._last_direction = direction
        step = direction * EPSILON * self._amplifier * self.rate
        rate_before = self.rate
        self.rate = max(self.rate + step, MIN_RATE)
        self.emit(
            "cc.rate_step",
            now,
            direction=direction,
            amplifier=self._amplifier,
            rate_before=rate_before,
            rate_after=self.rate,
        )
