"""PCC Vivace per-ACK adapter over :mod:`repro.cc.laws.vivace`.

The utility function, probe-pair schedule, and gradient-step rule live
in the law module (shared with
:class:`repro.fluidsim.flows.FluidVivace`); this class slices the ACK
stream into monitor intervals of one smoothed RTT, measures each MI's
achieved rate / loss / RTT slope, and applies the scored gradient to
the pacing rate.  cwnd is kept generously above the pacer's reach so
the rate, not the window, is the binding control.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cc.base import CongestionControl, register
from repro.cc.laws import vivace as laws
from repro.cc.laws.base import smooth_rtt
from repro.cc.laws.vivace import (  # noqa: F401 (canonical law re-exports)
    EPSILON,
    LATENCY_COEFF,
    LOSS_COEFF,
    MAX_AMPLIFIER,
    MIN_RATE,
    THROUGHPUT_EXPONENT,
)
from repro.cc.signals import LossEvent, RateSample


@register("vivace")
class Vivace(CongestionControl):
    """PCC Vivace controller (rate-paced; cwnd used only as a safety cap)."""

    name = "vivace"
    loss_based = False  # Loss enters the utility, not a window cut.

    def __init__(
        self,
        mss: int = 1500,
        initial_rate: float = laws.DEFAULT_INITIAL_RATE,
        latency_coeff: float = 0.0,
        loss_coeff: float = LOSS_COEFF,
    ):
        super().__init__(mss=mss)
        if initial_rate <= 0:
            raise ValueError(
                f"initial_rate must be positive, got {initial_rate}"
            )
        self.latency_coeff = latency_coeff
        self.loss_coeff = loss_coeff
        self.rate = initial_rate  # bytes/second
        self.pacing_rate = initial_rate
        self._srtt: Optional[float] = None

        # Monitor-interval state: phase 0 probes r(1+ε), phase 1 probes
        # r(1−ε), then the pair is scored and the base rate updated.
        self._mi_phase = 0
        self._mi_start: Optional[float] = None
        self._mi_end: Optional[float] = None
        self._mi_acked = 0
        self._mi_lost = 0
        self._mi_rtts: List[Tuple[float, float]] = []
        self._pair_utilities: List[float] = []

        self._amplifier = 1.0
        self._last_direction = 0

    # -- utility ----------------------------------------------------------

    def utility(
        self, rate: float, rtt_gradient: float, loss_rate: float
    ) -> float:
        """Vivace's utility for a rate in bytes/s (scored in Mbps units)."""
        return laws.utility(
            rate, rtt_gradient, loss_rate, self.latency_coeff, self.loss_coeff
        )

    def _probe_rate(self) -> float:
        return laws.probe_rate(self.rate, self._mi_phase)

    # -- CongestionControl interface -----------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        self._srtt = smooth_rtt(self._srtt, sample.rtt)
        if self._mi_start is None:
            self._begin_mi(now)
        self._mi_acked += sample.acked_bytes
        self._mi_rtts.append((now, sample.rtt))

        if self._mi_end is not None and now >= self._mi_end:
            self._finish_mi(now)

        # Keep a generous window so the pacer, not cwnd, is the limit.
        self.cwnd = max(
            2.0 * self.pacing_rate * (self._srtt or 0.05), self.min_cwnd
        )

    def on_loss(self, event: LossEvent) -> None:
        self._mi_lost += event.lost_packets

    # -- monitor intervals ----------------------------------------------------

    def _begin_mi(self, now: float) -> None:
        duration = max(self._srtt or 0.05, 0.01)
        self._mi_start = now
        self._mi_end = now + duration
        self._mi_acked = 0
        self._mi_lost = 0
        self._mi_rtts = []
        self.pacing_rate = max(self._probe_rate(), MIN_RATE)

    def _finish_mi(self, now: float) -> None:
        assert self._mi_start is not None
        elapsed = max(now - self._mi_start, 1e-6)
        rtt_gradient = self._rtt_gradient(elapsed)
        self._pair_utilities.append(
            laws.score_interval(
                elapsed,
                self._mi_acked,
                self._mi_lost * self.mss,
                rtt_gradient,
                self.latency_coeff,
                self.loss_coeff,
            )
        )

        if self._mi_phase == 0:
            self._mi_phase = 1
        else:
            self._mi_phase = 0
            self._apply_gradient_step(now)
            self._pair_utilities = []
        self._begin_mi(now)

    def _rtt_gradient(self, elapsed: float) -> float:
        """Slope of RTT over the MI (s/s), from first/last halves' means."""
        samples = self._mi_rtts
        if len(samples) < 4:
            return 0.0
        half = len(samples) // 2
        first = sum(rtt for _, rtt in samples[:half]) / half
        second = sum(rtt for _, rtt in samples[half:]) / (
            len(samples) - half
        )
        return (second - first) / elapsed

    def _apply_gradient_step(self, now: float) -> None:
        if len(self._pair_utilities) != 2:
            return
        u_plus, u_minus = self._pair_utilities
        rate_before = self.rate
        self.rate, direction, self._amplifier = laws.gradient_step(
            self.rate, u_plus, u_minus, self._amplifier, self._last_direction
        )
        self._last_direction = direction
        if direction == 0:
            # No gradient signal: the rate held and the confidence reset.
            return
        self.emit(
            "cc.rate_step",
            now,
            direction=direction,
            amplifier=self._amplifier,
            rate_before=rate_before,
            rate_after=self.rate,
        )
