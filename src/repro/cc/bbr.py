"""BBR (v1) congestion control — the four-state machine of §2.1.

Re-implemented from the BBR paper (Cardwell et al., CACM 2017) and
draft-cardwell-iccrg-bbr-congestion-control:

* **STARTUP** — exponential search with pacing gain 2/ln 2 ≈ 2.885; exits
  when the bandwidth estimate stops growing ≥25% per round for three
  consecutive rounds ("full pipe").
* **DRAIN**   — inverse gain until in-flight ≤ 1 estimated BDP.
* **PROBE_BW** — 8-phase gain cycle [1.25, 0.75, 1, 1, 1, 1, 1, 1], one
  phase per RTprop.
* **PROBE_RTT** — every 10 s, reduce cwnd to 4 packets for at least 200 ms
  to drain the queue and refresh the RTT_min estimate.

The bandwidth estimate is a windowed max over the last 10 packet-timed
rounds of delivery-rate samples; RTprop is a windowed min over 10 seconds.
The in-flight data is capped at ``cwnd_gain (=2) × estimated BDP`` — the
property the paper's model depends on (assumption 2 of §2.3): when
competing with CUBIC, RTprop is over-estimated by CUBIC's minimum buffer
occupancy, so this cap is what actually governs BBR's send rate.

BBRv1 is loss-agnostic (assumption 4): ``on_loss`` does nothing.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.signals import LossEvent, RateSample
from repro.util.filters import WindowedMax

#: STARTUP/DRAIN gain: 2/ln(2), enough to double the sending rate per round.
HIGH_GAIN = 2.0 / 0.6931471805599453

#: PROBE_BW pacing-gain cycle (one phase per RTprop).
GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: cwnd gain outside STARTUP: in-flight cap of 2 × estimated BDP.
CWND_GAIN = 2.0

#: Bandwidth filter window, in packet-timed rounds.
BTLBW_FILTER_ROUNDS = 10

#: RTprop filter window and ProbeRTT cadence, seconds.
RTPROP_FILTER_LEN = 10.0

#: Minimum time spent in PROBE_RTT, seconds.
PROBE_RTT_DURATION = 0.2

#: cwnd during PROBE_RTT, in packets.
PROBE_RTT_CWND_SEGMENTS = 4

STARTUP = "STARTUP"
DRAIN = "DRAIN"
PROBE_BW = "PROBE_BW"
PROBE_RTT = "PROBE_RTT"


@register("bbr")
class BBRv1(CongestionControl):
    """BBR v1 controller (paced; cwnd-capped at 2×BDP)."""

    name = "bbr"
    loss_based = False

    def __init__(self, mss: int = 1500) -> None:
        super().__init__(mss=mss)
        self.state = STARTUP
        self.pacing_gain = HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN

        self._btl_bw_filter = WindowedMax(BTLBW_FILTER_ROUNDS)
        self.rtprop: Optional[float] = None
        self._rtprop_stamp = 0.0
        self._rtprop_expired = False

        # Packet-timed round accounting (as in the draft).
        self._round_count = 0
        self._next_round_delivered = 0
        self._round_start = False

        # STARTUP full-pipe detection.
        self._full_bw = 0.0
        self._full_bw_count = 0
        self.full_pipe = False

        # PROBE_BW gain cycling.
        self._cycle_index = 0
        self._cycle_stamp = 0.0

        # PROBE_RTT bookkeeping.
        self._probe_rtt_done_stamp: Optional[float] = None
        self._probe_rtt_round_done = False
        self._prior_cwnd = self.cwnd

        self.pacing_rate = None  # Unpaced until the first bandwidth sample.

    # -- derived estimates --------------------------------------------------

    @property
    def btl_bw(self) -> float:
        """Current bottleneck-bandwidth estimate in bytes/second."""
        value = self._btl_bw_filter.get()
        return value if value is not None else 0.0

    def bdp(self, gain: float = 1.0) -> float:
        """``gain × btl_bw × RTprop`` in bytes; 0 before any estimates."""
        if self.rtprop is None:
            return 0.0
        return gain * self.btl_bw * self.rtprop

    # -- CongestionControl interface -----------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        self._update_round(sample)
        self._update_btl_bw(sample)
        self._update_rtprop(sample)

        if self.state == STARTUP:
            self._check_full_pipe()
            if self.full_pipe:
                self._enter_drain(now)
        if self.state == DRAIN and sample.in_flight <= self.bdp():
            self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            self._advance_cycle_phase(now)

        self._check_probe_rtt(now, sample)
        self._set_pacing_rate()
        self._set_cwnd(sample)

    def on_loss(self, event: LossEvent) -> None:
        """BBRv1 is loss-agnostic: packet loss does not change the model."""

    # -- estimator updates ---------------------------------------------------

    def _update_round(self, sample: RateSample) -> None:
        # A "packet-timed round" elapses when a packet sent after the start
        # of the current round is ACKed (draft §4.1.1.3).
        self._round_start = False
        if sample.delivered_at_send >= self._next_round_delivered:
            self._next_round_delivered = sample.delivered
            self._round_count += 1
            self._round_start = True

    def _update_btl_bw(self, sample: RateSample) -> None:
        if sample.delivery_rate <= 0:
            return
        if not sample.is_app_limited or sample.delivery_rate > self.btl_bw:
            self._btl_bw_filter.update(
                self._round_count, sample.delivery_rate
            )

    def _update_rtprop(self, sample: RateSample) -> None:
        now = sample.now
        self._rtprop_expired = (
            self.rtprop is not None
            and now - self._rtprop_stamp > RTPROP_FILTER_LEN
        )
        if (
            self.rtprop is None
            or sample.rtt <= self.rtprop
            or self._rtprop_expired
        ):
            self.rtprop = sample.rtt
            self._rtprop_stamp = now

    # -- state transitions -----------------------------------------------------

    def _check_full_pipe(self) -> None:
        if self.full_pipe or not self._round_start:
            return
        if self.btl_bw >= self._full_bw * 1.25:
            self._full_bw = self.btl_bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self.full_pipe = True

    def _enter_drain(self, now: float) -> None:
        self.emit_state(now, self.state, DRAIN)
        self.state = DRAIN
        self.pacing_gain = 1.0 / HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN

    def _enter_probe_bw(self, now: float) -> None:
        self.emit_state(now, self.state, PROBE_BW)
        self.state = PROBE_BW
        self.cwnd_gain = CWND_GAIN
        # Start in a neutral phase (index 2) so we do not probe immediately
        # after draining.
        self._cycle_index = 2
        self._cycle_stamp = now
        self.pacing_gain = GAIN_CYCLE[self._cycle_index]

    def _advance_cycle_phase(self, now: float) -> None:
        if self.rtprop is None:
            return
        if now - self._cycle_stamp > self.rtprop:
            self._cycle_index = (self._cycle_index + 1) % len(GAIN_CYCLE)
            self._cycle_stamp = now
            self.pacing_gain = GAIN_CYCLE[self._cycle_index]

    def _check_probe_rtt(self, now: float, sample: RateSample) -> None:
        if self.state != PROBE_RTT and self._rtprop_expired:
            self._enter_probe_rtt(now)
        if self.state == PROBE_RTT:
            self._handle_probe_rtt(now, sample)

    def _enter_probe_rtt(self, now: float) -> None:
        self.emit_state(now, self.state, PROBE_RTT)
        self.state = PROBE_RTT
        self._prior_cwnd = max(self.cwnd, self._prior_cwnd)
        self.pacing_gain = 1.0
        self._probe_rtt_done_stamp = None
        self._probe_rtt_round_done = False

    def _handle_probe_rtt(self, now: float, sample: RateSample) -> None:
        probe_cwnd = PROBE_RTT_CWND_SEGMENTS * self.mss
        if (
            self._probe_rtt_done_stamp is None
            and sample.in_flight <= probe_cwnd
        ):
            # The queue contribution has drained; start the 200 ms dwell.
            self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
            self._probe_rtt_round_done = False
            self._next_round_delivered = sample.delivered
        elif self._probe_rtt_done_stamp is not None:
            if self._round_start:
                self._probe_rtt_round_done = True
            if (
                self._probe_rtt_round_done
                and now >= self._probe_rtt_done_stamp
            ):
                self._exit_probe_rtt(now)

    def _exit_probe_rtt(self, now: float) -> None:
        self._rtprop_stamp = now
        self.cwnd = max(self.cwnd, self._prior_cwnd)
        if self.full_pipe:
            self._enter_probe_bw(now)
        else:
            self.emit_state(now, self.state, STARTUP)
            self.state = STARTUP
            self.pacing_gain = HIGH_GAIN
            self.cwnd_gain = HIGH_GAIN

    # -- control outputs ----------------------------------------------------------

    def _set_pacing_rate(self) -> None:
        bw = self.btl_bw
        if bw > 0:
            self.pacing_rate = self.pacing_gain * bw

    def _set_cwnd(self, sample: RateSample) -> None:
        if self.state == PROBE_RTT:
            self.cwnd = PROBE_RTT_CWND_SEGMENTS * self.mss
            return
        target = self.bdp(self.cwnd_gain)
        if target <= 0:
            return  # No estimates yet; keep the initial window.
        if self.cwnd < target:
            # Grow by at most the newly ACKed data per ACK (slow-start-like).
            self.cwnd = min(self.cwnd + sample.acked_bytes, target)
        else:
            self.cwnd = target
        self.clamp_cwnd()
