"""BBR (v1) per-ACK adapter over :mod:`repro.cc.laws.bbr`.

The four-state machine, gain tables, and estimator kernels live in the
law module (shared with the fluid-model adapter
:class:`repro.fluidsim.flows.FluidBBR`); this class wires them to the
packet simulator's per-ACK :class:`~repro.cc.signals.RateSample` stream.

The bandwidth estimate is a windowed max over the last 10 packet-timed
rounds of delivery-rate samples; RTprop is a windowed min over 10
seconds.  In-flight data is capped at ``cwnd_gain (=2) × estimated
BDP`` — the property the paper's model depends on (assumption 2 of
§2.3).  BBRv1 is loss-agnostic (assumption 4): ``on_loss`` does
nothing.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl, register
from repro.cc.laws import bbr as laws
from repro.cc.laws.bbr import (  # noqa: F401 (canonical law re-exports)
    BTLBW_FILTER_ROUNDS,
    CWND_GAIN,
    DRAIN,
    GAIN_CYCLE,
    HIGH_GAIN,
    PROBE_BW,
    PROBE_RTT,
    PROBE_RTT_CWND_SEGMENTS,
    PROBE_RTT_DURATION,
    RTPROP_FILTER_LEN,
    STARTUP,
)
from repro.cc.signals import LossEvent, RateSample
from repro.util.filters import WindowedMax


@register("bbr")
class BBRv1(CongestionControl):
    """BBR v1 controller (paced; cwnd-capped at 2×BDP)."""

    name = "bbr"
    loss_based = False

    def __init__(self, mss: int = 1500) -> None:
        super().__init__(mss=mss)
        self.state = STARTUP
        self.pacing_gain = HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN

        self._btl_bw_filter = WindowedMax(BTLBW_FILTER_ROUNDS)
        self._rtprop = laws.RtPropTracker()
        self._rounds = laws.RoundCounter()
        self._full_pipe = laws.FullPipeDetector()
        self._cycler = laws.GainCycler()

        # PROBE_RTT bookkeeping.
        self._probe_rtt_done_stamp: float | None = None
        self._probe_rtt_round_done = False
        self._prior_cwnd = self.cwnd

        self.pacing_rate = None  # Unpaced until the first bandwidth sample.

    # -- derived estimates --------------------------------------------------

    @property
    def btl_bw(self) -> float:
        """Current bottleneck-bandwidth estimate in bytes/second."""
        value = self._btl_bw_filter.get()
        return value if value is not None else 0.0

    @property
    def rtprop(self) -> float | None:
        """Current RTprop estimate in seconds; None before any sample."""
        return self._rtprop.rtprop

    @property
    def full_pipe(self) -> bool:
        """True once STARTUP's bandwidth-plateau exit has fired."""
        return self._full_pipe.full

    def bdp(self, gain: float = 1.0) -> float:
        """``gain × btl_bw × RTprop`` in bytes; 0 before any estimates."""
        if self.rtprop is None:
            return 0.0
        return gain * self.btl_bw * self.rtprop

    # -- CongestionControl interface -----------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        self._rounds.update(sample.delivered, sample.delivered_at_send)
        self._update_btl_bw(sample)
        self._rtprop.update(now, sample.rtt)

        if self.state == STARTUP:
            if self._rounds.round_start:
                self._full_pipe.update(self.btl_bw)
            if self.full_pipe:
                self._enter_drain(now)
        if self.state == DRAIN and sample.in_flight <= self.bdp():
            self._enter_probe_bw(now)
        if self.state == PROBE_BW:
            self.pacing_gain = self._cycler.advance(now, self.rtprop)

        self._check_probe_rtt(now, sample)
        self._set_pacing_rate()
        self._set_cwnd(sample)

    def on_loss(self, event: LossEvent) -> None:
        """BBRv1 is loss-agnostic: packet loss does not change the model."""

    # -- estimator updates ---------------------------------------------------

    def _update_btl_bw(self, sample: RateSample) -> None:
        if sample.delivery_rate <= 0:
            return
        if not sample.is_app_limited or sample.delivery_rate > self.btl_bw:
            self._btl_bw_filter.update(
                self._rounds.count, sample.delivery_rate
            )

    # -- state transitions ----------------------------------------------------

    def _enter_drain(self, now: float) -> None:
        self.emit_state(now, self.state, DRAIN)
        self.state = DRAIN
        self.pacing_gain = 1.0 / HIGH_GAIN
        self.cwnd_gain = HIGH_GAIN

    def _enter_probe_bw(self, now: float) -> None:
        self.emit_state(now, self.state, PROBE_BW)
        self.state = PROBE_BW
        self.cwnd_gain = CWND_GAIN
        self._cycler.reset(now)
        self.pacing_gain = self._cycler.gain

    def _check_probe_rtt(self, now: float, sample: RateSample) -> None:
        if self.state != PROBE_RTT and self._rtprop.expired:
            self._enter_probe_rtt(now)
        if self.state == PROBE_RTT:
            self._handle_probe_rtt(now, sample)

    def _enter_probe_rtt(self, now: float) -> None:
        self.emit_state(now, self.state, PROBE_RTT)
        self.state = PROBE_RTT
        self._prior_cwnd = max(self.cwnd, self._prior_cwnd)
        self.pacing_gain = 1.0
        self._probe_rtt_done_stamp = None
        self._probe_rtt_round_done = False

    def _handle_probe_rtt(self, now: float, sample: RateSample) -> None:
        probe_cwnd = PROBE_RTT_CWND_SEGMENTS * self.mss
        if (
            self._probe_rtt_done_stamp is None
            and sample.in_flight <= probe_cwnd
        ):
            # The queue contribution has drained; start the 200 ms dwell.
            self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
            self._probe_rtt_round_done = False
            self._rounds.next_delivered = sample.delivered
        elif self._probe_rtt_done_stamp is not None:
            if self._rounds.round_start:
                self._probe_rtt_round_done = True
            if (
                self._probe_rtt_round_done
                and now >= self._probe_rtt_done_stamp
            ):
                self._exit_probe_rtt(now)

    def _exit_probe_rtt(self, now: float) -> None:
        self._rtprop.stamp = now
        self.cwnd = max(self.cwnd, self._prior_cwnd)
        if self.full_pipe:
            self._enter_probe_bw(now)
        else:
            self.emit_state(now, self.state, STARTUP)
            self.state = STARTUP
            self.pacing_gain = HIGH_GAIN
            self.cwnd_gain = HIGH_GAIN

    # -- control outputs ------------------------------------------------------

    def _set_pacing_rate(self) -> None:
        bw = self.btl_bw
        if bw > 0:
            self.pacing_rate = self.pacing_gain * bw

    def _set_cwnd(self, sample: RateSample) -> None:
        if self.state == PROBE_RTT:
            self.cwnd = PROBE_RTT_CWND_SEGMENTS * self.mss
            return
        target = self.bdp(self.cwnd_gain)
        if target <= 0:
            return  # No estimates yet; keep the initial window.
        if self.cwnd < target:
            # Grow by at most the newly ACKed data per ACK (slow-start-like).
            self.cwnd = min(self.cwnd + sample.acked_bytes, target)
        else:
            self.cwnd = target
        self.clamp_cwnd()
