"""Congestion-control interface and algorithm registry.

Every algorithm (Reno, CUBIC, BBRv1, BBRv2, Copa, Vivace) implements
:class:`CongestionControl`.  The packet-level sender drives the controller
with per-ACK :class:`~repro.sim.packet.RateSample` objects and per-event
:class:`~repro.sim.packet.LossEvent` notifications, and reads back two
outputs:

* ``cwnd``  — the byte limit on in-flight data, and
* ``pacing_rate`` — an optional bytes/second pacing limit (None for purely
  ack-clocked algorithms such as Reno and CUBIC).

Algorithms register themselves by name so experiments can be configured
with strings (``make_controller("bbr", mss=1500)``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.cc.laws.base import INITIAL_CWND_SEGMENTS, MIN_CWND_SEGMENTS
from repro.cc.signals import LossEvent, RateSample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry

__all__ = [
    "CongestionControl",
    "INITIAL_CWND_SEGMENTS",
    "MIN_CWND_SEGMENTS",
    "available_algorithms",
    "make_controller",
    "register",
]


class CongestionControl(abc.ABC):
    """Abstract congestion controller.

    Subclasses must keep :attr:`cwnd` (bytes) up to date and may set
    :attr:`pacing_rate` (bytes/second) to enable pacing.
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name = "base"

    #: Whether the algorithm reduces its window in response to loss. The
    #: fluid simulator uses this to decide which flows take overflow cuts.
    loss_based = True

    def __init__(self, mss: int = 1500) -> None:
        if mss <= 0:
            raise ValueError(f"mss must be positive, got {mss}")
        self.mss = mss
        self.cwnd: float = INITIAL_CWND_SEGMENTS * mss
        self.pacing_rate: Optional[float] = None
        #: Optional telemetry bus (see :mod:`repro.obs`); None = disabled.
        self.obs: Optional["Telemetry"] = None
        #: Optional invariant checker (see :mod:`repro.check`); when
        #: set, every state-machine transition is validated against the
        #: algorithm's law tables.
        self.check: Optional["Checker"] = None
        #: Flow identity stamped onto emitted events by the substrate.
        self.flow_id: Optional[int] = None

    @abc.abstractmethod
    def on_ack(self, sample: RateSample) -> None:
        """Process one acknowledgement's rate/RTT sample."""

    @abc.abstractmethod
    def on_loss(self, event: LossEvent) -> None:
        """Process a loss notification."""

    def on_sent(self, now: float, in_flight: int) -> None:
        """Hook invoked after each packet transmission (optional)."""

    # -- telemetry ---------------------------------------------------------

    def emit(self, name: str, now: float, **fields: object) -> None:
        """Emit a typed telemetry event tagged with this flow's identity.

        A no-op when no bus is attached, so controllers call this
        unconditionally at transition points.
        """
        obs = self.obs
        if obs is not None:
            obs.event(
                name, time=now, cc=self.name, flow_id=self.flow_id, **fields
            )

    def emit_state(self, now: float, old: Optional[str], new: str) -> None:
        """Emit a ``cc.state`` state-machine transition event."""
        check = self.check
        if check is not None:
            check.state_transition(
                now, self.name, self.flow_id, old, new, substrate="packet"
            )
        obs = self.obs
        if obs is not None:
            obs.event(
                "cc.state",
                time=now,
                cc=self.name,
                flow_id=self.flow_id,
                **{"from": old, "to": new},
            )
            obs.count("cc.state_transitions")

    @property
    def min_cwnd(self) -> float:
        """Lower bound on cwnd in bytes."""
        return MIN_CWND_SEGMENTS * self.mss

    def clamp_cwnd(self) -> None:
        """Enforce the cwnd floor."""
        if self.cwnd < self.min_cwnd:
            self.cwnd = self.min_cwnd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pacing = (
            f", pacing={self.pacing_rate:.0f}B/s" if self.pacing_rate else ""
        )
        return f"<{type(self).__name__} cwnd={self.cwnd:.0f}B{pacing}>"


_REGISTRY: Dict[str, Callable[..., CongestionControl]] = {}


def register(name: str) -> Callable[[type], type]:
    """Class decorator registering a controller under ``name``."""

    def decorator(cls: type) -> type:
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(f"duplicate congestion control name: {name}")
        _REGISTRY[key] = cls
        return cls

    return decorator


def make_controller(name: str, **kwargs: object) -> CongestionControl:
    """Instantiate a controller by name (case-insensitive).

    Canonical algorithms resolve through the ``repro.cc.laws`` registry;
    controllers registered only via :func:`register` (e.g. third-party
    or test doubles) are found as a fallback.
    """
    from repro.cc.laws import registry as laws_registry

    key = name.lower()
    spec = laws_registry.ALGORITHMS.get(key)
    if spec is not None and spec.packet is not None:
        return laws_registry.packet_class(key)(**kwargs)
    if key in _REGISTRY:
        return _REGISTRY[key](**kwargs)
    raise KeyError(
        f"unknown congestion control {name!r}; "
        f"available: {available_algorithms()}"
    )


def available_algorithms() -> List[str]:
    """Names of all packet-substrate congestion control algorithms."""
    from repro.cc.laws import registry as laws_registry

    canonical = {
        n
        for n in laws_registry.canonical_names()
        if laws_registry.ALGORITHMS[n].packet is not None
    }
    return sorted(canonical | set(_REGISTRY))
