"""Signals exchanged between a transport sender and its controller.

These are the only types congestion-control algorithms see: per-ACK
:class:`RateSample` records (in the style of Linux's delivery-rate
estimation) and :class:`LossEvent` notifications.  They live here, below
both :mod:`repro.cc` and :mod:`repro.sim`, so the algorithms do not depend
on any particular substrate — the packet-level simulator, the fluid
simulator, and unit tests all construct them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RateSample:
    """A delivery-rate and RTT sample handed to the congestion controller.

    Attributes:
        rtt: The RTT measured by this ACK, in seconds.
        delivery_rate: Estimated delivery rate in bytes/second, or 0.0 when
            the sample interval was degenerate.
        delivered: Total bytes delivered on the connection so far.
        delivered_at_send: The connection's delivered counter when the
            ACKed packet was sent (used for packet-timed round counting).
        acked_bytes: Bytes newly acknowledged by this ACK.
        in_flight: Bytes still in flight after processing this ACK.
        is_app_limited: True if the sample was taken while the sender was
            application-limited (BBR ignores such samples for its max
            filter unless they increase the estimate).
        now: Simulation time at which the ACK was processed.
    """

    rtt: float
    delivery_rate: float
    delivered: int
    delivered_at_send: int
    acked_bytes: int
    in_flight: int
    is_app_limited: bool
    now: float


@dataclass
class LossEvent:
    """A congestion-loss notification delivered to the controller.

    ``lost_bytes`` counts bytes declared lost in this event; ``in_flight``
    is the in-flight count after removing them.  ``now`` is the detection
    time (not the drop time).
    """

    lost_bytes: int
    in_flight: int
    now: float
    lost_packets: int = field(default=1)
