"""TCP CUBIC congestion control (RFC 8312 / Linux defaults).

The window growth function is the paper's Equation (1)::

    cwnd(t) = C_cubic * (t - K)^3 + W_max

with ``C_cubic = 0.4``, ``beta = 0.7`` (multiplicative-decrease factor:
cwnd shrinks *to* 0.7 × W_max on loss, i.e. a 0.3 reduction), and
``K = cbrt(W_max * (1 - beta) / C_cubic)``.  Fast convergence and the
TCP-friendly (Reno-emulation) region are implemented as in the Linux
kernel's ``tcp_cubic.c``.

What matters for the paper's model is the 0.7 backoff: CUBIC's minimum
buffer occupancy after a loss is what bloats BBR's RTT_min estimate
(Equations 9–12).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.signals import LossEvent, RateSample

#: CUBIC scaling constant (units: segments / second^3).
C_CUBIC = 0.4

#: Multiplicative decrease: cwnd drops *to* BETA_CUBIC × W_max.
BETA_CUBIC = 0.7


@register("cubic")
class Cubic(CongestionControl):
    """CUBIC controller (ack-clocked, no pacing).

    Args:
        mss: Segment size in bytes.
        fast_convergence: Enable Linux's fast-convergence heuristic.
        tcp_friendly: Enable the Reno-emulation lower bound of RFC 8312.
    """

    name = "cubic"
    loss_based = True

    def __init__(
        self,
        mss: int = 1500,
        fast_convergence: bool = True,
        tcp_friendly: bool = True,
    ) -> None:
        super().__init__(mss=mss)
        self.fast_convergence = fast_convergence
        self.tcp_friendly = tcp_friendly
        self.ssthresh = float("inf")
        self.w_max_segments: Optional[float] = None
        self._k = 0.0
        self._epoch_start: Optional[float] = None
        self._srtt: Optional[float] = None
        self._last_reduction: Optional[float] = None
        self._w_est_segments = 0.0  # Reno-emulation window.
        self._epoch_acked = 0.0

    # -- helpers -----------------------------------------------------------

    @property
    def cwnd_segments(self) -> float:
        """Current window in segments (CUBIC's native unit)."""
        return self.cwnd / self.mss

    def _cubic_window(self, t: float) -> float:
        """Equation (1): target window (segments) ``t`` s into the epoch."""
        assert self.w_max_segments is not None
        return C_CUBIC * (t - self._k) ** 3 + self.w_max_segments

    # -- CongestionControl interface ----------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        self._srtt = (
            sample.rtt
            if self._srtt is None
            else 0.875 * self._srtt + 0.125 * sample.rtt
        )
        if self.cwnd < self.ssthresh:
            self.cwnd += sample.acked_bytes
            return
        self._congestion_avoidance(sample)

    def _congestion_avoidance(self, sample: RateSample) -> None:
        now = sample.now
        rtt = self._srtt if self._srtt is not None else sample.rtt
        if self._epoch_start is None:
            self._epoch_start = now
            self._epoch_acked = 0.0
            if (
                self.w_max_segments is None
                or self.w_max_segments < self.cwnd_segments
            ):
                # No prior loss, or we already grew past the old maximum.
                self.w_max_segments = self.cwnd_segments
                self._k = 0.0
            else:
                self._k = (
                    self.w_max_segments * (1.0 - BETA_CUBIC) / C_CUBIC
                ) ** (1.0 / 3.0)
            self._w_est_segments = self.cwnd_segments

        # Linux evaluates the target one RTT ahead for responsiveness.
        t = now - self._epoch_start + rtt
        target = self._cubic_window(t)
        cwnd_seg = self.cwnd_segments
        acked_seg = sample.acked_bytes / self.mss
        if target > cwnd_seg:
            increment = (target - cwnd_seg) / cwnd_seg
        else:
            increment = 0.01 / cwnd_seg  # Minimal probing growth.
        self.cwnd += increment * acked_seg * self.mss

        if self.tcp_friendly:
            # RFC 8312 §4.2: emulate Reno's average growth to stay at least
            # as aggressive as standard TCP in short-RTT/small-BDP regimes.
            self._epoch_acked += acked_seg
            w_est = self.w_max_segments * BETA_CUBIC + (
                3.0 * (1.0 - BETA_CUBIC) / (1.0 + BETA_CUBIC)
            ) * (t / max(rtt, 1e-9))
            if w_est > self.cwnd_segments:
                self.cwnd = w_est * self.mss

    def on_loss(self, event: LossEvent) -> None:
        # Multiple drops from one buffer overflow arrive within one RTT and
        # constitute a single congestion event.
        if (
            self._last_reduction is not None
            and self._srtt is not None
            and event.now - self._last_reduction < self._srtt
        ):
            return
        self._last_reduction = event.now
        cwnd_seg = self.cwnd_segments
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=BETA_CUBIC,
            cwnd_before=self.cwnd,
            cwnd_after=cwnd_seg * BETA_CUBIC * self.mss,
        )
        if (
            self.fast_convergence
            and self.w_max_segments is not None
            and cwnd_seg < self.w_max_segments
        ):
            # Release bandwidth faster when the available share is shrinking.
            self.w_max_segments = cwnd_seg * (2.0 - BETA_CUBIC) / 2.0
        else:
            self.w_max_segments = cwnd_seg
        self._k = (self.w_max_segments * (1.0 - BETA_CUBIC) / C_CUBIC) ** (
            1.0 / 3.0
        )
        self.cwnd = cwnd_seg * BETA_CUBIC * self.mss
        self.clamp_cwnd()
        self.ssthresh = self.cwnd
        self._epoch_start = None
