"""CUBIC per-ACK adapter over :mod:`repro.cc.laws.cubic`.

The window curve, K formula, fast-convergence rule, and TCP-friendly
region live in the law module (shared with
:class:`repro.fluidsim.flows.FluidCubic`); this class evaluates them
per ACK with Linux's one-RTT lookahead and per-congestion-event loss
gating, as in ``tcp_cubic.c``.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.laws import cubic as laws
from repro.cc.laws.base import CongestionEventGate, smooth_rtt
from repro.cc.laws.cubic import (  # noqa: F401 (canonical law re-exports)
    BETA_CUBIC,
    C_CUBIC,
)
from repro.cc.signals import LossEvent, RateSample


@register("cubic")
class Cubic(CongestionControl):
    """CUBIC controller (ack-clocked, no pacing).

    Args:
        mss: Segment size in bytes.
        fast_convergence: Enable Linux's fast-convergence heuristic.
        tcp_friendly: Enable the Reno-emulation lower bound of RFC 8312.
    """

    name = "cubic"
    loss_based = True

    def __init__(
        self,
        mss: int = 1500,
        fast_convergence: bool = True,
        tcp_friendly: bool = True,
    ) -> None:
        super().__init__(mss=mss)
        self.fast_convergence = fast_convergence
        self.tcp_friendly = tcp_friendly
        self.ssthresh = float("inf")
        self.w_max_segments: Optional[float] = None
        self._k = 0.0
        self._epoch_start: Optional[float] = None
        self._srtt: Optional[float] = None
        self._loss_gate = CongestionEventGate()
        self._w_est_segments = 0.0  # Reno-emulation window.
        self._epoch_acked = 0.0

    # -- helpers -----------------------------------------------------------

    @property
    def cwnd_segments(self) -> float:
        """Current window in segments (CUBIC's native unit)."""
        return self.cwnd / self.mss

    def _cubic_window(self, t: float) -> float:
        """Equation (1): target window (segments) ``t`` s into the epoch."""
        assert self.w_max_segments is not None
        return laws.window(t, self._k, self.w_max_segments)

    # -- CongestionControl interface ----------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        self._srtt = smooth_rtt(self._srtt, sample.rtt)
        if self.cwnd < self.ssthresh:
            self.cwnd += sample.acked_bytes
            return
        self._congestion_avoidance(sample)

    def _congestion_avoidance(self, sample: RateSample) -> None:
        now = sample.now
        rtt = self._srtt if self._srtt is not None else sample.rtt
        if self._epoch_start is None:
            self._epoch_start = now
            self._epoch_acked = 0.0
            self.w_max_segments, self._k = laws.begin_epoch(
                self.cwnd_segments, self.w_max_segments
            )
            self._w_est_segments = self.cwnd_segments

        # Linux evaluates the target one RTT ahead for responsiveness.
        t = now - self._epoch_start + rtt
        target = self._cubic_window(t)
        cwnd_seg = self.cwnd_segments
        acked_seg = sample.acked_bytes / self.mss
        if target > cwnd_seg:
            increment = (target - cwnd_seg) / cwnd_seg
        else:
            increment = 0.01 / cwnd_seg  # Minimal probing growth.
        self.cwnd += increment * acked_seg * self.mss

        if self.tcp_friendly:
            # RFC 8312 §4.2: emulate Reno's average growth to stay at least
            # as aggressive as standard TCP in short-RTT/small-BDP regimes.
            self._epoch_acked += acked_seg
            w_est = laws.reno_emulation_window(self.w_max_segments, t, rtt)
            if w_est > self.cwnd_segments:
                self.cwnd = w_est * self.mss

    def on_loss(self, event: LossEvent) -> None:
        # Multiple drops from one buffer overflow arrive within one RTT and
        # constitute a single congestion event.
        if not self._loss_gate.admit(event.now, self._srtt):
            return
        cwnd_seg = self.cwnd_segments
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=BETA_CUBIC,
            cwnd_before=self.cwnd,
            cwnd_after=cwnd_seg * BETA_CUBIC * self.mss,
        )
        self.w_max_segments = laws.reduce_w_max(
            cwnd_seg, self.w_max_segments, self.fast_convergence
        )
        self._k = laws.k_from_w_max(self.w_max_segments)
        self.cwnd = cwnd_seg * BETA_CUBIC * self.mss
        self.clamp_cwnd()
        self.ssthresh = self.cwnd
        self._epoch_start = None
