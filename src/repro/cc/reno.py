"""NewReno per-ACK adapter over :mod:`repro.cc.laws.reno`.

The classic AIMD baseline: slow start to ``ssthresh``, additive
increase of one segment per RTT in congestion avoidance, multiplicative
decrease on loss.  Included because the paper frames the CUBIC→BBR
transition against the historical NewReno→CUBIC transition, and it is a
useful sanity baseline for the simulator (its throughput follows the
well-known ``MSS/(RTT·√p)`` law, which the test suite checks).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.laws import reno as laws
from repro.cc.laws.base import CongestionEventGate, smooth_rtt
from repro.cc.signals import LossEvent, RateSample


@register("reno")
class Reno(CongestionControl):
    """NewReno-style AIMD controller (ack-clocked, no pacing)."""

    name = "reno"
    loss_based = True

    def __init__(self, mss: int = 1500, beta: float = laws.BETA) -> None:
        super().__init__(mss=mss)
        if not 0 < beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.beta = beta
        self.ssthresh = float("inf")
        self._srtt: Optional[float] = None
        self._loss_gate = CongestionEventGate()

    def on_ack(self, sample: RateSample) -> None:
        self._srtt = smooth_rtt(self._srtt, sample.rtt)
        if self.cwnd < self.ssthresh:
            # Slow start: one segment per ACKed segment.
            self.cwnd += sample.acked_bytes
        else:
            # Congestion avoidance: one segment per RTT.
            self.cwnd += laws.ai_increment(
                self.mss, sample.acked_bytes, self.cwnd
            )

    def on_loss(self, event: LossEvent) -> None:
        # Treat all losses within one RTT as a single congestion event.
        if not self._loss_gate.admit(event.now, self._srtt):
            return
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=self.beta,
            cwnd_before=self.cwnd,
            cwnd_after=self.cwnd * self.beta,
        )
        self.cwnd = laws.md_window(self.cwnd, self.beta)
        self.clamp_cwnd()
        self.ssthresh = self.cwnd
