"""Congestion control algorithms, re-implemented from their publications.

Importing this package registers every algorithm with the name registry in
:mod:`repro.cc.base`, so ``make_controller("bbr")`` etc. work after a plain
``import repro.cc``.

Algorithms:

* ``reno``   — NewReno AIMD baseline.
* ``cubic``  — RFC 8312 CUBIC with fast convergence and the TCP-friendly
  region (the incumbent in the paper's game).
* ``bbr``    — BBRv1's four-state machine (the challenger).
* ``bbr2``   — simplified BBRv2: loss-bounded in-flight cap, gentler
  probing (§4.6 of the paper).
* ``copa``   — Copa delay-target control (§4.2).
* ``vivace`` — PCC Vivace online-learning control (§4.2).
* ``vegas``  — classic delay-based Vegas (for the Reno/Vegas game
  literature the paper cites in §6).
"""

from repro.cc.base import (
    CongestionControl,
    available_algorithms,
    make_controller,
    register,
)
from repro.cc.bbr import BBRv1
from repro.cc.bbr2 import BBRv2
from repro.cc.copa import Copa
from repro.cc.cubic import Cubic
from repro.cc.reno import Reno
from repro.cc.vegas import Vegas
from repro.cc.vivace import Vivace

__all__ = [
    "CongestionControl",
    "available_algorithms",
    "make_controller",
    "register",
    "BBRv1",
    "BBRv2",
    "Copa",
    "Cubic",
    "Reno",
    "Vegas",
    "Vivace",
]
