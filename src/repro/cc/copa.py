"""Copa per-ACK adapter over :mod:`repro.cc.laws.copa`.

The delta/target-rate law and velocity rules live in the law module
(shared with :class:`repro.fluidsim.flows.FluidCopa`); this class
measures queuing delay as ``RTT_standing − RTT_min`` from per-ACK
samples, moves the window toward the target with the velocity
parameter, and paces at ``2 × cwnd / RTT_standing``.  Copa's optional
*competitive mode* (detect non-Copa competitors and shrink δ) is
implemented behind a flag, default off, matching the paper's Figure 7
observation that default-mode Copa lacks an interior Nash Equilibrium.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.laws import copa as laws
from repro.cc.laws.base import CongestionEventGate, smooth_rtt
from repro.cc.laws.copa import (  # noqa: F401 (canonical law re-exports)
    DEFAULT_DELTA,
    MIN_DELTA,
    RTT_MIN_WINDOW,
)
from repro.cc.signals import LossEvent, RateSample
from repro.util.filters import WindowedMin


@register("copa")
class Copa(CongestionControl):
    """Copa controller (paced at 2×cwnd/RTT_standing).

    Args:
        mss: Segment size in bytes.
        delta: Initial δ parameter (1/δ packets of queue at equilibrium).
        competitive_mode: Enable competitor detection / δ reduction.
    """

    name = "copa"
    loss_based = True  # Halves its window on loss, per the Copa paper.

    def __init__(
        self,
        mss: int = 1500,
        delta: float = DEFAULT_DELTA,
        competitive_mode: bool = False,
    ) -> None:
        super().__init__(mss=mss)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self.base_delta = delta
        self.competitive_mode = competitive_mode

        self._rtt_min_filter = WindowedMin(RTT_MIN_WINDOW)
        self._rtt_standing_filter: Optional[WindowedMin] = None
        self._srtt: Optional[float] = None

        self.velocity = 1.0
        self._direction = 0  # +1 opening, -1 closing.
        self._same_direction_count = 0
        self._last_update_time = 0.0

        # Competitive-mode estimator: time since the queue last looked empty.
        self._last_empty_queue_time = 0.0
        self._loss_gate = CongestionEventGate()

    # -- CongestionControl interface ------------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        rtt = sample.rtt
        self._srtt = smooth_rtt(self._srtt, rtt)
        rtt_min = self._rtt_min_filter.update(now, rtt)

        # RTT_standing: min RTT over the most recent srtt/2.
        if self._rtt_standing_filter is None or (
            abs(self._rtt_standing_filter.window - self._srtt / 2)
            > 0.25 * self._srtt
        ):
            window = max(self._srtt / 2, 1e-4)
            fresh = WindowedMin(window)
            fresh.update(now, rtt)
            self._rtt_standing_filter = fresh
        rtt_standing = self._rtt_standing_filter.update(now, rtt)

        queuing_delay = max(rtt_standing - rtt_min, 0.0)
        if self.competitive_mode:
            self._update_mode(now, queuing_delay, rtt_min)

        target_rate = laws.target_rate(self.mss, self.delta, queuing_delay)
        if math.isinf(target_rate):
            self._last_empty_queue_time = now
        current_rate = self.cwnd / max(rtt_standing, 1e-9)

        self._update_velocity(now)
        step = (
            self.velocity
            * self.mss
            * sample.acked_bytes
            / (self.delta * self.cwnd)
        )
        if current_rate <= target_rate:
            self.cwnd += step
            new_direction = 1
        else:
            self.cwnd -= step
            new_direction = -1
        self.clamp_cwnd()

        if new_direction != self._direction:
            self.velocity = 1.0
            self._same_direction_count = 0
        self._direction = new_direction
        self.pacing_rate = 2.0 * self.cwnd / max(rtt_standing, 1e-9)

    def _update_velocity(self, now: float) -> None:
        """Double velocity once per RTT while direction is consistent."""
        srtt = self._srtt if self._srtt is not None else 0.0
        if now - self._last_update_time < srtt:
            return
        self._last_update_time = now
        if self._direction != 0:
            self._same_direction_count += 1
            if self._same_direction_count >= laws.VELOCITY_DOUBLE_ROUNDS:
                self.velocity = laws.double_velocity(self.velocity)
        else:
            self._same_direction_count = 0

    def _update_mode(
        self, now: float, queuing_delay: float, rtt_min: float
    ) -> None:
        """Competitive-mode δ adaptation (Copa §4): if the queue has not
        looked "nearly empty" for 5 RTTs, a buffer-filling competitor is
        presumed and δ is halved; otherwise δ recovers toward default."""
        nearly_empty = queuing_delay < 0.1 * max(rtt_min, 1e-9)
        if nearly_empty:
            self._last_empty_queue_time = now
            restored = min(self.delta * 2.0, self.base_delta)
            if restored != self.delta:
                self.emit(
                    "cc.mode",
                    now,
                    mode="default",
                    delta_before=self.delta,
                    delta_after=restored,
                )
            self.delta = restored
        elif now - self._last_empty_queue_time > 5.0 * max(rtt_min, 1e-3):
            shrunk = max(self.delta / 2.0, MIN_DELTA)
            if shrunk != self.delta:
                self.emit(
                    "cc.mode",
                    now,
                    mode="competitive",
                    delta_before=self.delta,
                    delta_after=shrunk,
                )
            self.delta = shrunk
            self._last_empty_queue_time = now

    def on_loss(self, event: LossEvent) -> None:
        # Copa reduces its window on loss like an AIMD flow (Copa paper §2).
        if not self._loss_gate.admit(event.now, self._srtt):
            return
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=laws.LOSS_BETA,
            cwnd_before=self.cwnd,
            cwnd_after=self.cwnd * laws.LOSS_BETA,
        )
        self.cwnd *= laws.LOSS_BETA
        self.clamp_cwnd()
        self.velocity = 1.0
        self._direction = 0
