"""Copa congestion control (Arun & Balakrishnan, NSDI 2018).

Copa targets a sending rate of ``1 / (δ · d_q)`` packets per second, where
``d_q`` is the queuing delay measured as ``RTT_standing − RTT_min``.  The
window moves toward the target with a velocity parameter that doubles when
successive adjustments agree in direction.

The paper's Figure 7 finds that Copa (in its default mode) obtains *lower*
than fair-share throughput against CUBIC for every distribution — it lacks
the "disproportionate share when few" property that creates a mixed Nash
Equilibrium, so the paper expects no interior NE for Copa.  Copa's optional
*competitive mode* (which detects non-Copa competitors and shrinks δ) is
implemented behind a flag, default off, matching that observation.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.signals import LossEvent, RateSample
from repro.util.filters import WindowedMin

#: Default delta: trade-off between delay and throughput (default mode).
DEFAULT_DELTA = 0.5

#: Smallest delta reachable in competitive mode.
MIN_DELTA = 0.04

#: RTT_min filter window, seconds.
RTT_MIN_WINDOW = 10.0


@register("copa")
class Copa(CongestionControl):
    """Copa controller (paced at 2×cwnd/RTT_standing).

    Args:
        mss: Segment size in bytes.
        delta: Initial δ parameter (1/δ packets of queue at equilibrium).
        competitive_mode: Enable competitor detection / δ reduction.
    """

    name = "copa"
    loss_based = True  # Halves its window on loss, per the Copa paper.

    def __init__(
        self,
        mss: int = 1500,
        delta: float = DEFAULT_DELTA,
        competitive_mode: bool = False,
    ) -> None:
        super().__init__(mss=mss)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self.base_delta = delta
        self.competitive_mode = competitive_mode

        self._rtt_min_filter = WindowedMin(RTT_MIN_WINDOW)
        self._rtt_standing_filter: Optional[WindowedMin] = None
        self._srtt: Optional[float] = None

        self.velocity = 1.0
        self._direction = 0  # +1 opening, -1 closing.
        self._same_direction_count = 0
        self._last_update_time = 0.0
        self._last_cwnd_double: Optional[float] = None

        # Competitive-mode estimator: time since the queue last looked empty.
        self._last_empty_queue_time = 0.0
        self._last_loss: Optional[float] = None

    # -- CongestionControl interface ------------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        rtt = sample.rtt
        self._srtt = (
            rtt if self._srtt is None else 0.875 * self._srtt + 0.125 * rtt
        )
        rtt_min = self._rtt_min_filter.update(now, rtt)

        # RTT_standing: min RTT over the most recent srtt/2.
        if self._rtt_standing_filter is None or (
            abs(self._rtt_standing_filter.window - self._srtt / 2)
            > 0.25 * self._srtt
        ):
            window = max(self._srtt / 2, 1e-4)
            fresh = WindowedMin(window)
            fresh.update(now, rtt)
            self._rtt_standing_filter = fresh
        rtt_standing = self._rtt_standing_filter.update(now, rtt)

        queuing_delay = max(rtt_standing - rtt_min, 0.0)
        if self.competitive_mode:
            self._update_mode(now, queuing_delay, rtt_min)

        if queuing_delay <= 1e-9:
            target_rate = float("inf")
            self._last_empty_queue_time = now
        else:
            target_rate = self.mss / (self.delta * queuing_delay)
        current_rate = self.cwnd / max(rtt_standing, 1e-9)

        self._update_velocity(now)
        step = (
            self.velocity
            * self.mss
            * sample.acked_bytes
            / (self.delta * self.cwnd)
        )
        if current_rate <= target_rate:
            self.cwnd += step
            new_direction = 1
        else:
            self.cwnd -= step
            new_direction = -1
        self.clamp_cwnd()

        if new_direction != self._direction:
            self.velocity = 1.0
            self._same_direction_count = 0
        self._direction = new_direction
        self.pacing_rate = 2.0 * self.cwnd / max(rtt_standing, 1e-9)

    def _update_velocity(self, now: float) -> None:
        """Double velocity once per RTT while direction is consistent."""
        srtt = self._srtt if self._srtt is not None else 0.0
        if now - self._last_update_time < srtt:
            return
        self._last_update_time = now
        if self._direction != 0:
            self._same_direction_count += 1
            if self._same_direction_count >= 3:
                self.velocity = min(self.velocity * 2.0, 1e6)
        else:
            self._same_direction_count = 0

    def _update_mode(
        self, now: float, queuing_delay: float, rtt_min: float
    ) -> None:
        """Competitive-mode δ adaptation (Copa §4): if the queue has not
        looked "nearly empty" for 5 RTTs, a buffer-filling competitor is
        presumed and δ is halved; otherwise δ recovers toward default."""
        nearly_empty = queuing_delay < 0.1 * max(rtt_min, 1e-9)
        if nearly_empty:
            self._last_empty_queue_time = now
            restored = min(self.delta * 2.0, self.base_delta)
            if restored != self.delta:
                self.emit(
                    "cc.mode",
                    now,
                    mode="default",
                    delta_before=self.delta,
                    delta_after=restored,
                )
            self.delta = restored
        elif now - self._last_empty_queue_time > 5.0 * max(rtt_min, 1e-3):
            shrunk = max(self.delta / 2.0, MIN_DELTA)
            if shrunk != self.delta:
                self.emit(
                    "cc.mode",
                    now,
                    mode="competitive",
                    delta_before=self.delta,
                    delta_after=shrunk,
                )
            self.delta = shrunk
            self._last_empty_queue_time = now

    def on_loss(self, event: LossEvent) -> None:
        # Copa reduces its window on loss like an AIMD flow (Copa paper §2).
        if self._srtt is not None and (
            event.now - self._last_loss_time() < self._srtt
        ):
            return
        self._last_loss = event.now
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=0.5,
            cwnd_before=self.cwnd,
            cwnd_after=self.cwnd / 2.0,
        )
        self.cwnd /= 2.0
        self.clamp_cwnd()
        self.velocity = 1.0
        self._direction = 0

    def _last_loss_time(self) -> float:
        return self._last_loss if self._last_loss is not None else -1e9
