"""BBRv2 congestion control (simplified from the IETF-104 iccrg update).

BBRv2 keeps BBRv1's model-based skeleton (bandwidth and RTprop estimators,
a PROBE_BW cycle, periodic RTT probing) but is "a less aggressive
alternative" (§4.6 of the paper): it *reacts to packet loss* by maintaining
an upper bound ``inflight_hi`` on in-flight data, cut multiplicatively
(β = 0.3) when a round's loss rate exceeds ``LOSS_THRESH``, and it cruises
with 15% headroom below that bound.  Its PROBE_BW cycle is the four-phase
DOWN → CRUISE → REFILL → UP sequence, and ProbeRTT is gentler than v1's
(cwnd floor of 0.5 × BDP rather than 4 packets, every 5 s).

This implementation captures the behaviours the paper's §4.6 experiments
depend on: bounded aggression against loss-based flows (more CUBIC flows
at the Nash Equilibrium) while still claiming a disproportionate share
when BBRv2 flows are few.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.signals import LossEvent, RateSample
from repro.util.filters import WindowedMax

#: STARTUP pacing gain (BBRv2 uses 2.77).
STARTUP_GAIN = 2.77

#: Loss rate per round above which inflight_hi is cut.
LOSS_THRESH = 0.02

#: Multiplicative cut applied to inflight_hi on an over-threshold round.
BETA = 0.3

#: Headroom kept below inflight_hi while cruising.
HEADROOM = 0.85

#: ProbeRTT cadence (seconds); BBRv2 probes more often than v1.
PROBE_RTT_INTERVAL = 5.0

#: Minimum time spent in ProbeRTT (seconds).
PROBE_RTT_DURATION = 0.2

#: Time spent cruising before the next bandwidth probe (seconds).
CRUISE_INTERVAL = 2.5

#: Bandwidth filter window, packet-timed rounds.
BW_FILTER_ROUNDS = 10

#: RTprop filter window (seconds).
RTPROP_FILTER_LEN = 10.0

STARTUP = "STARTUP"
DRAIN = "DRAIN"
PROBE_DOWN = "PROBE_DOWN"
CRUISE = "CRUISE"
REFILL = "REFILL"
PROBE_UP = "PROBE_UP"
PROBE_RTT = "PROBE_RTT"


@register("bbr2")
class BBRv2(CongestionControl):
    """BBRv2 controller (paced, loss-bounded in-flight cap)."""

    name = "bbr2"
    loss_based = True  # Reacts to loss, unlike BBRv1.

    def __init__(self, mss: int = 1500) -> None:
        super().__init__(mss=mss)
        self.state = STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = 2.0

        self._bw_filter = WindowedMax(BW_FILTER_ROUNDS)
        self.rtprop: Optional[float] = None
        self._rtprop_stamp = 0.0

        self._round_count = 0
        self._next_round_delivered = 0
        self._round_start = False

        self._full_bw = 0.0
        self._full_bw_count = 0
        self.full_pipe = False

        self.inflight_hi = float("inf")
        self._round_lost_bytes = 0
        self._round_delivered_bytes = 0

        self._phase_stamp = 0.0
        self._probe_rtt_done_stamp: Optional[float] = None
        self._prior_cwnd = self.cwnd

        self.pacing_rate = None

    # -- derived estimates ----------------------------------------------------

    @property
    def bw(self) -> float:
        """Bottleneck-bandwidth estimate in bytes/second."""
        value = self._bw_filter.get()
        return value if value is not None else 0.0

    def bdp(self, gain: float = 1.0) -> float:
        """``gain × bw × RTprop`` in bytes; 0 before any estimates."""
        if self.rtprop is None:
            return 0.0
        return gain * self.bw * self.rtprop

    # -- CongestionControl interface -------------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        self._update_round(sample)
        if sample.delivery_rate > 0 and (
            not sample.is_app_limited or sample.delivery_rate > self.bw
        ):
            self._bw_filter.update(self._round_count, sample.delivery_rate)
        self._update_rtprop(sample)
        self._round_delivered_bytes += sample.acked_bytes

        if self._round_start:
            self._on_round_end(now, sample)

        self._advance_state_machine(now, sample)
        self._set_outputs(sample)

    def on_loss(self, event: LossEvent) -> None:
        self._round_lost_bytes += event.lost_bytes
        if self.state == STARTUP:
            # Excessive startup loss caps the pipe estimate immediately.
            self.inflight_hi = min(
                self.inflight_hi, max(event.in_flight, self.min_cwnd)
            )
            self.full_pipe = True

    # -- bookkeeping ------------------------------------------------------------

    def _update_round(self, sample: RateSample) -> None:
        self._round_start = False
        if sample.delivered_at_send >= self._next_round_delivered:
            self._next_round_delivered = sample.delivered
            self._round_count += 1
            self._round_start = True

    def _update_rtprop(self, sample: RateSample) -> None:
        now = sample.now
        expired = (
            self.rtprop is not None
            and now - self._rtprop_stamp > RTPROP_FILTER_LEN
        )
        if self.rtprop is None or sample.rtt <= self.rtprop or expired:
            self.rtprop = sample.rtt
            self._rtprop_stamp = now

    def _on_round_end(self, now: float, sample: RateSample) -> None:
        total = self._round_delivered_bytes + self._round_lost_bytes
        if total > 0:
            loss_rate = self._round_lost_bytes / total
            if loss_rate > LOSS_THRESH:
                # Loss says the path cannot sustain this much in flight.
                reference = max(
                    sample.in_flight + self._round_lost_bytes, self.min_cwnd
                )
                bound = min(self.inflight_hi, reference)
                self.inflight_hi = max(
                    bound * (1.0 - BETA), self.min_cwnd
                )
                self.emit(
                    "cc.backoff",
                    now,
                    kind="inflight_hi_cut",
                    beta=BETA,
                    loss_rate=loss_rate,
                    inflight_hi=self.inflight_hi,
                )
                if self.state == PROBE_UP:
                    self._enter_phase(PROBE_DOWN, now)
        self._round_lost_bytes = 0
        self._round_delivered_bytes = 0

    # -- state machine ---------------------------------------------------------

    def _advance_state_machine(self, now: float, sample: RateSample) -> None:
        if self.state == STARTUP:
            self._check_full_pipe()
            if self.full_pipe:
                self.emit_state(now, self.state, DRAIN)
                self.state = DRAIN
                self.pacing_gain = 0.5
        if self.state == DRAIN and sample.in_flight <= self.bdp():
            self._enter_phase(PROBE_DOWN, now)

        if self.state == PROBE_DOWN:
            target = HEADROOM * min(self.inflight_hi, self.bdp(1.0))
            if sample.in_flight <= max(target, self.min_cwnd):
                self._enter_phase(CRUISE, now)
        elif self.state == CRUISE:
            if now - self._phase_stamp > CRUISE_INTERVAL:
                self._enter_phase(REFILL, now)
        elif self.state == REFILL:
            if self.rtprop is not None and (
                now - self._phase_stamp > self.rtprop
            ):
                self._enter_phase(PROBE_UP, now)
        elif self.state == PROBE_UP:
            if sample.in_flight >= self.bdp(1.25) or (
                sample.in_flight >= self.inflight_hi
            ):
                self._enter_phase(PROBE_DOWN, now)

        self._check_probe_rtt(now, sample)

    def _enter_phase(self, phase: str, now: float) -> None:
        if phase != self.state:
            self.emit_state(now, self.state, phase)
        self.state = phase
        self._phase_stamp = now
        self.pacing_gain = {
            PROBE_DOWN: 0.9,
            CRUISE: 1.0,
            REFILL: 1.0,
            PROBE_UP: 1.25,
        }.get(phase, 1.0)
        self.cwnd_gain = 2.0

    def _check_full_pipe(self) -> None:
        if self.full_pipe or not self._round_start:
            return
        if self.bw >= self._full_bw * 1.25:
            self._full_bw = self.bw
            self._full_bw_count = 0
            return
        self._full_bw_count += 1
        if self._full_bw_count >= 3:
            self.full_pipe = True

    def _check_probe_rtt(self, now: float, sample: RateSample) -> None:
        if (
            self.state != PROBE_RTT
            and self.state != STARTUP
            and now - self._rtprop_stamp > PROBE_RTT_INTERVAL
        ):
            self.emit_state(now, self.state, PROBE_RTT)
            self.state = PROBE_RTT
            self.pacing_gain = 1.0
            self._prior_cwnd = max(self.cwnd, self._prior_cwnd)
            self._probe_rtt_done_stamp = None
        if self.state == PROBE_RTT:
            floor = max(0.5 * self.bdp(1.0), self.min_cwnd)
            if (
                self._probe_rtt_done_stamp is None
                and sample.in_flight <= floor * 1.05
            ):
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
            elif (
                self._probe_rtt_done_stamp is not None
                and now >= self._probe_rtt_done_stamp
            ):
                self._rtprop_stamp = now
                self.cwnd = max(self.cwnd, self._prior_cwnd)
                self._enter_phase(PROBE_DOWN, now)

    # -- control outputs ----------------------------------------------------------

    def _set_outputs(self, sample: RateSample) -> None:
        bw = self.bw
        if bw > 0:
            self.pacing_rate = self.pacing_gain * bw

        if self.state == PROBE_RTT:
            self.cwnd = max(0.5 * self.bdp(1.0), self.min_cwnd)
            return

        target = self.bdp(self.cwnd_gain) if self.full_pipe else float("inf")
        if self.state == CRUISE:
            cap = HEADROOM * self.inflight_hi
        else:
            cap = self.inflight_hi
        target = min(target, cap)
        if target == float("inf"):
            self.cwnd += sample.acked_bytes  # Startup growth.
            return
        if self.cwnd < target:
            self.cwnd = min(self.cwnd + sample.acked_bytes, target)
        else:
            self.cwnd = target
        self.clamp_cwnd()
