"""BBRv2 per-ACK adapter over :mod:`repro.cc.laws.bbr2`.

The loss-response law (β-cut ``inflight_hi`` bound, cruise headroom),
phase gains, and probing cadences live in the law module (shared with
:class:`repro.fluidsim.flows.FluidBBR2`); the v1 estimator kernels
(rounds, RTprop, full-pipe detection) come from
:mod:`repro.cc.laws.bbr`.  This class wires both to the packet
simulator's per-ACK sample stream and implements the four-phase
DOWN → CRUISE → REFILL → UP cycle plus the gentler ProbeRTT (cwnd
floor of 0.5 × BDP rather than 4 packets, every 5 s).
"""

from __future__ import annotations

from repro.cc.base import CongestionControl, register
from repro.cc.laws import bbr as v1_laws
from repro.cc.laws import bbr2 as laws
from repro.cc.laws.bbr2 import (  # noqa: F401 (canonical law re-exports)
    BETA,
    BW_FILTER_ROUNDS,
    CRUISE,
    CRUISE_INTERVAL,
    DRAIN,
    HEADROOM,
    LOSS_THRESH,
    PROBE_DOWN,
    PROBE_RTT,
    PROBE_RTT_DURATION,
    PROBE_RTT_INTERVAL,
    PROBE_UP,
    REFILL,
    RTPROP_FILTER_LEN,
    STARTUP,
    STARTUP_GAIN,
)
from repro.cc.signals import LossEvent, RateSample
from repro.util.filters import WindowedMax


@register("bbr2")
class BBRv2(CongestionControl):
    """BBRv2 controller (paced, loss-bounded in-flight cap)."""

    name = "bbr2"
    loss_based = True  # Reacts to loss, unlike BBRv1.

    def __init__(self, mss: int = 1500) -> None:
        super().__init__(mss=mss)
        self.state = STARTUP
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = 2.0

        self._bw_filter = WindowedMax(BW_FILTER_ROUNDS)
        self._rtprop = v1_laws.RtPropTracker()
        self._rounds = v1_laws.RoundCounter()
        self._full_pipe = v1_laws.FullPipeDetector()

        self.inflight_hi = float("inf")
        self._round_lost_bytes = 0
        self._round_delivered_bytes = 0

        self._phase_stamp = 0.0
        self._probe_rtt_done_stamp: float | None = None
        self._prior_cwnd = self.cwnd

        self.pacing_rate = None

    # -- derived estimates ----------------------------------------------------

    @property
    def bw(self) -> float:
        """Bottleneck-bandwidth estimate in bytes/second."""
        value = self._bw_filter.get()
        return value if value is not None else 0.0

    @property
    def rtprop(self) -> float | None:
        """Current RTprop estimate in seconds; None before any sample."""
        return self._rtprop.rtprop

    @property
    def full_pipe(self) -> bool:
        """True once STARTUP has ended (plateau or startup loss)."""
        return self._full_pipe.full

    @full_pipe.setter
    def full_pipe(self, value: bool) -> None:
        self._full_pipe.full = value

    def bdp(self, gain: float = 1.0) -> float:
        """``gain × bw × RTprop`` in bytes; 0 before any estimates."""
        if self.rtprop is None:
            return 0.0
        return gain * self.bw * self.rtprop

    # -- CongestionControl interface ------------------------------------------

    def on_ack(self, sample: RateSample) -> None:
        now = sample.now
        self._rounds.update(sample.delivered, sample.delivered_at_send)
        if sample.delivery_rate > 0 and (
            not sample.is_app_limited or sample.delivery_rate > self.bw
        ):
            self._bw_filter.update(self._rounds.count, sample.delivery_rate)
        self._rtprop.update(now, sample.rtt)
        self._round_delivered_bytes += sample.acked_bytes

        if self._rounds.round_start:
            self._on_round_end(now, sample)

        self._advance_state_machine(now, sample)
        self._set_outputs(sample)

    def on_loss(self, event: LossEvent) -> None:
        self._round_lost_bytes += event.lost_bytes
        if self.state == STARTUP:
            # Excessive startup loss caps the pipe estimate immediately.
            self.inflight_hi = min(
                self.inflight_hi, max(event.in_flight, self.min_cwnd)
            )
            self.full_pipe = True

    # -- bookkeeping ----------------------------------------------------------

    def _on_round_end(self, now: float, sample: RateSample) -> None:
        loss_rate = laws.loss_rate(
            self._round_lost_bytes, self._round_delivered_bytes
        )
        if loss_rate > LOSS_THRESH:
            # Loss says the path cannot sustain this much in flight.
            reference = max(
                sample.in_flight + self._round_lost_bytes, self.min_cwnd
            )
            self.inflight_hi = laws.cut_inflight_hi(
                self.inflight_hi, reference, self.min_cwnd
            )
            self.emit(
                "cc.backoff",
                now,
                kind="inflight_hi_cut",
                beta=BETA,
                loss_rate=loss_rate,
                inflight_hi=self.inflight_hi,
            )
            if self.state == PROBE_UP:
                self._enter_phase(PROBE_DOWN, now)
        self._round_lost_bytes = 0
        self._round_delivered_bytes = 0

    # -- state machine --------------------------------------------------------

    def _advance_state_machine(self, now: float, sample: RateSample) -> None:
        if self.state == STARTUP:
            if self._rounds.round_start:
                self._full_pipe.update(self.bw)
            if self.full_pipe:
                self.emit_state(now, self.state, DRAIN)
                self.state = DRAIN
                self.pacing_gain = 0.5
        if self.state == DRAIN and sample.in_flight <= self.bdp():
            self._enter_phase(PROBE_DOWN, now)

        if self.state == PROBE_DOWN:
            target = HEADROOM * min(self.inflight_hi, self.bdp(1.0))
            if sample.in_flight <= max(target, self.min_cwnd):
                self._enter_phase(CRUISE, now)
        elif self.state == CRUISE:
            if now - self._phase_stamp > CRUISE_INTERVAL:
                self._enter_phase(REFILL, now)
        elif self.state == REFILL:
            if self.rtprop is not None and (
                now - self._phase_stamp > self.rtprop
            ):
                self._enter_phase(PROBE_UP, now)
        elif self.state == PROBE_UP:
            if sample.in_flight >= self.bdp(1.25) or (
                sample.in_flight >= self.inflight_hi
            ):
                self._enter_phase(PROBE_DOWN, now)

        self._check_probe_rtt(now, sample)

    def _enter_phase(self, phase: str, now: float) -> None:
        if phase != self.state:
            self.emit_state(now, self.state, phase)
        self.state = phase
        self._phase_stamp = now
        self.pacing_gain = laws.PHASE_GAINS.get(phase, 1.0)
        self.cwnd_gain = 2.0

    def _check_probe_rtt(self, now: float, sample: RateSample) -> None:
        if (
            self.state != PROBE_RTT
            and self.state != STARTUP
            and now - self._rtprop.stamp > PROBE_RTT_INTERVAL
        ):
            self.emit_state(now, self.state, PROBE_RTT)
            self.state = PROBE_RTT
            self.pacing_gain = 1.0
            self._prior_cwnd = max(self.cwnd, self._prior_cwnd)
            self._probe_rtt_done_stamp = None
        if self.state == PROBE_RTT:
            floor = max(0.5 * self.bdp(1.0), self.min_cwnd)
            if (
                self._probe_rtt_done_stamp is None
                and sample.in_flight <= floor * 1.05
            ):
                self._probe_rtt_done_stamp = now + PROBE_RTT_DURATION
            elif (
                self._probe_rtt_done_stamp is not None
                and now >= self._probe_rtt_done_stamp
            ):
                self._rtprop.stamp = now
                self.cwnd = max(self.cwnd, self._prior_cwnd)
                self._enter_phase(PROBE_DOWN, now)

    # -- control outputs ------------------------------------------------------

    def _set_outputs(self, sample: RateSample) -> None:
        bw = self.bw
        if bw > 0:
            self.pacing_rate = self.pacing_gain * bw

        if self.state == PROBE_RTT:
            self.cwnd = max(0.5 * self.bdp(1.0), self.min_cwnd)
            return

        target = self.bdp(self.cwnd_gain) if self.full_pipe else float("inf")
        if self.state == CRUISE:
            cap = HEADROOM * self.inflight_hi
        else:
            cap = self.inflight_hi
        target = min(target, cap)
        if target == float("inf"):
            self.cwnd += sample.acked_bytes  # Startup growth.
            return
        if self.cwnd < target:
            self.cwnd = min(self.cwnd + sample.acked_bytes, target)
        else:
            self.cwnd = target
        self.clamp_cwnd()
