"""TCP Vegas control law (Brakmo & Peterson 1995).

Once per RTT::

    diff = cwnd · (RTT − baseRTT) / RTT          (packets of queue)
    diff < ALPHA_PACKETS → cwnd += 1 MSS
    diff > BETA_PACKETS  → cwnd −= 1 MSS
    otherwise              hold

plus Reno-style halving on loss and a slow start that doubles every
*other* RTT until the queue estimate exceeds ``GAMMA_PACKETS``.  Vegas
is the canonical delay-based loser against buffer-fillers: it targets
only α–β packets of queue, so CUBIC walks all over it — the historical
cautionary tale the paper's game-theoretic lineage (Akella et al.;
Trinh & Molnár, §6) is built on.
"""

from __future__ import annotations

#: Lower/upper targets on queued packets (Vegas' α and β).
ALPHA_PACKETS = 2.0
BETA_PACKETS = 4.0

#: Slow-start exit threshold on queued packets (Vegas' γ).
GAMMA_PACKETS = 1.0

#: Reno-style multiplicative backoff on loss.
LOSS_BETA = 0.5


def queued_packets(
    cwnd: float, rtt: float, base_rtt: float, mss: float
) -> float:
    """Vegas' diff: this flow's own packets sitting in the queue."""
    if base_rtt == float("inf") or rtt <= 0:
        return 0.0
    expected = cwnd / base_rtt
    actual = cwnd / rtt
    return (expected - actual) * base_rtt / mss


def window_adjustment(diff: float, mss: float) -> float:
    """Per-RTT congestion-avoidance step in bytes: ±1 MSS or hold."""
    if diff < ALPHA_PACKETS:
        return mss
    if diff > BETA_PACKETS:
        return -mss
    return 0.0
