"""The canonical congestion-control algorithm table.

Every algorithm the repo knows appears here exactly once, with the
law module holding its kernels and the adapter class for each substrate
(``None`` when an algorithm is deliberately single-substrate).  Both
name registries — :func:`repro.cc.base.make_controller` for the packet
simulator and :func:`repro.fluidsim.flows.make_fluid_flow` for the
fluid model — resolve through this table, so the two substrates can
never drift apart; ``repro-bbr cc list`` renders it for humans.

Adapter classes are referenced as ``"module:ClassName"`` strings and
imported lazily, so the table itself has no import cycle with the
packages it describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import import_module
from typing import Dict, List, Optional, Tuple

#: Constant types surfaced by :func:`kernel_parameters`.  State-name
#: strings and helper classes are part of the kernels, not parameters.
_PARAMETER_TYPES = (int, float, tuple, dict)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One canonical congestion-control algorithm.

    Attributes:
        name: Registry key (lowercase).
        summary: One-line description for ``repro-bbr cc list``.
        loss_based: Whether the algorithm cuts its window on loss (the
            fluid simulator uses this to pick overflow victims).
        laws: Dotted path of the law module holding the kernels.
        packet: ``"module:Class"`` of the per-ACK adapter, or None.
        fluid: ``"module:Class"`` of the per-tick adapter, or None.
        vec: ``"module:Class"`` of the vectorized (array-of-flows)
            per-tick kernel, or None.
    """

    name: str
    summary: str
    loss_based: bool
    laws: str
    packet: Optional[str]
    fluid: Optional[str]
    vec: Optional[str] = None

    @property
    def substrates(self) -> Tuple[str, ...]:
        """Names of the substrates this algorithm runs on."""
        return tuple(
            substrate
            for substrate, ref in (
                ("packet", self.packet),
                ("fluid", self.fluid),
                ("fluid-vec", self.vec),
            )
            if ref is not None
        )


_SPECS = (
    AlgorithmSpec(
        name="bbr",
        summary="BBRv1: model-based, gain-cycled, loss-agnostic",
        loss_based=False,
        laws="repro.cc.laws.bbr",
        packet="repro.cc.bbr:BBRv1",
        fluid="repro.fluidsim.flows:FluidBBR",
        vec="repro.fluidsim.vec_laws:VecBBR",
    ),
    AlgorithmSpec(
        name="bbr2",
        summary="BBRv2: BBR with a loss-bounded in-flight cap",
        loss_based=True,
        laws="repro.cc.laws.bbr2",
        packet="repro.cc.bbr2:BBRv2",
        fluid="repro.fluidsim.flows:FluidBBR2",
        vec="repro.fluidsim.vec_laws:VecBBR2",
    ),
    AlgorithmSpec(
        name="copa",
        summary="Copa: delay-target rate control with velocity",
        loss_based=True,
        laws="repro.cc.laws.copa",
        packet="repro.cc.copa:Copa",
        fluid="repro.fluidsim.flows:FluidCopa",
        vec="repro.fluidsim.vec_laws:VecCopa",
    ),
    AlgorithmSpec(
        name="cubic",
        summary="CUBIC: RFC 8312 window curve, 0.7 backoff",
        loss_based=True,
        laws="repro.cc.laws.cubic",
        packet="repro.cc.cubic:Cubic",
        fluid="repro.fluidsim.flows:FluidCubic",
        vec="repro.fluidsim.vec_laws:VecCubic",
    ),
    AlgorithmSpec(
        name="reno",
        summary="NewReno: classic AIMD baseline",
        loss_based=True,
        laws="repro.cc.laws.reno",
        packet="repro.cc.reno:Reno",
        fluid="repro.fluidsim.flows:FluidReno",
        vec="repro.fluidsim.vec_laws:VecReno",
    ),
    AlgorithmSpec(
        name="vegas",
        summary="Vegas: classic delay-based, 2-4 packets of queue",
        loss_based=True,
        laws="repro.cc.laws.vegas",
        packet="repro.cc.vegas:Vegas",
        fluid="repro.fluidsim.flows:FluidVegas",
        vec="repro.fluidsim.vec_laws:VecVegas",
    ),
    AlgorithmSpec(
        name="vivace",
        summary="PCC Vivace: online-learning utility gradients",
        loss_based=False,
        laws="repro.cc.laws.vivace",
        packet="repro.cc.vivace:Vivace",
        fluid="repro.fluidsim.flows:FluidVivace",
        vec="repro.fluidsim.vec_laws:VecVivace",
    ),
)

#: The canonical table, keyed by algorithm name.
ALGORITHMS: Dict[str, AlgorithmSpec] = {spec.name: spec for spec in _SPECS}


def canonical_names() -> List[str]:
    """Sorted names of every canonical algorithm."""
    return sorted(ALGORITHMS)


def get_spec(name: str) -> AlgorithmSpec:
    """Look up a spec by (case-insensitive) name."""
    key = name.lower()
    if key not in ALGORITHMS:
        raise KeyError(
            f"unknown congestion control {name!r}; "
            f"available: {canonical_names()}"
        )
    return ALGORITHMS[key]


def _load(ref: str) -> type:
    module_name, _, attr = ref.partition(":")
    return getattr(import_module(module_name), attr)


def packet_class(name: str) -> type:
    """The per-ACK adapter class for ``name`` (KeyError if fluid-only)."""
    spec = get_spec(name)
    if spec.packet is None:
        raise KeyError(
            f"congestion control {name!r} has no packet-substrate adapter"
        )
    return _load(spec.packet)


def fluid_class(name: str) -> type:
    """The per-tick adapter class for ``name`` (KeyError if packet-only)."""
    spec = get_spec(name)
    if spec.fluid is None:
        raise KeyError(
            f"congestion control {name!r} has no fluid-substrate adapter"
        )
    return _load(spec.fluid)


def vec_class(name: str) -> type:
    """The vectorized per-tick kernel class for ``name``.

    Raises KeyError when the algorithm has no array-of-flows kernel
    (i.e. it cannot run on the ``fluid-vec`` substrate).
    """
    spec = get_spec(name)
    if spec.vec is None:
        raise KeyError(
            f"congestion control {name!r} has no vectorized fluid kernel"
        )
    return _load(spec.vec)


def state_names(name: str) -> Dict[str, str]:
    """The law module's state-name bindings, by constant name.

    Every UPPERCASE string binding of the algorithm's law module —
    for BBR-family laws these are the state-machine phase names
    (``STARTUP``, ``DRAIN``, ...).  The invariant sanitizer
    (:mod:`repro.check`) builds its legal-state tables from these so
    the checker can never drift from the laws it audits.
    """
    module = import_module(get_spec(name).laws)
    return {
        key: value
        for key, value in sorted(vars(module).items())
        if key.isupper()
        and not key.startswith("_")
        and isinstance(value, str)
    }


def kernel_parameters(name: str) -> Dict[str, object]:
    """The law module's constants, by name.

    Every UPPERCASE numeric/tuple binding of the algorithm's law module
    — the complete parameterization of its control law, suitable for
    sanity-checking experiment configs without reading source.
    """
    module = import_module(get_spec(name).laws)
    return {
        key: value
        for key, value in sorted(vars(module).items())
        if key.isupper()
        and not key.startswith("_")
        and isinstance(value, _PARAMETER_TYPES)
        and not isinstance(value, bool)
    }
