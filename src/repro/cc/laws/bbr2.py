"""BBRv2 control law (simplified from the IETF-104 iccrg update).

BBRv2 keeps BBRv1's model-based skeleton (bandwidth and RTprop
estimators, a PROBE_BW cycle, periodic RTT probing) but is "a less
aggressive alternative" (paper §4.6): it *reacts to packet loss* by
maintaining an upper bound ``inflight_hi`` on in-flight data, cut
multiplicatively (β = 0.3) when a round's loss rate exceeds
``LOSS_THRESH``, and it cruises with 15% headroom below that bound.
Its PROBE_BW cycle is the four-phase DOWN → CRUISE → REFILL → UP
sequence, and ProbeRTT is gentler and more frequent than v1's.

These laws capture the behaviours the paper's §4.6 experiments depend
on: bounded aggression against loss-based flows (more CUBIC flows at
the Nash Equilibrium) while still claiming a disproportionate share
when BBRv2 flows are few.  The v1 estimator kernels
(:class:`~repro.cc.laws.bbr.RoundCounter`,
:class:`~repro.cc.laws.bbr.RtPropTracker`,
:class:`~repro.cc.laws.bbr.FullPipeDetector`) are reused unchanged.
"""

from __future__ import annotations

from repro.cc.laws.bbr import RTPROP_FILTER_LEN  # noqa: F401 (re-export)

#: STARTUP pacing gain (BBRv2 uses 2.77).
STARTUP_GAIN = 2.77

#: Loss rate per round above which inflight_hi is cut.
LOSS_THRESH = 0.02

#: Multiplicative cut applied to inflight_hi on an over-threshold round.
BETA = 0.3

#: Headroom kept below inflight_hi while cruising.
HEADROOM = 0.85

#: ProbeRTT cadence (seconds); BBRv2 probes more often than v1.
PROBE_RTT_INTERVAL = 5.0

#: Minimum time spent in ProbeRTT (seconds).
PROBE_RTT_DURATION = 0.2

#: Time spent cruising before the next bandwidth probe (seconds).
CRUISE_INTERVAL = 2.5

#: Seconds between fluid-model PROBE_UP attempts that regrow inflight_hi.
PROBE_UP_INTERVAL = 3.0

#: Bound-regrowth factor applied by each PROBE_UP attempt.
PROBE_UP_GAIN = 1.25

#: Bandwidth filter window, packet-timed rounds.
BW_FILTER_ROUNDS = 10

STARTUP = "STARTUP"
DRAIN = "DRAIN"
PROBE_DOWN = "PROBE_DOWN"
CRUISE = "CRUISE"
REFILL = "REFILL"
PROBE_UP = "PROBE_UP"
PROBE_RTT = "PROBE_RTT"

#: Pacing gain per PROBE_BW phase (phases not listed pace at 1).
PHASE_GAINS = {
    PROBE_DOWN: 0.9,
    CRUISE: 1.0,
    REFILL: 1.0,
    PROBE_UP: 1.25,
}


def loss_rate(lost_bytes: float, delivered_bytes: float) -> float:
    """A round's loss rate; 0 when the round carried no traffic."""
    total = delivered_bytes + lost_bytes
    if total <= 0:
        return 0.0
    return lost_bytes / total


def cut_inflight_hi(
    inflight_hi: float, reference: float, floor: float
) -> float:
    """The β-cut bound after an over-threshold round.

    The bound is first clamped to what was actually in flight
    (``reference``), then cut by β, never below ``floor``.
    """
    bound = min(inflight_hi, reference)
    return max(bound * (1.0 - BETA), floor)
