"""Shared control-law primitives used by every algorithm kernel.

The :class:`Signals` record is the substrate-neutral observation a kernel
consumes: the packet adapters fill it from one ACK's
:class:`~repro.cc.signals.RateSample`, the fluid adapters from one tick's
:class:`~repro.fluidsim.core.TickContext`.  Kernels never see ACKs or
ticks directly, so a law stated here holds at both granularities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Initial congestion window, in segments (RFC 6928).
INITIAL_CWND_SEGMENTS = 10

#: Floor on the congestion window, in segments.
MIN_CWND_SEGMENTS = 2

#: EWMA gain for smoothed-RTT updates (RFC 6298's 1/8).
SRTT_GAIN = 0.125


@dataclass(frozen=True)
class Signals:
    """One substrate-neutral observation of the path.

    Attributes:
        now: Observation time in seconds.
        rtt: The RTT sample carried by this observation, seconds.
        delivered_bytes: Bytes newly delivered since the last observation.
        lost_bytes: Bytes newly declared lost since the last observation.
        delivery_rate: Measured delivery rate in bytes/second (0 when no
            estimate is available yet).
        app_limited: True when the sample under-states the path capacity
            because the sender had nothing to send.
    """

    now: float
    rtt: float
    delivered_bytes: float = 0.0
    lost_bytes: float = 0.0
    delivery_rate: float = 0.0
    app_limited: bool = False


def smooth_rtt(srtt: Optional[float], rtt: float) -> float:
    """RFC 6298 smoothed RTT: ``(1 − 1/8)·srtt + (1/8)·rtt``."""
    if srtt is None:
        return rtt
    return (1.0 - SRTT_GAIN) * srtt + SRTT_GAIN * rtt


class CongestionEventGate:
    """Collapses a burst of losses into one congestion event per interval.

    Every loss-reacting algorithm backs off at most once per RTT: the
    drops from a single buffer overflow arrive within one RTT and must
    count as a single congestion event.  ``admit`` returns True — and
    arms the gate — only when at least ``interval`` seconds have passed
    since the last admitted event.
    """

    __slots__ = ("last_event",)

    def __init__(self) -> None:
        self.last_event: Optional[float] = None

    def admit(self, now: float, interval: Optional[float]) -> bool:
        """True when a loss at ``now`` starts a new congestion event."""
        if (
            self.last_event is not None
            and interval is not None
            and now - self.last_event < interval
        ):
            return False
        self.last_event = now
        return True
