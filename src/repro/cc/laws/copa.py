"""Copa control law (Arun & Balakrishnan, NSDI 2018).

Copa targets a sending rate of ``1 / (δ · d_q)`` packets per second,
where ``d_q`` is the queuing delay measured against the RTT_min
estimate.  The window moves toward the target with a velocity parameter
that doubles when ``VELOCITY_DOUBLE_ROUNDS`` successive per-RTT
adjustments agree in direction, and resets to 1 the moment the
direction flips.

The paper's Figure 7 finds that Copa (in its default mode) obtains
*lower* than fair-share throughput against CUBIC for every distribution
— it lacks the "disproportionate share when few" property that creates
a mixed Nash Equilibrium.  Copa's optional *competitive mode* (detect
non-Copa competitors, shrink δ) is a per-ACK adapter feature, default
off, matching that observation.
"""

from __future__ import annotations

#: Default delta: trade-off between delay and throughput (default mode).
DEFAULT_DELTA = 0.5

#: Smallest delta reachable in competitive mode.
MIN_DELTA = 0.04

#: RTT_min filter window, seconds.
RTT_MIN_WINDOW = 10.0

#: Multiplicative backoff on loss (Copa paper §2: AIMD-style halving).
LOSS_BETA = 0.5

#: Consecutive same-direction per-RTT updates before velocity doubles.
VELOCITY_DOUBLE_ROUNDS = 3

#: Upper bound on the velocity parameter.
VELOCITY_CAP = 1e6


def target_rate(mss: float, delta: float, queuing_delay: float) -> float:
    """Copa's target rate in bytes/s; +inf when the queue looks empty."""
    if queuing_delay <= 1e-9:
        return float("inf")
    return mss / (delta * queuing_delay)


def double_velocity(velocity: float) -> float:
    """One velocity doubling, capped at :data:`VELOCITY_CAP`."""
    return min(velocity * 2.0, VELOCITY_CAP)
