"""BBR (v1) control law — the four-state machine of the paper's §2.1.

From the BBR paper (Cardwell et al., CACM 2017) and
draft-cardwell-iccrg-bbr-congestion-control:

* **STARTUP** — exponential search with pacing gain 2/ln 2 ≈ 2.885;
  exits when the bandwidth estimate stops growing ≥25% per round for
  three consecutive rounds ("full pipe").
* **DRAIN** — inverse gain until in-flight ≤ 1 estimated BDP.
* **PROBE_BW** — 8-phase gain cycle [1.25, 0.75, 1, 1, 1, 1, 1, 1], one
  phase per RTprop.
* **PROBE_RTT** — every 10 s, shrink the window for at least 200 ms to
  drain the queue and refresh the RTT_min estimate.

The in-flight cap of ``CWND_GAIN (=2) × estimated BDP`` is the property
the paper's model depends on (assumption 2 of §2.3): when competing with
CUBIC, RTprop is over-estimated by CUBIC's minimum buffer occupancy, so
this cap is what actually governs BBR's send rate.  BBRv1 is
loss-agnostic (assumption 4).

The kernels below hold all of this once; the per-ACK adapter
(:class:`repro.cc.bbr.BBRv1`) and the per-tick adapter
(:class:`repro.fluidsim.flows.FluidBBR`) drive them at their own
granularities.
"""

from __future__ import annotations

import math
from typing import Optional

#: STARTUP/DRAIN gain: 2/ln(2), enough to double the sending rate per round.
HIGH_GAIN = 2.0 / math.log(2.0)

#: PROBE_BW pacing-gain cycle (one phase per RTprop).
GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

#: PROBE_BW entry phase: neutral (gain 1) so we never probe right after
#: draining.
PROBE_BW_NEUTRAL_PHASE = 2

#: cwnd gain outside STARTUP: in-flight cap of 2 × estimated BDP.
CWND_GAIN = 2.0

#: Bandwidth filter window, in packet-timed rounds.
BTLBW_FILTER_ROUNDS = 10

#: RTprop filter window and ProbeRTT cadence, seconds.
RTPROP_FILTER_LEN = 10.0

#: Minimum time spent in PROBE_RTT, seconds.
PROBE_RTT_DURATION = 0.2

#: cwnd during PROBE_RTT, in packets.
PROBE_RTT_CWND_SEGMENTS = 4

#: STARTUP exits when bw grows less than this factor per round...
STARTUP_GROWTH_THRESH = 1.25

#: ...for this many consecutive rounds.
STARTUP_PLATEAU_ROUNDS = 3

STARTUP = "STARTUP"
DRAIN = "DRAIN"
PROBE_BW = "PROBE_BW"
PROBE_RTT = "PROBE_RTT"


class RoundCounter:
    """Packet-timed round accounting (draft §4.1.1.3).

    A round elapses when a packet sent after the start of the current
    round is ACKed — i.e. when the ``delivered`` count at send time has
    caught up with the round's starting mark.
    """

    __slots__ = ("count", "next_delivered", "round_start")

    def __init__(self) -> None:
        self.count = 0
        self.next_delivered = 0
        self.round_start = False

    def update(self, delivered: int, delivered_at_send: int) -> bool:
        """Advance on one ACK; True when this ACK starts a new round."""
        self.round_start = False
        if delivered_at_send >= self.next_delivered:
            self.next_delivered = delivered
            self.count += 1
            self.round_start = True
        return self.round_start


class RtPropTracker:
    """Windowed-min RTprop estimator.

    New minima refresh both the estimate and its timestamp; when the
    window expires the next sample is accepted unconditionally (the
    ``expired`` flag is what sends BBRv1 into PROBE_RTT).
    """

    __slots__ = ("window", "rtprop", "stamp", "expired")

    def __init__(self, window: float = RTPROP_FILTER_LEN) -> None:
        self.window = window
        self.rtprop: Optional[float] = None
        self.stamp = 0.0
        self.expired = False

    def update(self, now: float, rtt: float) -> Optional[float]:
        self.expired = (
            self.rtprop is not None and now - self.stamp > self.window
        )
        if self.rtprop is None or rtt <= self.rtprop or self.expired:
            self.rtprop = rtt
            self.stamp = now
        return self.rtprop


class FullPipeDetector:
    """STARTUP exit law: the pipe is full once bandwidth plateaus.

    Each round, a bandwidth estimate that fails to grow by at least
    ``STARTUP_GROWTH_THRESH`` over the best-seen value counts toward the
    plateau; ``STARTUP_PLATEAU_ROUNDS`` consecutive such rounds declare
    the pipe full.  Both substrates run exactly this test — the packet
    adapter on round starts, the fluid adapter once per RTT.
    """

    __slots__ = ("full", "best_bw", "count")

    def __init__(self) -> None:
        self.full = False
        self.best_bw = 0.0
        self.count = 0

    def update(self, bw: float) -> bool:
        """Feed one round's bandwidth estimate; True once the pipe is full."""
        if self.full:
            return True
        if bw >= self.best_bw * STARTUP_GROWTH_THRESH:
            self.best_bw = bw
            self.count = 0
            return False
        self.count += 1
        if self.count >= STARTUP_PLATEAU_ROUNDS:
            self.full = True
        return self.full


class GainCycler:
    """PROBE_BW pacing-gain rotation: one :data:`GAIN_CYCLE` phase per
    RTprop, starting from the neutral phase."""

    __slots__ = ("index", "stamp")

    def __init__(self, now: float = 0.0) -> None:
        self.index = PROBE_BW_NEUTRAL_PHASE
        self.stamp = now

    def reset(self, now: float) -> None:
        """Re-enter the cycle at the neutral phase."""
        self.index = PROBE_BW_NEUTRAL_PHASE
        self.stamp = now

    @property
    def gain(self) -> float:
        return GAIN_CYCLE[self.index]

    def advance(self, now: float, rtprop: Optional[float]) -> float:
        """Rotate to the next phase once a full RTprop has elapsed."""
        if rtprop is not None and now - self.stamp > rtprop:
            self.index = (self.index + 1) % len(GAIN_CYCLE)
            self.stamp = now
        return GAIN_CYCLE[self.index]
