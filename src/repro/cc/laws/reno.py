"""NewReno control law: classic AIMD.

Slow start doubles the window each RTT, congestion avoidance adds one
segment per RTT, and a loss event multiplies the window by ``BETA``.
The resulting throughput follows the ``MSS/(RTT·√p)`` law the test
suite checks.
"""

from __future__ import annotations

#: Multiplicative-decrease factor: cwnd shrinks *to* BETA × cwnd on loss.
BETA = 0.5


def ai_increment(mss: float, acked_bytes: float, cwnd: float) -> float:
    """Congestion-avoidance growth for ``acked_bytes`` of progress.

    Integrates to one segment per RTT when a full window is ACKed.
    """
    return mss * acked_bytes / cwnd


def md_window(cwnd: float, beta: float = BETA) -> float:
    """Multiplicative decrease: the window after one congestion event."""
    return cwnd * beta
