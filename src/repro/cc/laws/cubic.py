"""CUBIC control law (RFC 8312 / Linux ``tcp_cubic.c`` defaults).

The window growth curve is the paper's Equation (1)::

    w(t) = C_CUBIC * (t - K)^3 + W_max

with ``K = cbrt(W_max * (1 - BETA_CUBIC) / C_CUBIC)`` so the curve
plateaus exactly at the pre-loss maximum.  All windows here are in
*segments* — CUBIC's native unit — and both substrates evaluate these
same functions: the packet adapter per ACK, the fluid adapter per tick.

What matters for the paper's model is the 0.7 backoff: CUBIC's minimum
buffer occupancy after a loss is what bloats BBR's RTT_min estimate
(Equations 9–12).
"""

from __future__ import annotations

from typing import Optional, Tuple

#: CUBIC scaling constant (units: segments / second^3).
C_CUBIC = 0.4

#: Multiplicative decrease: cwnd drops *to* BETA_CUBIC × W_max.
BETA_CUBIC = 0.7


def k_from_w_max(w_max: float) -> float:
    """Epoch duration ``K`` until the curve regains ``w_max`` (seconds)."""
    return (w_max * (1.0 - BETA_CUBIC) / C_CUBIC) ** (1.0 / 3.0)


def window(t: float, k: float, w_max: float) -> float:
    """Equation (1): target window in segments, ``t`` s into the epoch."""
    return C_CUBIC * (t - k) ** 3 + w_max


def begin_epoch(
    cwnd_segments: float, w_max: Optional[float]
) -> Tuple[float, float]:
    """Start a growth epoch; returns the ``(w_max, k)`` pair to use.

    When there was no prior loss — or the window already grew past the
    old maximum — the curve is anchored at the current window with
    ``K = 0``; otherwise it aims at the recorded ``w_max``.
    """
    if w_max is None or w_max < cwnd_segments:
        return cwnd_segments, 0.0
    return w_max, k_from_w_max(w_max)


def reduce_w_max(
    cwnd_segments: float, w_max: Optional[float], fast_convergence: bool
) -> float:
    """New ``W_max`` after a congestion event at ``cwnd_segments``.

    With fast convergence (Linux default), a flow whose share is still
    shrinking (loss below the previous maximum) remembers *less* than it
    had, releasing bandwidth to newer flows faster.
    """
    if fast_convergence and w_max is not None and cwnd_segments < w_max:
        return cwnd_segments * (2.0 - BETA_CUBIC) / 2.0
    return cwnd_segments


def reno_emulation_window(w_max: float, t: float, rtt: float) -> float:
    """RFC 8312 §4.2 TCP-friendly region: Reno's average window at ``t``.

    CUBIC never grows slower than a Reno flow started from the same
    backoff, keeping it competitive in short-RTT / small-BDP regimes.
    """
    return w_max * BETA_CUBIC + (
        3.0 * (1.0 - BETA_CUBIC) / (1.0 + BETA_CUBIC)
    ) * (t / max(rtt, 1e-9))
