"""Substrate-agnostic congestion-control laws.

One module per algorithm (``laws.reno``, ``laws.cubic``, ``laws.bbr``,
``laws.bbr2``, ``laws.copa``, ``laws.vegas``, ``laws.vivace``) holds
every constant, filter, and state-machine transition of that algorithm
as pure, deterministic kernels.  Two kinds of adapters drive them:

* :mod:`repro.cc` — per-ACK controllers for the packet-level simulator;
* :mod:`repro.fluidsim.flows` — per-tick dynamics for the fluid model.

Both substrates therefore run *the same algorithm at two granularities*
— the structural property the paper's cross-substrate validation (and
the model literature it builds on) depends on.  ``laws.registry`` is the
single canonical table mapping algorithm names to their kernels and
adapter classes; both substrate registries derive from it.

See ``docs/ARCHITECTURE.md`` for the layering.
"""

from repro.cc.laws.base import (
    INITIAL_CWND_SEGMENTS,
    MIN_CWND_SEGMENTS,
    SRTT_GAIN,
    CongestionEventGate,
    Signals,
    smooth_rtt,
)
from repro.cc.laws.registry import (
    ALGORITHMS,
    AlgorithmSpec,
    canonical_names,
    fluid_class,
    get_spec,
    kernel_parameters,
    packet_class,
    state_names,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "CongestionEventGate",
    "INITIAL_CWND_SEGMENTS",
    "MIN_CWND_SEGMENTS",
    "SRTT_GAIN",
    "Signals",
    "canonical_names",
    "fluid_class",
    "get_spec",
    "kernel_parameters",
    "packet_class",
    "smooth_rtt",
    "state_names",
]
