"""PCC Vivace control law (Dong et al., NSDI 2018).

Vivace is rate-based online learning: time is sliced into monitor
intervals (MIs), each MI measures the utility

    U(x) = x^0.9 − b · x · max(0, dRTT/dt) − c · x · L

with ``x`` the achieved rate in Mbps, ``L`` the observed loss rate.
Paired MIs at rates ``r(1+ε)`` and ``r(1−ε)`` estimate the utility
gradient, and the rate moves in the gradient's direction with a
confidence-amplified step.

Vivace comes in two flavours: Vivace-Loss (``b = 0``) and
Vivace-Latency (``b = 900``); the latency-sensitive variant
deliberately concedes to buffer-filling competitors (Vivace §3).  The
IMC paper's Figure 7 shows "PCC Vivace" claiming a disproportionately
*large* share against CUBIC when its flows are few — the behaviour of
Vivace-Loss — so both adapters default ``latency_coeff`` to 0.
"""

from __future__ import annotations

from typing import Tuple

#: Utility exponent on throughput.
THROUGHPUT_EXPONENT = 0.9

#: Latency-gradient penalty coefficient of the latency-sensitive variant.
LATENCY_COEFF = 900.0

#: Loss penalty coefficient.
LOSS_COEFF = 11.35

#: Rate perturbation for gradient probing.
EPSILON = 0.05

#: Maximum confidence amplifier (consecutive same-direction doublings).
MAX_AMPLIFIER = 8.0

#: Floor on the sending rate, bytes/second (≈0.12 Mbps).
MIN_RATE = 15_000.0

#: Default initial sending rate, bytes/second (1 Mbps).
DEFAULT_INITIAL_RATE = 125_000.0


def utility(
    rate: float,
    rtt_gradient: float,
    loss_rate: float,
    latency_coeff: float,
    loss_coeff: float,
) -> float:
    """Vivace's utility for a rate in bytes/s (scored in Mbps units)."""
    x_mbps = rate * 8.0 / 1e6
    if x_mbps <= 0:
        return 0.0
    return (
        x_mbps ** THROUGHPUT_EXPONENT
        - latency_coeff * x_mbps * max(0.0, rtt_gradient)
        - loss_coeff * x_mbps * loss_rate
    )


def probe_rate(rate: float, phase: int) -> float:
    """The paired-probe rate: ``r(1+ε)`` in phase 0, ``r(1−ε)`` in phase 1.

    The pair stays distinct even at the rate floor, or the gradient
    degenerates and the flow can never climb back up.
    """
    factor = 1.0 + EPSILON if phase == 0 else 1.0 - EPSILON
    return rate * factor


def score_interval(
    elapsed: float,
    delivered_bytes: float,
    lost_bytes: float,
    rtt_gradient: float,
    latency_coeff: float,
    loss_coeff: float,
) -> float:
    """Utility of one finished monitor interval."""
    elapsed = max(elapsed, 1e-6)
    achieved = delivered_bytes / elapsed
    total = delivered_bytes + lost_bytes
    loss_rate = lost_bytes / total if total > 0 else 0.0
    return utility(
        achieved, rtt_gradient, loss_rate, latency_coeff, loss_coeff
    )


def gradient_step(
    rate: float,
    u_plus: float,
    u_minus: float,
    amplifier: float,
    last_direction: int,
) -> Tuple[float, int, float]:
    """One rate update from a scored probe pair.

    Returns ``(new_rate, direction, new_amplifier)``.  Equal utilities
    carry no gradient signal: the rate holds and the confidence resets
    (``direction`` 0).  A direction consistent with the previous step
    doubles the confidence amplifier, capped at :data:`MAX_AMPLIFIER`;
    a flip resets it.  The rate never falls below :data:`MIN_RATE`.
    """
    if u_plus == u_minus:
        return rate, 0, 1.0
    direction = 1 if u_plus > u_minus else -1
    if direction == last_direction:
        amplifier = min(amplifier * 2.0, MAX_AMPLIFIER)
    else:
        amplifier = 1.0
    new_rate = max(
        rate + direction * EPSILON * amplifier * rate, MIN_RATE
    )
    return new_rate, direction, amplifier
