"""TCP Vegas (Brakmo & Peterson 1995) — the classic delay-based CCA.

Included because the game-theoretic lineage the paper builds on (Akella
et al.; Trinh & Molnár, both cited in §6) analyzed Reno-vs-Vegas games,
and because Vegas is the canonical example of a CCA that *loses* to
buffer-fillers: it targets only α–β packets of queue, so CUBIC walks all
over it — the historical cautionary tale for why delay-based designs
needed BBR's rethink.

Control law, once per RTT::

    diff = cwnd · (RTT − baseRTT) / RTT          (packets of queue)
    diff < α  → cwnd += 1 MSS
    diff > β  → cwnd −= 1 MSS
    otherwise  hold

with α = 2, β = 4, plus Reno-style halving on loss and a slow-start that
doubles every *other* RTT until the queue estimate exceeds γ (= 1).
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.signals import LossEvent, RateSample

#: Lower/upper targets on queued packets (Vegas' α and β).
ALPHA_PACKETS = 2.0
BETA_PACKETS = 4.0

#: Slow-start exit threshold on queued packets (Vegas' γ).
GAMMA_PACKETS = 1.0


@register("vegas")
class Vegas(CongestionControl):
    """TCP Vegas controller (ack-clocked, no pacing)."""

    name = "vegas"
    loss_based = True

    def __init__(self, mss: int = 1500) -> None:
        super().__init__(mss=mss)
        self.base_rtt = float("inf")
        self._min_rtt_this_round = float("inf")
        self._round_end_delivered = 0
        self._in_slow_start = True
        self._grow_this_round = True  # Doubles every other round.
        self._last_reduction: Optional[float] = None
        self._srtt: Optional[float] = None

    def queued_packets(self, rtt: float) -> float:
        """Vegas' diff: estimated own packets sitting in the queue."""
        if self.base_rtt == float("inf") or rtt <= 0:
            return 0.0
        expected = self.cwnd / self.base_rtt
        actual = self.cwnd / rtt
        return (expected - actual) * self.base_rtt / self.mss

    def on_ack(self, sample: RateSample) -> None:
        rtt = sample.rtt
        self.base_rtt = min(self.base_rtt, rtt)
        self._min_rtt_this_round = min(self._min_rtt_this_round, rtt)
        self._srtt = (
            rtt if self._srtt is None else 0.875 * self._srtt + 0.125 * rtt
        )
        if sample.delivered < self._round_end_delivered:
            return
        # One packet-timed round has elapsed: run the per-RTT update
        # using the round's best RTT sample.
        self._round_end_delivered = sample.delivered + int(self.cwnd)
        diff = self.queued_packets(self._min_rtt_this_round)
        self._min_rtt_this_round = float("inf")

        if self._in_slow_start:
            if diff > GAMMA_PACKETS:
                self._in_slow_start = False
                self.emit_state(sample.now, "SLOW_START", "AVOIDANCE")
                self.cwnd -= self.mss  # Back off the overshoot.
            elif self._grow_this_round:
                self.cwnd *= 2.0
            self._grow_this_round = not self._grow_this_round
            return

        if diff < ALPHA_PACKETS:
            self.cwnd += self.mss
        elif diff > BETA_PACKETS:
            self.cwnd -= self.mss
        self.clamp_cwnd()

    def on_loss(self, event: LossEvent) -> None:
        if (
            self._last_reduction is not None
            and self._srtt is not None
            and event.now - self._last_reduction < self._srtt
        ):
            return
        self._last_reduction = event.now
        self._in_slow_start = False
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=0.5,
            cwnd_before=self.cwnd,
            cwnd_after=self.cwnd / 2.0,
        )
        self.cwnd /= 2.0
        self.clamp_cwnd()
