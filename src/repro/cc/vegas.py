"""TCP Vegas per-ACK adapter over :mod:`repro.cc.laws.vegas`.

The α/β/γ queue-occupancy law lives in the law module (shared with
:class:`repro.fluidsim.flows.FluidVegas`); this class runs it once per
packet-timed round using the round's best RTT sample, with Reno-style
halving on loss and a slow start that doubles every other round.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl, register
from repro.cc.laws import vegas as laws
from repro.cc.laws.base import CongestionEventGate, smooth_rtt
from repro.cc.laws.vegas import (  # noqa: F401 (canonical law re-exports)
    ALPHA_PACKETS,
    BETA_PACKETS,
    GAMMA_PACKETS,
)
from repro.cc.signals import LossEvent, RateSample


@register("vegas")
class Vegas(CongestionControl):
    """TCP Vegas controller (ack-clocked, no pacing)."""

    name = "vegas"
    loss_based = True

    def __init__(self, mss: int = 1500) -> None:
        super().__init__(mss=mss)
        self.base_rtt = float("inf")
        self._min_rtt_this_round = float("inf")
        self._round_end_delivered = 0
        self._in_slow_start = True
        self._grow_this_round = True  # Doubles every other round.
        self._loss_gate = CongestionEventGate()
        self._srtt: Optional[float] = None

    def queued_packets(self, rtt: float) -> float:
        """Vegas' diff: estimated own packets sitting in the queue."""
        return laws.queued_packets(self.cwnd, rtt, self.base_rtt, self.mss)

    def on_ack(self, sample: RateSample) -> None:
        rtt = sample.rtt
        self.base_rtt = min(self.base_rtt, rtt)
        self._min_rtt_this_round = min(self._min_rtt_this_round, rtt)
        self._srtt = smooth_rtt(self._srtt, rtt)
        if sample.delivered < self._round_end_delivered:
            return
        # One packet-timed round has elapsed: run the per-RTT update
        # using the round's best RTT sample.
        self._round_end_delivered = sample.delivered + int(self.cwnd)
        diff = self.queued_packets(self._min_rtt_this_round)
        self._min_rtt_this_round = float("inf")

        if self._in_slow_start:
            if diff > GAMMA_PACKETS:
                self._in_slow_start = False
                self.emit_state(sample.now, "SLOW_START", "AVOIDANCE")
                self.cwnd -= self.mss  # Back off the overshoot.
            elif self._grow_this_round:
                self.cwnd *= 2.0
            self._grow_this_round = not self._grow_this_round
            return

        self.cwnd += laws.window_adjustment(diff, self.mss)
        self.clamp_cwnd()

    def on_loss(self, event: LossEvent) -> None:
        if not self._loss_gate.admit(event.now, self._srtt):
            return
        self._in_slow_start = False
        self.emit(
            "cc.backoff",
            event.now,
            kind="multiplicative_decrease",
            beta=laws.LOSS_BETA,
            cwnd_before=self.cwnd,
            cwnd_after=self.cwnd * laws.LOSS_BETA,
        )
        self.cwnd *= laws.LOSS_BETA
        self.clamp_cwnd()
