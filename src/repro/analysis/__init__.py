"""Analysis utilities: fairness/error metrics, synchronization detection,
and trace time-series helpers.

These mechanize the judgements the paper makes when reading its
experiments — "within 5% error", "the CUBIC flows were indeed generally
not found to be synchronized", "we checked the traces".
"""

from repro.analysis.metrics import (
    fair_share_deviation,
    fraction_within,
    jains_index,
    mean_absolute_error,
    mean_confidence_interval,
    mean_relative_error,
)
from repro.analysis.sync import (
    LossEventCluster,
    classify_regime,
    cluster_loss_events,
    synchronization_index,
)
from repro.analysis.timeseries import (
    detect_sawtooth_peaks,
    moving_average,
    resample,
    sawtooth_period,
)

__all__ = [
    "fair_share_deviation",
    "fraction_within",
    "jains_index",
    "mean_absolute_error",
    "mean_confidence_interval",
    "mean_relative_error",
    "LossEventCluster",
    "classify_regime",
    "cluster_loss_events",
    "synchronization_index",
    "detect_sawtooth_peaks",
    "moving_average",
    "resample",
    "sawtooth_period",
]
