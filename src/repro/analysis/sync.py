"""CUBIC loss-synchronization analysis (§3.2, §5 of the paper).

The paper's multi-flow model brackets reality with two bounds — all
CUBIC flows backing off together ("synchronized") or one at a time
("de-synchronized") — and decides which bound an experiment matched by
*checking the traces*.  This module mechanizes that check: given each
flow's backoff times, it clusters backoffs that happen within one RTT of
each other into loss *events* and reports how many flows participated in
each.

A synchronization index of 1.0 means every loss event hit every active
flow (Equation 21's regime); an index near ``1/N_c`` means one flow per
event (Equation 22's regime).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class LossEventCluster:
    """One clustered congestion event."""

    start: float
    end: float
    participants: List[int]

    @property
    def size(self) -> int:
        """Number of distinct flows that backed off in this event."""
        return len(set(self.participants))


def cluster_loss_events(
    loss_times: Sequence[Sequence[float]], window: float
) -> List[LossEventCluster]:
    """Group per-flow backoff times into shared congestion events.

    Backoffs within ``window`` seconds of the previous one (across all
    flows) belong to the same buffer-overflow episode — the natural
    window is about one RTT, since all drops of one overflow are
    detected within a round trip.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    tagged = sorted(
        (t, flow_id)
        for flow_id, times in enumerate(loss_times)
        for t in times
    )
    clusters: List[LossEventCluster] = []
    current: List[tuple] = []
    for t, flow_id in tagged:
        if current and t - current[-1][0] > window:
            clusters.append(_finish(current))
            current = []
        current.append((t, flow_id))
    if current:
        clusters.append(_finish(current))
    return clusters


def _finish(entries: List[tuple]) -> LossEventCluster:
    return LossEventCluster(
        start=entries[0][0],
        end=entries[-1][0],
        participants=[flow_id for _t, flow_id in entries],
    )


def synchronization_index(
    loss_times: Sequence[Sequence[float]],
    n_flows: int,
    window: float,
) -> float:
    """Mean fraction of loss-based flows hit per congestion event.

    1.0 → perfectly synchronized (Eq. 21's bound);
    1/n_flows → perfectly de-synchronized (Eq. 22's bound);
    0.0 when there were no loss events at all.
    """
    if n_flows <= 0:
        raise ValueError(f"n_flows must be positive, got {n_flows}")
    clusters = cluster_loss_events(loss_times, window)
    if not clusters:
        return 0.0
    return sum(c.size for c in clusters) / (len(clusters) * n_flows)


def classify_regime(
    loss_times: Sequence[Sequence[float]],
    n_flows: int,
    window: float,
) -> str:
    """Label a trace ``"synchronized"``, ``"de-synchronized"``, or
    ``"partial"`` — the qualitative judgement the paper applies when
    deciding which bound an experiment should match."""
    index = synchronization_index(loss_times, n_flows, window)
    if n_flows == 1:
        return "synchronized" if index > 0 else "partial"
    lo = 1.0 / n_flows
    if index >= 0.75:
        return "synchronized"
    if index <= lo + 0.25 * (1.0 - lo):
        return "de-synchronized"
    return "partial"
