"""Time-series helpers for simulator traces.

Small, dependency-light utilities for the trace rows produced by
:class:`repro.fluidsim.FluidSimulation` (``trace_interval=...``) and the
packet-level :class:`repro.sim.trace.CwndTracer`: resampling, moving
averages, and sawtooth (CUBIC epoch) detection.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def moving_average(values: Sequence[float], window: int) -> List[float]:
    """Trailing moving average with a growing head window."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    out = []
    acc = 0.0
    for i, v in enumerate(values):
        acc += v
        if i >= window:
            acc -= values[i - window]
        out.append(acc / min(i + 1, window))
    return out


def resample(
    times: Sequence[float],
    values: Sequence[float],
    interval: float,
    end: float,
) -> List[float]:
    """Sample a step function (times/values) at a fixed interval.

    ``values[i]`` holds from ``times[i]`` until the next sample; queries
    before the first sample return the first value.
    """
    if len(times) != len(values):
        raise ValueError("times and values must align")
    if not times:
        raise ValueError("need at least one sample")
    if interval <= 0:
        raise ValueError(f"interval must be positive, got {interval}")
    out = []
    idx = 0
    t = 0.0
    while t <= end:
        while idx + 1 < len(times) and times[idx + 1] <= t:
            idx += 1
        out.append(values[idx])
        t += interval
    return out


def detect_sawtooth_peaks(
    times: Sequence[float],
    values: Sequence[float],
    min_drop: float = 0.2,
) -> List[Tuple[float, float]]:
    """Find (time, value) peaks where the series drops ≥ ``min_drop``
    relative to the peak — CUBIC's multiplicative-decrease signature
    (a 0.3 drop for CUBIC, 0.5 for Reno)."""
    if len(times) != len(values):
        raise ValueError("times and values must align")
    if not 0 < min_drop < 1:
        raise ValueError(f"min_drop must be in (0, 1), got {min_drop}")
    peaks = []
    peak_value = float("-inf")
    peak_time = 0.0
    for t, v in zip(times, values):
        if v >= peak_value:
            peak_value = v
            peak_time = t
        elif peak_value > 0 and v <= peak_value * (1.0 - min_drop):
            peaks.append((peak_time, peak_value))
            peak_value = v
            peak_time = t
    return peaks


def sawtooth_period(peaks: Sequence[Tuple[float, float]]) -> float:
    """Mean spacing between detected peaks (0.0 with fewer than two)."""
    if len(peaks) < 2:
        return 0.0
    gaps = [b[0] - a[0] for a, b in zip(peaks, peaks[1:])]
    return sum(gaps) / len(gaps)
