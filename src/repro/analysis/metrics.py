"""Fairness and accuracy metrics used to interpret experiments.

The paper reads its results through a handful of scalar lenses: fair
share vs measured share, model error ("within 5%"), and flow fairness.
This module collects them, plus confidence-interval helpers for
multi-trial means.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def jains_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = one flow wins.

    Defined as ``(Σx)² / (n · Σx²)``; returns 1.0 for an empty input.
    """
    values = [max(x, 0.0) for x in rates]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(x * x for x in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def fair_share_deviation(rate: float, capacity: float, n_flows: int) -> float:
    """Signed relative deviation of a per-flow rate from the fair share.

    +0.5 means 50% above fair share (the "disproportionate share"
    property of §4.2); −0.5 means half of fair share.
    """
    if capacity <= 0 or n_flows <= 0:
        raise ValueError("capacity and n_flows must be positive")
    fair = capacity / n_flows
    return rate / fair - 1.0


def mean_absolute_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """MAE between a prediction series and measurements."""
    _check_aligned(predicted, actual)
    return sum(abs(p - a) for p, a in zip(predicted, actual)) / len(actual)


def mean_relative_error(
    predicted: Sequence[float], actual: Sequence[float]
) -> float:
    """Mean of |p − a| / |a| (the paper's "within 5% error" metric)."""
    _check_aligned(predicted, actual)
    total = 0.0
    for p, a in zip(predicted, actual):
        if a == 0:
            continue
        total += abs(p - a) / abs(a)
    return total / len(actual)


def fraction_within(
    predicted: Sequence[float],
    actual: Sequence[float],
    tolerance: float,
) -> float:
    """Fraction of points with relative error ≤ ``tolerance``."""
    _check_aligned(predicted, actual)
    hits = 0
    for p, a in zip(predicted, actual):
        scale = abs(a) if a != 0 else 1.0
        if abs(p - a) / scale <= tolerance:
            hits += 1
    return hits / len(actual)


def mean_confidence_interval(
    samples: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """(mean, low, high): a normal-approximation CI for a trial mean.

    With a single sample the interval collapses to the point.
    """
    if not samples:
        raise ValueError("at least one sample required")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return (mean, mean, mean)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = z * math.sqrt(variance / n)
    return (mean, mean - half, mean + half)


def _check_aligned(
    predicted: Sequence[float], actual: Sequence[float]
) -> None:
    if len(predicted) != len(actual):
        raise ValueError(
            f"series lengths differ: {len(predicted)} vs {len(actual)}"
        )
    if not actual:
        raise ValueError("series must be non-empty")
