"""Streaming result sinks: campaign rows hit disk as units finish.

Million-unit campaigns cannot afford the seed pipeline's "collect every
:class:`~repro.campaign.run.UnitOutcome` in a list, write the CSV at the
end" shape — peak memory grew linearly with campaign size and a crash
after hour ten lost the whole CSV.  This module is the bounded-memory
replacement:

* :class:`CsvSink` / :class:`JsonlSink` — incremental writers.  Rows are
  appended (and flushed) as they arrive and are *not* retained; the CSV
  writer reproduces the seed ``_write_csv`` byte-for-byte, including its
  first-seen column order.  A row that introduces a column the header
  has not seen triggers a streaming rewrite of the file (row-at-a-time
  through a temp file + ``os.replace``), which happens at most once per
  stage-shaped column change, never per row.
* :class:`CampaignSink` — the unit-order gate.  Outcomes complete out of
  order (thread fan-out, engine completion order); the final CSV must be
  in *unit* order to stay byte-identical across kill/resume.  The sink
  buffers only the out-of-order frontier (bounded by completion skew,
  i.e. by ``jobs``, not by campaign size) and drains every contiguous
  run of units to the writers the moment its gap closes.

Durability contract (see ``docs/CAMPAIGNS.md``): the checkpoint journal
is the authoritative record — a unit is committed when its journal line
is fsync-ed.  The CSV trails it by at most the in-flight flush, so a
SIGKILL leaves a partial CSV containing exactly the journaled prefix (in
the sequential case: exactly the journaled units).  Resume does not
trust the partial file: it truncates and rebuilds it by streaming the
journal through a fresh sink, which reconciles every kill window —
including a kill between the journal fsync and the CSV flush — and is
why a resumed campaign's final CSV is byte-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

__all__ = [
    "CampaignSink",
    "CsvSink",
    "JsonlSink",
    "SinkError",
    "resolve_artifact",
]


class SinkError(RuntimeError):
    """A sink was fed out of contract; the message is one line."""


def resolve_artifact(path: Union[str, Path]) -> Optional[Path]:
    """``path`` if it exists, else its ``.gz`` sibling, else None.

    Long-finished campaigns get gzipped for archival; every artifact
    *reader* (``campaign report``/``status``, ``repro-bbr top``) resolves
    through here so ``results.csv.gz``/``journal.jsonl.gz`` keep working.
    """
    path = Path(path)
    if path.exists():
        return path
    gz = Path(str(path) + ".gz")
    if gz.exists():
        return gz
    return None


class CsvSink:
    """Incremental CSV writer, byte-compatible with the seed writer.

    Columns are learned in first-seen key order, exactly like the
    collect-then-write implementation it replaces.  The header is
    written with the first data row; a later row introducing new
    columns widens the file in place via a streaming rewrite (existing
    rows are padded with empty fields — the same padding ``row.get(col,
    "")`` produced at the end of a batch run).  ``close()`` on a sink
    that never saw a row still writes the (empty) header line the seed
    wrote for a zero-row campaign.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.columns: List[str] = []
        self.rows_written = 0
        self._known: set = set()
        self._handle: Optional[Any] = None
        self._writer: Optional[Any] = None
        self._closed = False

    def _open(self, mode: str) -> None:
        self._handle = open(
            self.path, mode, newline="", encoding="utf-8"
        )
        self._writer = csv.writer(self._handle)

    def _start(self) -> None:
        """Write the header (current columns) into a fresh file."""
        self._open("w")
        self._writer.writerow(self.columns)

    def _widen(self, new_columns: Sequence[str]) -> None:
        """Streaming rewrite: pad every existing row to the new width.

        Row-at-a-time through a sibling temp file, so memory stays flat
        no matter how many rows are already on disk.
        """
        self._handle.flush()
        self._handle.close()
        self._handle = self._writer = None
        pad = [""] * len(new_columns)
        self.columns.extend(new_columns)
        tmp = Path(f"{self.path}.tmp.{os.getpid()}")
        with open(
            self.path, "r", newline="", encoding="utf-8"
        ) as src, open(
            tmp, "w", newline="", encoding="utf-8"
        ) as dst:
            reader = csv.reader(src)
            writer = csv.writer(dst)
            for number, record in enumerate(reader):
                if number == 0:
                    writer.writerow(self.columns)
                else:
                    writer.writerow(record + pad)
        os.replace(tmp, self.path)
        self._open("a")

    def append(self, rows: Iterable[Dict[str, Any]]) -> None:
        """Write ``rows`` now; they are not retained afterwards."""
        if self._closed:
            raise SinkError(f"{self.path}: sink is closed")
        for row in rows:
            new = [key for key in row if key not in self._known]
            if new:
                self._known.update(new)
                if self._handle is None:
                    self.columns.extend(new)
                else:
                    self._widen(new)
            if self._handle is None:
                self._start()
            self._writer.writerow(
                [row.get(column, "") for column in self.columns]
            )
            self.rows_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Flush, fsync, and close (writing the header if still owed)."""
        if self._closed:
            return
        if self._handle is None:
            self._start()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = self._writer = None
        self._closed = True


class JsonlSink:
    """Incremental JSONL writer: one result row per line.

    The row-stream mirror of the CSV — machine-friendly, append-only,
    and (unlike CSV) schema-free, so downstream consumers of a huge
    campaign can tail it without caring about column order.  Key order
    is preserved (no ``sort_keys``), matching the journal encoding.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.rows_written = 0
        self._handle: Optional[Any] = None
        self._closed = False

    def append(self, rows: Iterable[Dict[str, Any]]) -> None:
        if self._closed:
            raise SinkError(f"{self.path}: sink is closed")
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        for row in rows:
            self._handle.write(
                json.dumps(row, separators=(",", ":"), allow_nan=False)
                + "\n"
            )
            self.rows_written += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._closed:
            return
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        self._closed = True


class CampaignSink:
    """Feeds completion-order outcomes to the writers in unit order.

    :meth:`add` accepts ``(unit index, rows)`` in any order; rows are
    handed to every writer as soon as all lower indices have arrived,
    then dropped.  Only the out-of-order frontier is buffered —
    proportional to completion skew (thread/worker count), independent
    of campaign size.  ``rows_seen`` counts every row accepted
    (including buffered ones, all of which are journaled by the caller);
    ``rows_written`` counts rows actually on disk.
    """

    def __init__(
        self,
        *writers: Any,
        start_index: int = 0,
    ) -> None:
        self.writers = [w for w in writers if w is not None]
        self.rows_seen = 0
        self._pending: Dict[int, Any] = {}
        self._next = start_index

    @property
    def next_index(self) -> int:
        """The lowest unit index not yet written."""
        return self._next

    @property
    def pending_units(self) -> int:
        """Out-of-order outcomes currently buffered."""
        return len(self._pending)

    @property
    def rows_written(self) -> int:
        return self.writers[0].rows_written if self.writers else 0

    def add(self, index: int, rows: Sequence[Dict[str, Any]]) -> None:
        """Accept one unit's rows; drain every now-contiguous unit."""
        if index < self._next or index in self._pending:
            raise SinkError(
                f"unit index {index} was already written "
                f"(next expected: {self._next})"
            )
        self._pending[index] = tuple(rows)
        self.rows_seen += len(rows)
        while self._next in self._pending:
            ready = self._pending.pop(self._next)
            for writer in self.writers:
                writer.append(ready)
            self._next += 1

    def flush(self) -> None:
        for writer in self.writers:
            writer.flush()

    def close(self) -> None:
        """Close the writers.

        Buffered out-of-order rows (possible only when the run was
        interrupted with a gap in front of them) are *not* written —
        they are already safe in the journal, and the resume rebuild
        will place them at their correct offsets.
        """
        for writer in self.writers:
            writer.close()
