"""Campaign orchestration: execute units, checkpoint, resume, report.

:func:`run_campaign` owns a campaign *output directory*::

    <out>/spec.json       frozen copy of the validated spec + fingerprint
    <out>/journal.jsonl   checkpoint journal (one line per finished unit)
    <out>/<csv>           derived-metric table, streamed unit-by-unit
    <out>/manifest.json   campaign manifest (repro.obs)

Execution streams through :meth:`repro.exec.Engine.iter_points` for
``sweep`` stages (parallel fan-out, content-addressed cache) and runs
``adaptive`` units — empirical-NE bisections reusing the figure-9
best-response machinery — and ``population`` units — seeded adoption
trajectories through :func:`repro.population.run_population`, each
unit's tier-0/tier-1 payoff lookups engine-routed and cached, its
calibration error map merged into ``<out>/error_map.json``.  Every
finished unit is
journaled durably before the next is started, so a killed campaign
resumed with ``repro-bbr campaign resume`` replays the journal, submits
only the missing units, and (because in-flight results were already in
the result cache) re-simulates nothing.

Result aggregation is *streaming* (see :mod:`repro.campaign.sink`):
:func:`iter_units` is a generator yielding each newly executed
:class:`UnitOutcome` exactly once, and :func:`run_campaign` pipes the
stream through a :class:`~repro.campaign.sink.CampaignSink` that
appends rows to the CSV (and optional JSONL mirror) the moment each
unit's journal record is durable, then drops them.  Peak memory is
therefore independent of campaign size — the "millions of cells" grid
sweeps the ROADMAP calls for run in bounded memory, and a crash loses
at most the unflushed tail of the CSV, never the file.

Output rows are assembled in *unit order*, not completion order (the
sink reorders the bounded out-of-order frontier), so an
interrupted-and-resumed campaign writes a byte-identical CSV to an
uninterrupted one: resume rebuilds the partial CSV from the journal —
the authoritative record — before continuing, which reconciles every
kill window, including a kill between a journal fsync and the
corresponding CSV flush.

Observability (see ``docs/OBSERVABILITY.md``): when a tracer is active
(:mod:`repro.obs.trace`), the run is bracketed by a ``campaign`` span
with one ``stage`` span per stage, a ``unit`` span per adaptive unit,
and a ``journal`` span per durable checkpoint append; engine-level
``cache_lookup``/``point``/``simulate`` spans nest inside.  A
:class:`repro.obs.progress.ProgressTracker` (created internally unless
one is passed) counts units done/total per stage and writes an
atomically-replaced ``progress.json`` sidecar next to the journal after
every unit — the feed for ``repro-bbr top`` and ``--progress``.

Adaptive units at one axis combination are independent searches, so when
the engine has ``jobs > 1`` (and no ``stop_after`` exactness contract is
in force) they run concurrently on threads, each bisection evaluation
dispatched to the engine's shared worker pool.  Results are unchanged —
every unit seeds its own simulations — but the pool stays busy instead
of draining one bisection at a time.
"""

from __future__ import annotations

import csv
import json
from concurrent.futures import ThreadPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from time import perf_counter
from typing import (
    Any,
    Callable,
    Collection,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.campaign.expand import Unit, expand_units
from repro.campaign.journal import Journal, JournalError, JournalRecord
from repro.campaign.sink import CampaignSink, CsvSink, JsonlSink
from repro.campaign.spec import CampaignSpec, parse_spec
from repro.exec.engine import Engine, resolve as resolve_engine
from repro.obs.progress import PROGRESS_NAME, ProgressTracker
from repro.obs.trace import resolve as resolve_tracer

__all__ = [
    "CampaignError",
    "CampaignSummary",
    "UnitOutcome",
    "execute_units",
    "iter_units",
    "load_campaign",
    "run_campaign",
]


def _span(tracer: Any, name: str, **args: Any):
    """A campaign-category span, or a no-op when tracing is disabled."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, cat="campaign", **args)


SPEC_NAME = "spec.json"
MANIFEST_NAME = "manifest.json"
ERROR_MAP_NAME = "error_map.json"
SPEC_FILE_SCHEMA = 1

#: Serializes read-modify-write merges of the campaign error-map
#: artifact when population units fan out on threads.
_ERROR_MAP_LOCK = Lock()


class CampaignError(RuntimeError):
    """A campaign cannot run as requested; the message is one line."""


@dataclass(frozen=True)
class UnitOutcome:
    """One resolved unit: its output rows and where they came from."""

    unit_id: str
    index: int
    stage: str
    rows: Tuple[Dict[str, Any], ...]
    wall_s: float
    from_journal: bool


@dataclass(frozen=True)
class CampaignSummary:
    """What a campaign run did, for reporting and tests."""

    name: str
    out_dir: Path
    total_units: int
    from_journal: int
    executed: int
    rows: int
    wall_s: float
    interrupted: bool
    csv_path: Optional[Path]


# -- derived metrics ---------------------------------------------------------


def _metric_value(metric: str, result: Any) -> Any:
    """Evaluate one spec metric against a ScenarioResult."""
    base, _sep, cc = metric.partition(":")
    if base == "per_flow_mbps":
        return result.per_flow_mbps(cc)
    if base == "aggregate_mbps":
        return result.aggregate.get(cc, 0.0) * 8.0 / 1e6
    if base == "loss_rate":
        return result.loss_rate.get(cc, 0.0)
    if base == "retransmits":
        return result.retransmits.get(cc, 0.0)
    if base == "queuing_delay_ms":
        return result.mean_queuing_delay * 1e3
    if base == "drop_rate":
        return result.drop_rate
    raise CampaignError(f"unknown metric {metric!r}")  # pragma: no cover


def _sweep_rows(
    spec: CampaignSpec, unit: Unit, result: Any
) -> Tuple[Dict[str, Any], ...]:
    """One CSV row for a sweep unit: swept values then metric columns."""
    row = unit.combo_dict()
    for metric in spec.metrics:
        row[metric] = _metric_value(metric, result)
    return (row,)


def _run_adaptive(
    unit: Unit, engine: Engine
) -> Tuple[Tuple[Dict[str, Any], ...], float]:
    """One NE bisection: rows per equilibrium found at this combination.

    Seeding matches the hand-coded figure-9 loop exactly
    (``seed + stride × search`` into ``distribution_throughput_fn``), so
    a campaign and the figure generator hit the same cache entries.
    """
    from repro.core.game import bisect_nash
    from repro.core.nash import predict_nash
    from repro.experiments.runner import distribution_throughput_fn

    start = perf_counter()
    fn = distribution_throughput_fn(
        unit.link,
        unit.flows,
        challenger=unit.challenger,
        incumbent=unit.incumbent,
        duration=unit.duration,
        backend=unit.backend,
        trials=unit.trials,
        seed=unit.seed + unit.seed_stride * unit.search,
        engine=engine,
    )
    equilibria, _cache = bisect_nash(unit.flows, fn)
    # The analytic Nash-region bounds (Eq. 25) ride along as model
    # columns; they describe the CUBIC-vs-BBR game, the one the paper
    # (and the bundled specs) study.
    prediction = predict_nash(unit.link, unit.flows)
    rows: List[Dict[str, Any]] = []
    for k in equilibria:
        row = unit.combo_dict()
        row["search"] = unit.search
        row["ne_challenger"] = k
        row["ne_incumbent"] = unit.flows - k
        row["model_incumbent_sync"] = prediction.n_cubic_sync
        row["model_incumbent_desync"] = prediction.n_cubic_desync
        rows.append(row)
    return tuple(rows), perf_counter() - start


def _run_population(
    unit: Unit, engine: Engine
) -> Tuple[Tuple[Dict[str, Any], ...], float, Any]:
    """One adoption trajectory: a single CSV row plus the error map.

    The unit's link and flow count define a one-cell population; the
    trajectory is fully determined by the unit's resolved parameters
    (the oracle consumes no trajectory randomness), so journal replay
    and re-execution produce identical rows.
    """
    from repro.population import (
        CellSpec,
        DynamicsConfig,
        TieredOracle,
        run_population,
    )

    start = perf_counter()
    cell = CellSpec(link=unit.link, n_flows=unit.flows, label=unit.stage)
    oracle = TieredOracle(
        engine=engine,
        error_threshold=unit.error_threshold,
        duration=unit.duration,
        trials=unit.trials,
        seed=unit.seed,
    )
    result = run_population(
        [cell],
        dynamics=DynamicsConfig(
            name=unit.dynamics,
            epsilon=unit.epsilon,
            mutation=unit.mutation,
            inertia=unit.inertia,
        ),
        ticks=unit.ticks,
        seed=unit.seed,
        strategies=(unit.incumbent, unit.challenger),
        init_share=unit.init_share,
        oracle=oracle,
    )
    ne = result.ne[0]
    row = unit.combo_dict()
    row.setdefault("dynamics", unit.dynamics)
    row["flows"] = unit.flows
    row["challenger"] = unit.challenger
    row["final_challenger_share"] = result.final_share(unit.challenger)
    row["model_share_sync"] = ne["share_sync"] if ne else ""
    row["model_share_desync"] = ne["share_desync"] if ne else ""
    row["converged"] = result.converged
    row["oracle_tier0"] = result.oracle["tier0"]
    row["oracle_tier1"] = result.oracle["tier1"]
    row["max_rel_error"] = result.error_map.max_rel_error()
    return (row,), perf_counter() - start, result.error_map


def _merge_error_map(path: Path, error_map: Any) -> None:
    """Fold one unit's calibration entries into the campaign artifact."""
    if not error_map.entries:
        return
    from repro.population import ErrorMap

    with _ERROR_MAP_LOCK:
        merged = ErrorMap.load(str(path)) if path.exists() else ErrorMap()
        merged.merge(error_map)
        merged.save(str(path))


# -- execution ---------------------------------------------------------------


def iter_units(
    spec: CampaignSpec,
    units: List[Unit],
    engine: Optional[Engine] = None,
    skip: Optional[Collection[str]] = None,
    on_unit: Optional[Callable[[UnitOutcome], None]] = None,
    stop_after: Optional[int] = None,
    artifacts_dir: Optional[Union[str, Path]] = None,
) -> Iterator[UnitOutcome]:
    """Execute every unit not in ``skip``, yielding outcomes as they
    finish.

    This is the streaming core of the campaign layer: each newly
    executed :class:`UnitOutcome` is yielded exactly once, in
    completion order, and nothing is retained afterwards — consumers
    that drop each outcome after use (the journaling/sink pipeline in
    :func:`run_campaign`) run in memory independent of campaign size.

    ``on_unit`` fires once per unit, before it is yielded and before
    the next unit starts — the journaling hook.  ``stop_after`` stops
    cleanly after that many new executions (the deterministic stand-in
    for a killed campaign, used by tests and the CI smoke job); the
    generator's return value (``StopIteration.value``) is True when the
    run stopped early.

    Adaptive and population stages run their units concurrently
    (threads feeding the engine's shared worker pool) when
    ``engine.jobs > 1`` — except under ``stop_after``, whose exactly-N
    contract requires sequential execution.  Outcomes are always
    yielded (and ``on_unit`` fired) from the calling thread.
    ``artifacts_dir``, when given, receives the merged population error
    map (``error_map.json``), folded in as each population unit
    finishes — before its journal record — so an interrupted campaign
    keeps the calibrations it already paid for.
    """
    eng = resolve_engine(engine)
    tracer = resolve_tracer(None)
    skip = frozenset(skip) if skip else frozenset()
    executed = 0
    interrupted = False

    todo: List[Unit] = []
    for position, unit in enumerate(units):
        if unit.index != position:  # pragma: no cover - expander invariant
            raise CampaignError(
                f"unit list is not in index order at position {position}"
            )
        if unit.unit_id() not in skip:
            todo.append(unit)

    def finish(outcome: UnitOutcome) -> None:
        """Account one new execution (journal hook + stop check)."""
        nonlocal executed, interrupted
        executed += 1
        if on_unit is not None:
            on_unit(outcome)
        if stop_after is not None and executed >= stop_after:
            interrupted = True

    def adaptive_outcome(unit: Unit) -> UnitOutcome:
        with _span(tracer, "unit", unit=unit.unit_id()):
            rows, wall = _run_adaptive(unit, eng)
        return UnitOutcome(
            unit_id=unit.unit_id(),
            index=unit.index,
            stage=unit.stage,
            rows=rows,
            wall_s=wall,
            from_journal=False,
        )

    artifacts = Path(artifacts_dir) if artifacts_dir is not None else None

    def population_outcome(unit: Unit) -> UnitOutcome:
        with _span(tracer, "unit", unit=unit.unit_id()):
            rows, wall, error_map = _run_population(unit, eng)
        if artifacts is not None:
            _merge_error_map(artifacts / ERROR_MAP_NAME, error_map)
        return UnitOutcome(
            unit_id=unit.unit_id(),
            index=unit.index,
            stage=unit.stage,
            rows=rows,
            wall_s=wall,
            from_journal=False,
        )

    for stage in spec.stages:
        if interrupted:
            break
        stage_units = [u for u in todo if u.stage == stage.name]
        if not stage_units:
            continue
        span = _span(
            tracer,
            "stage",
            stage=stage.name,
            kind=stage.kind,
            units=len(stage_units),
        )
        with span:
            if stage.kind == "sweep":
                points = [u.to_point() for u in stage_units]
                for position, result, wall in eng.iter_points(points):
                    unit = stage_units[position]
                    outcome = UnitOutcome(
                        unit_id=unit.unit_id(),
                        index=unit.index,
                        stage=unit.stage,
                        rows=_sweep_rows(spec, unit, result),
                        wall_s=wall,
                        from_journal=False,
                    )
                    finish(outcome)
                    yield outcome
                    if interrupted:
                        break
                continue
            # Adaptive and population units: independent computations.
            # Fan out on threads (their scenario points go to the
            # engine's shared pool) unless stop_after demands
            # deterministic sequencing.
            runner = (
                population_outcome
                if stage.kind == "population"
                else adaptive_outcome
            )
            threads = (
                1
                if stop_after is not None
                else min(eng.jobs, len(stage_units))
            )
            if threads <= 1:
                for unit in stage_units:
                    outcome = runner(unit)
                    finish(outcome)
                    yield outcome
                    if interrupted:
                        break
            else:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    futures = [
                        pool.submit(runner, unit)
                        for unit in stage_units
                    ]
                    for future in as_completed(futures):
                        outcome = future.result()
                        finish(outcome)
                        yield outcome
    return interrupted


def _drain(stream: Iterator[UnitOutcome]) -> Tuple[int, bool]:
    """Run an :func:`iter_units` stream to completion, retaining
    nothing; returns ``(units executed, interrupted)``."""
    executed = 0
    while True:
        try:
            next(stream)
        except StopIteration as stop:
            return executed, bool(stop.value)
        executed += 1


def execute_units(
    spec: CampaignSpec,
    units: List[Unit],
    engine: Optional[Engine] = None,
    completed: Optional[Dict[str, JournalRecord]] = None,
    on_unit: Optional[Callable[[UnitOutcome], None]] = None,
    stop_after: Optional[int] = None,
    artifacts_dir: Optional[Union[str, Path]] = None,
) -> Tuple[List[UnitOutcome], bool]:
    """Collecting convenience over :func:`iter_units`.

    Replays ``completed`` journal records as ``from_journal`` outcomes,
    executes the rest, and returns every outcome in unit order plus the
    interruption flag.  This materializes the full outcome list —
    fine for figure-sized studies and tests; large campaigns must
    consume :func:`iter_units` (as :func:`run_campaign` does) so rows
    stream to disk instead of accumulating.
    """
    completed = completed or {}
    outcomes: List[Optional[UnitOutcome]] = [None] * len(units)
    for unit in units:
        replay = completed.get(unit.unit_id())
        if replay is not None:
            outcomes[unit.index] = UnitOutcome(
                unit_id=replay.unit_id,
                index=unit.index,
                stage=unit.stage,
                rows=replay.rows,
                wall_s=replay.wall_s,
                from_journal=True,
            )
    stream = iter_units(
        spec,
        units,
        engine=engine,
        skip=set(completed),
        on_unit=on_unit,
        stop_after=stop_after,
        artifacts_dir=artifacts_dir,
    )
    interrupted = False
    while True:
        try:
            outcome = next(stream)
        except StopIteration as stop:
            interrupted = bool(stop.value)
            break
        outcomes[outcome.index] = outcome
    if interrupted:
        return [o for o in outcomes if o is not None], True
    missing = [i for i, o in enumerate(outcomes) if o is None]
    if missing:  # pragma: no cover - engine contract
        raise CampaignError(f"units never resolved: {missing[:5]}")
    return outcomes, False  # type: ignore[return-value]


# -- the campaign directory --------------------------------------------------


def _write_spec_file(spec: CampaignSpec, out_dir: Path) -> None:
    payload = {
        "schema": SPEC_FILE_SCHEMA,
        "fingerprint": spec.fingerprint(),
        "spec": spec.to_dict(),
    }
    (out_dir / SPEC_NAME).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def load_campaign(out_dir: Union[str, Path]) -> CampaignSpec:
    """Recover the validated spec frozen into a campaign directory."""
    path = Path(out_dir) / SPEC_NAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise CampaignError(
            f"{out_dir}: not a campaign directory (no {SPEC_NAME})"
        ) from None
    except (OSError, ValueError) as exc:
        raise CampaignError(f"{path}: cannot load spec: {exc}") from None
    if not isinstance(data, dict) or data.get("schema") != SPEC_FILE_SCHEMA:
        raise CampaignError(
            f"{path}: unsupported campaign spec file (schema "
            f"{data.get('schema') if isinstance(data, dict) else '?'!r})"
        )
    return parse_spec(data.get("spec"), source=str(path))


def _write_csv(path: Path, outcomes: List[UnitOutcome]) -> int:
    """Write all rows in unit order; columns in first-seen key order."""
    columns: List[str] = []
    rows: List[Dict[str, Any]] = []
    for outcome in outcomes:
        for row in outcome.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
            rows.append(row)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            writer.writerow([row.get(column, "") for column in columns])
    return len(rows)


def run_campaign(
    spec: CampaignSpec,
    out_dir: Union[str, Path],
    engine: Optional[Engine] = None,
    resume: bool = False,
    stop_after: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
    progress: Optional[ProgressTracker] = None,
    on_progress: Optional[Callable[[ProgressTracker], None]] = None,
) -> CampaignSummary:
    """Run (or resume) a campaign into ``out_dir``.

    Fresh runs refuse a directory that already has a journal (resuming
    must be explicit — silently continuing someone else's half-finished
    study is how results get mixed); resumes refuse a directory whose
    journal belongs to a different spec fingerprint.  On a clean finish
    the derived-metric CSV and the campaign manifest are written; an
    interrupted run (``stop_after``) leaves only the journal, ready to
    resume.

    Progress: a :class:`ProgressTracker` (the given one, or an internal
    one) counts units done/total per stage, and after every journaled
    unit the machine-readable ``progress.json`` sidecar is rewritten
    atomically next to the journal; ``on_progress`` fires at the same
    cadence with the tracker (the CLI's live ``--progress`` hook).  The
    engine's worker heartbeats are wired into the tracker for the run
    when the engine has no heartbeat sink of its own.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    journal = Journal.in_dir(out)
    fingerprint = spec.fingerprint()

    # Pass 1 over the journal (streaming): the completed-unit id set and
    # per-stage tallies — ids only, rows are not retained.
    completed_ids: set = set()
    stage_done: Dict[str, int] = {}
    if resume:
        for record in journal.iter_records(expect_fingerprint=fingerprint):
            completed_ids.add(record.unit_id)
            stage_done[record.stage] = stage_done.get(record.stage, 0) + 1
    else:
        if journal.exists():
            raise CampaignError(
                f"{out}: already contains a campaign journal; use "
                f"'repro-bbr campaign resume {out}' to continue it"
            )
        _write_spec_file(spec, out)
        journal.create(spec.name, fingerprint)

    units = expand_units(spec)
    unknown = completed_ids - {unit.unit_id() for unit in units}
    if unknown:
        raise JournalError(
            f"{journal.path}: {len(unknown)} journaled unit(s) do not "
            "match the spec expansion; refusing to mix studies"
        )

    sink = CampaignSink(
        CsvSink(out / spec.csv_name),
        JsonlSink(out / spec.jsonl_name) if spec.jsonl_name else None,
    )
    if resume:
        # Pass 2: rebuild the partial CSV from the journal, row-at-a-
        # time.  The journal is the authoritative record; whatever
        # partial CSV the killed run left behind (possibly missing its
        # last flush, or torn mid-row) is truncated and rewritten up to
        # exactly the journaled unit boundary, so every kill window —
        # including a kill between the journal fsync and the CSV flush —
        # converges to the same bytes.
        for record in journal.iter_records(expect_fingerprint=fingerprint):
            sink.add(record.index, record.rows)
        sink.flush()

    eng = resolve_engine(engine)
    tracer = resolve_tracer(None)
    tracker = progress or ProgressTracker(
        total=len(units), label=spec.name
    )
    sidecar = out / PROGRESS_NAME

    # Per-stage totals; done counts were seeded by journal pass 1.
    stage_total: Dict[str, int] = {}
    for unit in units:
        stage_total[unit.stage] = stage_total.get(unit.stage, 0) + 1
    done_units = len(completed_ids)
    from_journal = len(completed_ids)
    for stage, total in stage_total.items():
        tracker.stage_progress(stage, stage_done.get(stage, 0), total)
    tracker.update(done_units, len(units), eng.hits)
    tracker.set_rows(sink.rows_seen)
    tracker.write_sidecar(str(sidecar))

    def journal_unit(outcome: UnitOutcome) -> None:
        nonlocal done_units
        with _span(tracer, "journal", unit=outcome.unit_id):
            journal.append(
                JournalRecord(
                    unit_id=outcome.unit_id,
                    index=outcome.index,
                    stage=outcome.stage,
                    rows=outcome.rows,
                    wall_s=outcome.wall_s,
                )
            )
        # The unit is now committed (journal fsync-ed); stream its rows
        # to the sink and drop them.  The CSV flush trails the journal
        # by design — resume rebuilds the CSV from the journal.
        sink.add(outcome.index, outcome.rows)
        sink.flush()
        done_units += 1
        stage_done[outcome.stage] = stage_done.get(outcome.stage, 0) + 1
        tracker.stage_progress(
            outcome.stage,
            stage_done[outcome.stage],
            stage_total.get(outcome.stage, 0),
        )
        tracker.update(done_units, len(units), eng.hits)
        tracker.set_rows(sink.rows_seen)
        tracker.write_sidecar(str(sidecar))
        if on_progress is not None:
            on_progress(tracker)
        if log is not None:
            log(
                f"  unit {outcome.index + 1}/{len(units)} done "
                f"[{outcome.stage}] ({outcome.wall_s:.2f}s, "
                f"{len(outcome.rows)} row(s))"
            )

    # Worker heartbeats and point-level progress feed the tracker unless
    # the caller wired the engine's callbacks elsewhere already.
    restore_heartbeat = False
    if eng.heartbeat is None:
        eng.heartbeat = tracker.heartbeat
        restore_heartbeat = True
    restore_progress = False
    if eng.progress is None:
        eng.progress = tracker.update_points
        restore_progress = True

    start = perf_counter()
    try:
        with _span(
            tracer,
            "campaign",
            campaign=spec.name,
            fingerprint=fingerprint[:12],
            units=len(units),
        ):
            executed, interrupted = _drain(
                iter_units(
                    spec,
                    units,
                    engine=eng,
                    skip=completed_ids,
                    on_unit=journal_unit,
                    stop_after=stop_after,
                    artifacts_dir=out,
                )
            )
    finally:
        if restore_heartbeat:
            eng.heartbeat = None
        if restore_progress:
            eng.progress = None
        sink.close()
    wall = perf_counter() - start
    tracker.write_sidecar(str(sidecar))

    if interrupted:
        return CampaignSummary(
            name=spec.name,
            out_dir=out,
            total_units=len(units),
            from_journal=from_journal,
            executed=executed,
            rows=sink.rows_seen,
            wall_s=wall,
            interrupted=True,
            csv_path=None,
        )

    csv_path = out / spec.csv_name
    n_rows = sink.rows_written

    from repro.obs.manifest import CampaignManifest

    CampaignManifest.build(
        spec_name=spec.name,
        fingerprint=fingerprint,
        total_units=len(units),
        from_journal=from_journal,
        executed=executed,
        rows=n_rows,
        wall_time_s=wall,
        csv=spec.csv_name,
        exec_stats=dict(eng.stats),
    ).write(str(out / MANIFEST_NAME))

    return CampaignSummary(
        name=spec.name,
        out_dir=out,
        total_units=len(units),
        from_journal=from_journal,
        executed=executed,
        rows=n_rows,
        wall_s=wall,
        interrupted=False,
        csv_path=csv_path,
    )
