"""Per-scenario-family model-error reports over campaign results.

The paper validates its fluid-model predictions against packet-level
simulation; a campaign that sweeps a ``backend`` axis produces both
sides of that comparison in one ``results.csv``.  This module pairs the
rows up: for every swept combination it computes a *share* metric (by
default BBR's fraction of the aggregate throughput — the quantity the
paper's fairness figures report) per backend, takes the absolute
difference against a reference backend, and aggregates the error by
*scenario family* (the ``aqm`` column when present — drop-tail vs RED
vs CoDel — else the whole campaign).  That is exactly the question the
scenario schema raises: where does the fluid abstraction stay faithful,
and which AQM regimes bend it?

Exposed as ``repro-bbr campaign report`` and writes
``model_error.csv`` next to the campaign's ``results.csv``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.campaign.run import CampaignError, load_campaign
from repro.campaign.sink import resolve_artifact
from repro.obs.export import open_maybe_gzip

#: Metric prefix whose per-CC columns define the share denominator.
SHARE_METRIC = "aggregate_mbps"


@dataclass(frozen=True)
class ErrorRow:
    """One paired comparison: a swept combination under one backend."""

    group: Tuple[Tuple[str, str], ...]  # ((axis, value), ...) sans compare
    family: str
    backend: str
    share: float
    reference_share: float

    @property
    def error(self) -> float:
        """Absolute share error against the reference backend."""
        return abs(self.share - self.reference_share)


@dataclass(frozen=True)
class ModelErrorReport:
    """All paired rows plus the per-family aggregation."""

    rows: Tuple[ErrorRow, ...]
    reference: str
    share_cc: str
    csv_path: Optional[Path] = None

    def families(self) -> List[str]:
        seen: List[str] = []
        for row in self.rows:
            if row.family not in seen:
                seen.append(row.family)
        return seen

    def family_errors(self, family: str) -> List[float]:
        return [row.error for row in self.rows if row.family == family]

    def render(self) -> str:
        lines = [
            f"model error vs backend={self.reference} "
            f"({self.share_cc} share of {SHARE_METRIC})"
        ]
        for family in self.families():
            errors = self.family_errors(family)
            lines.append(
                f"  {family:<10} n={len(errors):<3} "
                f"mean {sum(errors) / len(errors):.4f}  "
                f"max {max(errors):.4f}"
            )
        return "\n".join(lines)


def _iter_results(
    out_dir: str, csv_name: str
) -> Iterator[Dict[str, str]]:
    """Stream result rows one at a time (gzip-transparent).

    Archived campaigns keep ``results.csv.gz``; either spelling
    resolves.  The whole file is never held in memory — the report
    aggregation is incremental, so scoring a million-row campaign
    stays flat.
    """
    nominal = Path(out_dir) / csv_name
    path = resolve_artifact(nominal) or nominal
    try:
        handle = open_maybe_gzip(str(path), "r")
    except OSError as exc:
        raise CampaignError(f"cannot read {path}: {exc}") from None
    seen = 0
    with handle:
        for row in csv.DictReader(handle):
            seen += 1
            yield row
    if not seen:
        raise CampaignError(f"{path}: no result rows")


def _share(row: Dict[str, str], share_cols: Sequence[str], cc: str) -> float:
    total = 0.0
    numerator = 0.0
    for col in share_cols:
        try:
            value = float(row[col])
        except (KeyError, ValueError):
            raise CampaignError(
                f"results row lacks a numeric {col!r} column; "
                f"sweep metrics must include {SHARE_METRIC}:<cc>"
            ) from None
        total += value
        if col.partition(":")[2] == cc:
            numerator = value
    if total <= 0:
        return 0.0
    return numerator / total


def model_error_report(
    out_dir: str,
    compare: str = "backend",
    reference: str = "packet",
    share_cc: str = "bbr",
) -> ModelErrorReport:
    """Pair campaign rows across the ``compare`` axis and score them.

    Args:
        out_dir: Campaign output directory (spec.json + results.csv).
        compare: Axis whose values are compared (default ``backend``).
        reference: The ``compare`` value treated as ground truth.
        share_cc: The CC whose share of the aggregate is scored.
    """
    spec = load_campaign(out_dir)
    if spec.axis(compare) is None:
        raise CampaignError(
            f"campaign {spec.name!r} does not sweep a {compare!r} axis; "
            "nothing to compare"
        )
    share_cols = [
        metric
        for metric in spec.metrics
        if metric.partition(":")[0] == SHARE_METRIC
    ]
    if not any(col.partition(":")[2] == share_cc for col in share_cols):
        raise CampaignError(
            f"campaign {spec.name!r} does not record "
            f"{SHARE_METRIC}:{share_cc}; add it to [metrics] columns"
        )
    axis_names = [axis.name for axis in spec.axes]

    by_group: Dict[Tuple[Tuple[str, str], ...], Dict[str, float]] = {}
    order: List[Tuple[Tuple[str, str], ...]] = []
    for row in _iter_results(out_dir, spec.csv_name):
        backend = row.get(compare, "")
        group = tuple(
            (name, row.get(name, ""))
            for name in axis_names
            if name != compare
        )
        shares = by_group.setdefault(group, {})
        if group not in order:
            order.append(group)
        shares[backend] = _share(row, share_cols, share_cc)

    rows: List[ErrorRow] = []
    for group in order:
        shares = by_group[group]
        if reference not in shares:
            raise CampaignError(
                f"combination {dict(group)} has no "
                f"{compare}={reference!r} row to compare against"
            )
        family = dict(group).get("aqm", "all")
        for backend, share in shares.items():
            if backend == reference:
                continue
            rows.append(
                ErrorRow(
                    group=group,
                    family=str(family),
                    backend=backend,
                    share=share,
                    reference_share=shares[reference],
                )
            )
    if not rows:
        raise CampaignError(
            f"every row is {compare}={reference!r}; nothing to compare"
        )
    csv_path = _write_error_csv(
        Path(out_dir) / "model_error.csv", rows, compare, share_cc
    )
    return ModelErrorReport(
        rows=tuple(rows),
        reference=reference,
        share_cc=share_cc,
        csv_path=csv_path,
    )


def _write_error_csv(
    path: Path,
    rows: Sequence[ErrorRow],
    compare: str,
    share_cc: str,
) -> Path:
    group_cols = [name for name, _value in rows[0].group]
    header = group_cols + [
        compare,
        f"{share_cc}_share",
        f"{share_cc}_share_ref",
        "model_error",
    ]
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in rows:
            values = dict(row.group)
            writer.writerow(
                [values[col] for col in group_cols]
                + [
                    row.backend,
                    repr(row.share),
                    repr(row.reference_share),
                    repr(row.error),
                ]
            )
    return path
