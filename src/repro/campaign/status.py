"""Campaign progress inspection: one backend for ``status``/``top``.

:func:`campaign_progress` reconstructs a campaign directory's progress
from its durable artifacts — the frozen spec, the checkpoint journal,
and (when a run is live or was recently live) the ``progress.json``
sidecar the :class:`repro.obs.progress.ProgressTracker` rewrites after
every unit.  The ETA comes from the *same* :func:`repro.obs.progress.
eta_seconds` formula the live ``--progress`` display uses: the sidecar's
EWMA rate when one is available, the journal's cumulative mean
otherwise.  ``repro-bbr campaign status --json`` and ``repro-bbr top``
are both thin renderings of this one dict — there is no second ETA
implementation to drift.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.campaign.expand import expand_units
from repro.campaign.journal import Journal, JournalError
from repro.campaign.run import load_campaign
from repro.obs.progress import (
    PROGRESS_NAME,
    eta_seconds,
    format_duration,
)

__all__ = ["campaign_progress", "render_status"]

STATUS_SCHEMA = 1

#: A sidecar older than this (relative to its own ``updated_at``) is a
#: leftover from a finished/killed run; its EWMA rate is stale and the
#: journal's cumulative mean is the honest estimate.
SIDECAR_FRESH_S = 300.0


def _read_sidecar(path: Path) -> Optional[Dict[str, Any]]:
    """The progress sidecar as a dict, or None when absent/invalid.

    The writer replaces the file atomically, so a partial read means
    "no sidecar", never an error worth surfacing.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("kind") != "progress":
        return None
    return data


def campaign_progress(out_dir: Union[str, Path]) -> Dict[str, Any]:
    """Progress snapshot of a campaign directory (possibly mid-run).

    Raises :class:`repro.campaign.run.CampaignError` /
    :class:`repro.campaign.journal.JournalError` when the directory is
    not a campaign or its journal belongs to a different spec.
    """
    out = Path(out_dir)
    spec = load_campaign(out)
    units = expand_units(spec)
    journal = Journal.in_dir(out)

    known = {unit.unit_id() for unit in units}
    total = len(units)
    stage_total: Dict[str, int] = {}
    stage_done: Dict[str, int] = {}
    for unit in units:
        stage_total[unit.stage] = stage_total.get(unit.stage, 0) + 1

    # One streaming pass over the journal — counters only, no record
    # list.  ``top`` over a million-unit journal stays flat in memory.
    done = 0
    rows = 0
    journal_wall = 0.0
    try:
        for record in journal.iter_records(
            expect_fingerprint=spec.fingerprint()
        ):
            if record.unit_id not in known:
                continue
            done += 1
            rows += len(record.rows)
            journal_wall += record.wall_s
            stage_done[record.stage] = (
                stage_done.get(record.stage, 0) + 1
            )
    except JournalError:
        if journal.exists():
            raise
        done = 0
        rows = 0
        journal_wall = 0.0
        stage_done = {}

    stages = {
        name: {"done": stage_done.get(name, 0), "total": count}
        for name, count in stage_total.items()
    }

    # The CSV now exists (partially) *during* a run; the manifest —
    # written only on a clean finish — is the completion marker.
    manifest = out / "manifest.json"
    finished = manifest.exists() or Path(
        str(manifest) + ".gz"
    ).exists()
    state = "complete" if finished and done == total else (
        "resumable" if done < total else "finishing"
    )

    # Rate/elapsed: the live sidecar when fresh, else the journal's
    # summed unit wall time as the cumulative-mean fallback.
    sidecar = _read_sidecar(out / PROGRESS_NAME)
    rate: Optional[float] = None
    hit_rate: Optional[float] = None
    workers: Dict[str, Any] = {}
    elapsed = journal_wall
    sidecar_fresh = False
    if sidecar is not None:
        age = sidecar.get("updated_at")
        if isinstance(age, (int, float)):
            sidecar_fresh = (time.time() - age) < SIDECAR_FRESH_S
        if sidecar_fresh:
            maybe_rate = sidecar.get("rate_per_s")
            if isinstance(maybe_rate, (int, float)) and maybe_rate > 0:
                rate = float(maybe_rate)
            maybe_elapsed = sidecar.get("elapsed_s")
            if isinstance(maybe_elapsed, (int, float)):
                elapsed = float(maybe_elapsed)
            workers = dict(sidecar.get("workers") or {})
        maybe_hits = sidecar.get("hit_rate")
        if isinstance(maybe_hits, (int, float)):
            hit_rate = float(maybe_hits)

    eta = eta_seconds(done, total, elapsed, rate)
    if state == "complete":
        eta = 0.0

    return {
        "schema": STATUS_SCHEMA,
        "kind": "campaign_status",
        "name": spec.name,
        "fingerprint": spec.fingerprint(),
        "state": state,
        "out_dir": str(out),
        "units": {
            "done": done,
            "total": total,
            "remaining": total - done,
        },
        "rows": rows,
        "stages": stages,
        "elapsed_s": elapsed,
        "rate_per_s": rate,
        "eta_s": eta,
        "hit_rate": hit_rate,
        "workers": workers,
        "live": sidecar_fresh,
    }


def render_status(status: Dict[str, Any]) -> str:
    """Human rendering of :func:`campaign_progress` (``repro-bbr top``)."""
    units = status["units"]
    pct = (
        f" ({units['done'] / units['total'] * 100:.0f}%)"
        if units["total"]
        else ""
    )
    lines = [
        f"campaign '{status['name']}' [{status['state']}]"
        + (" (live)" if status.get("live") else ""),
        f"  units: {units['done']}/{units['total']}{pct}, "
        f"{status['rows']} rows",
    ]
    for name, counts in status["stages"].items():
        lines.append(
            f"  stage {name}: {counts['done']}/{counts['total']}"
        )
    rate = status.get("rate_per_s")
    hit_rate = status.get("hit_rate")
    lines.append(
        "  rate: "
        + (f"{rate:.2f}/s" if rate else "-")
        + " | hit-rate: "
        + (f"{hit_rate * 100:.0f}%" if hit_rate is not None else "-")
        + f" | eta {format_duration(status.get('eta_s'))}"
        + f" | elapsed {format_duration(status.get('elapsed_s'))}"
    )
    for pid, health in sorted(status.get("workers", {}).items()):
        age = health.get("last_seen_age_s")
        rss = health.get("rss_kb", 0)
        points = health.get("points", 0)
        lines.append(
            f"  worker {pid}: {points} point(s), "
            f"rss {rss // 1024} MiB, seen {age:.0f}s ago"
        )
    return "\n".join(lines)
