"""Axis expansion: a validated spec becomes a flat list of work units.

``grid`` expansion takes the Cartesian product of the axes (in
declaration order, rightmost fastest — the order the figure sweeps have
always iterated); ``zip`` pairs equal-length axes element-wise.  Each
combination crossed with each stage yields a :class:`Unit` — the atom of
campaign execution, checkpointing, and resumption.  A unit's identity
(:meth:`Unit.unit_id`) is a content fingerprint over the fully resolved
parameters *and* its position, so the checkpoint journal can match
completed units across process restarts without trusting list order
alone.

Resolution rules keep fingerprints identical to the hand-coded figure
sweeps: when a combination overrides only ``buffer_bdp``, the unit link
is ``spec.link.with_buffer_bdp(value)`` with the axis value exactly as
authored (an integer ``2`` stays ``2``, as in the original
``buffers = [0.5, 2, 5, ...]`` lists), so campaign runs and figure runs
share result-cache entries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.campaign.spec import CampaignSpec, Mix, SpecError, format_mix
from repro.exec.fingerprint import (
    ScenarioPoint,
    fingerprint_payload,
    link_params,
)
from repro.util.config import LinkConfig

__all__ = ["Unit", "expand_axes", "expand_units"]


@dataclass(frozen=True)
class Unit:
    """One checkpointable atom of campaign work.

    For ``sweep`` stages a unit is one scenario point; for ``adaptive``
    stages it is one complete NE bisection (``search`` indexes the
    independent repetitions of a combination).
    """

    index: int
    stage: str
    kind: str
    combo: Tuple[Tuple[str, Any], ...]
    link: LinkConfig
    duration: float
    backend: str
    trials: int
    seed: int
    loss_mode: str
    mix: Optional[Mix] = None
    # Adaptive-only fields.
    flows: int = 0
    challenger: str = ""
    incumbent: str = ""
    search: int = 0
    seed_stride: int = 0
    # Population-only fields.
    dynamics: str = ""
    ticks: int = 0
    epsilon: float = 0.0
    mutation: float = 0.0
    inertia: float = 0.0
    init_share: float = 0.0
    error_threshold: float = 0.0

    def combo_dict(self) -> Dict[str, Any]:
        """The swept values this unit was expanded from (CSV columns)."""
        out: Dict[str, Any] = {}
        for name, value in self.combo:
            out[name] = format_mix(value) if name == "mix" else value
        return out

    def params(self) -> Dict[str, Any]:
        """The resolved-parameter descriptor hashed by :meth:`unit_id`."""
        params: Dict[str, Any] = {
            "index": self.index,
            "stage": self.stage,
            "type": self.kind,
            "link": link_params(self.link),
            "duration": self.duration,
            "backend": self.backend,
            "trials": self.trials,
            "seed": self.seed,
            "loss_mode": self.loss_mode,
        }
        if self.kind == "sweep":
            params["mix"] = [list(entry) for entry in self.mix or ()]
        elif self.kind == "population":
            params["flows"] = self.flows
            params["challenger"] = self.challenger
            params["incumbent"] = self.incumbent
            params["dynamics"] = self.dynamics
            params["ticks"] = self.ticks
            params["epsilon"] = self.epsilon
            params["mutation"] = self.mutation
            params["inertia"] = self.inertia
            params["init_share"] = self.init_share
            params["error_threshold"] = self.error_threshold
        else:
            params["flows"] = self.flows
            params["challenger"] = self.challenger
            params["incumbent"] = self.incumbent
            params["search"] = self.search
            params["seed_stride"] = self.seed_stride
        return params

    def unit_id(self) -> str:
        """Stable identity used by the checkpoint journal."""
        return fingerprint_payload("campaign_unit", self.params())

    def to_point(self) -> ScenarioPoint:
        """The scenario point a ``sweep`` unit executes."""
        if self.kind != "sweep":
            raise ValueError(
                f"unit {self.index} is {self.kind!r}, not a sweep point"
            )
        assert self.mix is not None  # Validated at parse time.
        return ScenarioPoint(
            link=self.link,
            mix=self.mix,
            duration=self.duration,
            backend=self.backend,
            trials=self.trials,
            seed=self.seed,
            loss_mode=self.loss_mode,
        )

    def describe(self) -> str:
        """One-line label for progress output."""
        combo = ", ".join(
            f"{name}={value}" for name, value in self.combo_dict().items()
        )
        tail = f" search {self.search}" if self.kind == "adaptive" else ""
        return f"[{self.stage}] {combo or '(single point)'}{tail}"


def expand_axes(spec: CampaignSpec) -> List[Tuple[Tuple[str, Any], ...]]:
    """Expand the spec's axes into combinations of ``(name, value)``.

    ``grid`` is the Cartesian product in declaration order (rightmost
    axis fastest); ``zip`` pairs axes element-wise (lengths validated at
    parse time).
    """
    names = [axis.name for axis in spec.axes]
    if spec.expand == "zip":
        rows: Iterator[Tuple[Any, ...]] = zip(
            *(axis.values for axis in spec.axes)
        )
    else:
        rows = itertools.product(*(axis.values for axis in spec.axes))
    return [tuple(zip(names, row)) for row in rows]


def _resolve_link(
    spec: CampaignSpec, combo: Dict[str, Any]
) -> LinkConfig:
    bandwidth = combo.get("bandwidth_mbps")
    rtt = combo.get("rtt_ms")
    buffer_bdp = combo.get("buffer_bdp")
    if bandwidth is None and rtt is None:
        # Buffer-only sweeps reuse the base link verbatim so float
        # identity (and therefore cache fingerprints) matches the
        # hand-coded ``base.with_buffer_bdp(depth)`` figure loops.
        if buffer_bdp is None:
            link = spec.link
        else:
            link = spec.link.with_buffer_bdp(buffer_bdp)
    else:
        link = LinkConfig.from_mbps_ms(
            bandwidth if bandwidth is not None else spec.link.capacity_mbps,
            rtt if rtt is not None else spec.link.rtt_ms,
            buffer_bdp if buffer_bdp is not None else spec.link.buffer_bdp,
            mss=spec.link.mss,
            aqm=spec.link.aqm,
            capacity_trace=spec.link.capacity_trace,
        )
    # Scenario axes layer on top of the geometric resolution so the
    # drop-tail/constant default path above keeps its historical
    # object (and fingerprint) identity.
    aqm = combo.get("aqm")
    ecn = combo.get("ecn")
    try:
        if aqm is not None or ecn is not None:
            link = link.with_aqm(
                aqm if aqm is not None else link.aqm, ecn=ecn
            )
        trace = combo.get("capacity_trace")
        if trace is not None:
            link = link.with_capacity_trace(trace)
    except ValueError as exc:
        raise SpecError(f"combination {dict(combo)!r}: {exc}") from None
    return link


def expand_units(spec: CampaignSpec) -> List[Unit]:
    """Every unit of the campaign, in deterministic execution order.

    Units are ordered stage-by-stage; within a stage, combinations in
    expansion order; within an adaptive combination, searches ascending
    — matching the nesting of the original figure-9 loops so resumed
    and fresh runs write rows in the same order.
    """
    combos = expand_axes(spec)
    units: List[Unit] = []
    index = 0
    for stage in spec.stages:
        for combo in combos:
            resolved = dict(combo)
            link = _resolve_link(spec, resolved)
            duration = resolved.get("duration", spec.duration)
            backend = resolved.get("backend", spec.backend)
            trials = resolved.get("trials", spec.trials)
            seed = resolved.get("seed", spec.seed)
            loss_mode = resolved.get("loss_mode", spec.loss_mode)
            if stage.kind == "sweep":
                units.append(
                    Unit(
                        index=index,
                        stage=stage.name,
                        kind=stage.kind,
                        combo=combo,
                        link=link,
                        duration=duration,
                        backend=backend,
                        trials=trials,
                        seed=seed,
                        loss_mode=loss_mode,
                        mix=resolved.get("mix", spec.mix),
                    )
                )
                index += 1
            elif stage.kind == "population":
                units.append(
                    Unit(
                        index=index,
                        stage=stage.name,
                        kind=stage.kind,
                        combo=combo,
                        link=link,
                        duration=duration,
                        backend=backend,
                        trials=trials,
                        seed=seed,
                        loss_mode=loss_mode,
                        flows=stage.flows,
                        challenger=stage.challenger,
                        incumbent=stage.incumbent,
                        dynamics=resolved.get("dynamics", stage.dynamics),
                        ticks=stage.ticks,
                        epsilon=resolved.get("epsilon", stage.epsilon),
                        mutation=stage.mutation,
                        inertia=stage.inertia,
                        init_share=stage.init_share,
                        error_threshold=stage.error_threshold,
                    )
                )
                index += 1
            else:
                for search in range(stage.searches):
                    units.append(
                        Unit(
                            index=index,
                            stage=stage.name,
                            kind=stage.kind,
                            combo=combo,
                            link=link,
                            duration=duration,
                            backend=backend,
                            trials=trials,
                            seed=seed,
                            loss_mode=loss_mode,
                            flows=stage.flows,
                            challenger=stage.challenger,
                            incumbent=stage.incumbent,
                            search=search,
                            seed_stride=stage.seed_stride,
                        )
                    )
                    index += 1
    return units
