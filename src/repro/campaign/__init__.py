"""Declarative scenario campaigns with checkpointed, resumable sweeps.

The figure generators reproduce the paper; campaigns go beyond it: a
study is a small TOML/JSON *spec* — parameter axes, an expansion mode,
stages, derived metrics — expanded into checkpointable units and
executed through the :mod:`repro.exec` engine.  Completed units are
journaled durably, so a killed campaign resumes without re-simulating
anything, and an ``adaptive`` stage turns the paper's NE-region search
(Figure 9) into a ~20-line spec.  See ``docs/CAMPAIGNS.md``.
"""

from repro.campaign.expand import Unit, expand_axes, expand_units
from repro.campaign.journal import Journal, JournalError, JournalRecord
from repro.campaign.report import (
    ErrorRow,
    ModelErrorReport,
    model_error_report,
)
from repro.campaign.run import (
    CampaignError,
    CampaignSummary,
    UnitOutcome,
    execute_units,
    iter_units,
    load_campaign,
    run_campaign,
)
from repro.campaign.sink import (
    CampaignSink,
    CsvSink,
    JsonlSink,
    SinkError,
    resolve_artifact,
)
from repro.campaign.spec import (
    Axis,
    CampaignSpec,
    SpecError,
    Stage,
    format_mix,
    load_spec,
    parse_mix,
    parse_spec,
)
from repro.campaign.status import campaign_progress, render_status
from repro.campaign.studies import (
    bundled_campaign_dir,
    fig9_campaign,
    list_bundled_campaigns,
)

__all__ = [
    "Axis",
    "CampaignError",
    "CampaignSink",
    "CampaignSpec",
    "CampaignSummary",
    "CsvSink",
    "ErrorRow",
    "Journal",
    "JournalError",
    "JournalRecord",
    "JsonlSink",
    "ModelErrorReport",
    "SinkError",
    "SpecError",
    "Stage",
    "Unit",
    "UnitOutcome",
    "bundled_campaign_dir",
    "campaign_progress",
    "execute_units",
    "render_status",
    "expand_axes",
    "expand_units",
    "fig9_campaign",
    "format_mix",
    "iter_units",
    "list_bundled_campaigns",
    "load_campaign",
    "load_spec",
    "model_error_report",
    "parse_mix",
    "parse_spec",
    "resolve_artifact",
    "run_campaign",
]
