"""Declarative campaign specifications: parse + validate.

A *campaign* is a study declared as data instead of code: parameter
axes over the scenario space (link bandwidth/RTT/buffer, CCA mixes,
seeds, durations, backend), an expansion mode (``grid`` product or
``zip`` pairing), one or more *stages* that consume the expanded
combinations, and derived-metric columns for the output CSV.  Specs are
authored as TOML (parsed with the stdlib ``tomllib``) or JSON; the
in-memory form is :class:`CampaignSpec`, whose canonical dict
(:meth:`CampaignSpec.to_dict`) round-trips through :func:`parse_spec`
and is hashed into a *spec fingerprint* that keys the checkpoint
journal (:mod:`repro.campaign.journal`).

Stage kinds:

* ``sweep`` — one scenario point per expanded combination, resolved
  through the execution engine (parallel + cached);
* ``adaptive`` — per combination, bisect the CCA-split dimension for
  the empirical Nash equilibrium (``repro.core.game.bisect_nash``
  best-response logic), so NE-region studies like the paper's Figure 9
  are a ~20-line spec instead of a bespoke generator.

Every validation failure raises :class:`SpecError` with a one-line,
actionable message naming the offending field.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.exec.fingerprint import fingerprint_payload
from repro.scenario import BACKENDS, parse_aqm, parse_capacity_trace
from repro.util.config import LinkConfig

__all__ = [
    "Axis",
    "CampaignSpec",
    "SpecError",
    "Stage",
    "format_mix",
    "load_spec",
    "parse_mix",
    "parse_spec",
]


class SpecError(ValueError):
    """A campaign spec failed validation; the message is one line."""


#: Axes that sweep a float-valued scenario parameter.  ``epsilon`` is
#: the population-stage switching probability (noisy-choice dynamics).
FLOAT_AXES = ("bandwidth_mbps", "rtt_ms", "buffer_bdp", "duration", "epsilon")
#: Axes that sweep an int-valued scenario parameter.
INT_AXES = ("seed", "trials")
#: Axes that sweep a string-valued scenario parameter.  ``dynamics``
#: selects the population-stage update rule; ``aqm`` and
#: ``capacity_trace`` accept any :mod:`repro.scenario` spelling
#: (``"red"``, ``"steps:5@0.5"``, ...).
STR_AXES = ("backend", "loss_mode", "dynamics", "aqm", "capacity_trace")
#: Axes that sweep a boolean scenario parameter (``ecn`` toggles
#: marking on the swept/default AQM).
BOOL_AXES = ("ecn",)
#: Every sweepable axis name (``mix`` sweeps the flow mix itself).
AXIS_NAMES = FLOAT_AXES + INT_AXES + STR_AXES + BOOL_AXES + ("mix",)

#: Axes that only population stages consume.
POPULATION_AXES = ("epsilon", "dynamics")

EXPAND_MODES = ("grid", "zip")
STAGE_KINDS = ("sweep", "adaptive", "population")

#: Derived metrics that take no CCA argument.
SCALAR_METRICS = ("queuing_delay_ms", "drop_rate")
#: Derived metrics spelled ``name:<cc>``.
PER_CC_METRICS = (
    "per_flow_mbps",
    "aggregate_mbps",
    "loss_rate",
    "retransmits",
)

Mix = Tuple[Tuple[str, int], ...]


def _available_ccas() -> List[str]:
    from repro.cc import available_algorithms

    return list(available_algorithms())


def _check_cca(name: str, where: str) -> str:
    key = str(name).lower()
    available = _available_ccas()
    if key not in available:
        raise SpecError(
            f"{where}: unknown congestion control {name!r} "
            f"(available: {', '.join(available)})"
        )
    return key


def parse_mix(value: Any, where: str) -> Mix:
    """Parse a flow mix from ``"cubic:5,bbr:5"`` or ``[["cubic", 5], ...]``.

    CCA names are validated against the registry and lowercased;
    zero-count entries are kept out; at least one positive count is
    required.
    """
    entries: List[Tuple[str, int]] = []
    if isinstance(value, str):
        for item in value.split(","):
            item = item.strip()
            if not item:
                continue
            cc, sep, count = item.partition(":")
            if not sep or not cc:
                raise SpecError(
                    f"{where}: bad mix entry {item!r}; use 'name:count' "
                    "(e.g. 'cubic:5,bbr:5')"
                )
            try:
                n = int(count)
            except ValueError:
                raise SpecError(
                    f"{where}: mix count {count!r} is not an integer"
                ) from None
            entries.append((cc.strip(), n))
    elif isinstance(value, (list, tuple)):
        for item in value:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise SpecError(
                    f"{where}: mix entries must be [name, count] pairs, "
                    f"got {item!r}"
                )
            cc, n = item
            if not isinstance(n, int) or isinstance(n, bool):
                raise SpecError(
                    f"{where}: mix count {n!r} is not an integer"
                )
            entries.append((str(cc), n))
    else:
        raise SpecError(
            f"{where}: mix must be a 'name:count,...' string or a list "
            f"of [name, count] pairs, got {type(value).__name__}"
        )
    if not entries:
        raise SpecError(f"{where}: mix is empty")
    mix: List[Tuple[str, int]] = []
    for cc, n in entries:
        key = _check_cca(cc, where)
        if n < 0:
            raise SpecError(f"{where}: mix count for {key!r} is negative")
        if n > 0:
            mix.append((key, n))
    if not mix:
        raise SpecError(
            f"{where}: mix has no positive flow counts"
        )
    return tuple(mix)


def format_mix(mix: Sequence[Tuple[str, int]]) -> str:
    """Canonical one-token rendering of a mix (CSV cell / log form)."""
    return ",".join(f"{cc}:{count}" for cc, count in mix)


def _check_metric(name: str, where: str) -> str:
    if not isinstance(name, str):
        raise SpecError(f"{where}: metric names must be strings")
    base, sep, cc = name.partition(":")
    if base in SCALAR_METRICS and not sep:
        return name
    if base in PER_CC_METRICS:
        if not sep or not cc:
            raise SpecError(
                f"{where}: metric {name!r} needs a CCA argument "
                f"(e.g. '{base}:bbr')"
            )
        return f"{base}:{_check_cca(cc, where)}"
    raise SpecError(
        f"{where}: unknown metric {name!r} (scalar: "
        f"{', '.join(SCALAR_METRICS)}; per-CCA: "
        f"{', '.join(m + ':<cc>' for m in PER_CC_METRICS)})"
    )


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a name and the values it takes."""

    name: str
    values: Tuple[Any, ...]

    def to_dict(self) -> Dict[str, Any]:
        values: List[Any] = []
        for v in self.values:
            values.append([list(e) for e in v] if self.name == "mix" else v)
        return {"name": self.name, "values": values}


@dataclass(frozen=True)
class Stage:
    """One pass over the expanded combinations.

    ``sweep`` runs each combination as one scenario point; ``adaptive``
    bisects the incumbent/challenger split for the empirical NE at each
    combination (``searches`` independent repetitions, seed-offset by
    ``seed_stride`` — the spacing the figure-9 sweep has always used);
    ``population`` evolves a :mod:`repro.population` adoption
    trajectory per combination (``ticks`` steps of ``dynamics``, with
    the tiered payoff oracle calibrated at ``error_threshold``).
    """

    name: str
    kind: str
    flows: int = 0
    challenger: str = "bbr"
    incumbent: str = "cubic"
    searches: int = 1
    seed_stride: int = 7919
    dynamics: str = "replicator"
    ticks: int = 60
    epsilon: float = 0.2
    mutation: float = 0.0
    inertia: float = 0.5
    init_share: float = 0.1
    error_threshold: float = 0.1

    def to_dict(self) -> Dict[str, Any]:
        if self.kind == "sweep":
            return {"name": self.name, "type": self.kind}
        if self.kind == "population":
            return {
                "name": self.name,
                "type": self.kind,
                "flows": self.flows,
                "challenger": self.challenger,
                "incumbent": self.incumbent,
                "dynamics": self.dynamics,
                "ticks": self.ticks,
                "epsilon": self.epsilon,
                "mutation": self.mutation,
                "inertia": self.inertia,
                "init_share": self.init_share,
                "error_threshold": self.error_threshold,
            }
        return {
            "name": self.name,
            "type": self.kind,
            "flows": self.flows,
            "challenger": self.challenger,
            "incumbent": self.incumbent,
            "searches": self.searches,
            "seed_stride": self.seed_stride,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A fully validated campaign declaration."""

    name: str
    description: str
    link: LinkConfig
    duration: float
    backend: str
    trials: int
    seed: int
    loss_mode: str
    mix: Optional[Mix]
    expand: str
    axes: Tuple[Axis, ...]
    stages: Tuple[Stage, ...]
    metrics: Tuple[str, ...]
    csv_name: str = "results.csv"
    #: Optional JSONL mirror of the result rows (``output.jsonl``);
    #: None means no mirror is written.
    jsonl_name: Optional[str] = None

    def axis(self, name: str) -> Optional[Axis]:
        """The axis named ``name``, or None when it is not swept."""
        for axis in self.axes:
            if axis.name == name:
                return axis
        return None

    def stage(self, name: str) -> Stage:
        """The stage named ``name`` (unique by validation)."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"campaign {self.name!r} has no stage {name!r}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical, JSON-able form; re-parses to an equal spec."""
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "link": {
                "bandwidth_mbps": float(self.link.capacity_mbps),
                "rtt_ms": float(self.link.rtt_ms),
                "buffer_bdp": float(self.link.buffer_bdp),
                "mss": int(self.link.mss),
                "aqm": self.link.aqm.to_dict(),
                "capacity_trace": self.link.capacity_trace.to_dict(),
            },
            "defaults": {
                "duration": float(self.duration),
                "backend": self.backend,
                "trials": int(self.trials),
                "seed": int(self.seed),
                "loss_mode": self.loss_mode,
            },
            "expand": self.expand,
            "axes": [axis.to_dict() for axis in self.axes],
            "stages": [stage.to_dict() for stage in self.stages],
            "metrics": list(self.metrics),
            "output": {"csv": self.csv_name},
        }
        if self.jsonl_name is not None:
            # Added only when set: the key's absence keeps fingerprints
            # (and therefore existing journals) of csv-only campaigns
            # stable across versions.
            data["output"]["jsonl"] = self.jsonl_name
        if self.mix is not None:
            data["defaults"]["mix"] = [list(e) for e in self.mix]
        return data

    def fingerprint(self) -> str:
        """Content hash of the canonical spec (keys the journal)."""
        return fingerprint_payload("campaign_spec", self.to_dict())


def _get_table(data: Dict[str, Any], key: str, source: str) -> Dict[str, Any]:
    table = data.get(key, {})
    if not isinstance(table, dict):
        raise SpecError(f"{source}: [{key}] must be a table/object")
    return table


def _get_number(
    table: Dict[str, Any], key: str, default: float, where: str
) -> float:
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{where}.{key}: expected a number, got {value!r}")
    return float(value)


def _get_int(table: Dict[str, Any], key: str, default: int, where: str) -> int:
    value = table.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{where}.{key}: expected an integer, got {value!r}")
    return value


def _get_str(table: Dict[str, Any], key: str, default: str, where: str) -> str:
    value = table.get(key, default)
    if not isinstance(value, str):
        raise SpecError(f"{where}.{key}: expected a string, got {value!r}")
    return value


def _check_backend(backend: str, where: str) -> str:
    if backend not in BACKENDS:
        raise SpecError(
            f"{where}: backend must be one of {', '.join(BACKENDS)}, "
            f"got {backend!r}"
        )
    return backend


def _check_dynamics(name: str, where: str) -> str:
    from repro.population.dynamics import DYNAMICS

    if name not in DYNAMICS:
        raise SpecError(
            f"{where}: dynamics must be one of {', '.join(DYNAMICS)}, "
            f"got {name!r}"
        )
    return name


def _parse_axis(entry: Any, index: int, source: str) -> Axis:
    where = f"{source}: axes[{index}]"
    if not isinstance(entry, dict):
        raise SpecError(f"{where}: each [[axes]] entry must be a table")
    name = entry.get("name")
    if name not in AXIS_NAMES:
        raise SpecError(
            f"{where}.name: {name!r} is not a sweepable parameter "
            f"(choose from: {', '.join(AXIS_NAMES)})"
        )
    values = entry.get("values")
    if not isinstance(values, (list, tuple)) or not values:
        raise SpecError(
            f"{where}.values: expected a non-empty list of values"
        )
    parsed: List[Any] = []
    for j, value in enumerate(values):
        vwhere = f"{where}.values[{j}]"
        if name == "mix":
            parsed.append(parse_mix(value, vwhere))
        elif name in FLOAT_AXES:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SpecError(f"{vwhere}: expected a number, got {value!r}")
            if value <= 0:
                raise SpecError(f"{vwhere}: must be positive, got {value!r}")
            parsed.append(value)
        elif name in INT_AXES:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SpecError(
                    f"{vwhere}: expected an integer, got {value!r}"
                )
            if name == "trials" and value < 1:
                raise SpecError(f"{vwhere}: trials must be >= 1")
            parsed.append(value)
        elif name in BOOL_AXES:
            if not isinstance(value, bool):
                raise SpecError(f"{vwhere}: expected a boolean, got {value!r}")
            parsed.append(value)
        else:  # STR_AXES
            if not isinstance(value, str):
                raise SpecError(f"{vwhere}: expected a string, got {value!r}")
            if name == "backend":
                _check_backend(value, vwhere)
            if name == "dynamics":
                _check_dynamics(value, vwhere)
            if name == "aqm":
                try:
                    parse_aqm(value)
                except ValueError as exc:
                    raise SpecError(f"{vwhere}: {exc}") from None
            if name == "capacity_trace":
                try:
                    parse_capacity_trace(value)
                except ValueError as exc:
                    raise SpecError(f"{vwhere}: {exc}") from None
            parsed.append(value)
    return Axis(name=name, values=tuple(parsed))


def _parse_stage(entry: Any, index: int, source: str) -> Stage:
    where = f"{source}: stages[{index}]"
    if not isinstance(entry, dict):
        raise SpecError(f"{where}: each [[stages]] entry must be a table")
    kind = entry.get("type", "sweep")
    if kind not in STAGE_KINDS:
        raise SpecError(
            f"{where}.type: {kind!r} is not a stage type "
            f"(choose from: {', '.join(STAGE_KINDS)})"
        )
    name = _get_str(entry, "name", f"stage{index}", where)
    if kind == "sweep":
        return Stage(name=name, kind=kind)
    flows = _get_int(entry, "flows", 0, where)
    if flows < 2:
        raise SpecError(
            f"{where}.flows: {kind} stages need flows >= 2, got {flows}"
        )
    challenger = _check_cca(
        _get_str(entry, "challenger", "bbr", where), f"{where}.challenger"
    )
    incumbent = _check_cca(
        _get_str(entry, "incumbent", "cubic", where), f"{where}.incumbent"
    )
    if challenger == incumbent:
        raise SpecError(
            f"{where}: challenger and incumbent are both {challenger!r}"
        )
    if kind == "population":
        dynamics = _check_dynamics(
            _get_str(entry, "dynamics", "replicator", where),
            f"{where}.dynamics",
        )
        ticks = _get_int(entry, "ticks", 60, where)
        if ticks < 1:
            raise SpecError(f"{where}.ticks: must be >= 1, got {ticks}")
        epsilon = _get_number(entry, "epsilon", 0.2, where)
        if not 0.0 < epsilon <= 1.0:
            raise SpecError(
                f"{where}.epsilon: must be in (0, 1], got {epsilon}"
            )
        mutation = _get_number(entry, "mutation", 0.0, where)
        if not 0.0 <= mutation < 1.0:
            raise SpecError(
                f"{where}.mutation: must be in [0, 1), got {mutation}"
            )
        inertia = _get_number(entry, "inertia", 0.5, where)
        if not 0.0 <= inertia < 1.0:
            raise SpecError(
                f"{where}.inertia: must be in [0, 1), got {inertia}"
            )
        init_share = _get_number(entry, "init_share", 0.1, where)
        if not 0.0 <= init_share <= 1.0:
            raise SpecError(
                f"{where}.init_share: must be in [0, 1], got {init_share}"
            )
        error_threshold = _get_number(entry, "error_threshold", 0.1, where)
        if error_threshold <= 0:
            raise SpecError(
                f"{where}.error_threshold: must be positive, "
                f"got {error_threshold}"
            )
        return Stage(
            name=name,
            kind=kind,
            flows=flows,
            challenger=challenger,
            incumbent=incumbent,
            dynamics=dynamics,
            ticks=ticks,
            epsilon=epsilon,
            mutation=mutation,
            inertia=inertia,
            init_share=init_share,
            error_threshold=error_threshold,
        )
    searches = _get_int(entry, "searches", 1, where)
    if searches < 1:
        raise SpecError(f"{where}.searches: must be >= 1, got {searches}")
    seed_stride = _get_int(entry, "seed_stride", 7919, where)
    if seed_stride < 1:
        raise SpecError(f"{where}.seed_stride: must be >= 1")
    return Stage(
        name=name,
        kind=kind,
        flows=flows,
        challenger=challenger,
        incumbent=incumbent,
        searches=searches,
        seed_stride=seed_stride,
    )


def _default_metrics(
    mix: Optional[Mix], axes: Sequence[Axis]
) -> Tuple[str, ...]:
    """Per-flow throughput for every CCA seen, plus delay and drops."""
    ccas: List[str] = []
    mixes: List[Mix] = [] if mix is None else [mix]
    for axis in axes:
        if axis.name == "mix":
            mixes.extend(axis.values)
    for m in mixes:
        for cc, _count in m:
            if cc not in ccas:
                ccas.append(cc)
    metrics = [f"per_flow_mbps:{cc}" for cc in ccas]
    metrics += ["queuing_delay_ms", "drop_rate"]
    return tuple(metrics)


def parse_spec(data: Any, source: str = "spec") -> CampaignSpec:
    """Validate a raw spec mapping into a :class:`CampaignSpec`.

    Accepts both the authoring shape (TOML/JSON files) and the
    canonical :meth:`CampaignSpec.to_dict` shape; the two are
    deliberately identical.  ``source`` prefixes every error message so
    diagnostics name the offending file.
    """
    if not isinstance(data, dict):
        raise SpecError(
            f"{source}: top level must be a table/object, got "
            f"{type(data).__name__}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name.strip():
        raise SpecError(f"{source}: 'name' is required and must be a string")
    name = name.strip()
    description = _get_str(data, "description", "", source)

    link_table = _get_table(data, "link", source)
    for key in link_table:
        if key not in (
            "bandwidth_mbps",
            "rtt_ms",
            "buffer_bdp",
            "mss",
            "aqm",
            "ecn",
            "capacity_trace",
        ):
            raise SpecError(f"{source}: [link] has unknown key {key!r}")
    ecn = link_table.get("ecn")
    if ecn is not None and not isinstance(ecn, bool):
        raise SpecError(
            f"{source}: link.ecn: expected a boolean, got {ecn!r}"
        )
    try:
        link = LinkConfig.from_mbps_ms(
            _get_number(
                link_table, "bandwidth_mbps", 100.0, f"{source}: link"
            ),
            _get_number(link_table, "rtt_ms", 40.0, f"{source}: link"),
            _get_number(link_table, "buffer_bdp", 5.0, f"{source}: link"),
            mss=_get_int(link_table, "mss", 1500, f"{source}: link"),
            aqm=parse_aqm(link_table.get("aqm"), ecn=ecn),
            capacity_trace=parse_capacity_trace(
                link_table.get("capacity_trace")
            ),
        )
    except ValueError as exc:
        raise SpecError(f"{source}: [link] {exc}") from None

    defaults = _get_table(data, "defaults", source)
    for key in defaults:
        if key not in (
            "duration",
            "backend",
            "trials",
            "seed",
            "loss_mode",
            "mix",
        ):
            raise SpecError(f"{source}: [defaults] has unknown key {key!r}")
    where = f"{source}: defaults"
    duration = _get_number(defaults, "duration", 60.0, where)
    if duration <= 0:
        raise SpecError(f"{where}.duration: must be positive")
    backend = _check_backend(
        _get_str(defaults, "backend", "fluid", where), f"{where}.backend"
    )
    trials = _get_int(defaults, "trials", 1, where)
    if trials < 1:
        raise SpecError(f"{where}.trials: must be >= 1, got {trials}")
    seed = _get_int(defaults, "seed", 0, where)
    loss_mode = _get_str(defaults, "loss_mode", "proportional", where)
    mix = (
        parse_mix(defaults["mix"], f"{where}.mix")
        if "mix" in defaults
        else None
    )

    expand = _get_str(data, "expand", "grid", source)
    if expand not in EXPAND_MODES:
        raise SpecError(
            f"{source}: expand must be one of {', '.join(EXPAND_MODES)}, "
            f"got {expand!r}"
        )

    raw_axes = data.get("axes")
    if not isinstance(raw_axes, (list, tuple)) or not raw_axes:
        raise SpecError(
            f"{source}: no axes declared — add at least one [[axes]] "
            "table with 'name' and 'values'"
        )
    axes = tuple(
        _parse_axis(entry, i, source) for i, entry in enumerate(raw_axes)
    )
    seen_axes = set()
    for axis in axes:
        if axis.name in seen_axes:
            raise SpecError(
                f"{source}: axis {axis.name!r} is declared twice"
            )
        seen_axes.add(axis.name)
    if expand == "zip":
        lengths = {len(axis.values) for axis in axes}
        if len(lengths) > 1:
            detail = ", ".join(
                f"{axis.name}={len(axis.values)}" for axis in axes
            )
            raise SpecError(
                f"{source}: zip expansion needs equal-length axes "
                f"({detail})"
            )

    raw_stages = data.get("stages", [{"type": "sweep"}])
    if not isinstance(raw_stages, (list, tuple)) or not raw_stages:
        raise SpecError(f"{source}: stages must be a non-empty list")
    stages = tuple(
        _parse_stage(entry, i, source) for i, entry in enumerate(raw_stages)
    )
    seen_stages = set()
    for stage in stages:
        if stage.name in seen_stages:
            raise SpecError(
                f"{source}: stage {stage.name!r} is declared twice"
            )
        seen_stages.add(stage.name)

    has_sweep = any(stage.kind == "sweep" for stage in stages)
    has_adaptive = any(stage.kind == "adaptive" for stage in stages)
    has_population = any(stage.kind == "population" for stage in stages)
    if has_sweep and mix is None and "mix" not in seen_axes:
        raise SpecError(
            f"{source}: sweep stages need a flow mix — set "
            "[defaults] mix or declare a mix axis"
        )
    if (has_adaptive or has_population) and "mix" in seen_axes:
        kind = "adaptive" if has_adaptive else "population"
        raise SpecError(
            f"{source}: {kind} stages derive the mix split themselves; "
            "remove the mix axis or use a sweep stage"
        )
    if not has_population:
        swept_population = seen_axes & set(POPULATION_AXES)
        if swept_population:
            raise SpecError(
                f"{source}: axis "
                f"{', '.join(sorted(swept_population))!s} only applies "
                "to population stages — add one or drop the axis"
            )

    raw_metrics = data.get("metrics", {})
    if isinstance(raw_metrics, dict):
        raw_metrics = raw_metrics.get("columns", None)
    if raw_metrics is None:
        metrics: Tuple[str, ...] = (
            _default_metrics(mix, axes) if has_sweep else ()
        )
    else:
        if not isinstance(raw_metrics, (list, tuple)):
            raise SpecError(
                f"{source}: metrics.columns must be a list of metric names"
            )
        metrics = tuple(
            _check_metric(m, f"{source}: metrics") for m in raw_metrics
        )

    output = _get_table(data, "output", source)
    csv_name = _get_str(output, "csv", "results.csv", f"{source}: output")
    if "/" in csv_name or "\\" in csv_name or not csv_name:
        raise SpecError(
            f"{source}: output.csv must be a bare file name, "
            f"got {csv_name!r}"
        )
    jsonl_name: Optional[str] = None
    if output.get("jsonl") is not None:
        jsonl_name = _get_str(output, "jsonl", "", f"{source}: output")
        if "/" in jsonl_name or "\\" in jsonl_name or not jsonl_name:
            raise SpecError(
                f"{source}: output.jsonl must be a bare file name, "
                f"got {jsonl_name!r}"
            )

    return CampaignSpec(
        name=name,
        description=description,
        link=link,
        duration=duration,
        backend=backend,
        trials=trials,
        seed=seed,
        loss_mode=loss_mode,
        mix=mix,
        expand=expand,
        axes=axes,
        stages=stages,
        metrics=metrics,
        csv_name=csv_name,
        jsonl_name=jsonl_name,
    )


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load and validate a campaign spec from a ``.toml``/``.json`` file."""
    path = Path(path)
    source = str(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise SpecError(
            f"{source}: unsupported spec format {suffix or '(none)'!r}; "
            "use .toml or .json"
        )
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise SpecError(f"{source}: no such spec file") from None
    except OSError as exc:
        raise SpecError(f"{source}: cannot read spec: {exc}") from None
    if suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise SpecError(f"{source}: invalid TOML: {exc}") from None
    else:
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise SpecError(f"{source}: invalid JSON: {exc}") from None
    return parse_spec(data, source=source)
