"""Programmatic builders for the studies the repo ships as campaigns.

:func:`fig9_campaign` builds the NE-region study of the paper's
Figure 9 as a :class:`~repro.campaign.spec.CampaignSpec` — the *same*
spec checked in at ``examples/campaigns/fig9-ne-quick.toml`` (a test
pins their fingerprints equal), and the spec
:func:`repro.experiments.figures.figure9` now runs under the hood.
Building it here keeps one source of truth for the numbers while
letting the TOML file stay a copy-paste starting point for users.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.campaign.spec import CampaignSpec, parse_spec

__all__ = [
    "bundled_campaign_dir",
    "fig9_campaign",
    "list_bundled_campaigns",
]

#: Buffer depths (BDP) of the quick/full figure-9 panels.
FIG9_QUICK_BUFFERS = [0.5, 2, 5, 10, 20, 35, 50]
FIG9_FULL_BUFFERS = [0.5] + [float(b) for b in range(1, 51)]


def fig9_campaign(
    capacity_mbps: float = 100.0,
    rtt_ms: float = 40.0,
    scale: str = "quick",
    seed: int = 0,
    challenger: str = "bbr",
) -> CampaignSpec:
    """The Figure-9 NE-region study as a campaign spec.

    Parameters mirror :func:`repro.experiments.figures.figure9`; the
    expansion reproduces its loops exactly (buffer axis outer, NE
    searches inner, ``seed + 7919·search`` seeding), so results land on
    the same cache fingerprints as the historical figure path.
    """
    from repro.experiments.figures import _check_scale

    full = _check_scale(scale)
    n_flows = 50 if full else 20
    duration = 120.0 if full else 110.0
    searches = 10 if full else 2
    buffers = FIG9_FULL_BUFFERS if full else FIG9_QUICK_BUFFERS
    name = f"fig9-{capacity_mbps:g}mbps-{rtt_ms:g}ms-{scale}" + (
        "" if challenger == "bbr" else f"-{challenger}"
    )
    data = {
        "name": name,
        "description": (
            f"NE region vs buffer depth: {n_flows} flows, "
            f"{capacity_mbps:g} Mbps / {rtt_ms:g} ms "
            f"(fig9 {scale} panel)"
        ),
        "link": {
            "bandwidth_mbps": capacity_mbps,
            "rtt_ms": rtt_ms,
            "buffer_bdp": 1.0,
        },
        "defaults": {
            "duration": duration,
            "backend": "fluid",
            "trials": 1,
            "seed": seed,
        },
        "expand": "grid",
        "axes": [{"name": "buffer_bdp", "values": list(buffers)}],
        "stages": [
            {
                "name": "ne",
                "type": "adaptive",
                "flows": n_flows,
                "challenger": challenger,
                "incumbent": "cubic",
                "searches": searches,
            }
        ],
    }
    return parse_spec(data, source=f"fig9_campaign({scale})")


def bundled_campaign_dir() -> Path:
    """Where the example specs shipped with the repo live."""
    return Path(__file__).resolve().parents[3] / "examples" / "campaigns"


def list_bundled_campaigns() -> List[Path]:
    """The checked-in example specs, sorted by name."""
    root = bundled_campaign_dir()
    if not root.is_dir():
        return []
    return sorted(
        path
        for path in root.iterdir()
        if path.suffix.lower() in (".toml", ".json")
    )
