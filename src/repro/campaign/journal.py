"""Checkpoint journal: crash-safe record of completed campaign units.

The journal is a JSONL file (``journal.jsonl`` inside the campaign
output directory).  The first line is a header binding the journal to a
spec fingerprint; every subsequent line records one *completed* unit —
its id, index, stage, output rows, and wall time.  Appends are flushed
and ``fsync``-ed, so after a crash the file contains every unit whose
record returned from :meth:`Journal.append`, plus at most one truncated
trailing line (the record being written when the process died).  Loading
tolerates exactly that: an undecodable *final* line is discarded;
corruption anywhere earlier raises :class:`JournalError`, since it means
the file was edited or damaged, not merely interrupted.

Rows are serialized without key sorting.  Insertion order is the CSV
column order, and JSON round-trips floats exactly, so a campaign
finished from a journal writes a byte-identical CSV to one that never
stopped.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro import __version__

__all__ = ["Journal", "JournalError", "JournalRecord"]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_SCHEMA = 1


class JournalError(RuntimeError):
    """The journal file is missing, damaged, or from another campaign."""


@dataclass(frozen=True)
class JournalRecord:
    """One completed unit as persisted in the journal."""

    unit_id: str
    index: int
    stage: str
    rows: Tuple[Dict[str, Any], ...]
    wall_s: float

    def to_line(self) -> str:
        # No sort_keys: row key order is the CSV column order and must
        # survive the round-trip.
        return json.dumps(
            {
                "kind": "unit",
                "unit": self.unit_id,
                "index": self.index,
                "stage": self.stage,
                "rows": list(self.rows),
                "wall_s": self.wall_s,
            },
            separators=(",", ":"),
            allow_nan=False,
        )


class Journal:
    """Append-only checkpoint log for one campaign directory."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    @classmethod
    def in_dir(cls, out_dir: Union[str, Path]) -> "Journal":
        return cls(Path(out_dir) / JOURNAL_NAME)

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -----------------------------------------------------------

    def create(self, name: str, fingerprint: str) -> None:
        """Start a fresh journal with a header line (fsync-ed)."""
        header = json.dumps(
            {
                "kind": "campaign",
                "schema": JOURNAL_SCHEMA,
                "name": name,
                "fingerprint": fingerprint,
                "version": __version__,
            },
            separators=(",", ":"),
            allow_nan=False,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(header + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, record: JournalRecord) -> None:
        """Durably append one completed unit.

        The line is flushed and fsync-ed before returning, so a unit is
        either fully journaled or (after a crash) reproducibly absent —
        its result still sits in the content-addressed cache, making the
        re-run on resume a cache hit, not a re-simulation.
        """
        line = record.to_line()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading -----------------------------------------------------------

    def _lines(self) -> Iterator[Tuple[int, str]]:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise JournalError(
                f"{self.path}: no checkpoint journal found"
            ) from None
        except OSError as exc:
            raise JournalError(f"{self.path}: cannot read journal: {exc}")
        for number, line in enumerate(text.splitlines(), start=1):
            if line.strip():
                yield number, line

    def load(
        self, expect_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], List[JournalRecord]]:
        """Parse the journal into ``(header, completed records)``.

        A final line that fails to decode is treated as the torn write
        of a killed process and dropped; anything malformed before the
        end raises :class:`JournalError`.  When ``expect_fingerprint``
        is given, a header mismatch fails loudly — resuming a directory
        with a *different* spec would silently mix studies.
        """
        entries = list(self._lines())
        if not entries:
            raise JournalError(f"{self.path}: journal is empty")
        parsed: List[Tuple[int, Dict[str, Any]]] = []
        for position, (number, line) in enumerate(entries):
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError("not an object")
            except ValueError as exc:
                if position == len(entries) - 1:
                    break  # Torn trailing write from a killed run.
                raise JournalError(
                    f"{self.path}:{number}: corrupt journal line: {exc}"
                ) from None
            parsed.append((number, data))
        if not parsed:
            raise JournalError(f"{self.path}: journal has no valid header")
        number, header = parsed[0]
        if header.get("kind") != "campaign":
            raise JournalError(
                f"{self.path}:{number}: first line is not a campaign header"
            )
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"{self.path}: journal schema {header.get('schema')!r} "
                f"is not supported (want {JOURNAL_SCHEMA})"
            )
        if (
            expect_fingerprint is not None
            and header.get("fingerprint") != expect_fingerprint
        ):
            raise JournalError(
                f"{self.path}: journal belongs to a different campaign "
                f"spec (fingerprint {header.get('fingerprint')!r}); "
                "refusing to mix studies"
            )
        records: List[JournalRecord] = []
        for number, data in parsed[1:]:
            if data.get("kind") != "unit":
                raise JournalError(
                    f"{self.path}:{number}: unexpected record kind "
                    f"{data.get('kind')!r}"
                )
            try:
                rows = tuple(data["rows"])
                record = JournalRecord(
                    unit_id=str(data["unit"]),
                    index=int(data["index"]),
                    stage=str(data["stage"]),
                    rows=rows,
                    wall_s=float(data["wall_s"]),
                )
                for row in rows:
                    if not isinstance(row, dict):
                        raise KeyError("rows must be objects")
            except (KeyError, TypeError, ValueError) as exc:
                raise JournalError(
                    f"{self.path}:{number}: malformed unit record: {exc}"
                ) from None
            records.append(record)
        return header, records
