"""Checkpoint journal: crash-safe record of completed campaign units.

The journal is a JSONL file (``journal.jsonl`` inside the campaign
output directory).  The first line is a header binding the journal to a
spec fingerprint; every subsequent line records one *completed* unit —
its id, index, stage, output rows, and wall time.  Appends are flushed
and ``fsync``-ed, so after a crash the file contains every unit whose
record returned from :meth:`Journal.append`, plus at most one truncated
trailing line (the record being written when the process died).  Loading
tolerates exactly that: an undecodable *final* line is discarded;
corruption anywhere earlier raises :class:`JournalError`, since it means
the file was edited or damaged, not merely interrupted.

Rows are serialized without key sorting.  Insertion order is the CSV
column order, and JSON round-trips floats exactly, so a campaign
finished from a journal writes a byte-identical CSV to one that never
stopped.

Reading is streaming: :meth:`Journal.iter_records` yields one record at
a time from an open handle, so resume/status/``top`` over a million-unit
journal never materialize the whole file (:meth:`Journal.load` is the
small-campaign convenience that collects the stream into a list).
Reads are gzip-transparent — an archived ``journal.jsonl.gz`` resolves
wherever the plain name would.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro import __version__
from repro.obs.export import open_maybe_gzip

__all__ = ["Journal", "JournalError", "JournalRecord"]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_SCHEMA = 1


class JournalError(RuntimeError):
    """The journal file is missing, damaged, or from another campaign."""


@dataclass(frozen=True)
class JournalRecord:
    """One completed unit as persisted in the journal."""

    unit_id: str
    index: int
    stage: str
    rows: Tuple[Dict[str, Any], ...]
    wall_s: float

    def to_line(self) -> str:
        # No sort_keys: row key order is the CSV column order and must
        # survive the round-trip.
        return json.dumps(
            {
                "kind": "unit",
                "unit": self.unit_id,
                "index": self.index,
                "stage": self.stage,
                "rows": list(self.rows),
                "wall_s": self.wall_s,
            },
            separators=(",", ":"),
            allow_nan=False,
        )


class Journal:
    """Append-only checkpoint log for one campaign directory."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        #: Validated header of the last (streaming) read.
        self._header: Optional[Dict[str, Any]] = None

    @classmethod
    def in_dir(cls, out_dir: Union[str, Path]) -> "Journal":
        """The directory's journal; an archived ``.gz`` one resolves
        when (and only when) the plain file is absent."""
        path = Path(out_dir) / JOURNAL_NAME
        if not path.exists():
            gz = Path(str(path) + ".gz")
            if gz.exists():
                return cls(gz)
        return cls(path)

    def exists(self) -> bool:
        return self.path.exists()

    # -- writing -----------------------------------------------------------

    def create(self, name: str, fingerprint: str) -> None:
        """Start a fresh journal with a header line (fsync-ed)."""
        header = json.dumps(
            {
                "kind": "campaign",
                "schema": JOURNAL_SCHEMA,
                "name": name,
                "fingerprint": fingerprint,
                "version": __version__,
            },
            separators=(",", ":"),
            allow_nan=False,
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(header + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, record: JournalRecord) -> None:
        """Durably append one completed unit.

        The line is flushed and fsync-ed before returning, so a unit is
        either fully journaled or (after a crash) reproducibly absent —
        its result still sits in the content-addressed cache, making the
        re-run on resume a cache hit, not a re-simulation.
        """
        line = record.to_line()
        with open_maybe_gzip(str(self.path), "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading -----------------------------------------------------------

    def _lines(self) -> Iterator[Tuple[int, str]]:
        """Stream non-blank ``(line number, line)`` pairs from disk."""
        try:
            handle = open_maybe_gzip(str(self.path), "r")
        except FileNotFoundError:
            raise JournalError(
                f"{self.path}: no checkpoint journal found"
            ) from None
        except OSError as exc:
            raise JournalError(f"{self.path}: cannot read journal: {exc}")
        with handle:
            for number, line in enumerate(handle, start=1):
                line = line.rstrip("\r\n")
                if line.strip():
                    yield number, line

    def read_header(
        self, expect_fingerprint: Optional[str] = None
    ) -> Dict[str, Any]:
        """Parse and validate the header line only (no record scan)."""
        next(self.iter_records(expect_fingerprint), None)
        return self._header  # type: ignore[return-value]

    def iter_records(
        self, expect_fingerprint: Optional[str] = None
    ) -> Iterator[JournalRecord]:
        """Stream completed-unit records row-at-a-time.

        Memory stays flat no matter how long the journal is — this is
        what resume, ``status``, and ``top`` consume.  A final line
        that fails to decode is treated as the torn write of a killed
        process and dropped; anything malformed before the end raises
        :class:`JournalError`.  When ``expect_fingerprint`` is given, a
        header mismatch fails loudly — resuming a directory with a
        *different* spec would silently mix studies.  The validated
        header is kept on ``self._header`` for :meth:`load`.
        """
        lines = self._lines()
        first = next(lines, None)
        if first is None:
            raise JournalError(f"{self.path}: journal is empty")
        number, line = first
        torn: Optional[JournalError] = None
        try:
            header = json.loads(line)
            if not isinstance(header, dict):
                raise ValueError("not an object")
        except ValueError as exc:
            # A torn *final* line is tolerated; if anything follows,
            # the damage is mid-file and must be surfaced.
            if next(lines, None) is not None:
                raise JournalError(
                    f"{self.path}:{number}: corrupt journal line: {exc}"
                ) from None
            raise JournalError(
                f"{self.path}: journal has no valid header"
            ) from None
        if header.get("kind") != "campaign":
            raise JournalError(
                f"{self.path}:{number}: first line is not a campaign header"
            )
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"{self.path}: journal schema {header.get('schema')!r} "
                f"is not supported (want {JOURNAL_SCHEMA})"
            )
        if (
            expect_fingerprint is not None
            and header.get("fingerprint") != expect_fingerprint
        ):
            raise JournalError(
                f"{self.path}: journal belongs to a different campaign "
                f"spec (fingerprint {header.get('fingerprint')!r}); "
                "refusing to mix studies"
            )
        self._header = header
        for number, line in lines:
            if torn is not None:
                raise torn  # The bad line was not the last one.
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError("not an object")
            except ValueError as exc:
                torn = JournalError(
                    f"{self.path}:{number}: corrupt journal line: {exc}"
                )
                continue
            if data.get("kind") != "unit":
                raise JournalError(
                    f"{self.path}:{number}: unexpected record kind "
                    f"{data.get('kind')!r}"
                )
            try:
                rows = tuple(data["rows"])
                record = JournalRecord(
                    unit_id=str(data["unit"]),
                    index=int(data["index"]),
                    stage=str(data["stage"]),
                    rows=rows,
                    wall_s=float(data["wall_s"]),
                )
                for row in rows:
                    if not isinstance(row, dict):
                        raise KeyError("rows must be objects")
            except (KeyError, TypeError, ValueError) as exc:
                raise JournalError(
                    f"{self.path}:{number}: malformed unit record: {exc}"
                ) from None
            yield record

    def load(
        self, expect_fingerprint: Optional[str] = None
    ) -> Tuple[Dict[str, Any], List[JournalRecord]]:
        """Parse the whole journal into ``(header, completed records)``.

        The list-building convenience over :meth:`iter_records` — fine
        for tests and small campaigns; streaming callers should consume
        the iterator directly.
        """
        records = list(self.iter_records(expect_fingerprint))
        return self._header, records
