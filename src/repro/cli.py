"""Command-line interface: ``repro-bbr``.

Subcommands:

* ``predict``  — run the analytical model for one configuration.
* ``nash``     — predict the Nash Equilibrium distribution.
* ``simulate`` — run a flow mix on either simulator backend.
* ``figure``   — regenerate a paper figure (fig1 … fig12) and render it.
* ``validate`` — score the model vs Ware et al. against a simulator sweep.
* ``evolve``   — play the CCA-selection game via best-response dynamics.
* ``list``     — list available figures and congestion controls.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cc import available_algorithms
from repro.core import predict_multi_flow, predict_nash, predict_two_flow
from repro.core.ware import ware_prediction
from repro.experiments.figures import FIGURES
from repro.experiments.runner import run_mix
from repro.util.config import LinkConfig


def _add_link_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mbps", type=float, default=100.0, help="link capacity in Mbps"
    )
    parser.add_argument(
        "--rtt-ms", type=float, default=40.0, help="base RTT in ms"
    )
    parser.add_argument(
        "--buffer-bdp",
        type=float,
        default=5.0,
        help="bottleneck buffer size in BDP",
    )


def _link_from(args: argparse.Namespace) -> LinkConfig:
    return LinkConfig.from_mbps_ms(args.mbps, args.rtt_ms, args.buffer_bdp)


def _cmd_predict(args: argparse.Namespace) -> int:
    link = _link_from(args)
    print(f"link: {link.describe()}")
    if args.cubic == 1 and args.bbr == 1:
        pred = predict_two_flow(link)
        print(
            f"2-flow model: BBR {pred.bbr_bandwidth * 8 / 1e6:.2f} Mbps "
            f"({pred.bbr_fraction * 100:.1f}%), "
            f"CUBIC {pred.cubic_bandwidth * 8 / 1e6:.2f} Mbps"
        )
        print(
            f"  RTT+ {pred.rtt_plus * 1e3:.1f} ms, "
            f"b_cmin {pred.cubic_min_buffer / link.mss:.0f} pkts, "
            f"valid={pred.in_validity_range}"
        )
    else:
        pred = predict_multi_flow(link, args.cubic, args.bbr)
        lo, hi = pred.per_flow_bbr_bounds()
        print(
            f"multi-flow model ({args.cubic} CUBIC vs {args.bbr} BBR): "
            f"per-flow BBR in [{lo * 8 / 1e6:.2f}, {hi * 8 / 1e6:.2f}] Mbps"
        )
    ware = ware_prediction(link, n_bbr=args.bbr)
    print(
        f"ware et al. baseline: aggregate BBR "
        f"{ware.bbr_bandwidth * 8 / 1e6:.2f} Mbps"
    )
    return 0


def _cmd_nash(args: argparse.Namespace) -> int:
    link = _link_from(args)
    pred = predict_nash(link, args.flows)
    print(f"link: {link.describe()}, {args.flows} flows")
    print(
        f"predicted NE: {pred.n_cubic_low:.1f}-{pred.n_cubic_high:.1f} "
        f"CUBIC flows / {pred.n_bbr_desync:.1f}-{pred.n_bbr_sync:.1f} BBR "
        f"flows (valid={pred.in_validity_range})"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    link = _link_from(args)
    mix = []
    for item in args.mix:
        try:
            cc, count = item.split(":")
            mix.append((cc, int(count)))
        except ValueError:
            print(f"bad mix entry {item!r}; use name:count", file=sys.stderr)
            return 2
    result = run_mix(
        link,
        mix,
        duration=args.duration,
        backend=args.backend,
        trials=args.trials,
        seed=args.seed,
    )
    print(f"link: {link.describe()}  backend={args.backend}")
    for cc, count in mix:
        if count == 0:
            continue
        print(
            f"  {cc:>8} ×{count}: {result.per_flow_mbps(cc):6.2f} Mbps/flow"
        )
    print(f"  queuing delay: {result.mean_queuing_delay * 1e3:.1f} ms")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    key = args.id if args.id.startswith("fig") else f"fig{args.id}"
    if key not in FIGURES:
        print(
            f"unknown figure {args.id!r}; available: {sorted(FIGURES)}",
            file=sys.stderr,
        )
        return 2
    produced = FIGURES[key](scale=args.scale)
    figures = produced if isinstance(produced, list) else [produced]
    for fig in figures:
        print(fig.render())
        print()
        if args.csv_dir:
            path = f"{args.csv_dir}/{fig.figure_id}.csv"
            fig.to_csv(path)
            print(f"(wrote {path})")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_two_flow

    link = _link_from(args)
    report = validate_two_flow(
        link,
        buffer_bdps=args.buffers,
        duration=args.duration,
        backend=args.backend,
        trials=args.trials,
        seed=args.seed,
    )
    print(report.render())
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.core.game import ThroughputTable
    from repro.experiments.runner import distribution_throughput_fn

    link = _link_from(args)
    print(
        f"link: {link.describe()}, {args.flows} flows "
        f"({args.incumbent} vs {args.challenger})"
    )
    print("measuring all distributions (fluid simulator)...")
    fn = distribution_throughput_fn(
        link,
        args.flows,
        challenger=args.challenger,
        incumbent=args.incumbent,
        duration=args.duration,
        backend="fluid",
        seed=args.seed,
    )
    table = ThroughputTable.from_function(args.flows, fn)
    path = table.best_response_path(args.start)
    print(f"best-response path (#{args.challenger} flows): " +
          " -> ".join(str(k) for k in path))
    tolerance = 0.02 * link.capacity / args.flows
    equilibria = table.nash_equilibria(tolerance=tolerance)
    print(f"equilibria (±2% tolerance): {equilibria}")
    final = path[-1]
    print(
        f"converged mix: {args.flows - final} {args.incumbent} / "
        f"{final} {args.challenger}"
    )
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("figures:", ", ".join(sorted(FIGURES)))
    print("congestion controls:", ", ".join(available_algorithms()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-bbr argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bbr",
        description=(
            "Reproduction toolkit for 'Are we heading towards a "
            "BBR-dominant Internet?' (IMC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="run the throughput model")
    _add_link_args(p)
    p.add_argument("--cubic", type=int, default=1, help="# CUBIC flows")
    p.add_argument("--bbr", type=int, default=1, help="# BBR flows")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("nash", help="predict the NE distribution")
    _add_link_args(p)
    p.add_argument("--flows", type=int, default=50, help="total flows")
    p.set_defaults(func=_cmd_nash)

    p = sub.add_parser("simulate", help="simulate a flow mix")
    _add_link_args(p)
    p.add_argument(
        "mix",
        nargs="+",
        help="flow mix entries like cubic:5 bbr:5",
    )
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument(
        "--backend", choices=("packet", "fluid"), default="fluid"
    )
    p.add_argument("--trials", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("id", help="figure id, e.g. fig5 or 5")
    p.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = CI-sized, full = paper parameters",
    )
    p.add_argument(
        "--csv-dir", default=None, help="also write CSVs to this directory"
    )
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "validate",
        help="score the model vs Ware et al. against a simulator sweep",
    )
    _add_link_args(p)
    p.add_argument(
        "--buffers",
        type=float,
        nargs="+",
        default=[2, 5, 10, 20],
        help="buffer depths in BDP",
    )
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument(
        "--backend", choices=("packet", "fluid"), default="packet"
    )
    p.add_argument("--trials", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "evolve",
        help="play the CCA-selection game via best-response dynamics",
    )
    _add_link_args(p)
    p.add_argument("--flows", type=int, default=10, help="total flows")
    p.add_argument("--incumbent", default="cubic")
    p.add_argument("--challenger", default="bbr")
    p.add_argument(
        "--start", type=int, default=1, help="initial challenger count"
    )
    p.add_argument("--duration", type=float, default=100.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_evolve)

    p = sub.add_parser("list", help="list figures and algorithms")
    p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
