"""Command-line interface: ``repro-bbr``.

Subcommands:

* ``predict``  — run the analytical model for one configuration.
* ``nash``     — predict the Nash Equilibrium distribution.
* ``simulate`` — run a flow mix on either simulator backend.
* ``figure``   — regenerate a paper figure (fig1 … fig12) and render it.
* ``validate`` — score the model vs Ware et al. against a simulator sweep.
* ``evolve``   — play the CCA-selection game via best-response dynamics.
* ``population`` — evolve internet-scale CCA adoption dynamics under a
  tiered payoff oracle (``run``, ``plot``; see docs/POPULATION.md).
* ``report``   — summarize a JSONL trace written with ``--trace-out``.
* ``campaign`` — run/resume/inspect declarative scenario campaigns
  (``run``, ``resume``, ``status``, ``validate``, ``report``; see
  docs/CAMPAIGNS.md).
* ``top``      — follow a campaign directory's live progress/ETA.
* ``trace``    — inspect exported span traces (``report``).
* ``cc``       — inspect the canonical congestion-control table
  (``list``: every algorithm, its substrates, and law parameters).
* ``cache``    — inspect (``info``) or prune (``clear``) the result cache.
* ``list``     — list figures, congestion controls, and bundled campaigns.

``simulate``, ``figure``, and ``campaign run`` accept the scenario
flags ``--aqm {droptail,red,codel}``, ``--ecn`` (mark instead of drop),
and ``--capacity-trace SPEC`` (piecewise capacity scaling, e.g.
``steps:5@0.5,10@1.0``); see docs/SIMULATORS.md.

``simulate`` and ``figure`` accept ``--profile`` (print telemetry
counters/timers after the run) and ``--trace-out PATH`` (write a run
manifest plus a JSONL event/sample trace; see docs/OBSERVABILITY.md).
They also accept the execution-engine flags (see docs/PERFORMANCE.md):
``--jobs N`` fans independent scenario points out over N worker
processes, ``--cache-dir [DIR]`` enables the content-addressed result
cache (default location ``~/.cache/repro-bbr`` when DIR is omitted, or
``$REPRO_CACHE_DIR``), and ``--no-cache`` forces it off.

``simulate``, ``figure``, and ``campaign run``/``resume`` accept
``--check`` (equivalently ``REPRO_CHECK=1``) to enable the runtime
invariant sanitizer; see docs/CHECKS.md.  They also accept ``--progress``
(live done/total, cache-hit rate, points/s, EWMA-smoothed ETA on
stderr), ``--profile-points [N]`` (cProfile the N slowest points), and a
span export — ``--spans-out PATH`` on ``simulate``/``figure``,
``--trace-out PATH`` on campaigns — producing Chrome trace-event JSON
for Perfetto / ``chrome://tracing`` and ``repro-bbr trace report``.
"""

from __future__ import annotations

import argparse
import os
import sys
from time import perf_counter
from typing import List, Optional

from repro.cc import available_algorithms
from repro.core import predict_multi_flow, predict_nash, predict_two_flow
from repro.core.ware import ware_prediction
from repro.experiments.figures import FIGURES
from repro.experiments.runner import run_mix
from repro.util.config import LinkConfig


def _add_link_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mbps", type=float, default=100.0, help="link capacity in Mbps"
    )
    parser.add_argument(
        "--rtt-ms", type=float, default=40.0, help="base RTT in ms"
    )
    parser.add_argument(
        "--buffer-bdp",
        type=float,
        default=5.0,
        help="bottleneck buffer size in BDP",
    )


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    """Scenario-schema flags (see docs/SIMULATORS.md, repro.scenario)."""
    parser.add_argument(
        "--aqm",
        choices=("droptail", "red", "codel"),
        default=None,
        help="bottleneck queue discipline (default droptail)",
    )
    parser.add_argument(
        "--ecn",
        action="store_true",
        help="ECN-mark instead of dropping when the AQM fires "
        "(requires --aqm red or codel)",
    )
    parser.add_argument(
        "--capacity-trace",
        default=None,
        metavar="SPEC",
        help="time-varying capacity: 'steps:T@SCALE,T@SCALE,...' or "
        "'trace:PERIOD:S1,S2,...' (scales of the base capacity)",
    )


def _scenario_kwargs(args: argparse.Namespace) -> dict:
    """The scenario-flag values of ``args`` as from_mbps_ms kwargs."""
    return {
        "aqm": getattr(args, "aqm", None),
        "ecn": True if getattr(args, "ecn", False) else None,
        "capacity_trace": getattr(args, "capacity_trace", None),
    }


def _link_from(args: argparse.Namespace) -> LinkConfig:
    return LinkConfig.from_mbps_ms(
        args.mbps, args.rtt_ms, args.buffer_bdp, **_scenario_kwargs(args)
    )


def _positive_float(value: str) -> float:
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive, got {value}"
        )
    return parsed


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect telemetry and print counters/timers after the run",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a JSONL event/sample trace (plus a sibling "
        "<stem>.manifest.json run manifest) to PATH",
    )
    parser.add_argument(
        "--trace-interval",
        type=_positive_float,
        default=0.1,
        help="per-flow sampling period in seconds for --trace-out",
    )


def _add_progress_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render a live done/total, cache-hit rate, points/s and "
        "ETA line on stderr (see docs/OBSERVABILITY.md)",
    )


def _add_profile_points_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile-points",
        type=_positive_int,
        nargs="?",
        const=5,
        default=None,
        metavar="N",
        help="cProfile every executed point and keep hotspots for the "
        "N slowest (default 5); hotspots ride along in the span "
        "export for 'repro-bbr trace report'",
    )


def _add_span_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spans-out",
        default=None,
        metavar="PATH",
        help="write hierarchical wall-clock spans as Chrome "
        "trace-event JSON to PATH (loadable in Perfetto or "
        "chrome://tracing; a .gz suffix compresses)",
    )
    _add_profile_points_arg(parser)
    _add_progress_arg(parser)


def _add_campaign_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write campaign/stage/unit/point wall-clock spans as "
        "Chrome trace-event JSON to PATH (Perfetto-loadable; a .gz "
        "suffix compresses)",
    )
    _add_profile_points_arg(parser)
    _add_progress_arg(parser)


def _activate_tracing(span_path):
    """Install a process-wide span tracer when an export was requested.

    ``REPRO_TRACE`` is exported too so ``--jobs`` worker processes
    record spans locally and ship them back (mirrors ``--check``).
    """
    if not span_path:
        return None
    from repro.obs import trace

    os.environ["REPRO_TRACE"] = "1"
    tracer = trace.Tracer()
    trace.set_default(tracer)
    return tracer


def _activate_profile_points(args: argparse.Namespace) -> int:
    """Export ``REPRO_PROFILE_POINTS`` for --profile-points workers."""
    n = getattr(args, "profile_points", None) or 0
    if n:
        os.environ["REPRO_PROFILE_POINTS"] = str(n)
    return n


def _write_spans(path: str, tracer, engine) -> int:
    """Export collected spans (plus any profiled hotspots) to ``path``."""
    from repro.obs import write_chrome_trace

    hotspots = engine.hotspots() if engine is not None else []
    events = write_chrome_trace(path, tracer.spans, hotspots=hotspots)
    print(f"(wrote {events} span events to {path})")
    return events


def _add_check_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check",
        action="store_true",
        help="enable the runtime invariant sanitizer (repro.check); "
        "equivalent to REPRO_CHECK=1 (see docs/CHECKS.md)",
    )


def _activate_check(args: argparse.Namespace) -> None:
    """Install the invariant sanitizer when ``--check`` was given.

    The environment variable is set too so worker processes spawned by
    the execution engine inherit checking.
    """
    if not getattr(args, "check", False):
        return
    from repro.check import Checker, set_default

    os.environ["REPRO_CHECK"] = "1"
    set_default(Checker())


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return parsed


def _add_exec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="run independent scenario points in up to N worker "
        "processes (default 1: inline execution)",
    )
    parser.add_argument(
        "--cache-dir",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help="enable the content-addressed result cache; omit DIR for "
        "the default location (~/.cache/repro-bbr or $REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if $REPRO_CACHE_DIR is set",
    )


def _engine_from(args: argparse.Namespace, progress=None, heartbeat=None):
    """Build the scenario-execution engine from --jobs/--cache-dir flags.

    The cache is enabled by ``--cache-dir`` (bare flag = default root)
    or the ``REPRO_CACHE_DIR`` environment variable, and force-disabled
    by ``--no-cache``; by default nothing is persisted, matching the
    historical behavior.  ``--profile-points N`` (when the subcommand
    has it) keeps cProfile hotspots for the N slowest executed points.
    """
    from repro.exec import Engine, ResultCache

    cache = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache = ResultCache(args.cache_dir or None)
        elif os.environ.get("REPRO_CACHE_DIR"):
            cache = ResultCache(None)
    return Engine(
        jobs=args.jobs,
        cache=cache,
        progress=progress,
        heartbeat=heartbeat,
        profile_slowest=getattr(args, "profile_points", None) or 0,
    )


def _print_exec_summary(engine) -> None:
    stats = engine.stats
    print(
        f"exec: {stats['submitted']} points, "
        f"{stats['cache_hits']} cache hits, "
        f"{stats['simulated']} simulated, jobs={engine.jobs}"
    )


def _obs_from(args: argparse.Namespace):
    """Build a telemetry bus when --profile/--trace-out ask for one."""
    if not (args.profile or args.trace_out):
        return None
    from repro.obs import Telemetry

    interval = args.trace_interval if args.trace_out else None
    return Telemetry(sample_interval=interval)


def _print_profile(obs) -> None:
    snap = obs.snapshot()
    print("profile:")
    for name, value in sorted(snap["counters"].items()):
        print(f"  {name:<28} {value:g}")
    for name, timer in sorted(snap["timers"].items()):
        print(
            f"  {name:<28} {timer['calls']} calls, "
            f"{timer['total_s']:.3f}s total"
        )
    if snap["dropped_records"]:
        print(f"  (dropped {snap['dropped_records']} records at cap)")


def _cmd_predict(args: argparse.Namespace) -> int:
    link = _link_from(args)
    print(f"link: {link.describe()}")
    if args.cubic == 1 and args.bbr == 1:
        pred = predict_two_flow(link)
        print(
            f"2-flow model: BBR {pred.bbr_bandwidth * 8 / 1e6:.2f} Mbps "
            f"({pred.bbr_fraction * 100:.1f}%), "
            f"CUBIC {pred.cubic_bandwidth * 8 / 1e6:.2f} Mbps"
        )
        print(
            f"  RTT+ {pred.rtt_plus * 1e3:.1f} ms, "
            f"b_cmin {pred.cubic_min_buffer / link.mss:.0f} pkts, "
            f"valid={pred.in_validity_range}"
        )
    else:
        pred = predict_multi_flow(link, args.cubic, args.bbr)
        lo, hi = pred.per_flow_bbr_bounds()
        print(
            f"multi-flow model ({args.cubic} CUBIC vs {args.bbr} BBR): "
            f"per-flow BBR in [{lo * 8 / 1e6:.2f}, {hi * 8 / 1e6:.2f}] Mbps"
        )
    ware = ware_prediction(link, n_bbr=args.bbr)
    print(
        f"ware et al. baseline: aggregate BBR "
        f"{ware.bbr_bandwidth * 8 / 1e6:.2f} Mbps"
    )
    return 0


def _cmd_nash(args: argparse.Namespace) -> int:
    link = _link_from(args)
    pred = predict_nash(link, args.flows)
    print(f"link: {link.describe()}, {args.flows} flows")
    print(
        f"predicted NE: {pred.n_cubic_low:.1f}-{pred.n_cubic_high:.1f} "
        f"CUBIC flows / {pred.n_bbr_desync:.1f}-{pred.n_bbr_sync:.1f} BBR "
        f"flows (valid={pred.in_validity_range})"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    try:
        link = _link_from(args)
    except ValueError as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return 2
    mix = []
    for item in args.mix:
        try:
            cc, count = item.split(":")
            mix.append((cc, int(count)))
        except ValueError:
            print(f"bad mix entry {item!r}; use name:count", file=sys.stderr)
            return 2
    obs = _obs_from(args)
    tracer = _activate_tracing(args.spans_out)
    _activate_profile_points(args)
    tracker = None
    progress_cb = None
    if args.progress:
        from repro.obs import ProgressTracker

        tracker = ProgressTracker(label="simulate")

        def progress_cb(done: int, submitted: int, hits: int) -> None:
            tracker.update(done, submitted, hits)
            print(
                "\r" + tracker.render(),
                end="",
                file=sys.stderr,
                flush=True,
            )

    engine = _engine_from(
        args,
        progress=progress_cb,
        heartbeat=tracker.heartbeat if tracker is not None else None,
    )
    # Tracing/profiling/progress need the engine path even when cache
    # and parallelism are off; plain runs keep the historical fast path.
    engine_route = (
        engine.cache is not None
        or engine.jobs > 1
        or tracer is not None
        or engine.profile_slowest > 0
        or tracker is not None
    )
    wall_start = perf_counter()
    try:
        if not engine_route:
            result = run_mix(
                link,
                mix,
                duration=args.duration,
                warmup=args.warmup,
                backend=args.backend,
                trials=args.trials,
                seed=args.seed,
                obs=obs,
            )
        else:
            from repro.obs import use

            with use(obs):
                result = engine.run_mix(
                    link,
                    mix,
                    duration=args.duration,
                    warmup=args.warmup,
                    backend=args.backend,
                    trials=args.trials,
                    seed=args.seed,
                )
    except ValueError as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return 2
    wall_time = perf_counter() - wall_start
    if tracker is not None:
        print(file=sys.stderr)  # End the \r progress line.
    print(f"link: {link.describe()}  backend={args.backend}")
    for cc, count in mix:
        if count == 0:
            continue
        key = cc.lower()
        line = (
            f"  {cc:>8} ×{count}: {result.per_flow_mbps(cc):6.2f} Mbps/flow"
        )
        if key in result.loss_rate:
            line += (
                f"  loss {result.loss_rate[key] * 100:5.2f}%"
                f"  retx {result.retransmits.get(key, 0.0):6.1f}"
            )
        print(line)
    print(f"  queuing delay: {result.mean_queuing_delay * 1e3:.1f} ms")
    print(f"  drop rate: {result.drop_rate * 100:.2f}%")
    if engine.cache is not None:
        hit = engine.hits > 0
        print(
            f"  cache: {'hit' if hit else 'miss'} ({engine.cache.root})"
        )

    if args.trace_out:
        try:
            _write_simulate_trace(args, link, mix, result, obs, wall_time)
        except OSError as exc:
            print(f"cannot write trace: {exc}", file=sys.stderr)
            return 2
    if args.spans_out and tracer is not None:
        try:
            _write_spans(args.spans_out, tracer, engine)
        except OSError as exc:
            print(f"cannot write spans: {exc}", file=sys.stderr)
            return 2
    if obs is not None and args.profile:
        _print_profile(obs)
    return 0


def _write_simulate_trace(
    args: argparse.Namespace, link, mix, result, obs, wall_time: float
) -> int:
    """Write the manifest + JSONL trace for an instrumented simulate run."""
    from repro.obs import RunManifest, manifest_path_for, write_trace

    flow_rows = []
    flow_id = 0
    for cc, count in mix:
        key = cc.lower()
        for _ in range(count):
            row = {
                "flow_id": flow_id,
                "cc": key,
                "throughput_mbps": result.per_flow_mbps(cc),
                "retransmits": result.retransmits.get(key, 0.0),
            }
            if key in result.loss_rate:
                row["loss_rate"] = result.loss_rate[key]
            flow_rows.append(row)
            flow_id += 1
    manifest = RunManifest.build(
        label="simulate",
        link=link,
        mix=mix,
        backend=args.backend,
        duration=args.duration,
        seed=args.seed,
        trials=args.trials,
        warmup=(
            args.warmup
            if args.warmup is not None
            else args.duration / 6.0
        ),
        obs=obs,
        wall_time_s=wall_time,
        flows=flow_rows,
    )
    sibling = manifest_path_for(args.trace_out)
    manifest.write(sibling)
    records = write_trace(args.trace_out, obs, manifest=manifest)
    print(f"  wrote {records} trace records to {args.trace_out}")
    print(f"  wrote manifest to {sibling}")
    return records


def _cmd_figure(args: argparse.Namespace) -> int:
    key = args.id if args.id.startswith("fig") else f"fig{args.id}"
    if key not in FIGURES:
        print(
            f"unknown figure {args.id!r}; available: {sorted(FIGURES)}",
            file=sys.stderr,
        )
        return 2
    obs = _obs_from(args)
    tracer = _activate_tracing(args.spans_out)
    _activate_profile_points(args)
    tracker = None
    if args.progress:
        from repro.obs import ProgressTracker

        tracker = ProgressTracker(label=key)

        def progress(done: int, submitted: int, hits: int) -> None:
            tracker.update(done, submitted, hits)
            print(
                "\r  " + tracker.render(),
                end="",
                file=sys.stderr,
                flush=True,
            )

    else:

        def progress(done: int, submitted: int, hits: int) -> None:
            print(
                f"\r  points {done}/{submitted} ({hits} cached)",
                end="",
                file=sys.stderr,
                flush=True,
            )

    engine = _engine_from(
        args,
        progress=progress,
        heartbeat=tracker.heartbeat if tracker is not None else None,
    )
    from repro.exec import use as use_engine
    from repro.experiments.runner import use_fluid_substrate
    from repro.obs import use as use_obs
    from repro.scenario import scenario_overrides

    # Figures drive run_mix internally without obs/engine parameters, so
    # instrument them by installing both as the process defaults; the
    # scenario flags reach their internally built links the same way.
    try:
        with use_obs(obs), use_engine(engine), use_fluid_substrate(
            getattr(args, "backend", None)
        ), scenario_overrides(**_scenario_kwargs(args)):
            produced = FIGURES[key](scale=args.scale)
    except ValueError as exc:
        print(f"bad scenario: {exc}", file=sys.stderr)
        return 2
    if engine.done:
        print(file=sys.stderr)  # End the \r progress line.
    figures = produced if isinstance(produced, list) else [produced]
    for fig in figures:
        print(fig.render())
        print()
        if args.csv_dir:
            os.makedirs(args.csv_dir, exist_ok=True)
            path = f"{args.csv_dir}/{fig.figure_id}.csv"
            fig.to_csv(path)
            print(f"(wrote {path})")
    if engine.done:
        _print_exec_summary(engine)
    if args.trace_out:
        from repro.obs import write_trace

        try:
            records = write_trace(args.trace_out, obs)
        except OSError as exc:
            print(f"cannot write trace: {exc}", file=sys.stderr)
            return 2
        print(f"(wrote {records} trace records to {args.trace_out})")
    if args.spans_out and tracer is not None:
        try:
            _write_spans(args.spans_out, tracer, engine)
        except OSError as exc:
            print(f"cannot write spans: {exc}", file=sys.stderr)
            return 2
    if obs is not None and args.profile:
        _print_profile(obs)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import load_report

    try:
        report = load_report(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.experiments.validation import validate_two_flow

    link = _link_from(args)
    report = validate_two_flow(
        link,
        buffer_bdps=args.buffers,
        duration=args.duration,
        backend=args.backend,
        trials=args.trials,
        seed=args.seed,
    )
    print(report.render())
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.core.game import ThroughputTable
    from repro.experiments.runner import distribution_throughput_fn

    link = _link_from(args)
    print(
        f"link: {link.describe()}, {args.flows} flows "
        f"({args.incumbent} vs {args.challenger})"
    )
    print("measuring all distributions (fluid simulator)...")
    fn = distribution_throughput_fn(
        link,
        args.flows,
        challenger=args.challenger,
        incumbent=args.incumbent,
        duration=args.duration,
        backend="fluid",
        seed=args.seed,
    )
    table = ThroughputTable.from_function(args.flows, fn)
    path = table.best_response_path(args.start)
    print(f"best-response path (#{args.challenger} flows): " +
          " -> ".join(str(k) for k in path))
    tolerance = 0.02 * link.capacity / args.flows
    equilibria = table.nash_equilibria(tolerance=tolerance)
    print(f"equilibria (±2% tolerance): {equilibria}")
    final = path[-1]
    print(
        f"converged mix: {args.flows - final} {args.incumbent} / "
        f"{final} {args.challenger}"
    )
    return 0


# -- population subcommands --------------------------------------------------


def _rtt_class_list(value: str) -> List[float]:
    """Parse ``--rtt-classes`` comma lists like ``10,40,120``."""
    try:
        items = [float(v) for v in value.split(",") if v.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated RTTs in ms, got {value!r}"
        ) from None
    if not items or any(v <= 0 for v in items):
        raise argparse.ArgumentTypeError(
            f"RTT classes must be positive, got {value!r}"
        )
    return items


def _population_cells(args: argparse.Namespace):
    """One cell per RTT class (or a single cell at the base link)."""
    from repro.population import CellSpec

    if args.rtt_classes:
        return [
            CellSpec(
                link=LinkConfig.from_mbps_ms(
                    args.mbps, rtt, args.buffer_bdp
                ),
                n_flows=args.flows,
                label=f"rtt{rtt:g}ms",
            )
            for rtt in args.rtt_classes
        ]
    return [
        CellSpec(link=_link_from(args), n_flows=args.flows, label="base")
    ]


def _write_population_out(out_dir: str, result) -> None:
    """Persist one run: summary.json, trajectory.csv, error_map.json."""
    import csv as csv_mod
    import json
    from pathlib import Path

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    (out / "summary.json").write_text(
        json.dumps(result.to_dict(), indent=2) + "\n", encoding="utf-8"
    )
    result.error_map.save(str(out / "error_map.json"))
    labels = result.cell_labels()
    with open(
        out / "trajectory.csv", "w", newline="", encoding="utf-8"
    ) as handle:
        writer = csv_mod.writer(handle)
        writer.writerow(["tick", "cell", "strategy", "share", "payoff"])
        for entry in result.trajectory:
            for i, label in enumerate(labels):
                for j, strategy in enumerate(result.strategies):
                    writer.writerow(
                        [
                            entry["tick"],
                            label,
                            strategy,
                            entry["shares"][i][j],
                            entry["payoffs"][i][j],
                        ]
                    )
        for i, label in enumerate(labels):
            for j, strategy in enumerate(result.strategies):
                writer.writerow(
                    [
                        result.ticks,
                        label,
                        strategy,
                        result.final_shares[i][j],
                        "",
                    ]
                )


def _cmd_population_run(args: argparse.Namespace) -> int:
    from repro.population import (
        DynamicsConfig,
        TieredOracle,
        run_population,
    )

    tracer = _activate_tracing(args.spans_out)
    _activate_profile_points(args)
    cells = _population_cells(args)
    engine = _engine_from(args)
    force_tier = None if args.tier == "auto" else int(args.tier)
    oracle = TieredOracle(
        engine=engine,
        error_threshold=args.error_threshold,
        bound=args.bound,
        duration=args.duration,
        trials=args.trials,
        seed=args.seed,
        force_tier=force_tier,
    )
    config = DynamicsConfig(
        name=args.dynamics,
        step=args.step,
        inertia=args.inertia,
        epsilon=args.epsilon,
        mutation=args.mutation,
    )
    progress = None
    if args.progress:

        def progress(done: int, total: int) -> None:
            print(f"\rtick {done}/{total}", end="", file=sys.stderr)

    total_flows = sum(cell.n_flows for cell in cells)
    print(
        f"population: {len(cells)} cell(s), {total_flows} flows, "
        f"dynamics={config.name}, ticks={args.ticks}, seed={args.seed}"
    )
    result = run_population(
        cells,
        dynamics=config,
        ticks=args.ticks,
        seed=args.seed,
        strategies=(args.incumbent, args.challenger),
        init_share=args.init_share,
        oracle=oracle,
        progress=progress,
    )
    if args.progress:
        print(file=sys.stderr)
    challenger = args.challenger
    for i, label in enumerate(result.cell_labels()):
        share = result.final_shares[i][-1]
        ne = result.ne[i]
        reference = (
            f" (NE sync {ne['share_sync']:.3f}, "
            f"desync {ne['share_desync']:.3f})"
            if ne
            else ""
        )
        print(
            f"  {label}: final {challenger} share {share:.3f}{reference}"
        )
    print(
        f"overall {challenger} share: "
        f"{result.final_share(challenger):.3f}  "
        + (
            "converged"
            if result.converged
            else f"not converged (max recent delta "
            f"{result.max_recent_delta:.4f})"
        )
    )
    stats = result.oracle
    print(
        f"oracle: {stats['queries']} queries "
        f"(tier0 {stats['tier0']}, tier1 {stats['tier1']}), "
        f"{stats['memo_hits']} memo hits, "
        f"{stats['calibrations']} calibrations, "
        f"{stats['sim_points']} sim points"
    )
    escalated = result.error_map.escalated()
    print(
        "escalated regions: "
        + (", ".join(escalated) if escalated else "(none)")
    )
    if args.out:
        _write_population_out(args.out, result)
        print(f"wrote {args.out}/summary.json, trajectory.csv, "
              f"error_map.json")
    _print_exec_summary(engine)
    if args.spans_out and tracer is not None:
        try:
            _write_spans(args.spans_out, tracer, engine)
        except OSError as exc:
            print(f"cannot write spans: {exc}", file=sys.stderr)
            return 2
    return 0


def _cmd_population_plot(args: argparse.Namespace) -> int:
    import csv as csv_mod
    import json
    from pathlib import Path

    from repro.experiments.ascii_plot import render_plot

    out = Path(args.dir)
    try:
        summary = json.loads(
            (out / "summary.json").read_text(encoding="utf-8")
        )
        rows = list(
            csv_mod.DictReader(
                (out / "trajectory.csv")
                .read_text(encoding="utf-8")
                .splitlines()
            )
        )
    except (OSError, ValueError) as exc:
        print(
            f"cannot load population run from {out}: {exc}",
            file=sys.stderr,
        )
        return 2
    challenger = summary["strategies"][-1]
    labels = [
        cell["label"] or f"cell{i}"
        for i, cell in enumerate(summary["cells"])
    ]
    series = []
    for label in labels:
        ticks = [
            float(row["tick"])
            for row in rows
            if row["cell"] == label and row["strategy"] == challenger
        ]
        shares = [
            float(row["share"])
            for row in rows
            if row["cell"] == label and row["strategy"] == challenger
        ]
        series.append((label, ticks, shares))
    last_tick = float(summary["ticks"])
    for i, ne in enumerate(summary["ne"]):
        if ne:
            series.append(
                (
                    f"{labels[i]} NE",
                    [0.0, last_tick],
                    [ne["share_sync"], ne["share_sync"]],
                )
            )
    print(
        render_plot(
            series, xlabel="tick", ylabel=f"{challenger} share"
        )
    )
    final = summary["final_share"][challenger]
    state = "converged" if summary["converged"] else "not converged"
    print(f"final {challenger} share: {final:.3f} ({state})")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.campaign import bundled_campaign_dir, list_bundled_campaigns

    print("figures:", ", ".join(sorted(FIGURES)))
    print("congestion controls:", ", ".join(available_algorithms()))
    specs = list_bundled_campaigns()
    if specs:
        print(
            "campaigns:",
            ", ".join(path.name for path in specs),
            f"(in {bundled_campaign_dir()})",
        )
    return 0


# -- campaign subcommands ----------------------------------------------------


def _campaign_errors(fn):
    """Turn campaign-layer exceptions into one-line diagnostics (exit 2)."""

    def wrapper(args: argparse.Namespace) -> int:
        from repro.campaign import CampaignError, JournalError, SpecError

        try:
            return fn(args)
        except (SpecError, CampaignError, JournalError) as exc:
            print(f"campaign error: {exc}", file=sys.stderr)
            return 2

    return wrapper


def _print_campaign_summary(summary) -> None:
    print(
        f"campaign '{summary.name}': {summary.total_units} units, "
        f"{summary.from_journal} from journal, "
        f"{summary.executed} executed, {summary.rows} rows"
    )


def _override_campaign_scenario(spec, args: argparse.Namespace):
    """Apply --aqm/--ecn/--capacity-trace to a loaded campaign spec.

    The overridden link lands in the frozen ``spec.json`` the run
    writes, so later resumes stay consistent without re-passing flags.
    """
    from dataclasses import replace

    kwargs = _scenario_kwargs(args)
    if all(value is None for value in kwargs.values()):
        return spec
    link = spec.link
    if kwargs["aqm"] is not None or kwargs["ecn"] is not None:
        link = link.with_aqm(
            kwargs["aqm"] if kwargs["aqm"] is not None else link.aqm,
            ecn=kwargs["ecn"],
        )
    if kwargs["capacity_trace"] is not None:
        link = link.with_capacity_trace(kwargs["capacity_trace"])
    return replace(spec, link=link)


def _run_campaign_cmd(args: argparse.Namespace, resume: bool) -> int:
    from repro.campaign import load_campaign, load_spec, run_campaign

    if resume:
        out_dir = args.dir
        spec = load_campaign(out_dir)
    else:
        spec = load_spec(args.spec)
        out_dir = args.out
        try:
            spec = _override_campaign_scenario(spec, args)
        except ValueError as exc:
            print(f"bad scenario: {exc}", file=sys.stderr)
            return 2
    tracer = _activate_tracing(args.trace_out)
    _activate_profile_points(args)
    engine = _engine_from(args)
    print(
        f"campaign '{spec.name}'"
        + (f": {spec.description}" if spec.description else "")
    )
    on_progress = None
    log = lambda line: print(line, file=sys.stderr)  # noqa: E731
    if args.progress:
        # The live \r line replaces the per-unit log lines.
        log = None

        def on_progress(tracker) -> None:
            print(
                "\r" + tracker.render(),
                end="",
                file=sys.stderr,
                flush=True,
            )

    from repro.experiments.runner import use_fluid_substrate

    with use_fluid_substrate(getattr(args, "backend", None)):
        summary = run_campaign(
            spec,
            out_dir,
            engine=engine,
            resume=resume,
            stop_after=args.stop_after,
            log=log,
            on_progress=on_progress,
        )
    if args.progress:
        print(file=sys.stderr)  # End the \r progress line.
    if args.trace_out and tracer is not None:
        try:
            _write_spans(args.trace_out, tracer, engine)
        except OSError as exc:
            print(f"cannot write spans: {exc}", file=sys.stderr)
            return 2
    if summary.interrupted:
        print(
            f"campaign '{summary.name}' stopped after "
            f"{summary.executed} new unit(s); resume with: "
            f"repro-bbr campaign resume {summary.out_dir}"
        )
        return 3
    _print_campaign_summary(summary)
    _print_exec_summary(engine)
    print(f"wrote {summary.csv_path}")
    return 0


@_campaign_errors
def _cmd_campaign_run(args: argparse.Namespace) -> int:
    return _run_campaign_cmd(args, resume=False)


@_campaign_errors
def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    return _run_campaign_cmd(args, resume=True)


@_campaign_errors
def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import Journal, expand_units, load_campaign
    from repro.campaign.sink import resolve_artifact

    if args.json:
        import json

        from repro.campaign import campaign_progress

        print(json.dumps(campaign_progress(args.dir), indent=2))
        return 0

    spec = load_campaign(args.dir)
    units = expand_units(spec)
    journal = Journal.in_dir(args.dir)
    known = {unit.unit_id() for unit in units}
    # Stream the journal: counters only, rows never accumulate.
    completed = 0
    rows = 0
    for record in journal.iter_records(
        expect_fingerprint=spec.fingerprint()
    ):
        if record.unit_id in known:
            completed += 1
            rows += len(record.rows)
    # The CSV is streamed during the run, so its existence no longer
    # implies completion; the manifest is written only on clean finish.
    from pathlib import Path

    manifest = resolve_artifact(Path(args.dir) / "manifest.json")
    state = (
        "complete"
        if manifest is not None and completed == len(units)
        else "resumable"
    )
    print(f"campaign '{spec.name}' ({state})")
    if spec.description:
        print(f"  {spec.description}")
    print(f"  fingerprint: {spec.fingerprint()}")
    print(
        f"  units: {completed}/{len(units)} completed, "
        f"{rows} rows journaled"
    )
    if state == "resumable":
        print(f"  resume with: repro-bbr campaign resume {args.dir}")
    return 0


@_campaign_errors
def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import model_error_report

    report = model_error_report(
        args.dir,
        compare=args.compare,
        reference=args.reference,
        share_cc=args.share_cc,
    )
    print(report.render())
    print(f"wrote {report.csv_path}")
    return 0


@_campaign_errors
def _cmd_campaign_validate(args: argparse.Namespace) -> int:
    from repro.campaign import expand_units, load_spec

    spec = load_spec(args.spec)
    units = expand_units(spec)
    print(f"campaign '{spec.name}': OK")
    if spec.description:
        print(f"  {spec.description}")
    print(f"  fingerprint: {spec.fingerprint()}")
    print(
        "  axes: "
        + ", ".join(
            f"{axis.name}[{len(axis.values)}]" for axis in spec.axes
        )
        + f" ({spec.expand})"
    )
    print(
        "  stages: "
        + ", ".join(
            f"{stage.name} ({stage.kind})" for stage in spec.stages
        )
    )
    print(f"  units: {len(units)}")
    return 0


@_campaign_errors
def _cmd_top(args: argparse.Namespace) -> int:
    from time import sleep

    from repro.campaign import campaign_progress, render_status

    try:
        while True:
            status = campaign_progress(args.dir)
            print(render_status(status))
            if args.once or status["state"] == "complete":
                return 0
            sleep(args.interval)
            print()
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.obs import read_chrome_trace, render_span_report

    try:
        parsed = read_chrome_trace(args.trace)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    print(render_span_report(parsed.spans, parsed.hotspots))
    return 0


def _cmd_cc(args: argparse.Namespace) -> int:
    from repro.cc.laws import ALGORITHMS, kernel_parameters

    if args.action == "list":
        for name, spec in sorted(ALGORITHMS.items()):
            substrates = "+".join(spec.substrates)
            kind = "loss-based" if spec.loss_based else "not loss-based"
            print(f"{name}  [{substrates}]  ({kind})")
            print(f"  {spec.summary}")
            params = kernel_parameters(name)
            if params:
                joined = ", ".join(
                    f"{key}={value!r}" for key, value in params.items()
                )
                print(f"  law parameters ({spec.laws}): {joined}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.exec import ResultCache

    cache = ResultCache(args.cache_dir or None)
    if args.action == "info":
        stats = cache.stats()
        print(f"cache: {stats['root']}")
        print(f"  entries: {stats['entries']}")
        print(f"  bytes: {stats['bytes']}")
        print(f"  schema: {stats['schema']}")
    else:  # clear
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-bbr argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-bbr",
        description=(
            "Reproduction toolkit for 'Are we heading towards a "
            "BBR-dominant Internet?' (IMC 2022)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="run the throughput model")
    _add_link_args(p)
    p.add_argument("--cubic", type=int, default=1, help="# CUBIC flows")
    p.add_argument("--bbr", type=int, default=1, help="# BBR flows")
    p.set_defaults(func=_cmd_predict)

    p = sub.add_parser("nash", help="predict the NE distribution")
    _add_link_args(p)
    p.add_argument("--flows", type=int, default=50, help="total flows")
    p.set_defaults(func=_cmd_nash)

    p = sub.add_parser("simulate", help="simulate a flow mix")
    _add_link_args(p)
    p.add_argument(
        "mix",
        nargs="+",
        help="flow mix entries like cubic:5 bbr:5",
    )
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="seconds excluded from the measurement window "
        "(default: duration/6; must lie in [0, duration))",
    )
    p.add_argument(
        "--backend",
        choices=("packet", "fluid", "fluid-vec"),
        default="fluid",
    )
    p.add_argument("--trials", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    _add_scenario_args(p)
    _add_obs_args(p)
    _add_span_args(p)
    _add_exec_args(p)
    _add_check_args(p)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("id", help="figure id, e.g. fig5 or 5")
    p.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = CI-sized, full = paper parameters",
    )
    p.add_argument(
        "--backend",
        choices=("fluid", "fluid-vec"),
        default="fluid",
        help="substrate serving the figure's fluid-model points "
        "(fluid-vec is bit-identical and faster)",
    )
    p.add_argument(
        "--csv-dir", default=None, help="also write CSVs to this directory"
    )
    _add_scenario_args(p)
    _add_obs_args(p)
    _add_span_args(p)
    _add_exec_args(p)
    _add_check_args(p)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser(
        "validate",
        help="score the model vs Ware et al. against a simulator sweep",
    )
    _add_link_args(p)
    p.add_argument(
        "--buffers",
        type=float,
        nargs="+",
        default=[2, 5, 10, 20],
        help="buffer depths in BDP",
    )
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument(
        "--backend",
        choices=("packet", "fluid", "fluid-vec"),
        default="packet",
    )
    p.add_argument("--trials", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "evolve",
        help="play the CCA-selection game via best-response dynamics",
    )
    _add_link_args(p)
    p.add_argument("--flows", type=int, default=10, help="total flows")
    p.add_argument("--incumbent", default="cubic")
    p.add_argument("--challenger", default="bbr")
    p.add_argument(
        "--start", type=int, default=1, help="initial challenger count"
    )
    p.add_argument("--duration", type=float, default=100.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_evolve)

    p = sub.add_parser(
        "population",
        help="evolve internet-scale CCA adoption dynamics "
        "(see docs/POPULATION.md)",
    )
    population_sub = p.add_subparsers(
        dest="population_command", required=True
    )

    pp = population_sub.add_parser(
        "run", help="run one seeded adoption trajectory"
    )
    _add_link_args(pp)
    pp.add_argument(
        "--flows",
        type=_positive_int,
        default=100,
        help="flows per cell (default 100)",
    )
    pp.add_argument(
        "--rtt-classes",
        type=_rtt_class_list,
        default=None,
        metavar="MS,MS,...",
        help="comma-separated RTT classes in ms; one population cell "
        "per class (default: a single cell at --rtt-ms)",
    )
    pp.add_argument(
        "--dynamics",
        choices=("replicator", "best-response", "logit"),
        default="replicator",
        help="population update rule (default replicator)",
    )
    pp.add_argument("--ticks", type=_positive_int, default=80)
    pp.add_argument("--seed", type=int, default=0)
    pp.add_argument(
        "--step",
        type=_positive_float,
        default=0.5,
        help="replicator step size",
    )
    pp.add_argument(
        "--epsilon",
        type=_positive_float,
        default=0.2,
        help="fraction of flows reconsidering per tick (logit rule)",
    )
    pp.add_argument(
        "--mutation",
        type=float,
        default=0.0,
        help="uniform exploration rate mixed into every update",
    )
    pp.add_argument(
        "--inertia",
        type=float,
        default=0.5,
        help="best-response inertia (share kept at the old mix)",
    )
    pp.add_argument(
        "--init-share",
        type=float,
        default=0.1,
        help="initial challenger share in every cell (default 0.1)",
    )
    pp.add_argument("--incumbent", default="cubic")
    pp.add_argument("--challenger", default="bbr")
    pp.add_argument(
        "--bound",
        choices=("sync", "desync", "mid"),
        default="sync",
        help="which side of the model's predicted region tier 0 "
        "reports (default sync)",
    )
    pp.add_argument(
        "--tier",
        choices=("auto", "0", "1"),
        default="auto",
        help="force the payoff tier (auto: calibrate per region "
        "against the fluid substrate)",
    )
    pp.add_argument(
        "--error-threshold",
        type=_positive_float,
        default=0.1,
        help="calibration error (fraction of fair share) above which "
        "a region escalates to tier-1 simulation (default 0.1)",
    )
    pp.add_argument(
        "--duration",
        type=_positive_float,
        default=30.0,
        help="simulated seconds per tier-1/calibration point",
    )
    pp.add_argument("--trials", type=_positive_int, default=1)
    pp.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write summary.json, trajectory.csv and error_map.json "
        "to DIR (the input of 'population plot')",
    )
    _add_span_args(pp)
    _add_exec_args(pp)
    _add_check_args(pp)
    pp.set_defaults(func=_cmd_population_run)

    pp = population_sub.add_parser(
        "plot",
        help="ASCII-plot a saved adoption trajectory vs its NE",
    )
    pp.add_argument("dir", help="directory written by population run")
    pp.set_defaults(func=_cmd_population_plot)

    p = sub.add_parser(
        "report",
        help="summarize a JSONL trace written with --trace-out",
    )
    p.add_argument("trace", help="path to the JSONL trace file")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "campaign",
        help="run declarative scenario campaigns (see docs/CAMPAIGNS.md)",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    cp = campaign_sub.add_parser(
        "run", help="run a campaign spec into an output directory"
    )
    cp.add_argument("spec", help="path to a .toml/.json campaign spec")
    cp.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="campaign output directory (journal, CSV, manifest)",
    )
    cp.add_argument(
        "--stop-after",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop cleanly after N newly executed units (simulates an "
        "interrupted campaign; exit code 3)",
    )
    cp.add_argument(
        "--backend",
        choices=("fluid", "fluid-vec"),
        default="fluid",
        help="substrate serving the campaign's fluid-model units "
        "(fluid-vec is bit-identical and faster)",
    )
    _add_scenario_args(cp)
    _add_campaign_obs_args(cp)
    _add_exec_args(cp)
    _add_check_args(cp)
    cp.set_defaults(func=_cmd_campaign_run)

    cp = campaign_sub.add_parser(
        "resume", help="resume an interrupted campaign directory"
    )
    cp.add_argument("dir", help="campaign output directory to resume")
    cp.add_argument(
        "--stop-after",
        type=_positive_int,
        default=None,
        metavar="N",
        help="stop cleanly after N newly executed units (exit code 3)",
    )
    cp.add_argument(
        "--backend",
        choices=("fluid", "fluid-vec"),
        default="fluid",
        help="substrate serving the campaign's fluid-model units "
        "(fluid-vec is bit-identical and faster)",
    )
    _add_campaign_obs_args(cp)
    _add_exec_args(cp)
    _add_check_args(cp)
    cp.set_defaults(func=_cmd_campaign_resume)

    cp = campaign_sub.add_parser(
        "status", help="show a campaign directory's progress"
    )
    cp.add_argument("dir", help="campaign output directory")
    cp.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable progress (elapsed, per-stage "
        "done/total, rate, ETA) as JSON",
    )
    cp.set_defaults(func=_cmd_campaign_status)

    cp = campaign_sub.add_parser(
        "validate", help="parse and validate a campaign spec"
    )
    cp.add_argument("spec", help="path to a .toml/.json campaign spec")
    cp.set_defaults(func=_cmd_campaign_validate)

    cp = campaign_sub.add_parser(
        "report",
        help="per-scenario-family model error from a completed "
        "campaign that sweeps a backend axis",
    )
    cp.add_argument("dir", help="campaign output directory")
    cp.add_argument(
        "--compare",
        default="backend",
        metavar="AXIS",
        help="axis whose values are compared (default: backend)",
    )
    cp.add_argument(
        "--reference",
        default="packet",
        metavar="VALUE",
        help="axis value treated as ground truth (default: packet)",
    )
    cp.add_argument(
        "--share-cc",
        default="bbr",
        metavar="CC",
        help="CC whose aggregate-throughput share is scored "
        "(default: bbr)",
    )
    cp.set_defaults(func=_cmd_campaign_report)

    p = sub.add_parser(
        "top",
        help="follow a campaign directory's live progress/ETA",
    )
    p.add_argument("dir", help="campaign output directory")
    p.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit instead of following",
    )
    p.add_argument(
        "--interval",
        type=_positive_float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period in follow mode (default 2s)",
    )
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "trace",
        help="inspect exported span traces (see docs/OBSERVABILITY.md)",
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    tp = trace_sub.add_parser(
        "report",
        help="per-span self/total wall-time table from a Chrome "
        "trace-event JSON file (--spans-out / campaign --trace-out)",
    )
    tp.add_argument("trace", help="path to the span trace (.json[.gz])")
    tp.set_defaults(func=_cmd_trace_report)

    p = sub.add_parser(
        "cache", help="inspect or clear the scenario result cache"
    )
    p.add_argument(
        "action", choices=("info", "clear"), help="what to do"
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="cache directory (default: ~/.cache/repro-bbr or "
        "$REPRO_CACHE_DIR)",
    )
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "cc",
        help="inspect the congestion-control algorithm table",
    )
    p.add_argument(
        "action",
        choices=("list",),
        help="list: every algorithm with substrates and law parameters",
    )
    p.set_defaults(func=_cmd_cc)

    p = sub.add_parser("list", help="list figures and algorithms")
    p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.check import InvariantViolation

    args = build_parser().parse_args(argv)
    if getattr(args, "no_cache", False) and (
        getattr(args, "cache_dir", None) is not None
    ):
        print(
            "--no-cache and --cache-dir are contradictory; drop one",
            file=sys.stderr,
        )
        return 2
    _activate_check(args)
    try:
        return args.func(args)
    except InvariantViolation as exc:
        print(f"invariant violation: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly instead
        # of tracebacking (redirect stdout so shutdown flush is safe).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
