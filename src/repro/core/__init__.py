"""The paper's primary contribution: models and game-theoretic analysis.

* :mod:`repro.core.two_flow` — the basic CUBIC-vs-BBR throughput model
  (§2.3, Equations 5–20).
* :mod:`repro.core.multi_flow` — the multi-flow extension with
  synchronized/de-synchronized bounds (§2.4, Equations 21–24).
* :mod:`repro.core.ware` — the Ware et al. baseline model (§2.2,
  Equations 2–4).
* :mod:`repro.core.nash` — model-predicted Nash Equilibria (§4.1, Eq. 25).
* :mod:`repro.core.game` — empirical NE enumeration, best-response
  dynamics, and the multi-RTT group game (§4.4–4.5).
"""

from repro.core.game import (
    FlowGroup,
    GroupGame,
    ThroughputTable,
    bisect_nash,
    ne_existence_conditions,
)
from repro.core.multi_flow import (
    MultiFlowPrediction,
    aggregate_bbr_bandwidth,
    desync_backoff,
    predict_multi_flow,
)
from repro.core.nash import (
    NashPrediction,
    NashRegionPoint,
    nash_region,
    predict_nash,
)
from repro.core.two_flow import (
    CUBIC_BACKOFF,
    DEEP_BUFFER_LIMIT_BDP,
    ModelPrediction,
    predict_two_flow,
    solve_bbr_buffer_share,
)
from repro.core.ware import WarePrediction, ware_prediction

__all__ = [
    "FlowGroup",
    "GroupGame",
    "ThroughputTable",
    "bisect_nash",
    "ne_existence_conditions",
    "MultiFlowPrediction",
    "aggregate_bbr_bandwidth",
    "desync_backoff",
    "predict_multi_flow",
    "NashPrediction",
    "NashRegionPoint",
    "nash_region",
    "predict_nash",
    "CUBIC_BACKOFF",
    "DEEP_BUFFER_LIMIT_BDP",
    "ModelPrediction",
    "predict_two_flow",
    "solve_bbr_buffer_share",
    "WarePrediction",
    "ware_prediction",
]
