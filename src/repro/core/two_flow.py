"""The paper's basic 2-flow model (§2.3, Equations 5–20).

One CUBIC flow and one BBR flow share a drop-tail bottleneck of capacity
``C``, buffer ``B``, and common base RTT.  The chain of reasoning:

* BBR is cwnd-bound at ``2 × estimated BDP`` (Eq. 7), where its RTT
  estimate is bloated by CUBIC's *minimum* buffer occupancy — the packets
  CUBIC leaves in the buffer during BBR's ProbeRTT (Eq. 9).
* Consistency of that cap with a full link gives
  ``b_b + b_c = 2·b_cmin + C·RTT`` (Eq. 10); approximating the buffer as
  full (``b_b + b_c ≈ B``) pins ``b_cmin = (B − C·RTT)/2``.
* CUBIC's backoff behaviour ties ``b_cmin`` to 0.7 of its peak window
  (Eqs. 12–17), yielding one equation in BBR's buffer share ``b_b``
  (Eq. 18), a quadratic solved in closed form here (with a bracketing
  fallback).
* Bandwidths follow from Eqs. 19–20; with ``b_cmin = (B − C·RTT)/2`` they
  reduce to proportional buffer shares: ``λ_b = C · b_b / B``.

Validity: the model assumes ``B ≥ 1 BDP`` (assumptions 1–2) and
cwnd-limited BBR, which fails in ultra-deep buffers (≳100 BDP, §5 and
Figure 12).  Out-of-range inputs still produce numbers, but predictions
carry ``in_validity_range=False``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.config import LinkConfig

#: CUBIC's multiplicative-decrease survival factor (backs off *to* 0.7).
CUBIC_BACKOFF = 0.7

#: Buffer depth (in BDP) beyond which BBR stops being cwnd-limited and the
#: model overestimates its throughput (§5, Figure 12).
DEEP_BUFFER_LIMIT_BDP = 100.0


@dataclass(frozen=True)
class ModelPrediction:
    """Solution of the 2-flow model for one configuration.

    All byte quantities are in bytes; bandwidths in bytes/second.
    """

    #: BBR's average buffer occupancy ``b_b``.
    bbr_buffer: float
    #: CUBIC's average buffer occupancy ``b_c = B − b_b``.
    cubic_buffer: float
    #: CUBIC's minimum buffer occupancy ``b_cmin`` (Eq. 10 + full buffer).
    cubic_min_buffer: float
    #: BBR's bandwidth ``λ_b``.
    bbr_bandwidth: float
    #: CUBIC's bandwidth ``λ_c``.
    cubic_bandwidth: float
    #: BBR's over-estimated RTT ``RTT⁺`` (Eq. 9), seconds.
    rtt_plus: float
    #: Whether the configuration satisfies the model's assumptions.
    in_validity_range: bool

    @property
    def bbr_fraction(self) -> float:
        """BBR's share of the link capacity, in [0, 1]."""
        total = self.bbr_bandwidth + self.cubic_bandwidth
        return self.bbr_bandwidth / total if total > 0 else 0.0


def solve_bbr_buffer_share(
    link: LinkConfig,
    backoff: float = CUBIC_BACKOFF,
    cwnd_gain: float = 2.0,
) -> float:
    """Solve Equation (18) for BBR's buffer occupancy ``b_b``.

    With ``h = b_cmin``, ``K = C·RTT`` and ``g = backoff · (1 + K/B)``,
    Eq. (18) multiplied through by ``(h + b_b)`` is the quadratic::

        g·b_b² + [h − g(B − h)]·b_b + h(h + K − gB) = 0

    The generalized ``backoff`` parameter supports the multi-flow bounds
    of §2.4 (0.7 for synchronized CUBIC flows, ``(N_c − 0.3)/N_c`` for
    perfectly de-synchronized ones).

    ``cwnd_gain`` generalizes assumption 2 (BBR holds ``cwnd_gain × BDP``
    in flight) along the lines discussed in §5: re-deriving Eq. (10) with
    cap ``γ`` gives ``b_b + b_c = (γ−1)·K + γ·b_cmin``, so the full-buffer
    approximation pins ``b_cmin = (B − (γ−1)·K)/γ``; the paper's model is
    the ``γ = 2`` case.  §5 notes the true in-flight level averages
    between 1 and 2 BDP, so sweeping γ quantifies the assumption's cost
    (see ``benchmarks/test_ablations.py``).

    Returns ``b_b`` clamped to ``[0, B]``.  When the buffer is too small
    for the premises (``B ≤ (γ−1)·BDP``), the full buffer is attributed
    to BBR (its empirical behaviour in shallow buffers: CUBIC starves).
    """
    if not 0 < backoff <= 1:
        raise ValueError(f"backoff must be in (0, 1], got {backoff}")
    if cwnd_gain <= 1.0:
        raise ValueError(
            f"cwnd_gain must exceed 1 (BBR must out-run the pipe), "
            f"got {cwnd_gain}"
        )
    b = link.buffer_bytes
    k = link.bdp_bytes
    if b <= (cwnd_gain - 1.0) * k:
        return b
    h = (b - (cwnd_gain - 1.0) * k) / cwnd_gain
    g = backoff * (1.0 + k / b)

    # Quadratic coefficients (a·x² + b·x + c).
    qa = g
    qb = h - g * (b - h)
    qc = h * (h + k - g * b)
    disc = qb * qb - 4.0 * qa * qc
    if disc >= 0:
        root = (-qb + math.sqrt(disc)) / (2.0 * qa)
        if 0.0 <= root <= b:
            return root
    # Fallback: bisection on f(b_b); f is increasing through its root.
    lo, hi = 0.0, b
    for _ in range(200):
        mid = (lo + hi) / 2.0
        f = h + h * k / (h + mid) - g * (b - mid)
        if f < 0:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-9 * b:
            break
    return (lo + hi) / 2.0


def predict_two_flow(
    link: LinkConfig, cwnd_gain: float = 2.0
) -> ModelPrediction:
    """Predict the bandwidth split of one CUBIC vs. one BBR flow (§2.3).

    ``cwnd_gain`` generalizes the 2×BDP in-flight assumption (see
    :func:`solve_bbr_buffer_share`); the paper's model is the default.
    """
    b = link.buffer_bytes
    k = link.bdp_bytes
    c = link.capacity
    in_range = 1.0 <= link.buffer_bdp <= DEEP_BUFFER_LIMIT_BDP

    bbr_buffer = solve_bbr_buffer_share(link, cwnd_gain=cwnd_gain)
    cubic_buffer = b - bbr_buffer
    b_cmin = max((b - (cwnd_gain - 1.0) * k) / cwnd_gain, 0.0)

    # Equations (19)–(20).  With the full-buffer b_cmin the denominator
    # of Eq. (19) equals B/C, so λ_c = C·b_c/B — bandwidth follows buffer
    # share, as assumption 3 implies.
    lambda_c = c * cubic_buffer / b
    lambda_c = min(max(lambda_c, 0.0), c)
    lambda_b = c - lambda_c
    return ModelPrediction(
        bbr_buffer=bbr_buffer,
        cubic_buffer=cubic_buffer,
        cubic_min_buffer=b_cmin,
        bbr_bandwidth=lambda_b,
        cubic_bandwidth=lambda_c,
        rtt_plus=link.rtt + b_cmin / c,
        in_validity_range=in_range,
    )
