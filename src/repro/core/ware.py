"""The Ware et al. (IMC 2019) model — the baseline the paper improves on.

Equations (2)–(4) of the paper::

    BBR_frac   = (1 − p) · (d − Probe_time) / d            (2)
    p          = 1/2 − 1/(2X) − 4N/q                        (3)
    Probe_time = (q/c + 0.2 + l) · (d/10)                   (4)

``p`` is the competing CUBIC flows' aggregate fraction of the bottleneck
bandwidth, ``X`` the buffer size in BDP, ``N`` the number of BBR flows,
``q`` the buffer size in packets, ``l`` the base RTT (seconds), ``d`` the
competition duration (seconds), and ``q/c`` the time to drain a full
buffer.  The model predicts that BBR flows collectively take a *fixed*
share regardless of how many CUBIC flows they face — §2.2 explains why its
always-full-buffer assumptions make it inaccurate for shallow and
moderately sized buffers (≥30% error, Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.config import LinkConfig


@dataclass(frozen=True)
class WarePrediction:
    """Ware et al. prediction for one network configuration."""

    #: Aggregate BBR fraction of the bottleneck bandwidth, in [0, 1].
    bbr_fraction: float
    #: CUBIC flows' aggregate fraction ``p`` before the ProbeRTT correction.
    cubic_fraction: float
    #: Fraction of the experiment spent ProbeRTT-degraded.
    probe_time_fraction: float
    #: Aggregate BBR bandwidth, bytes/second.
    bbr_bandwidth: float


def ware_prediction(
    link: LinkConfig,
    n_bbr: int = 1,
    duration: float = 120.0,
) -> WarePrediction:
    """Evaluate the Ware et al. model (Equations 2–4).

    Args:
        link: Bottleneck configuration.
        n_bbr: Number of competing BBR flows (``N``).
        duration: Flow duration ``d`` in seconds (the paper uses 2-minute
            flows).

    Returns:
        The predicted aggregate BBR share.  Fractions are clamped to
        [0, 1]: the raw formula can go negative for tiny buffers (where
        4N/q dominates), which is one of the regimes it mispredicts.
    """
    if n_bbr < 1:
        raise ValueError(f"n_bbr must be >= 1, got {n_bbr}")
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")

    x = link.buffer_bdp
    q_packets = link.buffer_packets
    # Equation (3): CUBIC's aggregate share.
    p = 0.5 - 1.0 / (2.0 * x) - 4.0 * n_bbr / q_packets
    p = min(max(p, 0.0), 1.0)

    # Equation (4): time lost to ProbeRTT per experiment.  q/c is the time
    # to drain a full buffer; BBR probes once every 10 seconds, hence d/10
    # probe episodes.
    drain_time = link.buffer_bytes / link.capacity
    probe_time = (drain_time + 0.2 + link.rtt) * (duration / 10.0)
    probe_fraction = min(max(probe_time / duration, 0.0), 1.0)

    # Equation (2).
    bbr_fraction = (1.0 - p) * (1.0 - probe_fraction)
    bbr_fraction = min(max(bbr_fraction, 0.0), 1.0)
    return WarePrediction(
        bbr_fraction=bbr_fraction,
        cubic_fraction=p,
        probe_time_fraction=probe_fraction,
        bbr_bandwidth=bbr_fraction * link.capacity,
    )
