"""The multi-flow model (§2.4, Equations 21–24).

With ``N_c`` CUBIC and ``N_b`` BBR flows of equal base RTT, the paper
models each class as one aggregate flow and re-uses the 2-flow machinery.
The only change is CUBIC's aggregate backoff behaviour, which depends on
how synchronized the individual CUBIC flows' losses are:

* **Synchronized** (Eq. 21): every CUBIC flow backs off together, so the
  aggregate falls to ``0.7 × Ŵ_max`` — identical to the 2-flow model.
  This is the *lower* bound on CUBIC's minimum buffer occupancy, hence
  the least RTT bloat for BBR and the *lower* bound on BBR's bandwidth.
* **De-synchronized** (Eq. 22): only one of the ``N_c`` flows backs off at
  a time, so the aggregate falls only to ``(N_c − 0.3)/N_c × Ŵ_max`` —
  the *upper* bound on ``b_cmin`` and on BBR's bandwidth.

The pair of bounds forms the "Predicted Region" of Figures 4 and 5; the
empirical mean lands inside it, nearer one edge or the other depending on
how synchronized the CUBIC flows actually were.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.two_flow import (
    CUBIC_BACKOFF,
    DEEP_BUFFER_LIMIT_BDP,
    solve_bbr_buffer_share,
)
from repro.util.config import LinkConfig


def desync_backoff(n_cubic: int) -> float:
    """Aggregate backoff factor when only one of ``n_cubic`` flows cuts.

    Equation (22)'s ``(N_c − 0.3)/N_c``: a single flow's 0.3 reduction
    diluted across the aggregate.  Reduces to 0.7 for one CUBIC flow.
    """
    if n_cubic < 1:
        raise ValueError(f"n_cubic must be >= 1, got {n_cubic}")
    return (n_cubic - 0.3) / n_cubic


@dataclass(frozen=True)
class MultiFlowPrediction:
    """Aggregate and per-flow bandwidth bounds for one flow mix.

    ``*_sync`` values use the synchronized-CUBIC bound (Eq. 21),
    ``*_desync`` the de-synchronized bound (Eq. 22).  Bandwidths are in
    bytes/second.  ``per_flow_*`` divide the aggregates by the class sizes
    (Eqs. 23–24); they are 0.0 for an empty class.
    """

    n_cubic: int
    n_bbr: int
    bbr_aggregate_sync: float
    bbr_aggregate_desync: float
    cubic_aggregate_sync: float
    cubic_aggregate_desync: float
    in_validity_range: bool

    @property
    def per_flow_bbr_sync(self) -> float:
        """Per-flow BBR bandwidth under the synchronized bound (Eq. 23)."""
        return self.bbr_aggregate_sync / self.n_bbr if self.n_bbr else 0.0

    @property
    def per_flow_bbr_desync(self) -> float:
        """Per-flow BBR bandwidth under the de-synchronized bound."""
        return self.bbr_aggregate_desync / self.n_bbr if self.n_bbr else 0.0

    @property
    def per_flow_cubic_sync(self) -> float:
        """Per-flow CUBIC bandwidth under the synchronized bound (Eq. 24)."""
        return (
            self.cubic_aggregate_sync / self.n_cubic if self.n_cubic else 0.0
        )

    @property
    def per_flow_cubic_desync(self) -> float:
        """Per-flow CUBIC bandwidth under the de-synchronized bound."""
        return (
            self.cubic_aggregate_desync / self.n_cubic
            if self.n_cubic
            else 0.0
        )

    def per_flow_bbr_bounds(self) -> tuple:
        """(low, high) per-flow BBR bandwidth — the Predicted Region."""
        lo = min(self.per_flow_bbr_sync, self.per_flow_bbr_desync)
        hi = max(self.per_flow_bbr_sync, self.per_flow_bbr_desync)
        return (lo, hi)

    def contains_bbr_per_flow(
        self, value: float, tolerance: float = 0.0
    ) -> bool:
        """Whether a measured per-flow BBR bandwidth falls in the region.

        ``tolerance`` widens the region by the given fraction of capacity
        on both sides (the paper quotes ~5% model error).
        """
        lo, hi = self.per_flow_bbr_bounds()
        return lo - tolerance <= value <= hi + tolerance


def aggregate_bbr_bandwidth(
    link: LinkConfig, n_cubic: int, backoff: float
) -> float:
    """Aggregate BBR bandwidth ``λ̄_b`` for a given CUBIC backoff factor.

    Runs the 2-flow solver with the aggregate backoff (Eq. 21 or 22); the
    proportional-share reduction of Eq. 19 gives ``λ̄_b = C · b_b / B``.
    """
    if n_cubic == 0:
        # All-BBR: the aggregate takes the whole link (§4.1, point B).
        return link.capacity
    bbr_buffer = solve_bbr_buffer_share(link, backoff=backoff)
    return link.capacity * bbr_buffer / link.buffer_bytes


def predict_multi_flow(
    link: LinkConfig, n_cubic: int, n_bbr: int
) -> MultiFlowPrediction:
    """Predict aggregate/per-flow bandwidth bounds for a flow mix (§2.4)."""
    if n_cubic < 0 or n_bbr < 0:
        raise ValueError("flow counts must be non-negative")
    if n_cubic + n_bbr == 0:
        raise ValueError("at least one flow is required")
    c = link.capacity
    in_range = 1.0 <= link.buffer_bdp <= DEEP_BUFFER_LIMIT_BDP

    if n_bbr == 0:
        # All-CUBIC: the aggregate takes the whole link.
        return MultiFlowPrediction(
            n_cubic=n_cubic,
            n_bbr=0,
            bbr_aggregate_sync=0.0,
            bbr_aggregate_desync=0.0,
            cubic_aggregate_sync=c,
            cubic_aggregate_desync=c,
            in_validity_range=in_range,
        )

    sync = aggregate_bbr_bandwidth(link, n_cubic, CUBIC_BACKOFF)
    if n_cubic > 0:
        desync = aggregate_bbr_bandwidth(
            link, n_cubic, desync_backoff(n_cubic)
        )
    else:
        desync = sync
    return MultiFlowPrediction(
        n_cubic=n_cubic,
        n_bbr=n_bbr,
        bbr_aggregate_sync=sync,
        bbr_aggregate_desync=desync,
        cubic_aggregate_sync=c - sync,
        cubic_aggregate_desync=c - desync,
        in_validity_range=in_range,
    )
