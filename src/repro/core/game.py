"""The CCA-selection game: empirical NE search and dynamics (§4.1, §4.4).

This module implements the paper's *experimental* methodology: measure (or
model) per-flow throughput for every distribution of two competing CCAs,
then enumerate distributions where no single flow can gain by unilaterally
switching.  It also provides best-response dynamics (the "Internet
evolution" story of §1), a bisection search that finds the NE with
O(log N) throughput evaluations for expensive simulator backends, and the
multi-RTT group game of §4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

#: A throughput provider: distribution (number of strategy-B flows) →
#: (per-flow bandwidth of strategy-A flows, per-flow bandwidth of
#: strategy-B flows).  Entries for empty classes may be 0.0.
ThroughputFn = Callable[[int], Tuple[float, float]]


@dataclass
class ThroughputTable:
    """Per-flow throughput for all ``n + 1`` distributions of two CCAs.

    ``lambda_a[k]`` / ``lambda_b[k]`` are the per-flow bandwidths of
    strategy-A (e.g. CUBIC) and strategy-B (e.g. BBR) flows when ``k``
    flows play strategy B.  Conventionally A is the incumbent (CUBIC).
    """

    n_flows: int
    lambda_a: List[float]
    lambda_b: List[float]

    def __post_init__(self) -> None:
        expected = self.n_flows + 1
        if len(self.lambda_a) != expected or len(self.lambda_b) != expected:
            raise ValueError(
                f"need {expected} entries per strategy, got "
                f"{len(self.lambda_a)}/{len(self.lambda_b)}"
            )

    @classmethod
    def from_function(
        cls, n_flows: int, fn: ThroughputFn
    ) -> "ThroughputTable":
        """Evaluate ``fn`` for every distribution 0..n."""
        lambda_a, lambda_b = [], []
        for k in range(n_flows + 1):
            a, b = fn(k)
            lambda_a.append(a)
            lambda_b.append(b)
        return cls(n_flows=n_flows, lambda_a=lambda_a, lambda_b=lambda_b)

    def is_nash(self, k: int, tolerance: float = 0.0) -> bool:
        """Whether the distribution with ``k`` strategy-B flows is an NE.

        §4.4's check: no B flow gains by switching to A
        (``λ_b(k) ≥ λ_a(k−1)``) and no A flow gains by switching to B
        (``λ_a(k) ≥ λ_b(k+1)``), within ``tolerance`` (bytes/second).
        """
        if not 0 <= k <= self.n_flows:
            raise ValueError(f"k must be in [0, {self.n_flows}], got {k}")
        if k > 0 and self.lambda_b[k] < self.lambda_a[k - 1] - tolerance:
            return False
        if (
            k < self.n_flows
            and self.lambda_a[k] < self.lambda_b[k + 1] - tolerance
        ):
            return False
        return True

    def nash_equilibria(self, tolerance: float = 0.0) -> List[int]:
        """All NE distributions (it is common for several to qualify)."""
        return [
            k
            for k in range(self.n_flows + 1)
            if self.is_nash(k, tolerance)
        ]

    def best_response_step(self, k: int) -> int:
        """One round of unilateral switching from distribution ``k``.

        A strategy-A flow switches to B when that raises its bandwidth,
        and vice versa; ties stay put.  Returns the next distribution.
        """
        if k < self.n_flows and self.lambda_b[k + 1] > self.lambda_a[k]:
            return k + 1
        if k > 0 and self.lambda_a[k - 1] > self.lambda_b[k]:
            return k - 1
        return k

    def best_response_path(
        self, start: int, max_steps: int = 1000
    ) -> List[int]:
        """Trajectory of best-response dynamics until it stops moving.

        Models the Internet-evolution narrative: websites switch CCA one
        at a time while the rest hold still.  The final element is an NE
        (or the last state before a cycle was cut off).
        """
        path = [start]
        seen = {start}
        k = start
        for _ in range(max_steps):
            nxt = self.best_response_step(k)
            if nxt == k:
                break
            path.append(nxt)
            k = nxt
            if k in seen:
                break  # Cycle (possible only with measurement noise).
            seen.add(k)
        return path


def bisect_nash(
    n_flows: int,
    fn: ThroughputFn,
    tolerance: float = 0.0,
) -> Tuple[List[int], Dict[int, Tuple[float, float]]]:
    """Find NE distributions with O(log N) evaluations of ``fn``.

    Exploits the paper's structural result (Figure 6): BBR's per-flow
    advantage ``λ_b(k) − λ_a(k)`` decreases in ``k`` and crosses zero at
    most once, so the crossing can be bisected and only its neighborhood
    needs exact NE checks.  Returns the NE list and a cache of evaluated
    distributions (useful for reporting).
    """
    cache: Dict[int, Tuple[float, float]] = {}

    def evaluate(k: int) -> Tuple[float, float]:
        if k not in cache:
            cache[k] = fn(k)
        return cache[k]

    def advantage(k: int) -> float:
        a, b = evaluate(k)
        if k == 0:
            return float("inf")  # No B flows: switching in is the question.
        if k == n_flows:
            return float("-inf")
        return b - a

    lo, hi = 1, n_flows - 1
    if n_flows <= 2 or advantage(lo) <= 0:
        candidates = range(0, min(n_flows, 2) + 1)
    elif advantage(hi) >= 0:
        candidates = range(max(0, n_flows - 2), n_flows + 1)
    else:
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if advantage(mid) >= 0:
                lo = mid
            else:
                hi = mid
        candidates = range(max(0, lo - 1), min(n_flows, hi + 1) + 1)

    equilibria = []
    for k in candidates:
        a_k, b_k = evaluate(k)
        ok = True
        if k > 0:
            a_prev, _ = evaluate(k - 1)
            ok = ok and b_k >= a_prev - tolerance
        if k < n_flows:
            _, b_next = evaluate(k + 1)
            ok = ok and a_k >= b_next - tolerance
        if ok:
            equilibria.append(k)
    return equilibria, cache


def ne_existence_conditions(
    table: ThroughputTable, capacity: float
) -> Dict[str, bool]:
    """Check §4.2's two sufficient conditions for an NE against CUBIC.

    For a challenger CCA ``X`` (strategy B) the paper's argument needs:

    1. ``disproportionate_share`` — at some distribution a minority of X
       flows gets more than its fair share (point A above the line);
    2. ``fills_link_alone`` — the all-X distribution delivers (roughly)
       the fair share per flow, i.e. X utilizes the link (point B).

    When both hold, the A→B line either stays above fair share (all-X is
    the NE) or crosses it (a mixed NE) — an NE exists either way.  Copa
    fails condition 1 in the paper's Figure 7, which is why it expects
    no interior NE for Copa.

    Returns the two flags plus ``ne_expected`` (their conjunction).
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    fair = capacity / table.n_flows
    disproportionate = any(
        table.lambda_b[k] > fair for k in range(1, table.n_flows)
    )
    fills_link_alone = table.lambda_b[table.n_flows] >= 0.8 * fair
    return {
        "disproportionate_share": disproportionate,
        "fills_link_alone": fills_link_alone,
        "ne_expected": disproportionate and fills_link_alone,
    }


# -- Multi-RTT group game (§4.5) ----------------------------------------------


@dataclass(frozen=True)
class FlowGroup:
    """A class of symmetric flows sharing one base RTT."""

    rtt: float
    size: int

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive, got {self.rtt}")
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")


#: Group-game payoffs: per-group (per-flow λ of strategy-A flows,
#: per-flow λ of strategy-B flows) for a given assignment of strategy-B
#: counts per group.
GroupPayoffFn = Callable[[Tuple[int, ...]], Sequence[Tuple[float, float]]]


@dataclass
class GroupGame:
    """The CCA game between flow groups with different base RTTs.

    The state space is the tuple of per-group strategy-B counts
    (flows within a group are symmetric, which collapses the paper's
    ``2^n`` joint strategies to ``Π(n_g + 1)`` states, as in its §4.5
    three-group experiments).
    """

    groups: Sequence[FlowGroup]
    payoff: GroupPayoffFn
    tolerance: float = 0.0
    _cache: Dict[Tuple[int, ...], Sequence[Tuple[float, float]]] = field(
        default_factory=dict, repr=False
    )

    def payoffs(
        self, state: Tuple[int, ...]
    ) -> Sequence[Tuple[float, float]]:
        """Per-group (strategy-A, strategy-B) per-flow payoffs, cached."""
        if state not in self._cache:
            self._cache[state] = self.payoff(state)
        return self._cache[state]

    # Backwards-compatible alias (kept private-named for old callers).
    _payoffs = payoffs

    def states(self) -> Iterable[Tuple[int, ...]]:
        """Every distribution of strategy B across the groups."""

        def recurse(idx: int, prefix: Tuple[int, ...]):
            if idx == len(self.groups):
                yield prefix
                return
            for k in range(self.groups[idx].size + 1):
                yield from recurse(idx + 1, prefix + (k,))

        return recurse(0, ())

    def is_nash(self, state: Tuple[int, ...]) -> bool:
        """No single flow in any group gains by unilaterally switching."""
        payoffs = self.payoffs(state)
        for g, group in enumerate(self.groups):
            k = state[g]
            # A strategy-A flow in group g considers switching to B.
            if k < group.size:
                switched = state[:g] + (k + 1,) + state[g + 1:]
                if (
                    self.payoffs(switched)[g][1]
                    > payoffs[g][0] + self.tolerance
                ):
                    return False
            # A strategy-B flow in group g considers switching to A.
            if k > 0:
                switched = state[:g] + (k - 1,) + state[g + 1:]
                if (
                    self.payoffs(switched)[g][0]
                    > payoffs[g][1] + self.tolerance
                ):
                    return False
        return True

    def nash_equilibria(self) -> List[Tuple[int, ...]]:
        """Enumerate all NE states (exhaustive; cache keeps it feasible)."""
        return [s for s in self.states() if self.is_nash(s)]

    def best_response_path(
        self, start: Tuple[int, ...], max_steps: int = 1000
    ) -> List[Tuple[int, ...]]:
        """Greedy best-response dynamics from ``start`` until stable."""
        path = [start]
        state = start
        for _ in range(max_steps):
            nxt = self._best_response_step(state)
            if nxt == state:
                break
            path.append(nxt)
            state = nxt
        return path

    def _best_response_step(
        self, state: Tuple[int, ...]
    ) -> Tuple[int, ...]:
        payoffs = self.payoffs(state)
        best_gain = self.tolerance
        best_state = state
        for g, group in enumerate(self.groups):
            k = state[g]
            if k < group.size:
                switched = state[:g] + (k + 1,) + state[g + 1:]
                gain = self.payoffs(switched)[g][1] - payoffs[g][0]
                if gain > best_gain:
                    best_gain, best_state = gain, switched
            if k > 0:
                switched = state[:g] + (k - 1,) + state[g + 1:]
                gain = self.payoffs(switched)[g][0] - payoffs[g][1]
                if gain > best_gain:
                    best_gain, best_state = gain, switched
        return best_state
