"""Nash-equilibrium prediction from the throughput model (§4.1, Eq. 25).

The CCA-selection game: each of ``N`` same-RTT flows picks CUBIC or BBR to
maximize its own throughput.  Because flows are symmetric there are only
``N + 1`` distributions, indexed by the number of BBR flows ``N_b``.  The
paper shows (Figure 6) that the per-flow BBR bandwidth line crosses the
fair-share line ``C/N`` from above, and the crossing point C is a stable
mixed Nash Equilibrium: the NE distribution is the ``N_b`` solving

    λ̄_b(N_b) / N_b = C / N                                  (25)

For the synchronized bound λ̄_b does not depend on the split, so Eq. 25 is
explicit; for the de-synchronized bound λ̄_b depends on ``N_c = N − N_b``
and the crossing is found by a fixed-point scan.  The pair of solutions
forms the "Nash Region" of Figure 9, which — once the buffer is measured
in BDP — depends on neither the link capacity nor the RTT alone (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.multi_flow import (
    aggregate_bbr_bandwidth,
    desync_backoff,
)
from repro.core.two_flow import CUBIC_BACKOFF, DEEP_BUFFER_LIMIT_BDP
from repro.util.config import LinkConfig


@dataclass(frozen=True)
class NashPrediction:
    """Predicted NE distribution for ``n_flows`` same-RTT flows.

    ``n_bbr_*`` are the continuous solutions of Eq. 25 under each
    synchronization bound; ``n_cubic_*`` are their complements.  The
    predicted *Nash Region* in Figure 9's axes (number of CUBIC flows at
    the NE vs. buffer depth) spans ``[n_cubic_low, n_cubic_high]``.
    """

    n_flows: int
    n_bbr_sync: float
    n_bbr_desync: float
    in_validity_range: bool

    @property
    def n_cubic_sync(self) -> float:
        """CUBIC flows at the NE under the synchronized bound."""
        return self.n_flows - self.n_bbr_sync

    @property
    def n_cubic_desync(self) -> float:
        """CUBIC flows at the NE under the de-synchronized bound."""
        return self.n_flows - self.n_bbr_desync

    @property
    def n_cubic_low(self) -> float:
        """Lower edge of the Nash Region in CUBIC flows."""
        return min(self.n_cubic_sync, self.n_cubic_desync)

    @property
    def n_cubic_high(self) -> float:
        """Upper edge of the Nash Region in CUBIC flows."""
        return max(self.n_cubic_sync, self.n_cubic_desync)

    def contains_n_cubic(self, n_cubic: float, slack: float = 0.0) -> bool:
        """Whether an observed NE's CUBIC count falls in the region."""
        return (
            self.n_cubic_low - slack
            <= n_cubic
            <= self.n_cubic_high + slack
        )


def _solve_fixed_point_desync(link: LinkConfig, n_flows: int) -> float:
    """Find ``N_b`` with λ̄_b(N_b)/N_b = C/N under the desync bound.

    ``λ̄_b`` depends on ``N_c = N − N_b`` through the aggregate backoff
    factor, so Eq. 25 is solved by a damped fixed-point iteration
    ``N_b ← N·λ̄_b(N_b)/C`` (the map is a contraction in practice since
    the backoff factor varies slowly with ``N_c``).
    """
    c = link.capacity
    n_b = n_flows / 2.0
    for _ in range(200):
        n_c = max(n_flows - n_b, 0.0)
        if n_c < 1.0:
            # Fewer than one CUBIC flow left: the NE is all-BBR.
            return float(n_flows)
        backoff = desync_backoff(max(int(round(n_c)), 1))
        agg = aggregate_bbr_bandwidth(link, int(round(n_c)), backoff)
        nxt = n_flows * agg / c
        if abs(nxt - n_b) < 1e-6:
            return nxt
        n_b = 0.5 * n_b + 0.5 * nxt
    return n_b


def predict_nash(link: LinkConfig, n_flows: int) -> NashPrediction:
    """Predict the NE distribution of CUBIC and BBR flows (Eq. 25)."""
    if n_flows < 1:
        raise ValueError(f"n_flows must be >= 1, got {n_flows}")
    c = link.capacity
    in_range = 1.0 <= link.buffer_bdp <= DEEP_BUFFER_LIMIT_BDP

    if link.buffer_bdp <= 1.0:
        # Shallow buffer: BBR starves CUBIC entirely; the NE is all-BBR.
        return NashPrediction(
            n_flows=n_flows,
            n_bbr_sync=float(n_flows),
            n_bbr_desync=float(n_flows),
            in_validity_range=in_range,
        )

    # Synchronized bound: λ̄_b is independent of the split, so Eq. 25 gives
    # N_b directly.  A CUBIC aggregate exists whenever N_b < N, so use the
    # single-aggregate solver (n_cubic only matters via the backoff, which
    # is 0.7 regardless of N_c when synchronized).
    agg_sync = aggregate_bbr_bandwidth(link, 1, CUBIC_BACKOFF)
    n_bbr_sync = min(n_flows * agg_sync / c, float(n_flows))

    n_bbr_desync = min(
        _solve_fixed_point_desync(link, n_flows), float(n_flows)
    )
    return NashPrediction(
        n_flows=n_flows,
        n_bbr_sync=n_bbr_sync,
        n_bbr_desync=n_bbr_desync,
        in_validity_range=in_range,
    )


@dataclass(frozen=True)
class NashRegionPoint:
    """One buffer depth of the Figure-9 Nash Region."""

    buffer_bdp: float
    n_cubic_sync: float
    n_cubic_desync: float
    in_validity_range: bool


def nash_region(
    link: LinkConfig, n_flows: int, buffer_bdps: Iterable[float]
) -> List[NashRegionPoint]:
    """The predicted Nash Region across a buffer-depth sweep (Figure 9)."""
    points = []
    for depth in buffer_bdps:
        prediction = predict_nash(link.with_buffer_bdp(depth), n_flows)
        points.append(
            NashRegionPoint(
                buffer_bdp=depth,
                n_cubic_sync=prediction.n_cubic_sync,
                n_cubic_desync=prediction.n_cubic_desync,
                in_validity_range=prediction.in_validity_range,
            )
        )
    return points
