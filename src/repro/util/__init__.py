"""Shared utilities: unit conversions, link configuration, and filters.

This package holds the small, dependency-free building blocks used by both
the analytical models (:mod:`repro.core`) and the simulators
(:mod:`repro.sim`, :mod:`repro.fluidsim`).
"""

from repro.util.config import LinkConfig
from repro.util.filters import Ewma, WindowedFilter, WindowedMax, WindowedMin
from repro.util.units import (
    MSS_BYTES,
    bits_to_bytes,
    bytes_to_bits,
    bytes_to_mbit,
    bytes_to_packets,
    mbps_to_bps,
    mbps_to_bytes_per_sec,
    ms_to_s,
    packets_to_bytes,
    s_to_ms,
)

__all__ = [
    "LinkConfig",
    "Ewma",
    "WindowedFilter",
    "WindowedMax",
    "WindowedMin",
    "MSS_BYTES",
    "bits_to_bytes",
    "bytes_to_bits",
    "bytes_to_mbit",
    "bytes_to_packets",
    "mbps_to_bps",
    "mbps_to_bytes_per_sec",
    "ms_to_s",
    "packets_to_bytes",
    "s_to_ms",
]
