"""Bottleneck link configuration shared by models and simulators.

Every experiment in the paper is parameterized by the same three quantities:
the bottleneck capacity ``C``, the base (propagation) round-trip time
``RTT``, and the drop-tail buffer size ``B`` expressed as a multiple of the
bandwidth-delay product (BDP).  :class:`LinkConfig` captures that triple once
so the analytical model, the packet simulator, and the fluid simulator all
agree on derived quantities such as the BDP in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.units import MSS_BYTES, mbps_to_bytes_per_sec, ms_to_s


@dataclass(frozen=True)
class LinkConfig:
    """A single drop-tail bottleneck, as in Figure 2 of the paper.

    Attributes:
        capacity: Link capacity in bytes per second.
        rtt: Base (congestion-free) round-trip propagation delay in seconds.
        buffer_bdp: Drop-tail buffer size as a multiple of the BDP.
        mss: Segment size in bytes, used when the buffer is counted in
            packets (e.g. by the Ware et al. model).
    """

    capacity: float
    rtt: float
    buffer_bdp: float
    mss: int = MSS_BYTES

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive, got {self.rtt}")
        if self.buffer_bdp <= 0:
            raise ValueError(
                f"buffer_bdp must be positive, got {self.buffer_bdp}"
            )
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")

    @classmethod
    def from_mbps_ms(
        cls,
        capacity_mbps: float,
        rtt_ms: float,
        buffer_bdp: float,
        mss: int = MSS_BYTES,
    ) -> "LinkConfig":
        """Build a config from the units used in the paper's figures."""
        return cls(
            capacity=mbps_to_bytes_per_sec(capacity_mbps),
            rtt=ms_to_s(rtt_ms),
            buffer_bdp=buffer_bdp,
            mss=mss,
        )

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product ``C × RTT`` in bytes."""
        return self.capacity * self.rtt

    @property
    def bdp_packets(self) -> float:
        """BDP in MSS-sized packets."""
        return self.bdp_bytes / self.mss

    @property
    def buffer_bytes(self) -> float:
        """Absolute buffer size ``B`` in bytes."""
        return self.buffer_bdp * self.bdp_bytes

    @property
    def buffer_packets(self) -> float:
        """Buffer size in MSS-sized packets (``q`` in Ware et al.)."""
        return self.buffer_bytes / self.mss

    @property
    def capacity_mbps(self) -> float:
        """Link capacity in Mbps, for reporting."""
        return self.capacity * 8.0 / 1e6

    @property
    def rtt_ms(self) -> float:
        """Base RTT in milliseconds, for reporting."""
        return self.rtt * 1e3

    @property
    def max_queuing_delay(self) -> float:
        """Worst-case queuing delay ``B / C`` in seconds (full buffer)."""
        return self.buffer_bytes / self.capacity

    def with_buffer_bdp(self, buffer_bdp: float) -> "LinkConfig":
        """Return a copy with a different buffer depth (for sweeps)."""
        return replace(self, buffer_bdp=buffer_bdp)

    def with_rtt(self, rtt: float) -> "LinkConfig":
        """Return a copy with a different base RTT in seconds."""
        return replace(self, rtt=rtt)

    def describe(self) -> str:
        """One-line human-readable summary used by the CLI."""
        return (
            f"{self.capacity_mbps:g} Mbps, {self.rtt_ms:g} ms RTT, "
            f"{self.buffer_bdp:g} BDP buffer "
            f"({self.buffer_packets:.0f} packets)"
        )
