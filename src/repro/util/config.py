"""Bottleneck link configuration — compatibility alias.

The canonical scenario schema now lives in :mod:`repro.scenario`:
:class:`~repro.scenario.BottleneckSpec` carries capacity/RTT/buffer/MSS
plus the AQM discipline and capacity trace.  ``LinkConfig`` remains the
historical name for the drop-tail/constant special case — it *is*
``BottleneckSpec`` (default AQM/trace), so existing four-field
constructor calls, ``from_mbps_ms``, and every derived property keep
working unchanged.
"""

from __future__ import annotations

from repro.scenario.spec import BottleneckSpec

#: Historical alias; constructing ``LinkConfig(capacity, rtt, buffer_bdp)``
#: yields the drop-tail/constant-capacity bottleneck the paper studies.
LinkConfig = BottleneckSpec

__all__ = ["LinkConfig"]
