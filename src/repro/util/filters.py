"""Time-windowed min/max filters and an EWMA.

BBR's control loop is built on two windowed estimators: a windowed-max
filter over delivery-rate samples (the bottleneck bandwidth estimate,
window of roughly 10 RTTs) and a windowed-min filter over RTT samples
(``RTT_min``, window of 10 seconds).  These are re-implemented here and
used by both :class:`repro.cc.bbr.BBRv1` and the fluid BBR flow.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple


class WindowedFilter:
    """Track the best value seen within a sliding time window.

    Samples are ``(time, value)`` pairs; ``update`` keeps a monotonic deque
    so that queries are O(1) amortized.  ``better(a, b)`` returns True when
    ``a`` should shadow ``b`` (e.g. ``a >= b`` for a max filter).
    """

    def __init__(self, window: float, better: Callable[[float, float], bool]):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._better = better
        self._samples: Deque[Tuple[float, float]] = deque()
        self._latest: Optional[float] = None

    def update(self, now: float, value: float) -> float:
        """Insert a sample taken at ``now`` and return the current best.

        The deque is ordered by time, so a ``now`` behind the newest
        sample would silently corrupt expiry.  Non-monotonic clocks are
        clamped to the newest sample time (the sanitizer independently
        flags the non-monotonic event loop that would cause one).
        """
        if self._latest is not None and now < self._latest:
            now = self._latest
        else:
            self._latest = now
        self._expire(now)
        while self._samples and self._better(value, self._samples[-1][1]):
            self._samples.pop()
        self._samples.append((now, value))
        return self._samples[0][1]

    def get(self, now: Optional[float] = None) -> Optional[float]:
        """Return the best value in the window, or None if empty.

        Passing ``now`` expires stale samples first.
        """
        if now is not None:
            self._expire(now)
        if not self._samples:
            return None
        return self._samples[0][1]

    def reset(self) -> None:
        """Forget all samples."""
        self._samples.clear()

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def __len__(self) -> int:
        return len(self._samples)


class WindowedMax(WindowedFilter):
    """Windowed maximum (BBR's bottleneck-bandwidth filter)."""

    def __init__(self, window: float):
        super().__init__(window, lambda a, b: a >= b)


class WindowedMin(WindowedFilter):
    """Windowed minimum (BBR's RTT_min filter)."""

    def __init__(self, window: float):
        super().__init__(window, lambda a, b: a <= b)


class Ewma:
    """Exponentially weighted moving average with optional bias correction.

    Used for smoothed RTT/throughput reporting in the experiment harness and
    by the Copa implementation for its "standing RTT" style estimates.
    """

    def __init__(self, alpha: float):
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value: Optional[float] = None

    def update(self, sample: float) -> float:
        """Fold in a sample and return the new average."""
        if self._value is None:
            self._value = sample
        else:
            self._value = (1 - self.alpha) * self._value + self.alpha * sample
        return self._value

    @property
    def value(self) -> Optional[float]:
        """Current average, or None before the first sample."""
        return self._value

    def reset(self) -> None:
        """Forget the current average."""
        self._value = None
