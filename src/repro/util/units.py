"""Unit conversions used throughout the reproduction.

Internally the library standardizes on:

* **bytes** for data quantities (buffer sizes, windows, in-flight data),
* **bytes per second** for rates (link capacities, per-flow bandwidth),
* **seconds** for times (RTTs, durations, queuing delays).

The paper's figures use Mbps for bandwidth and milliseconds for RTTs, so the
experiment harness converts at the edges with the helpers below.
"""

from __future__ import annotations

#: Maximum segment size in bytes. The paper's testbed uses standard Ethernet
#: framing; 1500-byte packets are also what the Ware et al. model assumes
#: when it counts the buffer in packets.
MSS_BYTES = 1500


def mbps_to_bps(mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return mbps * 1e6


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert megabits per second to bytes per second."""
    return mbps * 1e6 / 8.0


def bytes_per_sec_to_mbps(rate: float) -> float:
    """Convert bytes per second to megabits per second."""
    return rate * 8.0 / 1e6


def bytes_to_bits(n_bytes: float) -> float:
    """Convert bytes to bits."""
    return n_bytes * 8.0


def bits_to_bytes(n_bits: float) -> float:
    """Convert bits to bytes."""
    return n_bits / 8.0


def bytes_to_mbit(n_bytes: float) -> float:
    """Convert bytes to megabits."""
    return n_bytes * 8.0 / 1e6


def bytes_to_packets(n_bytes: float, mss: int = MSS_BYTES) -> float:
    """Convert a byte count to an (fractional) MSS-sized packet count."""
    return n_bytes / float(mss)


def packets_to_bytes(n_packets: float, mss: int = MSS_BYTES) -> float:
    """Convert an MSS-sized packet count to bytes."""
    return n_packets * float(mss)


def ms_to_s(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / 1e3


def s_to_ms(s: float) -> float:
    """Convert seconds to milliseconds."""
    return s * 1e3
