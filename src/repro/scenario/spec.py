"""First-class scenario schema: the canonical bottleneck description.

Every layer of the pipeline — the analytical model, both simulator
substrates, the execution engine's fingerprints, campaign axes, and the
CLI — agrees on one description of the bottleneck: a
:class:`BottleneckSpec`.  Beyond the classic drop-tail/constant-capacity
dumbbell (the paper's setting, and the default), a spec can carry an
active queue management discipline (:class:`REDSpec` / :class:`CoDelSpec`,
optionally marking ECN instead of dropping) and a time-varying capacity
trace (:class:`StepsTrace` / :class:`SampledTrace`) for wireless-style
links.

The schema is *canonical*: :meth:`BottleneckSpec.to_dict` normalizes the
spec into plain JSON types, and scenario fingerprints derive from that
dict — two specs spelled differently (string vs. object AQM, default vs.
explicit trace) that mean the same scenario hash identically.  This
module depends only on ``repro.util.units`` so both the experiments
layer and the execution layer can import it top-level without cycles;
it is also the canonical home of the :data:`BACKENDS` registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields, replace
from math import isfinite
from typing import (
    Any,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.util.units import MSS_BYTES, mbps_to_bytes_per_sec, ms_to_s

#: Canonical simulator backend registry.  Lives here (dependency-free)
#: so ``repro.exec`` and ``repro.campaign`` can validate backends
#: without importing the experiments layer.
BACKENDS = ("packet", "fluid", "fluid-vec")

#: AQM disciplines a spec can name.
AQM_KINDS = ("droptail", "red", "codel")

#: Capacity-trace kinds a spec can name.
TRACE_KINDS = ("constant", "steps", "trace")


def _canon_float(name: str, value: Any) -> float:
    """Coerce ``value`` to a finite float (canonicalization helper)."""
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a number, got {value!r}")
    if not isfinite(out):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return out


# ---------------------------------------------------------------------------
# AQM specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DropTailSpec:
    """The classic tail-drop queue — the paper's (and repo's) default.

    Carries no parameters: the drop threshold *is* the buffer size on
    the owning :class:`BottleneckSpec`.
    """

    kind: ClassVar[str] = "droptail"

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {"kind": "droptail"}


@dataclass(frozen=True)
class REDSpec:
    """Random Early Detection, thresholds as fractions of the buffer.

    Thresholds are *fractions* rather than bytes so the same spec
    composes with buffer-depth sweeps: a campaign axis over
    ``buffer_bdp`` rescales the RED thresholds with the buffer, exactly
    like :meth:`repro.sim.aqm.REDConfig.for_buffer`.

    Attributes:
        min_frac: ``min_threshold = min_frac × buffer_bytes``.
        max_frac: ``max_threshold = max_frac × buffer_bytes``.
        max_p: Drop/mark probability at ``max_threshold``.
        weight: EWMA weight for the average queue estimate.
        ecn: Mark packets (ECN CE) instead of dropping them.
        seed: RNG seed for the packet substrate's drop lottery (the
            fluid substrates are deterministic and ignore it).
    """

    kind: ClassVar[str] = "red"

    min_frac: float = 1.0 / 6.0
    max_frac: float = 0.5
    max_p: float = 0.1
    weight: float = 0.002
    ecn: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "min_frac", _canon_float("min_frac", self.min_frac))
        object.__setattr__(self, "max_frac", _canon_float("max_frac", self.max_frac))
        object.__setattr__(self, "max_p", _canon_float("max_p", self.max_p))
        object.__setattr__(self, "weight", _canon_float("weight", self.weight))
        object.__setattr__(self, "ecn", bool(self.ecn))
        object.__setattr__(self, "seed", int(self.seed))
        if not 0.0 < self.min_frac < self.max_frac <= 1.0:
            raise ValueError(
                "RED thresholds must satisfy 0 < min_frac < max_frac <= 1, "
                f"got min_frac={self.min_frac} max_frac={self.max_frac}"
            )
        if not 0.0 < self.max_p <= 1.0:
            raise ValueError(f"max_p must be in (0, 1], got {self.max_p}")
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(f"weight must be in (0, 1], got {self.weight}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (all fields, explicit)."""
        return {
            "kind": "red",
            "min_frac": self.min_frac,
            "max_frac": self.max_frac,
            "max_p": self.max_p,
            "weight": self.weight,
            "ecn": self.ecn,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class CoDelSpec:
    """Controlled Delay AQM (head-drop on sojourn time).

    Attributes:
        target: Target sojourn time in seconds.
        interval: Sliding window for the target in seconds.
        ecn: Mark at the head instead of dropping.
    """

    kind: ClassVar[str] = "codel"

    target: float = 0.005
    interval: float = 0.100
    ecn: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "target", _canon_float("target", self.target))
        object.__setattr__(self, "interval", _canon_float("interval", self.interval))
        object.__setattr__(self, "ecn", bool(self.ecn))
        if self.target <= 0:
            raise ValueError(f"target must be positive, got {self.target}")
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (all fields, explicit)."""
        return {
            "kind": "codel",
            "target": self.target,
            "interval": self.interval,
            "ecn": self.ecn,
        }


AqmSpec = Union[DropTailSpec, REDSpec, CoDelSpec]

_AQM_CLASSES: Dict[str, type] = {
    "droptail": DropTailSpec,
    "red": REDSpec,
    "codel": CoDelSpec,
}

#: Accepted spellings for each AQM kind (case-insensitive).
_AQM_ALIASES: Dict[str, str] = {
    "droptail": "droptail",
    "drop-tail": "droptail",
    "drop_tail": "droptail",
    "tail": "droptail",
    "none": "droptail",
    "red": "red",
    "codel": "codel",
}

#: Shared default instances (immutable, safe as dataclass defaults).
DROP_TAIL = DropTailSpec()
CONSTANT = None  # assigned below once ConstantTrace exists


def aqm_from_dict(data: Mapping[str, Any]) -> AqmSpec:
    """Rebuild an AQM spec from its :meth:`to_dict` form.

    Missing fields take their defaults, so hand-written dicts like
    ``{"kind": "red", "ecn": true}`` are accepted; unknown keys are
    rejected to catch typos.
    """
    if "kind" not in data:
        raise ValueError(f"AQM dict needs a 'kind' key, got {dict(data)!r}")
    kind = str(data["kind"]).strip().lower()
    if kind not in _AQM_ALIASES:
        raise ValueError(f"aqm kind must be one of {AQM_KINDS}, got {data['kind']!r}")
    cls = _AQM_CLASSES[_AQM_ALIASES[kind]]
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    allowed = {f.name for f in fields(cls)}
    unknown = set(kwargs) - allowed
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} keys: {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})"
        )
    return cls(**kwargs)


def parse_aqm(value: Any, ecn: Optional[bool] = None) -> AqmSpec:
    """Normalize any user-facing AQM spelling into an :data:`AqmSpec`.

    Accepts ``None`` (drop-tail), a kind string (``"red"``, ``"CoDel"``,
    ``"drop-tail"``, ...), a :meth:`to_dict`-style mapping, or an
    existing spec instance.  ``ecn`` (when not ``None``) overrides the
    spec's marking flag; requesting ECN on drop-tail is an error.
    """
    if value is None:
        spec: AqmSpec = DROP_TAIL
    elif isinstance(value, (DropTailSpec, REDSpec, CoDelSpec)):
        spec = value
    elif isinstance(value, Mapping):
        spec = aqm_from_dict(value)
    elif isinstance(value, str):
        key = value.strip().lower()
        if key not in _AQM_ALIASES:
            raise ValueError(f"aqm must be one of {AQM_KINDS}, got {value!r}")
        spec = _AQM_CLASSES[_AQM_ALIASES[key]]()
    else:
        raise ValueError(f"cannot interpret {value!r} as an AQM spec")
    if ecn is not None:
        if isinstance(spec, DropTailSpec):
            if ecn:
                raise ValueError(
                    "ECN marking requires an AQM (red or codel), "
                    "not drop-tail"
                )
        elif spec.ecn != bool(ecn):
            spec = replace(spec, ecn=bool(ecn))
    return spec


# ---------------------------------------------------------------------------
# Capacity traces
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstantTrace:
    """Fixed capacity for the whole run — the default."""

    kind: ClassVar[str] = "constant"

    @property
    def is_constant(self) -> bool:
        return True

    def scale_at(self, t: float) -> float:
        """Capacity multiplier at time ``t`` (always 1)."""
        return 1.0

    def change_events(self) -> Tuple[Tuple[float, float], ...]:
        """``(time, scale)`` change points strictly after t=0 (none)."""
        return ()

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {"kind": "constant"}


@dataclass(frozen=True)
class StepsTrace:
    """A few explicit capacity steps: ``capacity ×= scale`` at each time.

    The multiplier is 1 until the first step; each step holds until the
    next.  Times must be strictly increasing and positive; scales must
    be positive and finite (a scale of 1.0 restores the base capacity).
    """

    kind: ClassVar[str] = "steps"

    steps: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        canon: List[Tuple[float, float]] = []
        for i, step in enumerate(self.steps):
            try:
                t, s = step
            except (TypeError, ValueError):
                raise ValueError(
                    f"steps[{i}] must be a (time, scale) pair, got {step!r}"
                )
            canon.append((_canon_float(f"steps[{i}] time", t),
                          _canon_float(f"steps[{i}] scale", s)))
        object.__setattr__(self, "steps", tuple(canon))
        if not self.steps:
            raise ValueError("steps trace needs at least one (time, scale) step")
        last = 0.0
        for t, s in self.steps:
            if t <= last:
                raise ValueError(
                    "step times must be positive and strictly increasing, "
                    f"got {[t for t, _ in self.steps]}"
                )
            if s <= 0:
                raise ValueError(f"step scales must be positive, got {s}")
            last = t

    @property
    def is_constant(self) -> bool:
        return False

    def scale_at(self, t: float) -> float:
        """Capacity multiplier at time ``t`` (piecewise constant)."""
        scale = 1.0
        for when, value in self.steps:
            if t < when:
                break
            scale = value
        return scale

    def change_events(self) -> Tuple[Tuple[float, float], ...]:
        """``(time, scale)`` change points strictly after t=0."""
        return self.steps

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form (steps as lists for JSON round-trips)."""
        return {"kind": "steps", "steps": [[t, s] for t, s in self.steps]}


@dataclass(frozen=True)
class SampledTrace:
    """A dense piecewise-constant trace sampled every ``period`` seconds.

    Sample ``k`` applies on ``[k·period, (k+1)·period)``; the last
    sample holds forever (wireless traces shorter than the run simply
    plateau).  This is the wire format for replaying measured capacity
    traces.
    """

    kind: ClassVar[str] = "trace"

    period: float = 1.0
    scales: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "period", _canon_float("period", self.period))
        object.__setattr__(
            self,
            "scales",
            tuple(_canon_float(f"scales[{i}]", s) for i, s in enumerate(self.scales)),
        )
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not self.scales:
            raise ValueError("sampled trace needs at least one scale sample")
        for s in self.scales:
            if s <= 0:
                raise ValueError(f"trace scales must be positive, got {s}")

    @property
    def is_constant(self) -> bool:
        return False

    def scale_at(self, t: float) -> float:
        """Capacity multiplier at time ``t`` (hold-last)."""
        index = int(t / self.period)
        if index < 0:
            index = 0
        if index >= len(self.scales):
            index = len(self.scales) - 1
        return self.scales[index]

    def change_events(self) -> Tuple[Tuple[float, float], ...]:
        """``(time, scale)`` change points strictly after t=0.

        Consecutive equal samples collapse into one hold, so the packet
        substrate schedules only genuine changes.  The t=0 sample is the
        *initial* scale (see :meth:`scale_at`), not a change.
        """
        events: List[Tuple[float, float]] = []
        previous = self.scales[0]
        for k in range(1, len(self.scales)):
            if self.scales[k] != previous:
                events.append((k * self.period, self.scales[k]))
                previous = self.scales[k]
        return tuple(events)

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form."""
        return {
            "kind": "trace",
            "period": self.period,
            "scales": list(self.scales),
        }


CapacityTrace = Union[ConstantTrace, StepsTrace, SampledTrace]

CONSTANT = ConstantTrace()


def trace_from_dict(data: Mapping[str, Any]) -> CapacityTrace:
    """Rebuild a capacity trace from its :meth:`to_dict` form."""
    if "kind" not in data:
        raise ValueError(f"trace dict needs a 'kind' key, got {dict(data)!r}")
    kind = str(data["kind"]).strip().lower()
    extra = {k: v for k, v in data.items() if k != "kind"}
    if kind == "constant":
        if extra:
            raise ValueError(f"constant trace takes no keys, got {sorted(extra)}")
        return CONSTANT
    if kind == "steps":
        unknown = set(extra) - {"steps"}
        if unknown:
            raise ValueError(f"unknown steps-trace keys: {sorted(unknown)}")
        return StepsTrace(steps=tuple(tuple(step) for step in extra.get("steps", ())))
    if kind == "trace":
        unknown = set(extra) - {"period", "scales"}
        if unknown:
            raise ValueError(f"unknown sampled-trace keys: {sorted(unknown)}")
        return SampledTrace(
            period=extra.get("period", 1.0),
            scales=tuple(extra.get("scales", ())),
        )
    raise ValueError(
        f"trace kind must be one of {TRACE_KINDS}, got {data['kind']!r}"
    )


def parse_capacity_trace(value: Any) -> CapacityTrace:
    """Normalize any user-facing trace spelling into a trace spec.

    Accepts ``None`` / ``"constant"``, the compact string DSL
    (``"steps:5@0.5,10@1.0"`` — scale 0.5 from t=5 s, back to 1.0 at
    t=10 s; ``"trace:2:1,0.5,0.8"`` — a sample every 2 s), a
    :meth:`to_dict`-style mapping, or an existing trace instance.
    """
    if value is None:
        return CONSTANT
    if isinstance(value, (ConstantTrace, StepsTrace, SampledTrace)):
        return value
    if isinstance(value, Mapping):
        return trace_from_dict(value)
    if not isinstance(value, str):
        raise ValueError(f"cannot interpret {value!r} as a capacity trace")
    text = value.strip()
    if not text or text.lower() == "constant":
        return CONSTANT
    head, _, body = text.partition(":")
    kind = head.strip().lower()
    if kind == "steps":
        steps = []
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            when, sep, scale = part.partition("@")
            if not sep:
                raise ValueError(
                    f"steps entries look like TIME@SCALE, got {part!r}"
                )
            steps.append((when, scale))
        return StepsTrace(steps=tuple(steps))
    if kind == "trace":
        period, sep, samples = body.partition(":")
        if not sep:
            raise ValueError(
                "sampled traces look like trace:PERIOD:S1,S2,..., "
                f"got {value!r}"
            )
        scales = tuple(s for s in (p.strip() for p in samples.split(",")) if s)
        return SampledTrace(period=period, scales=scales)
    raise ValueError(
        f"capacity trace must be one of {TRACE_KINDS}, got {value!r}"
    )


# ---------------------------------------------------------------------------
# Process-wide scenario overrides (CLI → internally built links)
# ---------------------------------------------------------------------------

_SCENARIO_OVERRIDES: List[Dict[str, Any]] = []


@contextmanager
def scenario_overrides(
    aqm: Any = None,
    ecn: Optional[bool] = None,
    capacity_trace: Any = None,
):
    """Default-override context for :meth:`BottleneckSpec.from_mbps_ms`.

    Figure generators (and other experiment code) build their links
    internally, so CLI flags like ``--aqm red`` cannot be threaded
    through their signatures.  Inside this context, ``from_mbps_ms``
    calls that leave ``aqm``/``capacity_trace`` unset pick up these
    values instead — applied at *construction* time, before any
    fingerprinting, so cached results stay keyed by the effective
    scenario.  Explicit arguments always win; all-None is a no-op.
    """
    _SCENARIO_OVERRIDES.append(
        {"aqm": aqm, "ecn": ecn, "capacity_trace": capacity_trace}
    )
    try:
        yield
    finally:
        _SCENARIO_OVERRIDES.pop()


# ---------------------------------------------------------------------------
# The bottleneck spec itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BottleneckSpec:
    """A single bottleneck, as in Figure 2 of the paper — plus scenario
    extensions (AQM/ECN, time-varying capacity) beyond it.

    The drop-tail/constant default is exactly the historical
    ``LinkConfig`` (which is now an alias of this class), and every
    layer treats that default as the bit-identical fast path.

    Attributes:
        capacity: Link capacity in bytes per second (the *base* capacity
            when a trace is attached).
        rtt: Base (congestion-free) round-trip propagation delay in seconds.
        buffer_bdp: Bottleneck buffer size as a multiple of the BDP.
        mss: Segment size in bytes, used when the buffer is counted in
            packets (e.g. by the Ware et al. model).
        aqm: Queue discipline at the bottleneck (default drop-tail).
        capacity_trace: Piecewise-constant capacity multiplier over time
            (default constant 1).
    """

    capacity: float
    rtt: float
    buffer_bdp: float
    mss: int = MSS_BYTES
    aqm: AqmSpec = field(default=DROP_TAIL)
    capacity_trace: CapacityTrace = field(default=CONSTANT)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        if self.rtt <= 0:
            raise ValueError(f"rtt must be positive, got {self.rtt}")
        if self.buffer_bdp <= 0:
            raise ValueError(
                f"buffer_bdp must be positive, got {self.buffer_bdp}"
            )
        if self.mss <= 0:
            raise ValueError(f"mss must be positive, got {self.mss}")
        if not isinstance(self.aqm, (DropTailSpec, REDSpec, CoDelSpec)):
            object.__setattr__(self, "aqm", parse_aqm(self.aqm))
        if not isinstance(
            self.capacity_trace, (ConstantTrace, StepsTrace, SampledTrace)
        ):
            object.__setattr__(
                self, "capacity_trace", parse_capacity_trace(self.capacity_trace)
            )

    @classmethod
    def from_mbps_ms(
        cls,
        capacity_mbps: float,
        rtt_ms: float,
        buffer_bdp: float,
        mss: int = MSS_BYTES,
        aqm: Any = None,
        ecn: Optional[bool] = None,
        capacity_trace: Any = None,
    ) -> "BottleneckSpec":
        """Build a spec from the units used in the paper's figures.

        ``aqm``/``capacity_trace`` accept any :func:`parse_aqm` /
        :func:`parse_capacity_trace` spelling; ``ecn`` (when not None)
        overrides the AQM's marking flag.  Parameters the caller leaves
        unset fall back to any active :func:`scenario_overrides`
        context, which is how CLI flags reach links that experiment
        code builds internally.
        """
        if _SCENARIO_OVERRIDES:
            override = _SCENARIO_OVERRIDES[-1]
            if aqm is None:
                aqm = override["aqm"]
                if ecn is None:
                    ecn = override["ecn"]
            if capacity_trace is None:
                capacity_trace = override["capacity_trace"]
        return cls(
            capacity=mbps_to_bytes_per_sec(capacity_mbps),
            rtt=ms_to_s(rtt_ms),
            buffer_bdp=buffer_bdp,
            mss=mss,
            aqm=parse_aqm(aqm, ecn=ecn),
            capacity_trace=parse_capacity_trace(capacity_trace),
        )

    # -- scenario classification --------------------------------------

    @property
    def is_default_scenario(self) -> bool:
        """True for the drop-tail/constant special case (the fast path)."""
        return (
            isinstance(self.aqm, DropTailSpec)
            and self.capacity_trace.is_constant
        )

    @property
    def scenario_family(self) -> str:
        """Short label for grouping results (``droptail``/``red``/...)."""
        return self.aqm.kind

    # -- derived quantities (unchanged from the legacy LinkConfig) ----

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product ``C × RTT`` in bytes."""
        return self.capacity * self.rtt

    @property
    def bdp_packets(self) -> float:
        """BDP in MSS-sized packets."""
        return self.bdp_bytes / self.mss

    @property
    def buffer_bytes(self) -> float:
        """Absolute buffer size ``B`` in bytes."""
        return self.buffer_bdp * self.bdp_bytes

    @property
    def buffer_packets(self) -> float:
        """Buffer size in MSS-sized packets (``q`` in Ware et al.)."""
        return self.buffer_bytes / self.mss

    @property
    def capacity_mbps(self) -> float:
        """Link capacity in Mbps, for reporting."""
        return self.capacity * 8.0 / 1e6

    @property
    def rtt_ms(self) -> float:
        """Base RTT in milliseconds, for reporting."""
        return self.rtt * 1e3

    @property
    def max_queuing_delay(self) -> float:
        """Worst-case queuing delay ``B / C`` in seconds (full buffer)."""
        return self.buffer_bytes / self.capacity

    # -- sweeps -------------------------------------------------------

    def with_buffer_bdp(self, buffer_bdp: float) -> "BottleneckSpec":
        """Return a copy with a different buffer depth (for sweeps)."""
        return replace(self, buffer_bdp=buffer_bdp)

    def with_rtt(self, rtt: float) -> "BottleneckSpec":
        """Return a copy with a different base RTT in seconds."""
        return replace(self, rtt=rtt)

    def with_aqm(self, aqm: Any, ecn: Optional[bool] = None) -> "BottleneckSpec":
        """Return a copy with a different AQM (any :func:`parse_aqm` form)."""
        return replace(self, aqm=parse_aqm(aqm, ecn=ecn))

    def with_capacity_trace(self, trace: Any) -> "BottleneckSpec":
        """Return a copy with a different capacity trace (any spelling)."""
        return replace(self, capacity_trace=parse_capacity_trace(trace))

    # -- canonical wire form ------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON form — the scenario's fingerprint identity.

        Every dataclass field appears, always, with sub-specs in their
        own canonical form.  ``buffer_bdp`` is serialized exactly as
        stored (no float coercion) so integer-authored campaign axes
        keep their historical fingerprints.
        """
        return {
            "capacity": self.capacity,
            "rtt": self.rtt,
            "buffer_bdp": self.buffer_bdp,
            "mss": self.mss,
            "aqm": self.aqm.to_dict(),
            "capacity_trace": self.capacity_trace.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BottleneckSpec":
        """Rebuild a spec from :meth:`to_dict` output (exact floats).

        ``aqm``/``capacity_trace``/``mss`` may be omitted (defaults
        apply); unknown keys are rejected.
        """
        allowed = {"capacity", "rtt", "buffer_bdp", "mss", "aqm", "capacity_trace"}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown BottleneckSpec keys: {sorted(unknown)}")
        for key in ("capacity", "rtt", "buffer_bdp"):
            if key not in data:
                raise ValueError(f"BottleneckSpec dict needs {key!r}")
        return cls(
            capacity=data["capacity"],
            rtt=data["rtt"],
            buffer_bdp=data["buffer_bdp"],
            mss=data.get("mss", MSS_BYTES),
            aqm=parse_aqm(data.get("aqm")),
            capacity_trace=parse_capacity_trace(data.get("capacity_trace")),
        )

    def describe(self) -> str:
        """One-line human-readable summary used by the CLI."""
        text = (
            f"{self.capacity_mbps:g} Mbps, {self.rtt_ms:g} ms RTT, "
            f"{self.buffer_bdp:g} BDP buffer "
            f"({self.buffer_packets:.0f} packets)"
        )
        if not isinstance(self.aqm, DropTailSpec):
            ecn = "+ecn" if self.aqm.ecn else ""
            text += f", {self.aqm.kind}{ecn} AQM"
        if not self.capacity_trace.is_constant:
            text += f", {self.capacity_trace.kind} capacity trace"
        return text


def expand_mix(
    mix: Sequence[Tuple[str, int]],
    rtts: Optional[Dict[str, float]] = None,
) -> List[Tuple[str, Optional[float]]]:
    """Expand a ``(cc, count)`` mix into per-flow ``(cc, rtt)`` pairs.

    The single expansion both simulator backends (and the execution
    engine's scenario fingerprints) agree on: CCA names lowercased,
    order preserved, ``rtts`` overrides applied per class (None = use
    the link's base RTT).
    """
    expanded: List[Tuple[str, Optional[float]]] = []
    for cc, count in mix:
        key = cc.lower()
        rtt = rtts.get(key) if rtts is not None else None
        expanded.extend((key, rtt) for _ in range(count))
    return expanded
