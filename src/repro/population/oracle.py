"""Tiered payoff oracle for the adoption dynamics loop.

The dynamics only ever ask one question: *given this cell's current
integer strategy mix, what per-flow throughput does each strategy
earn?*  Answering it with a simulation for every (cell, tick) would
make million-flow horizons infeasible, so the oracle is tiered:

* **Tier 0 — analytical.**  The paper's closed-form multi-flow model
  (:func:`repro.core.multi_flow.predict_multi_flow`) evaluated at the
  quantized mix, with the payoff of an *empty* strategy class taken at
  the single-deviant mix ``(n-1, 1)`` — exactly the deviation payoff
  the Nash condition (Eq. 25) reasons about.  Results are memoized
  twice: an in-process dict for the tick loop, and the execution
  engine's content-addressed fingerprint cache
  (``Engine.cached_payload("population_tier0", ...)``) so trajectories
  are warm across processes and campaign resumes.
* **Tier 1 — batched fluid-vec simulation.**  For regions where the
  model is known to be wrong (see below) — or for strategy pairs the
  model does not cover at all — payoffs come from
  ``backend="fluid-vec"`` :class:`~repro.exec.fingerprint.ScenarioPoint`
  evaluations.  All escalated cells of a tick are submitted as *one*
  ``Engine.run_points`` batch, so the engine's chunked dispatch pools
  them into a single vectorized simulation call.

Which tier a region gets is decided once per region by *calibration*:
the model and one engine-cached fluid-vec simulation are compared at a
balanced mix, and the relative disagreement (normalized by the cell's
fair share ``C/N``) is recorded in an :class:`ErrorMap` artifact.
Regions whose error exceeds ``error_threshold`` escalate to tier 1.
The classic case is the shallow-buffer regime (``buffer <= 1 BDP``)
where the model predicts total CUBIC starvation but the fluid substrate
still grants CUBIC a trickle.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.multi_flow import predict_multi_flow
from repro.exec.fingerprint import ScenarioPoint, link_params
from repro.population.state import PopulationState

__all__ = ["BOUNDS", "ErrorMap", "TieredOracle"]

#: Which side of the model's predicted region tier 0 reports.
BOUNDS = ("sync", "desync", "mid")

#: Default calibration threshold: escalate a region to tier 1 when the
#: model disagrees with the fluid substrate by more than this fraction
#: of the cell's fair share.
DEFAULT_ERROR_THRESHOLD = 0.10


class ErrorMap:
    """Per-region record of analytical-vs-fluid disagreement.

    Keys are :meth:`repro.population.state.CellSpec.region_key` strings;
    entries record the calibration mix, both payoff vectors, the
    relative error, and the tier the region was assigned.  The map is a
    JSON artifact (``error_map.json``) so campaigns can merge the
    regions their units touched into one study-wide picture.
    """

    def __init__(
        self, entries: Optional[Dict[str, Dict[str, Any]]] = None
    ) -> None:
        self.entries: Dict[str, Dict[str, Any]] = dict(entries or {})

    def record(self, key: str, entry: Dict[str, Any]) -> None:
        self.entries[key] = entry

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self.entries.get(key)

    def tier_for(self, key: str) -> Optional[int]:
        entry = self.entries.get(key)
        return None if entry is None else int(entry["tier"])

    def escalated(self) -> List[str]:
        """Region keys that were routed to tier 1."""
        return sorted(
            key
            for key, entry in self.entries.items()
            if entry["tier"] == 1
        )

    def max_rel_error(self) -> float:
        errors = [
            entry["rel_error"]
            for entry in self.entries.values()
            if entry.get("rel_error") is not None
        ]
        return max(errors) if errors else 0.0

    def merge(self, other: "ErrorMap") -> None:
        """Absorb another map's entries (theirs win on collision)."""
        self.entries.update(other.entries)

    def to_dict(self) -> Dict[str, Any]:
        return {"regions": dict(self.entries)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ErrorMap":
        return cls(dict(data.get("regions", {})))

    def save(self, path: str) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "ErrorMap":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


class TieredOracle:
    """Per-flow payoff oracle with analytical/simulated tiers.

    Args:
        engine: Execution engine for simulation points and tier-0
            memoization; None resolves the process default.
        error_threshold: Calibration escalation threshold (fraction of
            the cell's fair share).
        bound: Which model bound tier 0 reports — ``"sync"``,
            ``"desync"``, or ``"mid"`` (their average).
        duration: Simulated seconds per tier-1/calibration point.
        trials: Trials per simulation point.
        seed: Base seed for simulation points (fixed across ticks so
            identical mixes share one cached result).
        obs: Telemetry bus for the ``population.oracle.*`` counters;
            None resolves the process default at each call.
        error_map: Start from (and keep recording into) an existing
            error map.
        force_tier: Pin every region to tier 0 or 1, skipping
            calibration entirely (None = calibrate).
    """

    def __init__(
        self,
        engine: Any = None,
        error_threshold: float = DEFAULT_ERROR_THRESHOLD,
        bound: str = "sync",
        duration: float = 30.0,
        trials: int = 1,
        seed: int = 0,
        obs: Any = None,
        error_map: Optional[ErrorMap] = None,
        force_tier: Optional[int] = None,
    ) -> None:
        if bound not in BOUNDS:
            raise ValueError(
                f"bound must be one of {BOUNDS}, got {bound!r}"
            )
        if error_threshold <= 0:
            raise ValueError(
                f"error_threshold must be positive, got {error_threshold}"
            )
        if force_tier not in (None, 0, 1):
            raise ValueError(
                f"force_tier must be None, 0, or 1, got {force_tier!r}"
            )
        self.engine = engine
        self.error_threshold = error_threshold
        self.bound = bound
        self.duration = duration
        self.trials = trials
        self.seed = seed
        self.error_map = error_map if error_map is not None else ErrorMap()
        self.force_tier = force_tier
        self._obs = obs
        #: region key -> assigned tier (0 or 1).
        self._tiers: Dict[str, int] = {}
        #: (region, strategies, counts, bound) -> payoff vector.
        self._memo: Dict[Tuple, np.ndarray] = {}
        self.queries = 0
        self.tier0_queries = 0
        self.tier1_queries = 0
        self.memo_hits = 0
        self.calibrations = 0
        self.sim_points = 0

    # -- bookkeeping -------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Cumulative oracle accounting (independent of telemetry)."""
        return {
            "queries": self.queries,
            "tier0": self.tier0_queries,
            "tier1": self.tier1_queries,
            "memo_hits": self.memo_hits,
            "calibrations": self.calibrations,
            "sim_points": self.sim_points,
        }

    def _resolve_obs(self) -> Any:
        from repro.obs.bus import resolve as resolve_obs

        return resolve_obs(self._obs)

    def _resolve_engine(self) -> Any:
        from repro.exec.engine import resolve as resolve_engine

        return resolve_engine(self.engine)

    # -- model (tier 0) ----------------------------------------------------

    def _select(self, prediction: Any, cc: str) -> float:
        if self.bound == "sync":
            pair = (
                prediction.per_flow_cubic_sync,
                prediction.per_flow_bbr_sync,
            )
        elif self.bound == "desync":
            pair = (
                prediction.per_flow_cubic_desync,
                prediction.per_flow_bbr_desync,
            )
        else:
            pair = (
                0.5
                * (
                    prediction.per_flow_cubic_sync
                    + prediction.per_flow_cubic_desync
                ),
                0.5
                * (
                    prediction.per_flow_bbr_sync
                    + prediction.per_flow_bbr_desync
                ),
            )
        return pair[0] if cc == "cubic" else pair[1]

    def _model_pair(self, link: Any, n_cubic: int, n_bbr: int) -> Tuple:
        """(cubic payoff, bbr payoff) with empty classes evaluated at
        the single-deviant mix — the Eq. 25 deviation payoff."""
        n = n_cubic + n_bbr
        if n_cubic > 0:
            cubic = self._select(
                predict_multi_flow(link, n_cubic, n_bbr), "cubic"
            )
        else:
            cubic = self._select(
                predict_multi_flow(link, 1, n - 1), "cubic"
            )
        if n_bbr > 0:
            bbr = self._select(
                predict_multi_flow(link, n_cubic, n_bbr), "bbr"
            )
        else:
            bbr = self._select(
                predict_multi_flow(link, n - 1, 1), "bbr"
            )
        return cubic, bbr

    def _model_payoffs(
        self, link: Any, counts: Tuple[int, ...], strategies: Tuple
    ) -> List[float]:
        by_name = dict(zip(strategies, counts))
        cubic, bbr = self._model_pair(
            link, by_name["cubic"], by_name["bbr"]
        )
        pair = {"cubic": cubic, "bbr": bbr}
        return [pair[s] for s in strategies]

    def _tier0(
        self,
        cell: Any,
        counts: Tuple[int, ...],
        strategies: Tuple[str, ...],
        obs: Any,
    ) -> np.ndarray:
        key = (cell.region_key(), strategies, counts, self.bound)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            if obs is not None:
                obs.count("population.oracle.memo_hits")
            return cached
        params = {
            "link": link_params(cell.link),
            "counts": [int(c) for c in counts],
            "strategies": list(strategies),
            "bound": self.bound,
        }
        payload = self._resolve_engine().cached_payload(
            "population_tier0",
            params,
            lambda: {
                "payoffs": self._model_payoffs(
                    cell.link, counts, strategies
                )
            },
        )
        value = np.asarray(payload["payoffs"], dtype=np.float64)
        self._memo[key] = value
        return value

    # -- simulation (tier 1) -----------------------------------------------

    def _point(
        self,
        cell: Any,
        counts: Tuple[int, ...],
        strategies: Tuple[str, ...],
    ) -> ScenarioPoint:
        return ScenarioPoint(
            link=cell.link,
            mix=tuple(zip(strategies, counts)),
            duration=self.duration,
            backend="fluid-vec",
            trials=self.trials,
            seed=self.seed,
        )

    def _tier1_points(
        self,
        cell: Any,
        row: np.ndarray,
        strategies: Tuple[str, ...],
    ) -> Tuple[List[ScenarioPoint], List[Tuple[int, int]]]:
        """Points needed for one cell, plus (strategy, point) slots.

        The occupied strategies all read from the main-mix point; each
        *empty* strategy gets a deviant point where one flow defects to
        it from the most-populated class.
        """
        counts = tuple(int(c) for c in row)
        points = [self._point(cell, counts, strategies)]
        slots: List[Tuple[int, int]] = []
        for s, count in enumerate(counts):
            if count > 0:
                slots.append((s, 0))
                continue
            deviant = list(counts)
            deviant[int(np.argmax(row))] -= 1
            deviant[s] += 1
            points.append(self._point(cell, tuple(deviant), strategies))
            slots.append((s, len(points) - 1))
        return points, slots

    # -- calibration -------------------------------------------------------

    def _region(self, cell: Any) -> str:
        return cell.region_key()

    def _ensure_calibrated(self, state: PopulationState, obs: Any) -> None:
        """Assign a tier to every region the state touches."""
        if self.force_tier is not None:
            for cell in state.cells:
                self._tiers.setdefault(
                    self._region(cell), self.force_tier
                )
            return
        modeled = set(state.strategies) == {"cubic", "bbr"}
        needed: List[Tuple[str, Any]] = []
        seen = set()
        for cell in state.cells:
            key = self._region(cell)
            if key in self._tiers or key in seen:
                continue
            if not modeled:
                # The analytical model only covers CUBIC vs BBR; any
                # other strategy pair always simulates.
                self._tiers[key] = 1
                self.error_map.record(
                    key,
                    {
                        "tier": 1,
                        "forced": True,
                        "rel_error": None,
                        "reason": (
                            "strategies "
                            f"{list(state.strategies)} not covered by "
                            "the analytical model"
                        ),
                    },
                )
                continue
            seen.add(key)
            needed.append((key, cell))
        if not needed:
            return
        plans = []
        points = []
        for key, cell in needed:
            n = cell.n_flows
            n_bbr = max(1, n // 2)
            counts = tuple(
                n - n_bbr if s == "cubic" else n_bbr
                for s in state.strategies
            )
            plans.append((key, cell, counts))
            points.append(self._point(cell, counts, state.strategies))
        results = self._resolve_engine().run_points(points)
        self.sim_points += len(points)
        for (key, cell, counts), result in zip(plans, results):
            model = self._model_payoffs(
                cell.link, counts, state.strategies
            )
            simulated = [
                result.per_flow.get(s, 0.0) for s in state.strategies
            ]
            fair = cell.fair_share
            rel_error = max(
                abs(m - sim) / fair
                for m, sim, count in zip(model, simulated, counts)
                if count > 0
            )
            tier = 1 if rel_error > self.error_threshold else 0
            self._tiers[key] = tier
            self.calibrations += 1
            if obs is not None:
                obs.count("population.oracle.calibrations")
            self.error_map.record(
                key,
                {
                    "tier": tier,
                    "rel_error": rel_error,
                    "threshold": self.error_threshold,
                    "bound": self.bound,
                    "link": link_params(cell.link),
                    "n_flows": cell.n_flows,
                    "mix": {
                        s: int(c)
                        for s, c in zip(state.strategies, counts)
                    },
                    "model": dict(zip(state.strategies, model)),
                    "simulated": dict(
                        zip(state.strategies, simulated)
                    ),
                    "fair_share": fair,
                    "duration": self.duration,
                    "trials": self.trials,
                    "seed": self.seed,
                },
            )

    # -- the oracle surface -------------------------------------------------

    def payoffs(self, state: PopulationState) -> np.ndarray:
        """Per-flow payoffs (bytes/s) for every (cell, strategy).

        One call per tick: tier-0 cells answer from the analytical
        model (memoized), tier-1 cells pool their scenario points into
        a single batched ``Engine.run_points`` submission.
        """
        obs = self._resolve_obs()
        self._ensure_calibrated(state, obs)
        counts = state.counts()
        out = np.zeros(
            (state.n_cells, state.n_strategies), dtype=np.float64
        )
        escalated: List[Tuple[int, List[ScenarioPoint], List]] = []
        for i, cell in enumerate(state.cells):
            self.queries += 1
            if obs is not None:
                obs.count("population.oracle.queries")
            if self._tiers[self._region(cell)] == 0:
                self.tier0_queries += 1
                if obs is not None:
                    obs.count("population.oracle.tier0")
                out[i] = self._tier0(
                    cell,
                    tuple(int(c) for c in counts[i]),
                    state.strategies,
                    obs,
                )
            else:
                self.tier1_queries += 1
                if obs is not None:
                    obs.count("population.oracle.tier1")
                points, slots = self._tier1_points(
                    cell, counts[i], state.strategies
                )
                escalated.append((i, points, slots))
        if escalated:
            batch: List[ScenarioPoint] = []
            offsets = []
            for i, points, slots in escalated:
                offsets.append(len(batch))
                batch.extend(points)
            results = self._resolve_engine().run_points(batch)
            self.sim_points += len(batch)
            if obs is not None:
                obs.count("population.oracle.sim_points", len(batch))
            for (i, points, slots), offset in zip(escalated, offsets):
                for s, point_index in slots:
                    result = results[offset + point_index]
                    out[i, s] = result.per_flow.get(
                        state.strategies[s], 0.0
                    )
        return out
