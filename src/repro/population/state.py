"""Population state for internet-scale CCA adoption dynamics.

The population is *not* a list of flow objects: it is a small set of
heterogeneous *cells* (RTT class x link/bottleneck class), each holding
``n_flows`` flows — potentially millions — represented only by a numpy
share vector over the available strategies (CCAs).  Evolving a state is
therefore O(cells x strategies) per tick regardless of how many flows
each cell stands for; the flow count matters only when continuous
shares are quantized back into integer flow counts for the payoff
oracle (:mod:`repro.population.oracle`).

Quantization uses largest-remainder rounding with a deterministic
tie-break (lowest strategy index first), so a given share vector always
maps to the same integer mix — a prerequisite for the cache-identity
and seeded-trajectory reproducibility guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.util.config import LinkConfig

__all__ = [
    "CellSpec",
    "PopulationState",
    "DEFAULT_STRATEGIES",
    "quantize_counts",
]

#: The paper's adoption game is CUBIC vs BBR; order is (incumbent,
#: challenger) so ``shares[:, 1]`` is always the challenger share.
DEFAULT_STRATEGIES = ("cubic", "bbr")

#: Simplex tolerance for share vectors (rows must sum to 1 within this).
SIMPLEX_TOL = 1e-9


@dataclass(frozen=True)
class CellSpec:
    """One homogeneous population cell: a bottleneck class x RTT class.

    All ``n_flows`` flows of a cell share the same bottleneck
    (:class:`LinkConfig`, which carries the RTT class) and differ only
    in which strategy (CCA) they currently play.
    """

    link: LinkConfig
    n_flows: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError(
                f"n_flows must be >= 1, got {self.n_flows}"
            )

    @property
    def fair_share(self) -> float:
        """Equal-split per-flow bandwidth ``C / N`` in bytes/second."""
        return self.link.capacity / self.n_flows

    def region_key(self) -> str:
        """Stable identity of this cell's model-validity region.

        Keys the error map (:class:`repro.population.oracle.ErrorMap`):
        cells with identical link parameters and flow counts share one
        calibration entry.
        """
        link = self.link
        return (
            f"{link.capacity_mbps:g}mbps"
            f"|{link.rtt_ms:g}ms"
            f"|{link.buffer_bdp:g}bdp"
            f"|n{self.n_flows}"
        )

    def describe(self) -> str:
        name = self.label or self.region_key()
        return f"{name}: {self.n_flows} flows on {self.link.describe()}"


def quantize_counts(shares: np.ndarray, total: int) -> np.ndarray:
    """Largest-remainder rounding of a share vector to integer counts.

    Floors ``shares * total`` and hands the leftover flows to the
    entries with the largest fractional parts; ties break toward the
    lowest index (stable argsort), so the mapping is deterministic.
    The result always sums to ``total`` exactly.
    """
    raw = np.asarray(shares, dtype=np.float64) * total
    base = np.floor(raw).astype(np.int64)
    remainder = int(total - base.sum())
    if remainder > 0:
        frac = raw - base
        order = np.argsort(-frac, kind="stable")
        base[order[:remainder]] += 1
    return base


class PopulationState:
    """Share vectors over strategies for every population cell.

    ``shares`` is a ``(n_cells, n_strategies)`` float64 array whose rows
    lie on the probability simplex.  States are immutable in spirit:
    dynamics build a new state per tick via :meth:`with_shares`.
    """

    def __init__(
        self,
        cells: Sequence[CellSpec],
        shares: np.ndarray,
        strategies: Tuple[str, ...] = DEFAULT_STRATEGIES,
    ) -> None:
        if not cells:
            raise ValueError("at least one population cell is required")
        if len(strategies) < 2:
            raise ValueError(
                f"need >= 2 strategies, got {strategies!r}"
            )
        if len(set(strategies)) != len(strategies):
            raise ValueError(f"duplicate strategies in {strategies!r}")
        array = np.array(shares, dtype=np.float64)
        if array.shape != (len(cells), len(strategies)):
            raise ValueError(
                f"shares shape {array.shape} does not match "
                f"({len(cells)}, {len(strategies)})"
            )
        if not np.isfinite(array).all():
            raise ValueError("shares must be finite")
        if (array < -SIMPLEX_TOL).any():
            raise ValueError("shares must be non-negative")
        sums = array.sum(axis=1)
        if np.abs(sums - 1.0).max() > 1e-6:
            raise ValueError(
                f"share rows must sum to 1, got sums {sums.tolist()}"
            )
        # Renormalize exactly so downstream quantization sees clean rows.
        array = np.clip(array, 0.0, None)
        array /= array.sum(axis=1, keepdims=True)
        self.cells = tuple(cells)
        self.strategies = tuple(s.lower() for s in strategies)
        self.shares = array

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_share(
        cls,
        cells: Sequence[CellSpec],
        challenger_share: float,
        strategies: Tuple[str, ...] = DEFAULT_STRATEGIES,
    ) -> "PopulationState":
        """Every cell starts with the same challenger (last-strategy)
        share; the remainder splits evenly over the other strategies."""
        if not 0.0 <= challenger_share <= 1.0:
            raise ValueError(
                "challenger_share must lie in [0, 1], got "
                f"{challenger_share}"
            )
        k = len(strategies)
        row = np.full(k, (1.0 - challenger_share) / (k - 1))
        row[-1] = challenger_share
        shares = np.tile(row, (len(cells), 1))
        return cls(cells, shares, strategies)

    @classmethod
    def uniform(
        cls,
        cells: Sequence[CellSpec],
        strategies: Tuple[str, ...] = DEFAULT_STRATEGIES,
    ) -> "PopulationState":
        shares = np.full(
            (len(cells), len(strategies)), 1.0 / len(strategies)
        )
        return cls(cells, shares, strategies)

    # -- derived views -----------------------------------------------------

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_strategies(self) -> int:
        return len(self.strategies)

    def total_flows(self) -> int:
        return sum(cell.n_flows for cell in self.cells)

    def counts(self) -> np.ndarray:
        """Integer flow counts per (cell, strategy), rows summing to
        each cell's ``n_flows`` (largest-remainder quantization)."""
        rows = [
            quantize_counts(self.shares[i], cell.n_flows)
            for i, cell in enumerate(self.cells)
        ]
        return np.stack(rows)

    def share_of(self, strategy: str) -> float:
        """Flow-weighted population-wide share of ``strategy``."""
        idx = self.strategies.index(strategy.lower())
        weights = np.array(
            [cell.n_flows for cell in self.cells], dtype=np.float64
        )
        return float(
            (self.shares[:, idx] * weights).sum() / weights.sum()
        )

    def with_shares(self, shares: np.ndarray) -> "PopulationState":
        """A new state over the same cells/strategies."""
        return PopulationState(self.cells, shares, self.strategies)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot (exact floats round-trip)."""
        cells: List[Dict[str, Any]] = []
        for cell in self.cells:
            cells.append(
                {
                    "capacity_mbps": cell.link.capacity_mbps,
                    "rtt_ms": cell.link.rtt_ms,
                    "buffer_bdp": cell.link.buffer_bdp,
                    "n_flows": cell.n_flows,
                    "label": cell.label,
                }
            )
        return {
            "strategies": list(self.strategies),
            "cells": cells,
            "shares": [list(row) for row in self.shares.tolist()],
        }
