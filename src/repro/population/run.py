"""Seeded adoption-trajectory runner.

One :func:`run_population` call evolves a :class:`PopulationState` for
a fixed number of ticks under a chosen dynamics rule, asking the tiered
oracle for payoffs once per tick, and returns the full trajectory plus
the static NE prediction for every cell so convergence (or cycling) can
be judged against the paper's Eq. 25.

Determinism contract: the only randomness is the single
``numpy.random.default_rng(seed)`` generator owned by this loop and
consumed exclusively by the dynamics step (the sampled logit rule);
the oracle is deterministic given its seed.  Trajectories are therefore
bit-identical across cold/warm caches and across engine ``jobs``
settings — the engine returns results in submission order and the
fluid-vec substrate is batch-invariant.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.population.dynamics import DynamicsConfig, step_shares
from repro.population.oracle import ErrorMap, TieredOracle
from repro.population.state import (
    DEFAULT_STRATEGIES,
    CellSpec,
    PopulationState,
)

__all__ = ["PopulationResult", "run_population"]

#: Convergence is declared when every per-tick share delta over the
#: last ``CONVERGENCE_WINDOW`` ticks stays below the tolerance.
CONVERGENCE_WINDOW = 10


def _span(tracer: Any, name: str, **args: Any):
    if tracer is None:
        return nullcontext()
    return tracer.span(name, cat="population", **args)


@dataclass
class PopulationResult:
    """Everything one adoption run produced.

    ``trajectory[t]`` holds the state *before* tick ``t``'s update and
    the payoffs evaluated at that state; ``final_shares`` is the state
    after the last update.  ``ne[i]`` is the per-cell static prediction
    (None when the strategy pair is outside the model's CUBIC/BBR
    vocabulary).
    """

    cells: Tuple[CellSpec, ...]
    strategies: Tuple[str, ...]
    dynamics: Dict[str, Any]
    seed: int
    ticks: int
    init_share: float
    trajectory: List[Dict[str, Any]]
    final_shares: List[List[float]]
    converged: bool
    max_recent_delta: float
    ne: List[Optional[Dict[str, Any]]]
    oracle: Dict[str, int]
    error_map: ErrorMap = field(default_factory=ErrorMap)

    def final_state(self) -> PopulationState:
        return PopulationState(
            self.cells, np.array(self.final_shares), self.strategies
        )

    def final_share(self, strategy: str) -> float:
        """Flow-weighted final share of ``strategy``."""
        return self.final_state().share_of(strategy)

    def cell_labels(self) -> List[str]:
        return [
            cell.label or f"cell{i}"
            for i, cell in enumerate(self.cells)
        ]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable summary (exact floats round-trip)."""
        return {
            "strategies": list(self.strategies),
            "cells": [
                {
                    "capacity_mbps": cell.link.capacity_mbps,
                    "rtt_ms": cell.link.rtt_ms,
                    "buffer_bdp": cell.link.buffer_bdp,
                    "n_flows": cell.n_flows,
                    "label": cell.label,
                }
                for cell in self.cells
            ],
            "dynamics": dict(self.dynamics),
            "seed": self.seed,
            "ticks": self.ticks,
            "init_share": self.init_share,
            "final_shares": [list(row) for row in self.final_shares],
            "final_share": {
                s: self.final_share(s) for s in self.strategies
            },
            "converged": self.converged,
            "max_recent_delta": self.max_recent_delta,
            "ne": self.ne,
            "oracle": dict(self.oracle),
            "error_map": self.error_map.to_dict(),
        }


def _cell_ne(
    cell: CellSpec, strategies: Tuple[str, ...]
) -> Optional[Dict[str, Any]]:
    if set(strategies) != {"cubic", "bbr"}:
        return None
    from repro.core.nash import predict_nash

    prediction = predict_nash(cell.link, cell.n_flows)
    n = cell.n_flows
    return {
        "n_bbr_sync": prediction.n_bbr_sync,
        "n_bbr_desync": prediction.n_bbr_desync,
        "share_sync": prediction.n_bbr_sync / n,
        "share_desync": prediction.n_bbr_desync / n,
        "in_validity_range": prediction.in_validity_range,
    }


def run_population(
    cells: Sequence[CellSpec],
    dynamics: Optional[DynamicsConfig] = None,
    ticks: int = 80,
    seed: int = 0,
    strategies: Tuple[str, ...] = DEFAULT_STRATEGIES,
    init_share: float = 0.1,
    oracle: Optional[TieredOracle] = None,
    engine: Any = None,
    obs: Any = None,
    check: Any = None,
    tracer: Any = None,
    progress: Optional[Callable[[int, int], None]] = None,
    convergence_tol: float = 0.005,
) -> PopulationResult:
    """Evolve a population of CCA-choosing flows for ``ticks`` steps.

    Args:
        cells: The heterogeneous population cells.
        dynamics: Update rule configuration (default: replicator).
        ticks: Number of update steps.
        seed: Trajectory seed (consumed only by the dynamics step).
        strategies: Strategy (CCA) vocabulary, challenger last.
        init_share: Initial challenger share in every cell.
        oracle: Payoff oracle; built from ``engine`` when omitted.
        engine: Execution engine for a default-built oracle.
        obs: Telemetry bus (None resolves the process default).
        check: Invariant checker (None resolves the process default).
        tracer: Span tracer (None resolves the process default).
        progress: Optional ``(ticks done, ticks total)`` callback.
        convergence_tol: Max per-tick share delta, over the trailing
            :data:`CONVERGENCE_WINDOW` ticks, to declare convergence.
    """
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    from repro.check import resolve as resolve_check
    from repro.obs.bus import resolve as resolve_obs
    from repro.obs.trace import resolve as resolve_tracer

    obs = resolve_obs(obs)
    check = resolve_check(check)
    tracer = resolve_tracer(tracer)
    config = dynamics if dynamics is not None else DynamicsConfig()
    if oracle is None:
        oracle = TieredOracle(engine=engine, obs=obs)

    state = PopulationState.from_share(cells, init_share, strategies)
    rng = np.random.default_rng(seed)
    scales = np.array(
        [cell.fair_share for cell in state.cells], dtype=np.float64
    )
    trajectory: List[Dict[str, Any]] = []
    deltas: List[float] = []
    with _span(
        tracer,
        "population",
        ticks=ticks,
        cells=state.n_cells,
        dynamics=config.name,
    ):
        for tick in range(ticks):
            with _span(tracer, "population_tick", tick=tick):
                payoffs = oracle.payoffs(state)
            if obs is not None:
                obs.count("population.ticks")
            if check is not None:
                check.population_state(tick, state.shares)
                stats = oracle.stats
                check.population_oracle(
                    tick,
                    queries=stats["queries"],
                    tier0=stats["tier0"],
                    tier1=stats["tier1"],
                )
            nxt = step_shares(
                config, state.shares, payoffs, scales, rng
            )
            trajectory.append(
                {
                    "tick": tick,
                    "shares": [
                        list(row) for row in state.shares.tolist()
                    ],
                    "payoffs": [
                        list(row) for row in payoffs.tolist()
                    ],
                }
            )
            deltas.append(float(np.abs(nxt - state.shares).max()))
            state = state.with_shares(nxt)
            if progress is not None:
                progress(tick + 1, ticks)
    if check is not None:
        check.population_state(ticks, state.shares)
    window = deltas[-CONVERGENCE_WINDOW:]
    converged = (
        len(deltas) >= CONVERGENCE_WINDOW
        and max(window) < convergence_tol
    )
    return PopulationResult(
        cells=state.cells,
        strategies=state.strategies,
        dynamics=config.to_dict(),
        seed=seed,
        ticks=ticks,
        init_share=init_share,
        trajectory=trajectory,
        final_shares=[list(row) for row in state.shares.tolist()],
        converged=converged,
        max_recent_delta=max(window) if window else 0.0,
        ne=[_cell_ne(cell, state.strategies) for cell in state.cells],
        oracle=oracle.stats,
        error_map=oracle.error_map,
    )
