"""Pluggable update dynamics for the CCA adoption game.

Each dynamics rule maps ``(shares, payoffs) -> next shares`` one tick at
a time, vectorized over all cells at once.  Three standard rules from
evolutionary game theory are provided:

* ``replicator`` — discrete-time replicator dynamics: a strategy's
  share grows in proportion to its payoff advantage over the cell mean,
  damped by a step size.  Interior rest points are exactly the mixed
  Nash equilibria of the payoff function, which is what lets the
  trajectory's fixed point be compared against
  :func:`repro.core.nash.predict_nash`.
* ``best-response`` — a fraction ``1 - inertia`` of each cell jumps to
  the current best response; the rest stay put.  Converges fast, can
  overshoot and cycle around interior equilibria when inertia is low.
* ``logit`` — noisy choice: per tick a fraction ``epsilon`` of flows
  reconsiders.  Without an RNG the reconsidering mass splits by the
  logit (softmax) choice rule at the configured temperature; with an
  RNG the choice is a sampled Gumbel-perturbed best response (an
  aggregate taste shock per cell per tick), which makes trajectories
  genuinely stochastic while staying deterministic per seed.

A ``mutation`` rate mixes a uniform exploration term into every rule,
keeping all strategies alive (the standard replicator-mutator /
ergodicity device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

__all__ = ["DYNAMICS", "DynamicsConfig", "step_shares"]

#: Registered dynamics rule names (the CLI/campaign vocabulary).
DYNAMICS = ("replicator", "best-response", "logit")


@dataclass(frozen=True)
class DynamicsConfig:
    """Parameters of one dynamics rule.

    Attributes:
        name: One of :data:`DYNAMICS`.
        step: Replicator step size (damping) in (0, 1].
        inertia: Best-response stay-put fraction in [0, 1).
        epsilon: Logit reconsideration probability in (0, 1].
        temperature: Logit choice temperature as a *fraction of the
            cell's fair share* ``C/N`` — payoff differences much larger
            than ``temperature * C/N`` make the choice nearly
            deterministic.
        mutation: Uniform exploration rate in [0, 1).
    """

    name: str = "replicator"
    step: float = 0.5
    inertia: float = 0.5
    epsilon: float = 0.2
    temperature: float = 0.05
    mutation: float = 0.0

    def __post_init__(self) -> None:
        if self.name not in DYNAMICS:
            raise ValueError(
                f"dynamics must be one of {DYNAMICS}, got {self.name!r}"
            )
        if not 0.0 < self.step <= 1.0:
            raise ValueError(f"step must be in (0, 1], got {self.step}")
        if not 0.0 <= self.inertia < 1.0:
            raise ValueError(
                f"inertia must be in [0, 1), got {self.inertia}"
            )
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(
                f"epsilon must be in (0, 1], got {self.epsilon}"
            )
        if self.temperature <= 0.0:
            raise ValueError(
                f"temperature must be positive, got {self.temperature}"
            )
        if not 0.0 <= self.mutation < 1.0:
            raise ValueError(
                f"mutation must be in [0, 1), got {self.mutation}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "step": self.step,
            "inertia": self.inertia,
            "epsilon": self.epsilon,
            "temperature": self.temperature,
            "mutation": self.mutation,
        }


def _best_response_onehot(payoffs: np.ndarray) -> np.ndarray:
    """One-hot argmax rows (ties break toward the lowest index)."""
    best = np.argmax(payoffs, axis=1)
    onehot = np.zeros_like(payoffs)
    onehot[np.arange(payoffs.shape[0]), best] = 1.0
    return onehot


def _replicator(
    shares: np.ndarray, payoffs: np.ndarray, step: float
) -> np.ndarray:
    mean = (shares * payoffs).sum(axis=1, keepdims=True)
    # A cell with zero mean payoff (e.g. all strategies starved) has no
    # gradient signal; leave its shares unchanged.
    safe = np.where(mean > 0.0, mean, 1.0)
    growth = 1.0 + step * (payoffs - mean) / safe
    nxt = shares * np.clip(growth, 0.0, None)
    nxt = np.where(mean > 0.0, nxt, shares)
    return nxt


def _logit_choice(
    payoffs: np.ndarray,
    scales: np.ndarray,
    temperature: float,
    rng: Optional[np.random.Generator],
) -> np.ndarray:
    """Choice distribution of a reconsidering flow, per cell.

    ``scales`` holds each cell's fair share ``C/N``; the effective
    temperature is ``temperature * scale`` so the same config behaves
    comparably across links of very different capacity.
    """
    temp = temperature * scales[:, None]
    utilities = payoffs / temp
    if rng is not None:
        # One Gumbel taste shock per (cell, strategy) per tick: the
        # reconsidering mass follows the perturbed best response.
        shock = rng.gumbel(size=payoffs.shape)
        return _best_response_onehot(utilities + shock)
    utilities = utilities - utilities.max(axis=1, keepdims=True)
    weights = np.exp(utilities)
    return weights / weights.sum(axis=1, keepdims=True)


def step_shares(
    config: DynamicsConfig,
    shares: np.ndarray,
    payoffs: np.ndarray,
    scales: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Advance every cell's share row one tick under ``config``.

    Args:
        config: The dynamics rule and its parameters.
        shares: ``(n_cells, n_strategies)`` current shares.
        payoffs: ``(n_cells, n_strategies)`` per-flow payoffs
            (bytes/second from the oracle).
        scales: ``(n_cells,)`` per-cell payoff scales (fair share
            ``C/N``), used to normalize the logit temperature.
        rng: Optional generator for the sampled logit rule.  The RNG is
            consumed only here, once per tick, in the caller's process —
            never inside the payoff oracle — so trajectories are
            bit-identical across ``--jobs`` settings and cache states.

    Returns a new simplex-valid share array; the inputs are not
    modified.
    """
    shares = np.asarray(shares, dtype=np.float64)
    payoffs = np.asarray(payoffs, dtype=np.float64)
    if config.name == "replicator":
        nxt = _replicator(shares, payoffs, config.step)
    elif config.name == "best-response":
        target = _best_response_onehot(payoffs)
        nxt = config.inertia * shares + (1.0 - config.inertia) * target
    else:  # logit
        choice = _logit_choice(
            payoffs, np.asarray(scales, dtype=np.float64),
            config.temperature, rng,
        )
        nxt = (1.0 - config.epsilon) * shares + config.epsilon * choice
    if config.mutation > 0.0:
        uniform = 1.0 / shares.shape[1]
        nxt = (1.0 - config.mutation) * nxt + config.mutation * uniform
    nxt = np.clip(nxt, 0.0, None)
    return nxt / nxt.sum(axis=1, keepdims=True)
