"""Internet-scale CCA adoption dynamics (``repro.population``).

A population of flows — up to millions, held as numpy share vectors
over heterogeneous (RTT class x bottleneck class) cells — repeatedly
chooses between CCAs under pluggable evolutionary dynamics, with
per-flow payoffs served by a tiered oracle: the paper's closed-form
model where it is trusted, batched ``fluid-vec`` simulation where the
recorded model error is high.  See ``docs/POPULATION.md``.
"""

from repro.population.dynamics import (
    DYNAMICS,
    DynamicsConfig,
    step_shares,
)
from repro.population.oracle import BOUNDS, ErrorMap, TieredOracle
from repro.population.run import PopulationResult, run_population
from repro.population.state import (
    DEFAULT_STRATEGIES,
    CellSpec,
    PopulationState,
    quantize_counts,
)

__all__ = [
    "BOUNDS",
    "DEFAULT_STRATEGIES",
    "DYNAMICS",
    "CellSpec",
    "DynamicsConfig",
    "ErrorMap",
    "PopulationResult",
    "PopulationState",
    "TieredOracle",
    "run_population",
    "step_shares",
    "quantize_counts",
]
