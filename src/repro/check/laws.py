"""Per-CCA law invariants for the sanitizer.

The tables here are keyed by *law module* — the same dotted paths the
:data:`repro.cc.laws.registry.ALGORITHMS` table declares — so any
controller whose registry entry points at ``repro.cc.laws.bbr`` (for
example) is held to the BBRv1 state machine, regardless of which
adapter class implements it.  Algorithms without a state machine
(Reno, CUBIC, Vegas, Copa, Vivace) resolve to ``None`` and only the
generic cwnd/in-flight bounds apply.

All gains and state names are read from the law modules themselves;
nothing is re-declared numerically here.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.cc.laws import bbr as bbr_laws
from repro.cc.laws import bbr2 as bbr2_laws
from repro.cc.laws import registry

#: Relative tolerance for pacing-gain legality (gains are assigned,
#: not computed, so only representation error is expected).
GAIN_TOLERANCE = 1e-9

Transition = Tuple[str, str]

V1_STATES: FrozenSet[str] = frozenset(
    (
        bbr_laws.STARTUP,
        bbr_laws.DRAIN,
        bbr_laws.PROBE_BW,
        bbr_laws.PROBE_RTT,
    )
)

V2_STATES: FrozenSet[str] = frozenset(
    (
        bbr2_laws.STARTUP,
        bbr2_laws.DRAIN,
        bbr2_laws.PROBE_DOWN,
        bbr2_laws.CRUISE,
        bbr2_laws.REFILL,
        bbr2_laws.PROBE_UP,
        bbr2_laws.PROBE_RTT,
    )
)

#: The fluid adapters collapse DRAIN into the STARTUP→PROBE_BW tick and
#: reuse the v1 phase names for both BBR generations.
FLUID_BBR_STATES: FrozenSet[str] = frozenset(
    (bbr_laws.STARTUP, bbr_laws.PROBE_BW, bbr_laws.PROBE_RTT)
)

V1_PACKET_TRANSITIONS: FrozenSet[Transition] = frozenset(
    (
        (bbr_laws.STARTUP, bbr_laws.DRAIN),
        (bbr_laws.DRAIN, bbr_laws.PROBE_BW),
        (bbr_laws.STARTUP, bbr_laws.PROBE_RTT),
        (bbr_laws.DRAIN, bbr_laws.PROBE_RTT),
        (bbr_laws.PROBE_BW, bbr_laws.PROBE_RTT),
        (bbr_laws.PROBE_RTT, bbr_laws.PROBE_BW),
        (bbr_laws.PROBE_RTT, bbr_laws.STARTUP),
    )
)

V2_PACKET_TRANSITIONS: FrozenSet[Transition] = frozenset(
    (
        (bbr2_laws.STARTUP, bbr2_laws.DRAIN),
        (bbr2_laws.DRAIN, bbr2_laws.PROBE_DOWN),
        (bbr2_laws.PROBE_DOWN, bbr2_laws.CRUISE),
        (bbr2_laws.CRUISE, bbr2_laws.REFILL),
        (bbr2_laws.REFILL, bbr2_laws.PROBE_UP),
        (bbr2_laws.PROBE_UP, bbr2_laws.PROBE_DOWN),
        (bbr2_laws.DRAIN, bbr2_laws.PROBE_RTT),
        (bbr2_laws.PROBE_DOWN, bbr2_laws.PROBE_RTT),
        (bbr2_laws.CRUISE, bbr2_laws.PROBE_RTT),
        (bbr2_laws.REFILL, bbr2_laws.PROBE_RTT),
        (bbr2_laws.PROBE_UP, bbr2_laws.PROBE_RTT),
        (bbr2_laws.PROBE_RTT, bbr2_laws.PROBE_DOWN),
    )
)

FLUID_BBR_TRANSITIONS: FrozenSet[Transition] = frozenset(
    (
        (bbr_laws.STARTUP, bbr_laws.PROBE_BW),
        (bbr_laws.STARTUP, bbr_laws.PROBE_RTT),
        (bbr_laws.PROBE_BW, bbr_laws.PROBE_RTT),
        (bbr_laws.PROBE_RTT, bbr_laws.STARTUP),
        (bbr_laws.PROBE_RTT, bbr_laws.PROBE_BW),
    )
)

#: Legal pacing gains per phase, packet substrate (where adapters
#: expose ``pacing_gain`` directly).
V1_PACKET_GAINS: Dict[str, Tuple[float, ...]] = {
    bbr_laws.STARTUP: (bbr_laws.HIGH_GAIN,),
    bbr_laws.DRAIN: (1.0 / bbr_laws.HIGH_GAIN,),
    bbr_laws.PROBE_BW: tuple(sorted(set(bbr_laws.GAIN_CYCLE))),
    bbr_laws.PROBE_RTT: (1.0,),
}

V2_PACKET_GAINS: Dict[str, Tuple[float, ...]] = {
    bbr2_laws.STARTUP: (bbr2_laws.STARTUP_GAIN,),
    bbr2_laws.DRAIN: (0.5,),
    bbr2_laws.PROBE_DOWN: (bbr2_laws.PHASE_GAINS[bbr2_laws.PROBE_DOWN],),
    bbr2_laws.CRUISE: (bbr2_laws.PHASE_GAINS[bbr2_laws.CRUISE],),
    bbr2_laws.REFILL: (bbr2_laws.PHASE_GAINS[bbr2_laws.REFILL],),
    bbr2_laws.PROBE_UP: (bbr2_laws.PHASE_GAINS[bbr2_laws.PROBE_UP],),
    bbr2_laws.PROBE_RTT: (1.0,),
}

_STATE_SETS: Dict[Tuple[str, str], FrozenSet[str]] = {
    ("repro.cc.laws.bbr", "packet"): V1_STATES,
    ("repro.cc.laws.bbr", "fluid"): FLUID_BBR_STATES,
    ("repro.cc.laws.bbr2", "packet"): V2_STATES,
    ("repro.cc.laws.bbr2", "fluid"): FLUID_BBR_STATES,
}

_TRANSITION_SETS: Dict[Tuple[str, str], FrozenSet[Transition]] = {
    ("repro.cc.laws.bbr", "packet"): V1_PACKET_TRANSITIONS,
    ("repro.cc.laws.bbr", "fluid"): FLUID_BBR_TRANSITIONS,
    ("repro.cc.laws.bbr2", "packet"): V2_PACKET_TRANSITIONS,
    ("repro.cc.laws.bbr2", "fluid"): FLUID_BBR_TRANSITIONS,
}

_PACKET_GAIN_SETS: Dict[str, Dict[str, Tuple[float, ...]]] = {
    "repro.cc.laws.bbr": V1_PACKET_GAINS,
    "repro.cc.laws.bbr2": V2_PACKET_GAINS,
}


def _laws_module(cc_name: str) -> Optional[str]:
    """The law-module path registered for ``cc_name``, if any."""
    spec = registry.ALGORITHMS.get(cc_name.lower())
    return None if spec is None else spec.laws


def states_for(cc_name: str, substrate: str) -> Optional[FrozenSet[str]]:
    """Legal state labels for ``cc_name`` on ``substrate``; None = any."""
    laws = _laws_module(cc_name)
    if laws is None:
        return None
    return _STATE_SETS.get((laws, substrate))


def transitions_for(
    cc_name: str, substrate: str
) -> Optional[FrozenSet[Transition]]:
    """Legal state transitions for ``cc_name``; None = unconstrained."""
    laws = _laws_module(cc_name)
    if laws is None:
        return None
    return _TRANSITION_SETS.get((laws, substrate))


def gain_legal(gain: float, legal: Tuple[float, ...]) -> bool:
    """Whether ``gain`` matches one of ``legal`` within tolerance."""
    return any(
        abs(gain - g) <= GAIN_TOLERANCE * max(1.0, abs(g)) for g in legal
    )


def _check_bbr_packet(laws: str, cc: object) -> Optional[str]:
    states = _STATE_SETS[(laws, "packet")]
    state = getattr(cc, "state", None)
    if state not in states:
        return f"state {state!r} is not a legal phase ({sorted(states)})"
    gains = _PACKET_GAIN_SETS[laws].get(state)
    gain = getattr(cc, "pacing_gain", None)
    if gains is not None and gain is not None:
        if not gain_legal(gain, gains):
            return (
                f"pacing gain {gain!r} illegal in {state} "
                f"(legal: {list(gains)})"
            )
    return None


def packet_invariants(
    cc_name: str,
) -> Optional[Callable[[object], Optional[str]]]:
    """Per-ACK law invariant for ``cc_name``, or None.

    The returned callable inspects a packet-substrate controller and
    returns an error message (or None when all invariants hold).
    """
    laws = _laws_module(cc_name)
    if laws not in _PACKET_GAIN_SETS:
        return None
    return lambda cc, _laws=laws: _check_bbr_packet(_laws, cc)


def fluid_invariants(
    cc_name: str,
) -> Optional[Callable[[object], Optional[str]]]:
    """Per-tick law invariant for a fluid flow, or None."""
    laws = _laws_module(cc_name)
    states = _STATE_SETS.get((laws, "fluid")) if laws else None
    if states is None:
        return None

    def check(flow: object, _states: FrozenSet[str] = states):
        state = getattr(flow, "state", None)
        if state not in _states:
            return (
                f"state {state!r} is not a legal fluid phase "
                f"({sorted(_states)})"
            )
        return None

    return check
