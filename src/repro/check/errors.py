"""Structured invariant-violation error for the runtime sanitizer."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: One remembered telemetry event: (time, name, flow_id, fields).
RecentEvent = Tuple[float, str, Optional[int], Dict[str, Any]]


def _rebuild(
    message: str,
    check: str,
    time: Optional[float],
    flow_id: Optional[int],
    cc: Optional[str],
    fingerprint: Optional[str],
    context: Dict[str, Any],
    recent: List[RecentEvent],
) -> "InvariantViolation":
    violation = InvariantViolation(
        message,
        check=check,
        time=time,
        flow_id=flow_id,
        cc=cc,
        fingerprint=fingerprint,
        context=context,
        recent=recent,
    )
    return violation


class InvariantViolation(Exception):
    """A runtime invariant failed inside one of the simulators.

    Raised by :class:`repro.check.Checker` at the first failing check;
    the simulation is left mid-run by design (the state that tripped
    the check is the evidence).

    Attributes:
        check: Dotted name of the failed invariant (see
            ``docs/CHECKS.md`` for the catalogue).
        message: Human-readable description of the failure.
        time: Simulation time (seconds) at the failing check, if known.
        flow_id: Offending flow, when the check is flow-scoped.
        cc: Congestion-control algorithm of the offending flow.
        fingerprint: Scenario fingerprint (see ``repro.exec``) when the
            run was launched through the execution engine.
        context: Free-form scenario context installed via
            :meth:`repro.check.Checker.set_context`.
        recent: The last N remembered events for the offending flow
            (state transitions and other checker notes), oldest first.
    """

    def __init__(
        self,
        message: str,
        *,
        check: str = "",
        time: Optional[float] = None,
        flow_id: Optional[int] = None,
        cc: Optional[str] = None,
        fingerprint: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
        recent: Optional[List[RecentEvent]] = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.check = check
        self.time = time
        self.flow_id = flow_id
        self.cc = cc
        self.fingerprint = fingerprint
        self.context = dict(context or {})
        self.recent = list(recent or [])

    def __reduce__(self):  # Survives the worker → parent pickle hop.
        return (
            _rebuild,
            (
                self.message,
                self.check,
                self.time,
                self.flow_id,
                self.cc,
                self.fingerprint,
                self.context,
                self.recent,
            ),
        )

    def __str__(self) -> str:
        parts = [f"[{self.check or 'check'}] {self.message}"]
        if self.time is not None:
            parts.append(f"t={self.time:.6f}s")
        if self.flow_id is not None:
            parts.append(f"flow={self.flow_id}")
        if self.cc:
            parts.append(f"cc={self.cc}")
        if self.fingerprint:
            parts.append(f"fingerprint={self.fingerprint[:12]}")
        head = "  ".join(parts)
        if not self.recent:
            return head
        lines = [head, f"last {len(self.recent)} events:"]
        for when, name, flow_id, fields in self.recent:
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            flow = "-" if flow_id is None else str(flow_id)
            lines.append(f"  t={when:.6f}s flow={flow} {name} {detail}")
        return "\n".join(lines)
