"""Opt-in runtime invariant sanitizer (``repro.check``).

Threads conservation audits, event-loop legality, per-CCA law
invariants, and fluid rate-conservation checks through both simulation
substrates.  Disabled runs pay a single ``if check is not None``
attribute test per instrumented site — the same guard discipline as
:mod:`repro.obs`.  See ``docs/CHECKS.md`` for the invariant catalogue.
"""

from repro.check.core import (
    MAX_PENDING_EVENTS,
    Checker,
    clear_default,
    enabled_from_env,
    get_default,
    resolve,
    set_default,
    use,
)
from repro.check.errors import InvariantViolation

__all__ = [
    "MAX_PENDING_EVENTS",
    "Checker",
    "InvariantViolation",
    "clear_default",
    "enabled_from_env",
    "get_default",
    "resolve",
    "set_default",
    "use",
]
