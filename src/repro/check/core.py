"""Runtime invariant sanitizer for both simulation substrates.

A :class:`Checker` is threaded through the packet simulator (event
loop, bottleneck link, senders, controllers) and the fluid simulator
(core loop, flows) exactly the way a :class:`repro.obs.bus.Telemetry`
bus is: every instrumented site holds an optional ``check`` attribute
and guards with a single ``if check is not None`` test, so disabled
runs pay one attribute load per site and nothing else.

Enabling:

* pass ``check=Checker()`` to ``run_dumbbell`` / ``run_fluid`` /
  ``DumbbellNetwork`` / ``FluidSimulation``;
* install a process default via :func:`set_default` / :func:`use`; or
* set ``REPRO_CHECK=1`` in the environment (the CLI's ``--check`` flag
  does exactly this, so engine worker processes inherit it).

The first failing invariant raises
:class:`repro.check.errors.InvariantViolation` with the scenario
fingerprint (when running under ``repro.exec``), the simulation time,
and the last N remembered events for the offending flow.
"""

from __future__ import annotations

import math
import os
from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, Optional

from repro.check import laws as check_laws
from repro.check.errors import InvariantViolation, RecentEvent

#: Pending-event ceiling for the event-loop boundedness check.  Far
#: above anything a legitimate dumbbell run enqueues (the loop keeps at
#: most a handful of events per flow in flight).
MAX_PENDING_EVENTS = 10_000_000


class Checker:
    """Collects invariant hooks and raises on the first violation.

    Args:
        tolerance: Relative tolerance for floating-point rate
            comparisons (fluid-substrate conservation).
        recent: How many events to remember for violation reports.
    """

    def __init__(self, tolerance: float = 1e-6, recent: int = 32) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        if recent < 1:
            raise ValueError(f"recent must be >= 1, got {recent}")
        self.tolerance = tolerance
        #: Scenario context attached to every violation.
        self.context: Dict[str, Any] = {}
        #: Ring buffer of remembered events (state transitions etc.).
        self.recent: Deque[RecentEvent] = deque(maxlen=recent)
        #: Total individual invariant evaluations performed.
        self.checks_run = 0

    # -- context & reporting ----------------------------------------------

    def set_context(self, **fields: Any) -> None:
        """Attach scenario context (fingerprint, backend, ...)."""
        self.context.update(fields)

    def note(
        self,
        time: float,
        name: str,
        flow_id: Optional[int] = None,
        **fields: Any,
    ) -> None:
        """Remember an event for later violation reports."""
        self.recent.append((time, name, flow_id, fields))

    def fail(
        self,
        check: str,
        message: str,
        *,
        time: Optional[float] = None,
        flow_id: Optional[int] = None,
        cc: Optional[str] = None,
    ) -> None:
        """Raise an :class:`InvariantViolation` for ``check``."""
        recent = [
            event
            for event in self.recent
            if flow_id is None or event[2] is None or event[2] == flow_id
        ]
        raise InvariantViolation(
            message,
            check=check,
            time=time,
            flow_id=flow_id,
            cc=cc,
            fingerprint=self.context.get("fingerprint"),
            context=self.context,
            recent=recent,
        )

    # -- event-loop legality ----------------------------------------------

    def event_loop_tick(self, when: float, now: float, pending: int) -> None:
        """Called before each event dispatch with the loop's clock."""
        self.checks_run += 1
        if when < now:
            self.fail(
                "sim.clock",
                f"event dispatch at t={when} behind the clock t={now}: "
                "the event loop must be monotonic",
                time=now,
            )
        if pending > MAX_PENDING_EVENTS:
            self.fail(
                "sim.queue_bound",
                f"{pending} pending events exceed the "
                f"{MAX_PENDING_EVENTS} bound (runaway self-scheduling?)",
                time=now,
            )

    # -- packet-substrate conservation ------------------------------------

    def link_audit(
        self,
        now: float,
        *,
        offered: int,
        forwarded: int,
        dropped: int,
        queued: int,
        in_service: int,
        buffer_bytes: float,
        gauge: int,
        aqm_dropped: int = 0,
        marked: int = 0,
    ) -> None:
        """Byte-conservation audit at the bottleneck link.

        ``dropped`` is the *total* (tail + AQM early) drop count, with
        ``aqm_dropped`` the AQM share of it; ``marked`` bytes were
        CE-marked and forwarded, so they stay on the forwarded side of
        the conservation identity:
        ``offered == forwarded (incl. marked) + tail_drops + aqm_drops
        + queued + in-service``.
        """
        self.checks_run += 1
        accounted = forwarded + dropped + queued + in_service
        if offered != accounted:
            tail = dropped - aqm_dropped
            self.fail(
                "link.conservation",
                f"offered {offered}B != forwarded {forwarded}B "
                f"(incl. {marked}B marked) + tail drops {tail}B + AQM "
                f"drops {aqm_dropped}B + queued {queued}B + in-service "
                f"{in_service}B (= {accounted}B)",
                time=now,
            )
        if aqm_dropped < 0 or aqm_dropped > dropped:
            self.fail(
                "link.conservation",
                f"AQM drops {aqm_dropped}B outside the total dropped "
                f"{dropped}B: the drop split is corrupt",
                time=now,
            )
        if marked < 0 or marked > forwarded + queued + in_service:
            self.fail(
                "link.conservation",
                f"marked {marked}B exceed the bytes that ever passed "
                f"the queue (forwarded {forwarded}B + queued {queued}B "
                f"+ in-service {in_service}B)",
                time=now,
            )
        if queued < 0 or queued > buffer_bytes:
            self.fail(
                "link.queue_bounds",
                f"queued {queued}B outside [0, {buffer_bytes}B]",
                time=now,
            )
        if gauge != queued:
            self.fail(
                "link.occupancy_gauge",
                f"occupancy-integral gauge {gauge}B disagrees with the "
                f"queue ({queued}B): the mean-queue integral is corrupt",
                time=now,
            )

    def capacity_change(self, now: float, capacity: float) -> None:
        """Trace-legality check for a time-varying capacity step."""
        self.checks_run += 1
        if not math.isfinite(capacity) or capacity <= 0:
            self.fail(
                "link.capacity_trace",
                f"capacity stepped to {capacity!r}B/s: trace scales "
                "must stay finite and positive",
                time=now,
            )

    # -- packet-substrate flow state --------------------------------------

    def flow_update(
        self, now: float, flow_id: Optional[int], cc: Any, in_flight: int
    ) -> None:
        """Per-ACK controller/flow bounds for the packet substrate."""
        self.checks_run += 1
        name = cc.name
        if in_flight < 0:
            self.fail(
                "flow.inflight",
                f"in-flight bytes went negative ({in_flight}B)",
                time=now,
                flow_id=flow_id,
                cc=name,
            )
        cwnd = cc.cwnd
        if not math.isfinite(cwnd) or cwnd < cc.min_cwnd:
            self.fail(
                "cc.cwnd_bounds",
                f"cwnd {cwnd!r}B outside [{cc.min_cwnd}B, inf)",
                time=now,
                flow_id=flow_id,
                cc=name,
            )
        rate = cc.pacing_rate
        if rate is not None and (not math.isfinite(rate) or rate <= 0):
            self.fail(
                "cc.pacing_rate",
                f"pacing rate {rate!r}B/s must be finite and positive",
                time=now,
                flow_id=flow_id,
                cc=name,
            )
        law = check_laws.packet_invariants(name)
        if law is not None:
            error = law(cc)
            if error is not None:
                self.fail(
                    "cc.law", error, time=now, flow_id=flow_id, cc=name
                )

    def state_transition(
        self,
        now: float,
        cc_name: str,
        flow_id: Optional[int],
        old: Optional[str],
        new: str,
        substrate: str,
    ) -> None:
        """Validate a state-machine transition (both substrates)."""
        self.checks_run += 1
        self.note(
            now,
            "cc.state",
            flow_id,
            cc=cc_name,
            substrate=substrate,
            **{"from": old, "to": new},
        )
        states = check_laws.states_for(cc_name, substrate)
        if states is not None and new not in states:
            self.fail(
                "cc.state",
                f"{new!r} is not a {cc_name} state on the {substrate} "
                f"substrate ({sorted(states)})",
                time=now,
                flow_id=flow_id,
                cc=cc_name,
            )
        table = check_laws.transitions_for(cc_name, substrate)
        if table is not None and (old, new) not in table:
            self.fail(
                "cc.transition",
                f"illegal {cc_name} transition {old} -> {new} on the "
                f"{substrate} substrate",
                time=now,
                flow_id=flow_id,
                cc=cc_name,
            )

    # -- fluid substrate ---------------------------------------------------

    def fluid_flow(self, now: float, flow: Any) -> None:
        """Per-tick fluid-flow bounds."""
        self.checks_run += 1
        inflight = flow.inflight
        if not math.isfinite(inflight) or inflight <= 0:
            self.fail(
                "fluid.inflight",
                f"in-flight target {inflight!r}B must be finite and "
                "positive for an active flow",
                time=now,
                flow_id=flow.flow_id,
                cc=flow.name,
            )
        law = check_laws.fluid_invariants(flow.name)
        if law is not None:
            error = law(flow)
            if error is not None:
                self.fail(
                    "fluid.law",
                    error,
                    time=now,
                    flow_id=flow.flow_id,
                    cc=flow.name,
                )

    def fluid_conservation(
        self,
        now: float,
        *,
        total_rate: float,
        capacity: float,
        queue: float,
        buffer_bytes: float,
        slack: float,
        strict: bool,
    ) -> None:
        """Rate-conservation audit for one fluid tick.

        ``strict`` is False on overflow ticks (queue clamped at the
        buffer), where the clamped-queue approximation intentionally
        lets the instantaneous rate sum overshoot capacity; the
        non-negativity and queue-bound checks still apply there.
        """
        self.checks_run += 1
        if not math.isfinite(total_rate) or total_rate < 0:
            self.fail(
                "fluid.rate_conservation",
                f"flow rates sum to {total_rate!r}B/s (must be finite "
                "and non-negative)",
                time=now,
            )
        if strict and total_rate > capacity + slack:
            self.fail(
                "fluid.rate_conservation",
                f"flow rates sum to {total_rate:.1f}B/s > capacity "
                f"{capacity:.1f}B/s (+{slack:.1f}B/s tolerance)",
                time=now,
            )
        if queue < -1e-9 or queue > buffer_bytes + 1e-9:
            self.fail(
                "fluid.queue_bounds",
                f"queue {queue!r}B outside [0, {buffer_bytes}B]",
                time=now,
            )

    # -- vectorized fluid substrate (array states) ----------------------

    def fluid_vec_flows(self, now, inflight, active, flow_ids, cc_names):
        """Per-tick bounds over the vectorized substrate's flow columns.

        The array analogue of :meth:`fluid_flow`: ``now``/``inflight``
        are per-flow float arrays, ``active`` a bool mask, and the
        first offending row (lowest global index, matching the scalar
        loop's flow order) is reported.  Per-CCA law-object invariants
        are scalar-substrate-only — the vec kernels hold column arrays,
        not law objects — so only the state bounds run here.

        Imports numpy lazily so packet-only runs never pay for it.
        """
        import numpy as np

        self.checks_run += int(active.sum())
        bad = active & (~np.isfinite(inflight) | (inflight <= 0))
        if bad.any():
            row = int(np.argmax(bad))
            self.fail(
                "fluid.inflight",
                f"in-flight target {float(inflight[row])!r}B must be "
                "finite and positive for an active flow",
                time=float(now[row]),
                flow_id=int(flow_ids[row]),
                cc=cc_names[row],
            )

    def fluid_vec_conservation(
        self,
        now,
        *,
        total_rate,
        capacity,
        queue,
        buffer_bytes,
        slack,
        strict,
        active,
    ) -> None:
        """Rate-conservation audit over a batch of fluid points.

        The array analogue of :meth:`fluid_conservation`: every
        argument is a per-point array (``strict``/``active`` bool
        masks), and the first offending point is reported.
        """
        import numpy as np

        self.checks_run += int(active.sum())
        bad = active & (~np.isfinite(total_rate) | (total_rate < 0))
        if bad.any():
            p = int(np.argmax(bad))
            self.fail(
                "fluid.rate_conservation",
                f"flow rates sum to {float(total_rate[p])!r}B/s (must "
                "be finite and non-negative)",
                time=float(now[p]),
            )
        bad = active & strict & (total_rate > capacity + slack)
        if bad.any():
            p = int(np.argmax(bad))
            self.fail(
                "fluid.rate_conservation",
                f"flow rates sum to {float(total_rate[p]):.1f}B/s > "
                f"capacity {float(capacity[p]):.1f}B/s "
                f"(+{float(slack[p]):.1f}B/s tolerance)",
                time=float(now[p]),
            )
        bad = active & (
            (queue < -1e-9) | (queue > buffer_bytes + 1e-9)
        )
        if bad.any():
            p = int(np.argmax(bad))
            self.fail(
                "fluid.queue_bounds",
                f"queue {float(queue[p])!r}B outside "
                f"[0, {float(buffer_bytes[p])}B]",
                time=float(now[p]),
            )

    # -- population dynamics (repro.population) -------------------------

    def population_state(self, tick: int, shares: Any) -> None:
        """Simplex validity of a population share matrix.

        ``shares`` is the ``(n_cells, n_strategies)`` array evolved by
        :mod:`repro.population`: every row must be finite,
        non-negative, and sum to 1.  ``tick`` is reported as the
        violation time.
        """
        import numpy as np

        shares = np.asarray(shares, dtype=np.float64)
        self.checks_run += int(shares.shape[0])
        if not np.isfinite(shares).all():
            row = int(np.argmax(~np.isfinite(shares).all(axis=1)))
            self.fail(
                "population.finite",
                f"cell {row} shares {shares[row].tolist()} are not "
                "finite",
                time=float(tick),
            )
        if (shares < -1e-9).any():
            row = int(np.argmax((shares < -1e-9).any(axis=1)))
            self.fail(
                "population.simplex",
                f"cell {row} shares {shares[row].tolist()} contain "
                "negative entries",
                time=float(tick),
            )
        sums = shares.sum(axis=1)
        if np.abs(sums - 1.0).max() > 1e-6:
            row = int(np.argmax(np.abs(sums - 1.0)))
            self.fail(
                "population.simplex",
                f"cell {row} shares sum to {float(sums[row])!r}, "
                "not 1",
                time=float(tick),
            )

    def population_oracle(
        self, tick: int, *, queries: int, tier0: int, tier1: int
    ) -> None:
        """Tier accounting for the population payoff oracle: every
        query must resolve at exactly one tier."""
        self.checks_run += 1
        if min(queries, tier0, tier1) < 0 or tier0 + tier1 != queries:
            self.fail(
                "population.oracle_accounting",
                f"oracle answered tier0={tier0} + tier1={tier1} of "
                f"{queries} queries: every query must resolve at "
                "exactly one tier",
                time=float(tick),
            )


# -- process-wide default (mirrors repro.obs.bus) --------------------------

_UNSET = object()
_default: Any = _UNSET
_env_checker: Optional[Checker] = None


def enabled_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``REPRO_CHECK`` asks for a process-wide checker."""
    env = os.environ if environ is None else environ
    value = env.get("REPRO_CHECK", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def get_default() -> Optional[Checker]:
    """The process-wide checker, or None.

    An explicit :func:`set_default` always wins (including an explicit
    ``None``, which disables checking even under ``REPRO_CHECK=1``);
    otherwise the environment decides, with one shared lazily-created
    checker per process.
    """
    global _env_checker
    if _default is not _UNSET:
        return _default
    if not enabled_from_env():
        return None
    if _env_checker is None:
        _env_checker = Checker()
    return _env_checker


def set_default(check: Optional[Checker]) -> None:
    """Install ``check`` as the process-wide default (None disables)."""
    global _default
    _default = check


def clear_default() -> None:
    """Forget any explicit default; ``REPRO_CHECK`` decides again."""
    global _default, _env_checker
    _default = _UNSET
    _env_checker = None


def resolve(check: Optional[Checker]) -> Optional[Checker]:
    """An explicit checker wins; otherwise the process default."""
    return check if check is not None else get_default()


@contextmanager
def use(check: Optional[Checker]) -> Iterator[Optional[Checker]]:
    """Temporarily install ``check`` as the process-wide default."""
    global _default
    previous = _default
    _default = check
    try:
        yield check
    finally:
        _default = previous
