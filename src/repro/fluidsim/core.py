"""Time-stepped fluid-flow simulator for large bottleneck sweeps.

The paper's Nash-equilibrium experiments need per-distribution mean
throughputs for up to 50 concurrent 2-minute flows, across thousands of
scenario combinations — far beyond what a packet-level simulator can sweep
in reasonable time.  This module models each flow as a *fluid*: a window
(or in-flight target) evolving in discrete time steps, sharing one
drop-tail bottleneck.

Per tick:

1. every active flow observes last tick's throughput/RTT and updates its
   in-flight target (its congestion-control law);
2. the shared queue is solved from the in-flight totals (closed form for
   equal RTTs, bisection otherwise);
3. if the queue exceeds the buffer, a loss event fires: victims are chosen
   by the configured synchronization mode and cut their windows, and any
   remaining excess is dropped (trimming non-responsive flows' realized
   in-flight);
4. per-flow throughput ``λ_i = inflight_i / (rtt_i + Q/C)`` is integrated.

The *synchronization mode* mirrors §2.4's two boundary cases: ``"sync"``
makes every loss-based flow back off on each overflow (Equation 21's
bound), ``"desync"`` cuts only the largest-queue-share flow (Equation 22),
and ``"proportional"`` — the default — picks victims randomly with
probability proportional to queue share, which lets synchronization *emerge*
like in the paper's testbed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.fluidsim.aqmfluid import make_fluid_aqm
from repro.sim.network import FlowResult, SimulationResult
from repro.util.config import LinkConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry

#: Loss-assignment modes (CUBIC synchronization levels, §2.4).
LOSS_MODES = ("sync", "desync", "proportional")


@dataclass
class FluidSpec:
    """Configuration for one fluid flow.

    Attributes:
        cc: Fluid congestion-control name (see
            :func:`repro.fluidsim.flows.make_fluid_flow`).
        rtt: Base RTT in seconds; None uses the link config's RTT.
        start_time: When the flow starts, in seconds.
        stop_time: Optional absolute time at which the flow stops sending
            (for on/off or churning workloads, §5's future-work regime).
        size_bytes: Optional transfer size; the flow finishes once it has
            delivered this many bytes (short-flow workloads).
        cc_kwargs: Extra keyword arguments for the fluid flow class.
    """

    cc: str
    rtt: Optional[float] = None
    start_time: float = 0.0
    stop_time: Optional[float] = None
    size_bytes: Optional[float] = None
    cc_kwargs: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.stop_time is not None and self.stop_time <= self.start_time:
            raise ValueError("stop_time must be after start_time")
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")


class TickContext:
    """Per-flow observations handed to a fluid flow each tick."""

    __slots__ = (
        "now",
        "dt",
        "throughput",
        "rtt_measured",
        "queue_delay",
        "base_rtt",
        "lost_bytes",
    )

    def __init__(self) -> None:
        self.now = 0.0
        self.dt = 0.0
        self.throughput = 0.0
        self.rtt_measured = 0.0
        self.queue_delay = 0.0
        self.base_rtt = 0.0
        self.lost_bytes = 0.0


class FluidSimulation:
    """One bottleneck shared by fluid flows.

    Args:
        link: Bottleneck configuration.
        flows: Flow specs (see :class:`FluidSpec`).
        dt: Tick length in seconds; defaults to ``min(rtt)/4``.
        loss_mode: One of :data:`LOSS_MODES`.
        seed: RNG seed for the proportional loss mode and start jitter.
        start_jitter: Uniform random extra delay (seconds) added to each
            flow's start time, emulating testbed trial-to-trial variation.
        trace_interval: If set, record per-flow in-flight snapshots (and
            the queue) every ``trace_interval`` seconds into
            :attr:`trace`; per-flow backoff times are always recorded in
            :attr:`loss_events`.  This is how the paper "checked the
            traces" for CUBIC synchronization (§3.2, §5).
        obs: Optional telemetry bus, attached to every fluid flow (so
            BBR phase transitions and backoffs become typed events) and
            fed overflow/drop counters.  When the bus has a
            ``sample_interval`` and ``trace_interval`` is unset, trace
            snapshots run at that interval and are mirrored onto the bus
            as per-flow ``sample`` records.
        check: Optional :class:`repro.check.Checker`, attached to every
            fluid flow (validating BBR phase transitions) and run each
            tick for in-flight bounds and rate conservation (flow rates
            sum to ≤ capacity within tolerance).  Defaults to the
            process-wide checker (``--check`` / ``REPRO_CHECK=1``),
            usually None, i.e. disabled.
    """

    def __init__(
        self,
        link: LinkConfig,
        flows: Sequence[FluidSpec],
        dt: Optional[float] = None,
        loss_mode: str = "proportional",
        seed: int = 0,
        start_jitter: float = 0.0,
        trace_interval: Optional[float] = None,
        obs: Optional["Telemetry"] = None,
        check: Optional["Checker"] = None,
    ) -> None:
        from repro.check import resolve as resolve_check
        from repro.fluidsim.flows import make_fluid_flow

        if not flows:
            raise ValueError("at least one flow is required")
        if loss_mode not in LOSS_MODES:
            raise ValueError(
                f"loss_mode must be one of {LOSS_MODES}, got {loss_mode!r}"
            )
        self.link = link
        self.loss_mode = loss_mode
        self.rng = random.Random(seed)
        self.obs = obs
        self.check = check = resolve_check(check)

        # Scenario extensions (repro.scenario): a non-constant capacity
        # trace schedules piecewise-constant capacity steps, an AQM spec
        # adds deterministic per-tick drop/mark volumes.  Both are None
        # on the drop-tail/constant default, leaving the historical tick
        # loop untouched bit for bit.
        trace = getattr(link, "capacity_trace", None)
        if trace is not None and not trace.is_constant:
            self._cap_events = list(trace.change_events())
            self.capacity_now = link.capacity * trace.scale_at(0.0)
        else:
            self._cap_events = []
            self.capacity_now = link.capacity
        self._cap_cursor = 0
        #: AQM byte accounting (fluid analogue of LinkStats).
        self.aqm_dropped_bytes = 0.0
        self.marked_bytes = 0.0
        self.capacity_changes = 0

        self.specs = list(flows)
        self.flows = []
        for flow_id, spec in enumerate(flows):
            rtt = spec.rtt if spec.rtt is not None else link.rtt
            start = spec.start_time
            if start_jitter > 0:
                start += self.rng.uniform(0.0, start_jitter)
            flow = make_fluid_flow(
                spec.cc,
                flow_id=flow_id,
                rtt=rtt,
                start_time=start,
                mss=link.mss,
                **spec.cc_kwargs,
            )
            flow.obs = obs
            flow.check = check
            self.flows.append(flow)

        min_rtt = min(f.rtt for f in self.flows)
        self.dt = dt if dt is not None else min_rtt / 4.0
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        self._aqm = make_fluid_aqm(link, self.dt)
        self._equal_rtt = all(f.rtt == self.flows[0].rtt for f in self.flows)
        # Rate-conservation tolerance: relative float slack plus the
        # bisection's 1-byte queue tolerance amplified by 1/min_rtt
        # (d(rate)/d(queue-bytes) is bounded by 1/rtt_min).
        self._rate_slack = link.capacity * 1e-6 + 2.0 / min_rtt

        # Loss-perception state for the proportional mode.
        self._drop_accumulator = [0.0] * len(self.flows)
        self._drop_threshold = [float(link.mss)] * len(self.flows)

        # Optional tracing.  An instrumented run with a sampling cadence
        # inherits it as the trace interval, so fluid snapshots land in
        # the same unified JSONL stream as packet-sim tracer samples.
        if trace_interval is None and obs is not None:
            trace_interval = obs.sample_interval
        if trace_interval is not None and trace_interval <= 0:
            raise ValueError(
                f"trace_interval must be positive, got {trace_interval}"
            )
        self.trace_interval = trace_interval
        #: Per-flow lists of congestion-backoff times (seconds).
        self.loss_events: List[List[float]] = [
            [] for _ in range(len(self.flows))
        ]
        #: Snapshot rows: (time, [inflight per flow], queue_bytes).
        self.trace: List[Tuple[float, List[float], float]] = []
        self._next_trace = 0.0

        # Short-flow completion tracking.
        self._finished = [False] * len(self.flows)

        # Measurement accumulators.
        self._delivered = [0.0] * len(self.flows)
        self._delivered_window = [0.0] * len(self.flows)
        self._lost = [0.0] * len(self.flows)
        self._queue_integral = 0.0
        self._time_simulated = 0.0
        self._measure_start = 0.0
        self.queue_bytes = 0.0
        self._has_run = False
        self._steps_run = 0

    def _is_active(self, i: int, now: float) -> bool:
        """Whether flow ``i`` is currently sending."""
        if self._finished[i]:
            return False
        flow = self.flows[i]
        if now < flow.start_time:
            return False
        stop = self.specs[i].stop_time
        return stop is None or now < stop

    # -- queue solving ----------------------------------------------------

    def _solve_queue(self, inflights: List[float]) -> float:
        """Queue size (bytes) implied by the in-flight totals."""
        capacity = self.capacity_now
        if self._equal_rtt:
            bdp = capacity * self.flows[0].rtt
            return max(0.0, sum(inflights) - bdp)
        # Heterogeneous RTTs: find Q ≥ 0 with Σ w_i/(rtt_i + Q/C) = C.
        total = sum(inflights)
        demand = sum(
            w / f.rtt for w, f in zip(inflights, self.flows) if w > 0
        )
        if demand <= capacity:
            return 0.0
        lo, hi = 0.0, total
        for _ in range(50):
            mid = (lo + hi) / 2.0
            qd = mid / capacity
            rate = sum(
                w / (f.rtt + qd)
                for w, f in zip(inflights, self.flows)
                if w > 0
            )
            if rate > capacity:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1.0:  # 1-byte tolerance
                break
        return (lo + hi) / 2.0

    # -- loss assignment ----------------------------------------------------

    def _pick_victims(
        self, queue_shares: List[float], responsive: List[int]
    ) -> List[int]:
        """Choose which loss-responsive flows back off on an overflow.

        ``sync`` and ``desync`` realize §2.4's two boundary cases directly.
        ``proportional`` backs a flow off only once it has *absorbed* at
        least one segment's worth of drops (tracked in
        ``_drop_accumulator``), which is how losses are actually perceived:
        drops land on flows in proportion to their queue share, so lightly
        represented flows are rarely hit — synchronization emerges rather
        than being imposed.
        """
        if not responsive:
            return []
        if self.loss_mode == "sync":
            return list(responsive)
        if self.loss_mode == "desync":
            return [max(responsive, key=lambda i: queue_shares[i])]
        victims = []
        for i in responsive:
            if self._drop_accumulator[i] >= self._drop_threshold[i]:
                victims.append(i)
                self._drop_accumulator[i] = 0.0
                # Jitter the next loss-perception threshold so equal flows
                # do not stay artificially locked in step across trials.
                self._drop_threshold[i] = self.link.mss * (
                    0.5 + self.rng.random()
                )
        return victims

    # -- main loop ------------------------------------------------------------

    def run(self, duration: float, warmup: float = 0.0) -> SimulationResult:
        """Advance the simulation and return paper-style per-flow results."""
        if self._has_run:
            raise RuntimeError(
                "FluidSimulation.run() may only be called once per "
                "instance (accumulators are not reset); build a new "
                "simulation for another trial"
            )
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not 0 <= warmup < duration:
            raise ValueError(f"warmup must lie in [0, duration)")
        self._has_run = True
        wall_start = perf_counter()
        capacity = self.capacity_now
        buffer_bytes = self.link.buffer_bytes
        check = self.check
        dt = self.dt
        n = len(self.flows)
        ctx = TickContext()
        ctx.dt = dt

        # Previous tick's allocation, for flow observations.
        prev_rate = [0.0] * n
        lost_this_tick = [0.0] * n
        queue_delay = 0.0

        now = 0.0
        measure_started = warmup == 0.0
        steps = int(math.ceil(duration / dt))
        for _step in range(steps):
            now += dt
            if self._cap_events:
                capacity = self._apply_capacity_steps(now)
            if not measure_started and now >= warmup:
                measure_started = True
                self._measure_start = now
                self._delivered_window = [0.0] * n

            # 1. Flows update their in-flight targets.
            for i, flow in enumerate(self.flows):
                if not self._is_active(i, now):
                    continue
                ctx.now = now
                ctx.throughput = prev_rate[i]
                ctx.base_rtt = flow.rtt
                ctx.queue_delay = queue_delay
                ctx.rtt_measured = flow.rtt + queue_delay
                ctx.lost_bytes = lost_this_tick[i]
                flow.tick(ctx)
                lost_this_tick[i] = 0.0
                if check is not None:
                    check.fluid_flow(now, flow)

            inflights = [
                f.inflight if self._is_active(i, now) else 0.0
                for i, f in enumerate(self.flows)
            ]

            # 2-3. Solve the queue; handle overflow, then the AQM.
            queue = self._solve_queue(inflights)
            if queue > buffer_bytes:
                queue = self._handle_overflow(
                    now, inflights, queue, lost_this_tick
                )
            if self._aqm is not None:
                queue = self._apply_aqm(
                    now, inflights, queue, lost_this_tick
                )
            self.queue_bytes = queue
            queue_delay = queue / capacity

            if (
                self.trace_interval is not None
                and now >= self._next_trace
            ):
                self._next_trace = now + self.trace_interval
                self.trace.append((now, list(inflights), queue))
                if self.obs is not None:
                    self.obs.gauge("link.queue_bytes", queue)
                    for i, flow in enumerate(self.flows):
                        if not self._is_active(i, now):
                            continue
                        self.obs.sample(
                            now,
                            flow.flow_id,
                            cc=flow.name,
                            cwnd=inflights[i],
                            in_flight=inflights[i],
                            pacing_rate=prev_rate[i],
                            state=flow.state,
                        )

            # 4. Integrate throughput.
            utilization = 0.0
            for i, flow in enumerate(self.flows):
                w = inflights[i]
                if w <= 0:
                    prev_rate[i] = 0.0
                    continue
                rate = w / (flow.rtt + queue_delay)
                prev_rate[i] = rate
                delivered = rate * dt
                self._delivered[i] += delivered
                if measure_started:
                    self._delivered_window[i] += delivered
                utilization += rate
                size = self.specs[i].size_bytes
                if size is not None and self._delivered[i] >= size:
                    self._finished[i] = True
            if check is not None:
                # Overflow ticks (queue clamped at the buffer) are
                # exempt from the strict ≤-capacity bound: the clamped
                # queue intentionally understates the delay there.
                check.fluid_conservation(
                    now,
                    total_rate=utilization,
                    capacity=capacity,
                    queue=queue,
                    buffer_bytes=buffer_bytes,
                    slack=self._rate_slack,
                    strict=queue < buffer_bytes - 1e-9,
                )
            if measure_started:
                self._queue_integral += queue * dt
                self._time_simulated += dt

        self._steps_run = steps
        if self.obs is not None:
            self.obs.count("fluid.steps", steps)
            self.obs.record_time("sim.run", perf_counter() - wall_start)
        return self._build_result(duration, warmup)

    def _handle_overflow(
        self,
        now: float,
        inflights: List[float],
        queue: float,
        lost_this_tick: List[float],
    ) -> float:
        """Drop the excess, let drop-hit flows back off; returns the queue."""
        buffer_bytes = self.link.buffer_bytes
        excess = queue - buffer_bytes
        total_inflight = sum(inflights)
        if total_inflight <= 0:
            return buffer_bytes
        if self.obs is not None:
            # Fluid "drops" are byte quantities; packet counts follow by
            # the MSS so fluid and packet traces share one counter set.
            self.obs.count(
                "link.dropped_packets",
                max(int(excess / self.link.mss), 1),
            )
            self.obs.count("link.dropped_bytes", int(excess))
            self.obs.event(
                "link.drop",
                time=now,
                dropped_bytes=excess,
                queued_bytes=buffer_bytes,
            )

        # Assumption 3 of §2.3: packets are uniformly mixed in the buffer,
        # so drops land on flows in proportion to their in-flight share.
        queue_shares = [w / total_inflight for w in inflights]
        for i, flow in enumerate(self.flows):
            if inflights[i] <= 0:
                continue
            drop = excess * queue_shares[i]
            inflights[i] = max(inflights[i] - drop, 0.0)
            flow.on_drop(now, drop)
            self._lost[i] += drop
            lost_this_tick[i] += drop
            self._drop_accumulator[i] += drop

        responsive = [
            i
            for i, f in enumerate(self.flows)
            if f.loss_based and inflights[i] > 0
        ]
        for i in self._pick_victims(queue_shares, responsive):
            self.flows[i].on_loss(now)
            inflights[i] = min(inflights[i], self.flows[i].inflight)
            self.loss_events[i].append(now)

        return min(self._solve_queue(inflights), buffer_bytes)

    def _apply_capacity_steps(self, now: float) -> float:
        """Apply due capacity-trace steps; returns the current capacity.

        Steps take effect on the first tick whose time reaches the step
        time (the fluid analogue of the packet substrate's event-loop
        scheduling).
        """
        events = self._cap_events
        cursor = self._cap_cursor
        base = self.link.capacity
        while cursor < len(events) and now >= events[cursor][0]:
            scale = events[cursor][1]
            cursor += 1
            self.capacity_now = base * scale
            self.capacity_changes += 1
            if self.obs is not None:
                self.obs.count("link.capacity_changes")
                self.obs.event(
                    "link.capacity_change",
                    time=now,
                    capacity=self.capacity_now,
                )
            if self.check is not None:
                self.check.capacity_change(now, self.capacity_now)
        self._cap_cursor = cursor
        return self.capacity_now

    def _apply_aqm(
        self,
        now: float,
        inflights: List[float],
        queue: float,
        lost_this_tick: List[float],
    ) -> float:
        """Apply this tick's AQM decision; returns the re-solved queue.

        The decision object (:mod:`repro.fluidsim.aqmfluid`) turns the
        solved queue into an affected byte volume.  Without ECN those
        bytes are *dropped*: they land on flows in proportion to queue
        share (Assumption 3 of §2.3, exactly like overflow drops) and
        count as lost.  With ECN the same volume is *marked*: no bytes
        are removed, but the marks feed the same loss-perception
        accumulator, so loss-based flows back off as the paper's model
        expects a congestion signal to make them — the fluid analogue
        of RFC 3168's mark-equals-loss control response.
        """
        volume = self._aqm.tick(now, queue, self.capacity_now, self.dt)
        if volume <= 0.0:
            return queue
        total_inflight = sum(inflights)
        if total_inflight <= 0:
            return queue
        volume = min(volume, total_inflight)
        ecn = self._aqm.ecn
        mss = self.link.mss
        queue_shares = [w / total_inflight for w in inflights]
        for i, flow in enumerate(self.flows):
            if inflights[i] <= 0:
                continue
            amount = volume * queue_shares[i]
            self._drop_accumulator[i] += amount
            if not ecn:
                inflights[i] = max(inflights[i] - amount, 0.0)
                flow.on_drop(now, amount)
                self._lost[i] += amount
                lost_this_tick[i] += amount
        if ecn:
            self.marked_bytes += volume
            if self.obs is not None:
                self.obs.count(
                    "link.ecn_marks", max(int(volume / mss), 1)
                )
                self.obs.event(
                    "link.mark",
                    time=now,
                    marked_bytes=volume,
                    queued_bytes=queue,
                )
        else:
            self.aqm_dropped_bytes += volume
            if self.obs is not None:
                self.obs.count(
                    "link.aqm_drops", max(int(volume / mss), 1)
                )
                self.obs.count(
                    "link.dropped_packets", max(int(volume / mss), 1)
                )
                self.obs.count("link.dropped_bytes", int(volume))
                self.obs.event(
                    "link.drop",
                    time=now,
                    dropped_bytes=volume,
                    queued_bytes=queue,
                    aqm=True,
                )
        responsive = [
            i
            for i, f in enumerate(self.flows)
            if f.loss_based and inflights[i] > 0
        ]
        for i in self._pick_victims(queue_shares, responsive):
            self.flows[i].on_loss(now)
            inflights[i] = min(inflights[i], self.flows[i].inflight)
            self.loss_events[i].append(now)
        return min(self._solve_queue(inflights), self.link.buffer_bytes)

    def _build_result(
        self, duration: float, warmup: float
    ) -> SimulationResult:
        measured = max(duration - warmup, self.dt)
        flows = []
        for i, flow in enumerate(self.flows):
            delivered = self._delivered_window[i]
            sent = self._delivered[i] + self._lost[i]
            flows.append(
                FlowResult(
                    flow_id=flow.flow_id,
                    cc=flow.name,
                    throughput=delivered / measured,
                    mean_rtt=None,
                    min_rtt=flow.rtt,
                    loss_rate=self._lost[i] / sent if sent > 0 else 0.0,
                    delivered_bytes=int(delivered),
                    # Every lost byte must be re-sent by a reliable
                    # transport: one retransmission per MSS of loss.
                    retransmits=int(self._lost[i] / self.link.mss),
                )
            )
        mean_queue = (
            self._queue_integral / self._time_simulated
            if self._time_simulated > 0
            else 0.0
        )
        total_sent = sum(self._delivered) + sum(self._lost)
        drop_rate = sum(self._lost) / total_sent if total_sent > 0 else 0.0
        if self.obs is not None:
            self.obs.gauge("link.mean_queue_bytes", mean_queue)
        return SimulationResult(
            flows=flows,
            duration=duration,
            warmup=warmup,
            mean_queue_bytes=mean_queue,
            mean_queuing_delay=mean_queue / self.link.capacity,
            drop_rate=drop_rate,
            events_processed=self._steps_run,
        )


def run_fluid(
    link: LinkConfig,
    flows: Sequence[FluidSpec],
    duration: float,
    warmup: float = 0.0,
    dt: Optional[float] = None,
    loss_mode: str = "proportional",
    seed: int = 0,
    start_jitter: float = 0.0,
    obs: Optional["Telemetry"] = None,
    check: Optional["Checker"] = None,
) -> SimulationResult:
    """Convenience one-shot fluid simulation run.

    ``obs`` defaults to the process-wide telemetry bus (usually None,
    i.e. disabled); pass one explicitly to instrument a single run.
    ``check`` likewise defaults to the process-wide invariant checker
    (see :mod:`repro.check`).
    """
    from repro.obs.bus import resolve

    sim = FluidSimulation(
        link,
        flows,
        dt=dt,
        loss_mode=loss_mode,
        seed=seed,
        start_jitter=start_jitter,
        obs=resolve(obs),
        check=check,
    )
    return sim.run(duration, warmup)
