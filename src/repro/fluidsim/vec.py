"""Batched, vectorized fluid simulator: arrays of flows *and* points.

This is the performance substrate behind ``backend=fluid-vec``.  It
advances a whole batch of scenario points — each the same (link, flow
specs, duration, seed) tuple :class:`repro.fluidsim.core.FluidSimulation`
takes — in one ndarray state block: per-flow columns are concatenated
(point, flow)-major into flat arrays, per-point scalars (capacity,
buffer, dt, queue...) are per-point arrays, and each tick updates every
flow of every still-running point with masked numpy expressions.  The
control laws come from :mod:`repro.fluidsim.vec_laws`, resolved through
the :mod:`repro.cc.laws.registry` ``vec`` column.

The contract with the scalar path is *bitwise* equality, not a
tolerance: for identical (link, flows, duration, warmup, dt, loss_mode,
seed, start_jitter), :func:`run_fluid_vec` produces the same
``SimulationResult`` — bit for bit — as :func:`repro.fluidsim.core
.run_fluid`, and batching points together never changes any point's
trajectory.  Three disciplines make that possible:

* both substrates evaluate power functions through
  :mod:`repro.fluidsim.mathops` (numpy ufuncs are elementwise
  position-independent; all other arithmetic is IEEE-exact either way);
* reductions that the scalar path runs as sequential Python sums are
  evaluated *sequentially* here too (see :meth:`VecFluidSim
  ._segment_sum`) — numpy's pairwise ``sum`` would differ in the last
  ulp and the divergence compounds through the feedback loop;
* randomness is drawn from one ``random.Random(seed)`` *per point*, in
  the scalar path's chronological draw order (start jitter at build
  time, then proportional-mode loss thresholds per admitted victim), so
  the proportional loss mode stays seed-compatible and batch-invariant.

Telemetry and invariant checks integrate at the same seams as the
scalar loop (overflow drop counters, trace-tick samples, per-tick
in-flight bounds and rate conservation on array state); per-flow typed
events (``cc.backoff`` etc.) and per-CCA law-object checks are scalar-
substrate-only, which the docs call out as the observability trade-off
of the vectorized substrate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cc.laws import registry as laws_registry
from repro.fluidsim.aqmfluid import make_fluid_aqm
from repro.fluidsim.core import LOSS_MODES, FluidSpec
from repro.fluidsim.mathops import np
from repro.fluidsim.vec_laws import TickState, VecKernel
from repro.sim.network import FlowResult, SimulationResult
from repro.util.config import LinkConfig

#: Batches smaller than this run segment sums as pure-Python loops:
#: ``ndarray.tolist()`` floats accumulated left-to-right beat a
#: max-flows-long sequence of tiny masked-gather array ops until the
#: point axis is wide enough to amortize them.
_SMALL_BATCH = 32


@dataclass
class BatchPoint:
    """One scenario point of a vectorized batch.

    Field-for-field the argument list of :func:`repro.fluidsim.core
    .run_fluid`: one bottleneck link, its fluid flow specs, and the
    run/measurement window, plus the loss mode and RNG seeding that
    this point's trajectory depends on.
    """

    link: LinkConfig
    flows: Sequence[FluidSpec]
    duration: float
    warmup: float = 0.0
    dt: Optional[float] = None
    loss_mode: str = "proportional"
    seed: int = 0
    start_jitter: float = 0.0
    cc_names: Tuple[str, ...] = field(init=False)

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("at least one flow is required")
        if self.loss_mode not in LOSS_MODES:
            raise ValueError(
                f"loss_mode must be one of {LOSS_MODES}, "
                f"got {self.loss_mode!r}"
            )
        if self.duration <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration}"
            )
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must lie in [0, duration)")
        self.cc_names = tuple(
            laws_registry.get_spec(spec.cc).name for spec in self.flows
        )


class VecFluidSim:
    """A batch of fluid scenario points advanced in lockstep arrays.

    Args:
        points: Scenario points; each evolves exactly as its own
            :class:`repro.fluidsim.core.FluidSimulation` would.
        trace_interval: As in the scalar simulator, applied batch-wide;
            inherits ``obs.sample_interval`` when unset.
        obs: Optional telemetry bus shared by the whole batch.  Counter
            and gauge totals match a scalar run per point; with more
            than one point the *interleaving* of emissions differs from
            running the points back to back.
        check: Optional invariant checker (defaults to the process-wide
            one); runs the array-state fluid checks each tick.
    """

    def __init__(
        self,
        points: Sequence[BatchPoint],
        trace_interval: Optional[float] = None,
        obs=None,
        check=None,
    ) -> None:
        from repro.check import resolve as resolve_check

        if not points:
            raise ValueError("at least one point is required")
        self.points = list(points)
        self.obs = obs
        self.check = resolve_check(check)
        if trace_interval is None and obs is not None:
            trace_interval = obs.sample_interval
        if trace_interval is not None and trace_interval <= 0:
            raise ValueError(
                f"trace_interval must be positive, got {trace_interval}"
            )
        self.trace_interval = trace_interval

        n_points = len(self.points)
        self.n_points = n_points
        self._rngs = [random.Random(p.seed) for p in self.points]

        # ---- flatten flows (point, flow)-major -----------------------
        pf: List[int] = []  # owning point per flow row
        rtt: List[float] = []
        start: List[float] = []
        stop: List[float] = []
        size: List[float] = []
        mss: List[float] = []
        flow_ids: List[int] = []
        cc_of_row: List[str] = []
        kwargs_of_row: List[Dict[str, object]] = []
        starts_p: List[int] = []
        counts_p: List[int] = []
        for p, point in enumerate(self.points):
            rng = self._rngs[p]
            starts_p.append(len(pf))
            counts_p.append(len(point.flows))
            for flow_id, spec in enumerate(point.flows):
                base = spec.rtt if spec.rtt is not None else point.link.rtt
                begin = spec.start_time
                if point.start_jitter > 0:
                    begin += rng.uniform(0.0, point.start_jitter)
                pf.append(p)
                rtt.append(base)
                start.append(begin)
                stop.append(
                    spec.stop_time if spec.stop_time is not None
                    else math.inf
                )
                size.append(
                    spec.size_bytes if spec.size_bytes is not None
                    else math.inf
                )
                mss.append(float(point.link.mss))
                flow_ids.append(flow_id)
                cc_of_row.append(point.cc_names[flow_id])
                kwargs_of_row.append(dict(spec.cc_kwargs))

        n_flows = len(pf)
        self.n_flows = n_flows
        self._pf = np.array(pf, dtype=np.int64)
        self._rtt = np.array(rtt)
        self._start = np.array(start)
        self._stop = np.array(stop)
        self._size = np.array(size)
        self._mss = np.array(mss)
        self._flow_ids = np.array(flow_ids, dtype=np.int64)
        self._cc_of_row = cc_of_row
        self._starts_p = np.array(starts_p, dtype=np.int64)
        self._counts_py = counts_p
        self._arange_f = np.arange(n_flows, dtype=np.int64)

        # ---- kernels: one per control law present in the batch -------
        by_cc: Dict[str, List[int]] = {}
        for row, cc in enumerate(cc_of_row):
            by_cc.setdefault(cc, []).append(row)
        self.kernels: List[VecKernel] = []
        self._loss_based = np.zeros(n_flows, dtype=bool)
        for cc, rows in by_cc.items():
            cls = laws_registry.vec_class(cc)
            idx = np.array(rows, dtype=np.int64)
            kernel = cls(
                idx,
                self._rtt[idx],
                self._mss[idx],
                [kwargs_of_row[r] for r in rows],
            )
            self.kernels.append(kernel)
            self._loss_based[idx] = kernel.loss_based

        # ---- per-point scalars ---------------------------------------
        dts: List[float] = []
        for p, point in enumerate(self.points):
            lo = starts_p[p]
            min_rtt = min(rtt[lo : lo + counts_p[p]])
            step = point.dt if point.dt is not None else min_rtt / 4.0
            if step <= 0:
                raise ValueError(f"dt must be positive, got {step}")
            dts.append(step)
        self._dt_py = dts
        self._dt = np.array(dts)
        self._capacity = np.array(
            [p.link.capacity for p in self.points], dtype=np.float64
        )
        self._buffer = np.array(
            [p.link.buffer_bytes for p in self.points], dtype=np.float64
        )
        self._link_mss = [p.link.mss for p in self.points]
        self._warmup = np.array([p.warmup for p in self.points])
        self._steps_p = np.array(
            [
                int(math.ceil(p.duration / dts[i]))
                for i, p in enumerate(self.points)
            ],
            dtype=np.int64,
        )
        self._eq_rtt = np.array(
            [
                all(
                    rtt[starts_p[p] + j] == rtt[starts_p[p]]
                    for j in range(counts_p[p])
                )
                for p in range(n_points)
            ],
            dtype=bool,
        )
        # Closed-form BDP anchor (meaningful for equal-RTT points only).
        self._bdp = self._capacity * self._rtt[self._starts_p]
        min_rtt_p = np.array(
            [
                min(rtt[starts_p[p] : starts_p[p] + counts_p[p]])
                for p in range(n_points)
            ]
        )
        self._rate_slack = self._capacity * 1e-6 + 2.0 / min_rtt_p

        # ---- scenario extensions (repro.scenario) --------------------
        # Capacity traces: per-point step-event lists; ``self._capacity``
        # becomes the *current* capacity (the rate slack above keeps the
        # base, like the scalar path).  AQM: one pure-Python decision
        # object per point (shared with the scalar substrate, so both
        # see the same floats).  Both lists are empty/None on the
        # drop-tail/constant default, leaving the tick loop untouched.
        self._cap_events: List[List[Tuple[float, float]]] = []
        self._cap_cursor = [0] * n_points
        trace_points: List[int] = []
        for p, point in enumerate(self.points):
            trace = getattr(point.link, "capacity_trace", None)
            if trace is not None and not trace.is_constant:
                self._cap_events.append(list(trace.change_events()))
                self._capacity[p] = (
                    point.link.capacity * trace.scale_at(0.0)
                )
                self._bdp[p] = (
                    self._capacity[p] * self._rtt[self._starts_p[p]]
                )
                trace_points.append(p)
            else:
                self._cap_events.append([])
        self._trace_points = trace_points
        self._any_trace = bool(trace_points)
        self._aqms = [
            make_fluid_aqm(point.link, dts[p])
            for p, point in enumerate(self.points)
        ]
        self._aqm_points = [
            p for p, aqm in enumerate(self._aqms) if aqm is not None
        ]
        self._any_aqm = bool(self._aqm_points)
        self._aqm_ecn_f = np.zeros(n_flows, dtype=bool)
        for p in self._aqm_points:
            if self._aqms[p].ecn:
                lo = starts_p[p]
                self._aqm_ecn_f[lo : lo + counts_p[p]] = True
        #: Per-point AQM byte accounting (fluid analogue of LinkStats).
        self.aqm_dropped_bytes = np.zeros(n_points)
        self.marked_bytes = np.zeros(n_points)
        self.capacity_changes = [0] * n_points

        modes = [p.loss_mode for p in self.points]
        self._sync_p = np.array([m == "sync" for m in modes], dtype=bool)
        self._desync_p = np.array(
            [m == "desync" for m in modes], dtype=bool
        )
        # Batch-level fast-path flags: which code paths can any point
        # in this batch ever take?  (Value-neutral: skipped branches
        # are exact no-ops for batches without the triggering points.)
        self._has_sync = bool(self._sync_p.any())
        self._has_desync = bool(self._desync_p.any())
        self._has_prop = any(m == "proportional" for m in modes)
        self._all_prop = not (self._has_sync or self._has_desync)
        self._any_uneq = bool((~self._eq_rtt).any())

        # ---- sequential segment sums (see module docstring) ----------
        self._uniform_count = (
            counts_p[0] if len(set(counts_p)) == 1 else 0
        )
        self._sum_uniform = self._uniform_count > 0 and n_points >= 8
        self._sum_small = not self._sum_uniform and n_points < _SMALL_BATCH
        if not (self._sum_small or self._sum_uniform):
            max_flows = max(counts_p)
            counts = np.array(counts_p, dtype=np.int64)
            offsets = np.arange(max_flows, dtype=np.int64)
            self._slot_valid = offsets[:, None] < counts[None, :]
            rows = self._starts_p[None, :] + offsets[:, None]
            self._slot_rows = np.where(self._slot_valid, rows, 0)

        # ---- mutable run state ---------------------------------------
        self._inflight = np.zeros(n_flows)
        for kernel in self.kernels:
            self._inflight[kernel.rows] = kernel.initial_inflight
        self._finished = np.zeros(n_flows, dtype=bool)
        self._delivered = np.zeros(n_flows)
        self._delivered_window = np.zeros(n_flows)
        self._lost = np.zeros(n_flows)
        self._drop_accumulator = np.zeros(n_flows)
        self._drop_threshold = self._mss.copy()
        self._queue_integral = np.zeros(n_points)
        self._time_simulated = np.zeros(n_points)
        self._measure_start = np.zeros(n_points)
        self.queue_bytes = np.zeros(n_points)
        self._has_run = False
        #: Per point, per flow: congestion-backoff times (seconds).
        self.loss_events: List[List[List[float]]] = [
            [[] for _ in range(counts_p[p])] for p in range(n_points)
        ]
        #: Per point: (time, [inflight per flow], queue_bytes) rows.
        self.trace: List[List[Tuple[float, List[float], float]]] = [
            [] for _ in range(n_points)
        ]

    # -- sequential reductions --------------------------------------------

    def _segment_sum(self, values: np.ndarray) -> np.ndarray:
        """Per-point left-to-right sum of a per-flow column.

        Bitwise-identical to the scalar path's ``sum()`` over each
        point's flow list: float addition is not associative, so numpy's
        pairwise reductions (``ndarray.sum``, ``add.reduce``,
        ``add.reduceat``) are off by an ulp often enough to diverge the
        feedback loop.  Instead: batches of same-width points (the
        engine's common shape) reshape to ``[points, flows]`` and add
        column by column in place; small ragged batches accumulate
        Python floats (``tolist`` round-trips float64 exactly); wide
        ragged batches run one masked gather-add per flow *slot*,
        accumulating all points in parallel but strictly left-to-right
        within each point.  Padding slots add ``+0.0``, which is exact
        for these non-negative accumulators — the scalar loop's
        skipped terms are likewise ``+0.0`` contributions.
        """
        if self._sum_uniform:
            cols = values.reshape(self.n_points, self._uniform_count)
            acc = cols[:, 0].copy()
            for j in range(1, self._uniform_count):
                np.add(acc, cols[:, j], out=acc)
            return acc
        if self._sum_small:
            out = np.empty(self.n_points)
            vals = values.tolist()
            pos = 0
            for p, count in enumerate(self._counts_py):
                acc = 0.0
                for _ in range(count):
                    acc += vals[pos]
                    pos += 1
                out[p] = acc
            return out
        acc = np.zeros(self.n_points)
        for j in range(self._slot_rows.shape[0]):
            acc += np.where(
                self._slot_valid[j], values[self._slot_rows[j]], 0.0
            )
        return acc

    # -- queue solving ----------------------------------------------------

    def _solve_queue(
        self, w: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-point queue (bytes) implied by in-flight columns ``w``.

        Returns ``(queue, total)`` — the total is the same sequential
        sum the scalar path computes, reused by the overflow handler.
        Equal-RTT points take the closed form; the rest run the scalar
        path's 50-step bisection with converged points frozen (their
        ``lo``/``hi`` stop moving exactly when the scalar loop would
        have ``break``-ed, so iteration counts — and bits — match).
        """
        cap = self._capacity
        total = self._segment_sum(w)
        queue = np.maximum(0.0, total - self._bdp)
        if self._any_uneq:
            uneq = ~self._eq_rtt
            with np.errstate(all="ignore"):
                demand = self._segment_sum(
                    np.where(w > 0, w / self._rtt, 0.0)
                )
                queue = np.where(uneq, 0.0, queue)
                bis = uneq & (demand > cap)
                if bis.any():
                    lo = np.zeros(self.n_points)
                    hi = total.copy()
                    live = bis.copy()
                    for _ in range(50):
                        if not live.any():
                            break
                        mid = (lo + hi) / 2.0
                        qd = mid / cap
                        terms = np.where(
                            w > 0, w / (self._rtt + qd[self._pf]), 0.0
                        )
                        rate = self._segment_sum(terms)
                        go_lo = live & (rate > cap)
                        lo = np.where(go_lo, mid, lo)
                        hi = np.where(live & ~go_lo, mid, hi)
                        live = live & ~(hi - lo < 1.0)
                    queue = np.where(bis, (lo + hi) / 2.0, queue)
        return queue, total

    # -- main loop --------------------------------------------------------

    def run(self) -> List[SimulationResult]:
        """Advance every point to completion; results in point order."""
        if self._has_run:
            raise RuntimeError(
                "VecFluidSim.run() may only be called once per instance "
                "(accumulators are not reset); build a new batch for "
                "another trial"
            )
        self._has_run = True
        wall_start = perf_counter()
        obs = self.obs
        check = self.check
        pf = self._pf
        state = TickState(self.n_flows)
        state.dt = self._dt[pf]
        state.inflight = self._inflight
        lost_tick = state.lost_bytes  # shared buffer, scalar's list
        prev_rate = np.zeros(self.n_flows)
        queue_delay = np.zeros(self.n_points)
        now_p = np.zeros(self.n_points)
        measure_started = self._warmup == 0.0
        next_trace = np.zeros(self.n_points)
        trace_on = self.trace_interval is not None

        max_steps = int(self._steps_p.max())
        # Fast-path flags (value-neutral: the skipped expressions are
        # exact identities for batches with these shapes).
        uniform = int(self._steps_p.min()) == max_steps
        plain = (
            not self._start.any()
            and bool(np.isinf(self._stop).all())
            and bool(np.isinf(self._size).all())
        )
        all_started = bool(measure_started.all())
        p_true = np.ones(self.n_points, dtype=bool)
        f_true = np.ones(self.n_flows, dtype=bool)
        for step in range(max_steps):
            if uniform:
                p_act = p_true
                now_p += self._dt
            else:
                p_act = self._steps_p > step
                now_p = np.where(p_act, now_p + self._dt, now_p)
            if self._any_trace:
                self._apply_capacity_steps(now_p)
            if not all_started:
                newly = p_act & ~measure_started & (
                    now_p >= self._warmup
                )
                if newly.any():
                    measure_started = measure_started | newly
                    self._measure_start = np.where(
                        newly, now_p, self._measure_start
                    )
                    self._delivered_window[newly[pf]] = 0.0
                    all_started = bool(measure_started.all())

            now_f = now_p[pf]
            if uniform and plain:
                act = f_true  # sizes are infinite: nothing finishes
            else:
                act = (
                    p_act[pf]
                    & ~self._finished
                    & (now_f >= self._start)
                    & (now_f < self._stop)
                )

            # 1. Flows update their in-flight targets.
            state.now = now_f
            state.throughput = prev_rate
            state.queue_delay = queue_delay[pf]
            state.rtt_measured = self._rtt + state.queue_delay
            state.active = act
            for kernel in self.kernels:
                kernel.tick(state)
            if act is f_true:
                lost_tick.fill(0.0)
            else:
                lost_tick[act] = 0.0
            if check is not None:
                check.fluid_vec_flows(
                    now_f,
                    state.inflight,
                    act,
                    self._flow_ids,
                    self._cc_of_row,
                )

            w = np.where(act, state.inflight, 0.0)

            # 2-3. Solve the queue; handle overflow.
            queue, total = self._solve_queue(w)
            over = queue > self._buffer
            if over.any():
                queue, w = self._handle_overflow(
                    state, now_p, w, queue, total, over, lost_tick
                )
            if self._any_aqm:
                queue, w = self._apply_aqm(
                    state, now_p, w, queue, lost_tick
                )
            self.queue_bytes = queue
            queue_delay = queue / self._capacity

            if trace_on:
                due = p_act & (now_p >= next_trace)
                if due.any():
                    next_trace = np.where(
                        due, now_p + self.trace_interval, next_trace
                    )
                    self._record_trace(due, now_p, w, queue, prev_rate, act)

            # 4. Integrate throughput.
            with np.errstate(all="ignore"):
                rate = np.where(w > 0, w / (self._rtt + queue_delay[pf]), 0.0)
            prev_rate = rate
            contrib = rate * state.dt
            self._delivered += contrib
            if all_started:
                self._delivered_window += contrib
            else:
                self._delivered_window += np.where(
                    measure_started[pf], contrib, 0.0
                )
            if not plain:
                done = (w > 0) & (self._delivered >= self._size)
                if done.any():
                    self._finished = self._finished | done
            if check is not None:
                check.fluid_vec_conservation(
                    now_p,
                    total_rate=self._segment_sum(rate),
                    capacity=self._capacity,
                    queue=queue,
                    buffer_bytes=self._buffer,
                    slack=self._rate_slack,
                    strict=queue < self._buffer - 1e-9,
                    active=p_act,
                )
            if uniform and all_started:
                self._queue_integral += queue * self._dt
                self._time_simulated += self._dt
            else:
                tally = p_act & measure_started
                self._queue_integral = self._queue_integral + np.where(
                    tally, queue * self._dt, 0.0
                )
                self._time_simulated = self._time_simulated + np.where(
                    tally, self._dt, 0.0
                )

        if obs is not None:
            for p in range(self.n_points):
                obs.count("fluid.steps", int(self._steps_p[p]))
            obs.record_time("sim.run", perf_counter() - wall_start)
        return self._build_results()

    # -- overflow ---------------------------------------------------------

    def _handle_overflow(
        self,
        state: TickState,
        now_p: np.ndarray,
        w: np.ndarray,
        queue: np.ndarray,
        total: np.ndarray,
        over: np.ndarray,
        lost_tick: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drop each overflowing point's excess; victims back off."""
        pf = self._pf
        excess = queue - self._buffer
        dead = over & (total <= 0)
        dropping_pts = over & (total > 0)
        if not dropping_pts.any():
            return np.where(dead, self._buffer, queue), w
        if self.obs is not None:
            for p in np.nonzero(dropping_pts)[0]:
                exc = float(excess[p])
                self.obs.count(
                    "link.dropped_packets",
                    max(int(exc / self._link_mss[p]), 1),
                )
                self.obs.count("link.dropped_bytes", int(exc))
                self.obs.event(
                    "link.drop",
                    time=float(now_p[p]),
                    dropped_bytes=exc,
                    queued_bytes=float(self._buffer[p]),
                )

        # Drops land in proportion to in-flight (= queue) share.
        dropping_f = dropping_pts[pf]
        with np.errstate(all="ignore"):
            shares = np.where(dropping_f, w / total[pf], 0.0)
        hit = dropping_f & (w > 0)
        dropped = np.where(hit, excess[pf] * shares, 0.0)
        np.copyto(w, np.maximum(w - dropped, 0.0), where=hit)
        for kernel in self.kernels:
            kernel.on_drop(state, dropped, hit)
        self._lost += dropped
        lost_tick += dropped
        self._drop_accumulator += dropped

        responsive = self._loss_based & (w > 0) & dropping_f
        self._backoff_victims(state, now_p, w, shares, responsive, dropping_pts)

        solved, _ = self._solve_queue(w)
        np.copyto(
            queue, np.minimum(solved, self._buffer), where=dropping_pts
        )
        if dead.any():
            np.copyto(queue, self._buffer, where=dead)
        return queue, w

    def _backoff_victims(
        self,
        state: TickState,
        now_p: np.ndarray,
        w: np.ndarray,
        shares: np.ndarray,
        responsive: np.ndarray,
        pts: np.ndarray,
    ) -> None:
        """Select and back off loss victims among ``responsive`` rows.

        ``pts`` masks the points where a congestion signal fired this
        tick (overflow or AQM); the sync/desync/proportional admission
        logic — and its RNG draw order — is the scalar substrate's
        :meth:`repro.fluidsim.core.FluidSimulation._pick_victims`.
        Mutates ``w`` in place for admitted victims.
        """
        pf = self._pf
        victims = np.zeros(self.n_flows, dtype=bool)
        if self._has_sync:
            victims |= responsive & self._sync_p[pf]
        desync = (
            pts & self._desync_p
            if self._has_desync
            else None
        )
        if desync is not None and desync.any():
            scores = np.where(responsive, shares, -np.inf)
            best = np.maximum.reduceat(scores, self._starts_p)
            # Ties break to the lowest index, like Python's max().
            cand = responsive & (scores == best[pf])
            first = np.minimum.reduceat(
                np.where(cand, self._arange_f, self.n_flows),
                self._starts_p,
            )
            sel = first[desync]
            victims[sel[sel < self.n_flows]] = True
        if self._has_prop:
            prop = (
                responsive
                if self._all_prop
                else responsive
                & ~self._sync_p[pf]
                & ~self._desync_p[pf]
            )
            ready = prop & (
                self._drop_accumulator >= self._drop_threshold
            )
            for row in np.nonzero(ready)[0]:
                victims[row] = True
                self._drop_accumulator[row] = 0.0
                # Jitter the next loss-perception threshold (scalar
                # draw order: per admitted victim, ascending flow id).
                p = int(pf[row])
                self._drop_threshold[row] = self._link_mss[p] * (
                    0.5 + self._rngs[p].random()
                )

        if victims.any():
            for kernel in self.kernels:
                kernel.on_loss(state, victims)
            np.minimum(w, state.inflight, out=w, where=victims)
            for row in np.nonzero(victims)[0]:
                p = int(pf[row])
                self.loss_events[p][int(self._flow_ids[row])].append(
                    float(now_p[p])
                )

    def _apply_capacity_steps(self, now_p: np.ndarray) -> None:
        """Apply due capacity-trace steps to traced points.

        Mirrors the scalar substrate: a step takes effect on the first
        tick whose time reaches the step time, rescaling the point's
        capacity *and* its closed-form BDP anchor (the scalar path
        recomputes ``capacity · rtt`` fresh each solve).
        """
        for p in self._trace_points:
            events = self._cap_events[p]
            cursor = self._cap_cursor[p]
            if cursor >= len(events):
                continue
            now = float(now_p[p])
            base = self.points[p].link.capacity
            moved = False
            while cursor < len(events) and now >= events[cursor][0]:
                scale = events[cursor][1]
                cursor += 1
                cap = base * scale
                self._capacity[p] = cap
                self.capacity_changes[p] += 1
                if self.obs is not None:
                    self.obs.count("link.capacity_changes")
                    self.obs.event(
                        "link.capacity_change", time=now, capacity=cap
                    )
                if self.check is not None:
                    self.check.capacity_change(now, cap)
                moved = True
            if moved:
                self._cap_cursor[p] = cursor
                self._bdp[p] = (
                    self._capacity[p] * self._rtt[self._starts_p[p]]
                )

    def _apply_aqm(
        self,
        state: TickState,
        now_p: np.ndarray,
        w: np.ndarray,
        queue: np.ndarray,
        lost_tick: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply this tick's AQM decisions; returns (queue, w).

        The per-point decision objects are the *same* pure-Python
        classes the scalar substrate ticks (:mod:`repro.fluidsim
        .aqmfluid`), fed plain floats, and the returned volumes are
        applied with the overflow handler's exact arithmetic — which is
        what keeps scalar and vec AQM trajectories bit-identical.
        """
        pf = self._pf
        vol = np.zeros(self.n_points)
        fired = False
        for p in self._aqm_points:
            v = self._aqms[p].tick(
                float(now_p[p]),
                float(queue[p]),
                float(self._capacity[p]),
                self._dt_py[p],
            )
            if v > 0.0:
                vol[p] = v
                fired = True
        if not fired:
            return queue, w
        total = self._segment_sum(w)
        firing = (vol > 0.0) & (total > 0.0)
        if not firing.any():
            return queue, w
        vol = np.where(firing, np.minimum(vol, total), 0.0)

        firing_f = firing[pf]
        with np.errstate(all="ignore"):
            shares = np.where(firing_f, w / total[pf], 0.0)
        aff = firing_f & (w > 0)
        amount = np.where(aff, vol[pf] * shares, 0.0)
        # Marks and drops alike feed loss perception (RFC 3168: a mark
        # elicits the same control response as a loss).
        self._drop_accumulator += amount
        drop_hit = aff & ~self._aqm_ecn_f
        dropped = np.where(drop_hit, amount, 0.0)
        np.copyto(w, np.maximum(w - dropped, 0.0), where=drop_hit)
        for kernel in self.kernels:
            kernel.on_drop(state, dropped, drop_hit)
        self._lost += dropped
        lost_tick += dropped

        for p in np.nonzero(firing)[0]:
            p = int(p)
            volume = float(vol[p])
            mss = self._link_mss[p]
            if self._aqms[p].ecn:
                self.marked_bytes[p] += volume
                if self.obs is not None:
                    self.obs.count(
                        "link.ecn_marks", max(int(volume / mss), 1)
                    )
                    self.obs.event(
                        "link.mark",
                        time=float(now_p[p]),
                        marked_bytes=volume,
                        queued_bytes=float(queue[p]),
                    )
            else:
                self.aqm_dropped_bytes[p] += volume
                if self.obs is not None:
                    self.obs.count(
                        "link.aqm_drops", max(int(volume / mss), 1)
                    )
                    self.obs.count(
                        "link.dropped_packets",
                        max(int(volume / mss), 1),
                    )
                    self.obs.count("link.dropped_bytes", int(volume))
                    self.obs.event(
                        "link.drop",
                        time=float(now_p[p]),
                        dropped_bytes=volume,
                        queued_bytes=float(queue[p]),
                        aqm=True,
                    )

        responsive = self._loss_based & (w > 0) & firing_f
        self._backoff_victims(state, now_p, w, shares, responsive, firing)

        solved, _ = self._solve_queue(w)
        np.copyto(
            queue, np.minimum(solved, self._buffer), where=firing
        )
        return queue, w

    # -- tracing ----------------------------------------------------------

    def _record_trace(
        self,
        due: np.ndarray,
        now_p: np.ndarray,
        w: np.ndarray,
        queue: np.ndarray,
        prev_rate: np.ndarray,
        act: np.ndarray,
    ) -> None:
        labels: List[Optional[str]] = [None] * self.n_flows
        if self.obs is not None:
            for kernel in self.kernels:
                names = kernel.state_labels()
                if names is not None:
                    for row, name in zip(kernel.rows, names):
                        labels[int(row)] = name
        w_list = w.tolist()
        for p in np.nonzero(due)[0]:
            p = int(p)
            lo = int(self._starts_p[p])
            hi = lo + self._counts_py[p]
            now = float(now_p[p])
            self.trace[p].append((now, w_list[lo:hi], float(queue[p])))
            if self.obs is None:
                continue
            self.obs.gauge("link.queue_bytes", float(queue[p]))
            for row in range(lo, hi):
                if not act[row]:
                    continue
                self.obs.sample(
                    now,
                    int(self._flow_ids[row]),
                    cc=self._cc_of_row[row],
                    cwnd=w_list[row],
                    in_flight=w_list[row],
                    pacing_rate=float(prev_rate[row]),
                    state=labels[row],
                )

    # -- results ----------------------------------------------------------

    def _build_results(self) -> List[SimulationResult]:
        delivered = self._delivered.tolist()
        window = self._delivered_window.tolist()
        lost = self._lost.tolist()
        results = []
        for p, point in enumerate(self.points):
            lo = int(self._starts_p[p])
            count = self._counts_py[p]
            measured = max(
                point.duration - point.warmup, self._dt_py[p]
            )
            flows = []
            for j in range(count):
                row = lo + j
                sent = delivered[row] + lost[row]
                flows.append(
                    FlowResult(
                        flow_id=j,
                        cc=self._cc_of_row[row],
                        throughput=window[row] / measured,
                        mean_rtt=None,
                        min_rtt=float(self._rtt[row]),
                        loss_rate=(
                            lost[row] / sent if sent > 0 else 0.0
                        ),
                        delivered_bytes=int(window[row]),
                        retransmits=int(lost[row] / point.link.mss),
                    )
                )
            time_sim = float(self._time_simulated[p])
            mean_queue = (
                float(self._queue_integral[p]) / time_sim
                if time_sim > 0
                else 0.0
            )
            total_sent = sum(delivered[lo : lo + count]) + sum(
                lost[lo : lo + count]
            )
            drop_rate = (
                sum(lost[lo : lo + count]) / total_sent
                if total_sent > 0
                else 0.0
            )
            if self.obs is not None:
                self.obs.gauge("link.mean_queue_bytes", mean_queue)
            results.append(
                SimulationResult(
                    flows=flows,
                    duration=point.duration,
                    warmup=point.warmup,
                    mean_queue_bytes=mean_queue,
                    mean_queuing_delay=mean_queue / point.link.capacity,
                    drop_rate=drop_rate,
                    events_processed=int(self._steps_p[p]),
                )
            )
        return results


def run_fluid_vec_batch(
    points: Sequence[BatchPoint],
    obs=None,
    check=None,
) -> List[SimulationResult]:
    """Run a batch of fluid points through the vectorized substrate.

    ``obs``/``check`` default to the process-wide bus and checker like
    :func:`repro.fluidsim.core.run_fluid`.
    """
    from repro.obs.bus import resolve

    sim = VecFluidSim(points, obs=resolve(obs), check=check)
    return sim.run()


def run_fluid_vec(
    link: LinkConfig,
    flows: Sequence[FluidSpec],
    duration: float,
    warmup: float = 0.0,
    dt: Optional[float] = None,
    loss_mode: str = "proportional",
    seed: int = 0,
    start_jitter: float = 0.0,
    obs=None,
    check=None,
) -> SimulationResult:
    """Drop-in vectorized counterpart of :func:`repro.fluidsim.core
    .run_fluid` — same arguments, bitwise-identical result."""
    return run_fluid_vec_batch(
        [
            BatchPoint(
                link=link,
                flows=flows,
                duration=duration,
                warmup=warmup,
                dt=dt,
                loss_mode=loss_mode,
                seed=seed,
                start_jitter=start_jitter,
            )
        ],
        obs=obs,
        check=check,
    )[0]
