"""Deterministic fluid-model AQM decisions (RED and CoDel).

The packet substrate runs real RED/CoDel per packet
(:mod:`repro.sim.aqm`).  The fluid substrates need the same disciplines
as *deterministic per-tick byte quantities*: RED becomes its expected
drop/mark volume (drop probability × bytes served per tick), CoDel
keeps its exact RFC 8289 state machine but observes the fluid queue's
sojourn once per tick.  Determinism matters twice over — fluid results
must be reproducible without consuming the simulation's RNG stream
(which would perturb the default drop-tail path's seeded trajectories),
and the scalar and vectorized substrates must stay bit-identical, which
they achieve by calling these *same* pure-Python decision objects with
plain floats and applying the returned quantities with identical
arithmetic.

Both classes expose ``tick(now, queue, capacity, dt) -> float``: the
AQM-affected byte volume for this tick (0.0 almost always).  Whether
those bytes are dropped (removed from flow windows) or ECN-marked
(windows untouched, senders back off) is the caller's job, driven by
the spec's ``ecn`` flag.
"""

from __future__ import annotations

from typing import Union

from repro.scenario.spec import (
    BottleneckSpec,
    CoDelSpec,
    DropTailSpec,
    REDSpec,
)
from repro.sim.aqm import CoDel, CoDelConfig


class FluidRed:
    """RED as an expected-byte-volume process.

    The EWMA average tracks the solved fluid queue.  Packet RED updates
    the average once per arrival with weight ``w``; a fluid tick spans
    ``capacity·dt/mss`` arrivals, so the per-tick weight is the
    compounded ``1 − (1 − w)^arrivals`` — the same time constant at any
    tick length.  The drop probability is Floyd's ramp (no count
    correction: uniformization de-burstifies a packet lottery, while the
    fluid volume is already smooth).
    """

    def __init__(
        self, spec: REDSpec, buffer_bytes: float, mss: float, dt: float,
        capacity: float,
    ) -> None:
        self.min_th = spec.min_frac * buffer_bytes
        self.max_th = spec.max_frac * buffer_bytes
        self.max_p = spec.max_p
        self.ecn = spec.ecn
        arrivals = max(capacity * dt / mss, 1.0)
        self.weight = 1.0 - (1.0 - spec.weight) ** arrivals
        self.avg = 0.0

    def tick(
        self, now: float, queue: float, capacity: float, dt: float
    ) -> float:
        """Expected AQM-affected bytes for this tick."""
        self.avg = (1.0 - self.weight) * self.avg + self.weight * queue
        if self.avg < self.min_th:
            return 0.0
        if self.avg >= self.max_th:
            p = 1.0
        else:
            p = (
                self.max_p
                * (self.avg - self.min_th)
                / (self.max_th - self.min_th)
            )
        return p * capacity * dt


class FluidCodel:
    """CoDel driven by the fluid queue's sojourn time.

    Wraps the *exact* packet-substrate state machine
    (:class:`repro.sim.aqm.CoDel`): each tick the queue's sojourn
    ``Q/C`` stands in for the head packet's, and a drop decision is one
    MSS of affected volume (CoDel signals per-packet, not
    per-byte-share, which is what makes it RTT-fair).
    """

    def __init__(self, spec: CoDelSpec, mss: float) -> None:
        self.ecn = spec.ecn
        self.mss = float(mss)
        self._codel = CoDel(
            CoDelConfig(target=spec.target, interval=spec.interval)
        )

    def tick(
        self, now: float, queue: float, capacity: float, dt: float
    ) -> float:
        """One MSS when the CoDel law fires this tick, else 0."""
        if queue <= 0.0:
            # Empty queue: sojourn 0 resets the above-target clock.
            self._codel.on_dequeue(now, 0.0)
            return 0.0
        if self._codel.on_dequeue(now, queue / capacity):
            return self.mss
        return 0.0


FluidAqm = Union[FluidRed, FluidCodel]


def make_fluid_aqm(
    link: BottleneckSpec, dt: float
) -> Union[FluidAqm, None]:
    """The fluid AQM decision object for ``link``, or None for drop-tail."""
    aqm = getattr(link, "aqm", None)
    if aqm is None or isinstance(aqm, DropTailSpec):
        return None
    if isinstance(aqm, REDSpec):
        return FluidRed(
            aqm,
            buffer_bytes=link.buffer_bytes,
            mss=link.mss,
            dt=dt,
            capacity=link.capacity,
        )
    if isinstance(aqm, CoDelSpec):
        return FluidCodel(aqm, mss=link.mss)
    raise ValueError(f"no fluid model for AQM spec {aqm!r}")
