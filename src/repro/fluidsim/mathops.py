"""Shared transcendental kernels for the two fluid substrates.

The vectorized substrate (:mod:`repro.fluidsim.vec`) evaluates control
laws with numpy ufuncs, and numpy's ``power``/``exp2`` are *not*
bit-identical to CPython's ``**`` (their SIMD kernels round a few ulp
differently on a small fraction of inputs).  Sums, products, ratios,
mins and maxes are exact either way — only the power functions differ —
so both fluid adapters route every power through the helpers below.
numpy ufuncs are elementwise position-independent (a scalar call and an
array call produce the same bits), which is what makes the scalar and
vectorized fluid paths agree *bitwise*, tick for tick, rather than
merely within a tolerance.

The packet substrate keeps the pure-Python law functions: its numbers
are per-ACK and never compared bitwise against the fluid model.

This module is also the project's numpy import choke point for the
fluid substrates: a missing numpy fails here with an actionable
message instead of a bare ``ModuleNotFoundError`` deep inside a sweep.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - environment-dependent
    raise ImportError(
        "the fluid simulator requires numpy>=1.24, which is a declared "
        "dependency of this package; install it with `pip install -e .` "
        "(or `pip install numpy`)"
    ) from exc

from repro.cc.laws import cubic as cubic_laws
from repro.cc.laws import vivace as vivace_laws

__all__ = [
    "np",
    "exp2",
    "cubic_k",
    "cubic_window",
    "vivace_utility",
    "vivace_score",
]


def exp2(x):
    """``2**x`` via numpy (slow-start doubling factors)."""
    return np.exp2(x)


def cubic_k(w_max):
    """CUBIC's ``K = cbrt(W_max (1 − β) / C)``, numpy-rounded.

    ``np.power`` explicitly — a Python ``**`` would dispatch to
    CPython's pow for float inputs (the scalar adapter's case) and to
    numpy's for arrays, and the two round differently often enough to
    break scalar↔vec bit parity.
    """
    return np.power(
        w_max * (1.0 - cubic_laws.BETA_CUBIC) / cubic_laws.C_CUBIC,
        1.0 / 3.0,
    )


def cubic_window(t, k, w_max):
    """CUBIC Equation (1) target window in segments, numpy-rounded."""
    return cubic_laws.C_CUBIC * np.power(t - k, 3.0) + w_max


def vivace_utility(rate, rtt_gradient, loss_rate, latency_coeff, loss_coeff):
    """Vivace's utility (rate in bytes/s, scored in Mbps), numpy pow."""
    x_mbps = rate * 8.0 / 1e6
    with np.errstate(all="ignore"):
        value = (
            np.power(x_mbps, vivace_laws.THROUGHPUT_EXPONENT)
            - latency_coeff * x_mbps * np.maximum(0.0, rtt_gradient)
            - loss_coeff * x_mbps * loss_rate
        )
    return np.where(x_mbps <= 0, 0.0, value)


def vivace_score(
    elapsed, delivered_bytes, lost_bytes, rtt_gradient, latency_coeff,
    loss_coeff,
):
    """Utility of one finished monitor interval (numpy-rounded pow)."""
    delivered_bytes = np.asarray(delivered_bytes, dtype=np.float64)
    lost_bytes = np.asarray(lost_bytes, dtype=np.float64)
    elapsed = np.maximum(np.asarray(elapsed, dtype=np.float64), 1e-6)
    achieved = delivered_bytes / elapsed
    total = delivered_bytes + lost_bytes
    with np.errstate(all="ignore"):
        loss = np.where(total > 0, lost_bytes / total, 0.0)
    return vivace_utility(
        achieved, rtt_gradient, loss, latency_coeff, loss_coeff
    )
