"""Fluid-flow bottleneck simulator.

A fast, tick-based companion to :mod:`repro.sim` used for the paper's
large sweeps (50-flow Nash-equilibrium searches, distribution evolutions).
See :mod:`repro.fluidsim.core` for the model and its relation to §2.4's
synchronization bounds.
"""

from repro.fluidsim.core import (
    LOSS_MODES,
    FluidSimulation,
    FluidSpec,
    TickContext,
    run_fluid,
)
from repro.fluidsim.flows import (
    FluidBBR,
    FluidBBR2,
    FluidCopa,
    FluidCubic,
    FluidFlow,
    FluidReno,
    FluidVegas,
    FluidVivace,
    available_fluid_algorithms,
    make_fluid_flow,
)

__all__ = [
    "LOSS_MODES",
    "FluidSimulation",
    "FluidSpec",
    "TickContext",
    "run_fluid",
    "FluidBBR",
    "FluidBBR2",
    "FluidCopa",
    "FluidCubic",
    "FluidFlow",
    "FluidReno",
    "FluidVegas",
    "FluidVivace",
    "available_fluid_algorithms",
    "make_fluid_flow",
]
