"""Fluid-flow bottleneck simulator.

A fast, tick-based companion to :mod:`repro.sim` used for the paper's
large sweeps (50-flow Nash-equilibrium searches, distribution evolutions).
See :mod:`repro.fluidsim.core` for the model and its relation to §2.4's
synchronization bounds, and :mod:`repro.fluidsim.vec` for the
vectorized (numpy array-of-flows, multi-point batched) substrate that
reproduces the scalar trajectories bit for bit.
"""

from repro.fluidsim.core import (
    LOSS_MODES,
    FluidSimulation,
    FluidSpec,
    TickContext,
    run_fluid,
)
from repro.fluidsim.vec import (
    BatchPoint,
    VecFluidSim,
    run_fluid_vec,
    run_fluid_vec_batch,
)
from repro.fluidsim.flows import (
    FluidBBR,
    FluidBBR2,
    FluidCopa,
    FluidCubic,
    FluidFlow,
    FluidReno,
    FluidVegas,
    FluidVivace,
    available_fluid_algorithms,
    make_fluid_flow,
)

__all__ = [
    "LOSS_MODES",
    "FluidSimulation",
    "FluidSpec",
    "TickContext",
    "run_fluid",
    "BatchPoint",
    "VecFluidSim",
    "run_fluid_vec",
    "run_fluid_vec_batch",
    "FluidBBR",
    "FluidBBR2",
    "FluidCopa",
    "FluidCubic",
    "FluidFlow",
    "FluidReno",
    "FluidVegas",
    "FluidVivace",
    "available_fluid_algorithms",
    "make_fluid_flow",
]
