"""Fluid-model congestion-control dynamics: per-tick adapters over
:mod:`repro.cc.laws`.

Each class drives the *same* control-law kernels as its per-ACK
counterpart in :mod:`repro.cc`, at tick granularity: instead of
processing individual ACKs, a flow observes last tick's throughput and
RTT (:class:`~repro.fluidsim.core.TickContext`) and updates its
in-flight target.  Every constant, gain table, and state-machine rule
comes from the law modules — e.g. :class:`FluidCubic` evaluates
:func:`repro.cc.laws.cubic.window` and backs off via
:func:`repro.cc.laws.cubic.reduce_w_max` exactly as
:class:`repro.cc.cubic.Cubic` does — so model assumptions validated
against the packet simulator carry over structurally, not by
convention.  The cross-substrate parity suite (``tests/test_parity.py``)
enforces the resulting agreement end to end.

Power functions (slow-start doubling, CUBIC's cube and cube root,
Vivace's utility exponent) are evaluated through
:mod:`repro.fluidsim.mathops` so this scalar path and the vectorized
one (:mod:`repro.fluidsim.vec`) round identically and stay *bitwise*
comparable; see that module for why.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.cc.laws import bbr as bbr_laws
from repro.cc.laws import bbr2 as bbr2_laws
from repro.cc.laws import copa as copa_laws
from repro.cc.laws import cubic as cubic_laws
from repro.cc.laws import registry as laws_registry
from repro.cc.laws import reno as reno_laws
from repro.cc.laws import vegas as vegas_laws
from repro.cc.laws import vivace as vivace_laws
from repro.cc.laws.base import (
    INITIAL_CWND_SEGMENTS,
    MIN_CWND_SEGMENTS,
    CongestionEventGate,
)
from repro.fluidsim import mathops
from repro.fluidsim.core import TickContext
from repro.util.filters import WindowedMax, WindowedMin

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.core import Checker
    from repro.obs.bus import Telemetry


class FluidFlow:
    """Base class: a congestion-controlled fluid at one bottleneck."""

    name = "fluid"
    loss_based = True

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
    ) -> None:
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        self.flow_id = flow_id
        self.rtt = rtt
        self.start_time = start_time
        self.mss = mss
        self.inflight = float(INITIAL_CWND_SEGMENTS * mss)  # IW10.
        #: Floor on in-flight data, bytes (the 2-segment cwnd floor).
        self.min_inflight = float(MIN_CWND_SEGMENTS * mss)
        self._loss_gate = CongestionEventGate()
        self._last_rtt_measured = rtt
        #: Optional telemetry bus; None (the default) means disabled, and
        #: every emission site guards on that so uninstrumented sweeps pay
        #: a single attribute test per event site.
        self.obs: Optional["Telemetry"] = None
        #: Optional invariant checker; same guard discipline as ``obs``.
        self.check: Optional["Checker"] = None

    @property
    def state(self) -> Optional[str]:
        """State-machine label for tracing; None for stateless flows."""
        return None

    def emit(self, name: str, now: float, **fields: object) -> None:
        """Emit a typed event tagged with this flow's CCA and id."""
        obs = self.obs
        if obs is not None:
            obs.event(
                name, time=now, cc=self.name, flow_id=self.flow_id, **fields
            )

    def emit_state(self, now: float, old: str, new: str) -> None:
        """Emit a ``cc.state`` transition event (BBR-family phases)."""
        check = self.check
        if check is not None:
            check.state_transition(
                now, self.name, self.flow_id, old, new, substrate="fluid"
            )
        obs = self.obs
        if obs is not None:
            obs.event(
                "cc.state",
                time=now,
                cc=self.name,
                flow_id=self.flow_id,
                **{"from": old, "to": new},
            )
            obs.count("cc.state_transitions")

    def tick(self, ctx: TickContext) -> None:
        """Observe last tick's state and update :attr:`inflight`."""
        raise NotImplementedError

    def on_loss(self, now: float) -> None:
        """Congestion backoff (rate-limited to once per RTT by callers)."""

    def on_drop(self, now: float, dropped_bytes: float) -> None:
        """Physical drop of fluid (loss-agnostic flows just lose bytes)."""

    def _loss_guard(self, now: float) -> bool:
        """True when a loss should count as a new congestion event."""
        return self._loss_gate.admit(now, self._last_rtt_measured)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} id={self.flow_id} "
            f"inflight={self.inflight:.0f}B>"
        )


class FluidCubic(FluidFlow):
    """CUBIC as a fluid: slow start, cubic growth, 0.7 backoff."""

    name = "cubic"
    loss_based = True

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
        fast_convergence: bool = True,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        self.fast_convergence = fast_convergence
        self._in_slow_start = True
        self._w_max_pkts: Optional[float] = None
        self._epoch_start: Optional[float] = None
        self._k = 0.0

    def tick(self, ctx: TickContext) -> None:
        self._last_rtt_measured = ctx.rtt_measured
        if self._in_slow_start:
            self.inflight *= float(mathops.exp2(ctx.dt / ctx.rtt_measured))
            return
        now = ctx.now
        if self._epoch_start is None:
            # cubic_laws.begin_epoch, with K through the shared kernel.
            self._epoch_start = now
            cwnd_segments = self.inflight / self.mss
            if self._w_max_pkts is None or self._w_max_pkts < cwnd_segments:
                self._w_max_pkts, self._k = cwnd_segments, 0.0
            else:
                self._k = float(mathops.cubic_k(self._w_max_pkts))
        t = now - self._epoch_start
        target_pkts = float(
            mathops.cubic_window(t, self._k, self._w_max_pkts)
        )
        target = max(target_pkts * self.mss, self.min_inflight)
        # The window is ack-clocked: it cannot grow faster than one extra
        # packet per delivered packet (slow-start bound), with a floor of
        # one segment per RTT so a starved flow can still probe.
        max_growth = max(
            ctx.throughput * ctx.dt,
            self.mss * ctx.dt / ctx.rtt_measured,
        )
        self.inflight = min(target, self.inflight + max_growth)

    def on_loss(self, now: float) -> None:
        if not self._loss_guard(now):
            return
        self._w_max_pkts = cubic_laws.reduce_w_max(
            self.inflight / self.mss, self._w_max_pkts, self.fast_convergence
        )
        self._k = float(mathops.cubic_k(self._w_max_pkts))
        cut = max(
            self.inflight * cubic_laws.BETA_CUBIC, self.min_inflight
        )
        self.emit(
            "cc.backoff",
            now,
            kind="multiplicative_decrease",
            beta=cubic_laws.BETA_CUBIC,
            cwnd_before=self.inflight,
            cwnd_after=cut,
        )
        self.inflight = cut
        self._epoch_start = None
        self._in_slow_start = False


class FluidReno(FluidFlow):
    """NewReno as a fluid: +1 MSS per RTT, halve on loss."""

    name = "reno"
    loss_based = True

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        self._in_slow_start = True

    def tick(self, ctx: TickContext) -> None:
        self._last_rtt_measured = ctx.rtt_measured
        if self._in_slow_start:
            self.inflight *= float(mathops.exp2(ctx.dt / ctx.rtt_measured))
        else:
            self.inflight += self.mss * ctx.dt / ctx.rtt_measured

    def on_loss(self, now: float) -> None:
        if not self._loss_guard(now):
            return
        cut = max(reno_laws.md_window(self.inflight), self.min_inflight)
        self.emit(
            "cc.backoff",
            now,
            kind="multiplicative_decrease",
            beta=reno_laws.BETA,
            cwnd_before=self.inflight,
            cwnd_after=cut,
        )
        self.inflight = cut
        self._in_slow_start = False


class FluidBBR(FluidFlow):
    """BBRv1 as a fluid.

    Faithful to the mechanism that matters for the paper's model: the
    flow is *paced* at ``gain × bw_est`` (gain cycling through the
    8-phase PROBE_BW schedule of :data:`repro.cc.laws.bbr.GAIN_CYCLE`),
    so its in-flight data evolves as ``d(inflight)/dt = pacing −
    delivery`` and only grows when the pacer outruns the bottleneck
    share — capped at ``CWND_GAIN × bw_est × rtt_min_est`` (assumption 2
    of §2.3).  ``bw_est`` is a windowed max over 10 packet-timed rounds
    of its own delivery rate, ``rtt_min_est`` is refreshed by a 200 ms
    ProbeRTT drain every 10 s (assumption 5), and loss is ignored
    (assumption 4).
    """

    name = "bbr"
    loss_based = False

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
        gain_cycling: bool = True,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        self._bw_filter = WindowedMax(bbr_laws.BTLBW_FILTER_ROUNDS * rtt)
        self.rtt_min_est = rtt  # Fluid flows know no queue at t=0.
        self._rtt_min_stamp = 0.0
        #: RTprop expiry → ProbeRTT cadence (v2 overrides with its own).
        self._probe_rtt_interval = bbr_laws.RTPROP_FILTER_LEN
        self.gain_cycling = gain_cycling
        self._in_startup = True
        self._full_pipe = bbr_laws.FullPipeDetector()
        self._next_growth_check = 0.0
        self._cycler = bbr_laws.GainCycler()
        self._probe_rtt_until: Optional[float] = None
        self._inflight_before_probe = 0.0

    @property
    def bw_est(self) -> float:
        """Current bottleneck-bandwidth estimate (bytes/second)."""
        value = self._bw_filter.get()
        return value if value is not None else 0.0

    @property
    def probe_rtt_floor(self) -> float:
        """In-flight floor while draining in PROBE_RTT, bytes."""
        return bbr_laws.PROBE_RTT_CWND_SEGMENTS * self.mss

    @property
    def state(self) -> str:
        """Current BBR phase.  The fluid model drains within one tick on
        STARTUP exit, so DRAIN never appears as a dwelt-in state here."""
        if self._probe_rtt_until is not None:
            return bbr_laws.PROBE_RTT
        return bbr_laws.STARTUP if self._in_startup else bbr_laws.PROBE_BW

    def tick(self, ctx: TickContext) -> None:
        now = ctx.now
        self._last_rtt_measured = ctx.rtt_measured
        # 10 packet-timed rounds at the current RTT (queueing included).
        self._bw_filter.window = (
            bbr_laws.BTLBW_FILTER_ROUNDS * ctx.rtt_measured
        )
        if ctx.throughput > 0:
            self._bw_filter.update(now, ctx.throughput)
        self._update_rtt_min(now, ctx.rtt_measured)

        if self._probe_rtt_until is not None:
            if now < self._probe_rtt_until:
                self.inflight = self.probe_rtt_floor
                return
            # Exit ProbeRTT: restore the prior window in one burst.  The
            # collective burst when several BBR flows exit together is what
            # forces CUBIC synchronization (§5, "Forced synchronization").
            self._probe_rtt_until = None
            self._rtt_min_stamp = now
            self._cycler.stamp = now
            self.inflight = self._inflight_before_probe
            self.emit_state(now, bbr_laws.PROBE_RTT, self.state)

        if now - self._rtt_min_stamp > self._probe_rtt_interval:
            # RTprop filter expired: drain to re-measure (state 4 of §2.1).
            self._enter_probe_rtt(now)
            self.rtt_min_est = ctx.rtt_measured
            return

        gain = self._current_gain(now)
        bw = self.bw_est
        pacing = gain * bw
        if pacing <= 0:
            # No estimate yet: pace the initial window over one RTT.
            pacing = INITIAL_CWND_SEGMENTS * self.mss / self.rtt
        # Sent-minus-delivered fluid balance.
        self.inflight += (pacing - ctx.throughput) * ctx.dt
        cap_gain = (
            bbr_laws.HIGH_GAIN if self._in_startup else bbr_laws.CWND_GAIN
        )
        cap = cap_gain * bw * self.rtt_min_est
        if cap > 0:
            self.inflight = min(self.inflight, cap)
        self.inflight = max(self.inflight, self.probe_rtt_floor)

        if self._in_startup:
            self._check_startup_exit(ctx)

    def _current_gain(self, now: float) -> float:
        if self._in_startup:
            return bbr_laws.HIGH_GAIN
        if not self.gain_cycling:
            return 1.0
        return self._cycler.advance(now, self.rtt_min_est)

    def _check_startup_exit(self, ctx: TickContext) -> None:
        now = ctx.now
        if now < self._next_growth_check:
            return
        self._next_growth_check = now + ctx.rtt_measured
        bw = self.bw_est
        if self._full_pipe.update(bw):
            self._in_startup = False
            self._cycler.reset(now)
            self.emit_state(now, bbr_laws.STARTUP, bbr_laws.PROBE_BW)
            # Drain: fall toward 1 estimated BDP before cruising.
            target = bw * self.rtt_min_est
            self.inflight = min(
                self.inflight, max(target, self.probe_rtt_floor)
            )

    def _update_rtt_min(self, now: float, rtt_measured: float) -> None:
        # New minima refresh the estimate and the stamp; expiry is handled
        # by entering ProbeRTT (which re-measures with the queue drained),
        # never by silently accepting a bloated sample.
        if rtt_measured <= self.rtt_min_est:
            self.rtt_min_est = rtt_measured
            self._rtt_min_stamp = now
        elif self._probe_rtt_until is not None:
            # During ProbeRTT our own queue share is gone; track the best
            # (smallest) RTT observed while draining.
            self.rtt_min_est = min(self.rtt_min_est, rtt_measured)

    def _enter_probe_rtt(self, now: float) -> None:
        old = self.state
        self._probe_rtt_until = now + bbr_laws.PROBE_RTT_DURATION
        self._inflight_before_probe = self.inflight
        self.inflight = self.probe_rtt_floor
        self.emit_state(now, old, bbr_laws.PROBE_RTT)


class FluidBBR2(FluidBBR):
    """BBRv2 as a fluid: BBR's estimators plus a loss-bounded in-flight
    cap (β cut, cruise headroom) and periodic cap re-probing."""

    name = "bbr2"
    loss_based = True

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        self._probe_rtt_interval = bbr2_laws.PROBE_RTT_INTERVAL
        self.inflight_hi = float("inf")
        self._next_probe_up = 0.0
        self._round_lost = 0.0
        self._round_delivered = 0.0
        self._round_end = 0.0

    def tick(self, ctx: TickContext) -> None:
        super().tick(ctx)
        now = ctx.now
        self._round_lost += ctx.lost_bytes
        self._round_delivered += ctx.throughput * ctx.dt
        if now >= self._round_end:
            self._round_end = now + ctx.rtt_measured
            self._round_lost = 0.0
            self._round_delivered = 0.0
        if self._probe_rtt_until is not None:
            return
        if now >= self._next_probe_up and math.isfinite(self.inflight_hi):
            # PROBE_UP: push the bound up to look for freed capacity.
            self.inflight_hi *= bbr2_laws.PROBE_UP_GAIN
            self._next_probe_up = now + bbr2_laws.PROBE_UP_INTERVAL
        cap = bbr2_laws.HEADROOM * self.inflight_hi
        if self.inflight > cap:
            self.inflight = max(cap, self.min_inflight)

    def on_drop(self, now: float, dropped_bytes: float) -> None:
        self._round_lost += dropped_bytes

    def on_loss(self, now: float) -> None:
        # BBRv2 tolerates up to LOSS_THRESH loss per round before bounding
        # inflight (its model-based loss response, §4.6).
        loss_rate = bbr2_laws.loss_rate(
            self._round_lost, self._round_delivered
        )
        if loss_rate <= bbr2_laws.LOSS_THRESH:
            return
        if not self._loss_guard(now):
            return
        self.inflight_hi = bbr2_laws.cut_inflight_hi(
            self.inflight_hi, self.inflight, self.min_inflight
        )
        self.inflight = min(self.inflight, self.inflight_hi)
        self._next_probe_up = now + bbr2_laws.PROBE_UP_INTERVAL
        self.emit(
            "cc.backoff",
            now,
            kind="inflight_hi_cut",
            beta=bbr2_laws.BETA,
            loss_rate=loss_rate,
            inflight_hi=self.inflight_hi,
        )


class FluidVegas(FluidFlow):
    """TCP Vegas as a fluid: ±1 MSS/RTT toward 2–4 packets of queue.

    The canonical delay-based loser against buffer-fillers (see
    :mod:`repro.cc.laws.vegas`); included for game-theoretic comparisons
    with the Reno/Vegas literature the paper cites.
    """

    name = "vegas"
    loss_based = True

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        self._base_rtt = rtt
        self._in_slow_start = True

    def tick(self, ctx: TickContext) -> None:
        self._last_rtt_measured = ctx.rtt_measured
        self._base_rtt = min(self._base_rtt, ctx.rtt_measured)
        # Own queued packets: cwnd·(RTT − base)/RTT, in MSS.
        diff = vegas_laws.queued_packets(
            self.inflight, ctx.rtt_measured, self._base_rtt, self.mss
        )
        per_rtt = self.mss * ctx.dt / ctx.rtt_measured
        if self._in_slow_start:
            if diff > vegas_laws.GAMMA_PACKETS:
                self._in_slow_start = False
            else:
                # Doubling every other RTT averages to ×2 per 2 RTTs.
                self.inflight *= float(
                    mathops.exp2(ctx.dt / (2 * ctx.rtt_measured))
                )
                return
        if diff < vegas_laws.ALPHA_PACKETS:
            self.inflight += per_rtt
        elif diff > vegas_laws.BETA_PACKETS:
            self.inflight = max(
                self.inflight - per_rtt, self.min_inflight
            )

    def on_loss(self, now: float) -> None:
        if not self._loss_guard(now):
            return
        self._in_slow_start = False
        cut = max(
            self.inflight * vegas_laws.LOSS_BETA, self.min_inflight
        )
        self.emit(
            "cc.backoff",
            now,
            kind="multiplicative_decrease",
            beta=vegas_laws.LOSS_BETA,
            cwnd_before=self.inflight,
            cwnd_after=cut,
        )
        self.inflight = cut


class FluidCopa(FluidFlow):
    """Copa as a fluid: rate targeting 1/(δ·queuing delay) with velocity."""

    name = "copa"
    loss_based = True

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
        delta: float = copa_laws.DEFAULT_DELTA,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta
        self._rtt_min_filter = WindowedMin(copa_laws.RTT_MIN_WINDOW)
        self.velocity = 1.0
        self._direction = 0
        self._same_direction = 0
        self._next_velocity_update = 0.0

    def tick(self, ctx: TickContext) -> None:
        now = ctx.now
        self._last_rtt_measured = ctx.rtt_measured
        rtt_min = self._rtt_min_filter.update(now, ctx.rtt_measured)
        dq = max(ctx.rtt_measured - rtt_min, 0.0)
        target_rate = copa_laws.target_rate(self.mss, self.delta, dq)
        current_rate = self.inflight / ctx.rtt_measured

        direction = 1 if current_rate <= target_rate else -1
        if direction != self._direction:
            # Copa resets velocity the moment the direction flips; gating
            # this on the once-per-RTT check lets a stale high velocity
            # fling the window across its equilibrium.
            self.velocity = 1.0
            self._same_direction = 0
        elif now >= self._next_velocity_update:
            self._next_velocity_update = now + ctx.rtt_measured
            self._same_direction += 1
            if self._same_direction >= copa_laws.VELOCITY_DOUBLE_ROUNDS:
                self.velocity = copa_laws.double_velocity(self.velocity)

        acked_pkts = ctx.throughput * ctx.dt / self.mss
        step = (
            self.velocity
            * self.mss
            * self.mss
            * acked_pkts
            / (self.delta * max(self.inflight, self.mss))
        )
        # One tick's adjustment cannot exceed the window itself.
        step = min(step, self.inflight)
        self.inflight = max(
            self.inflight + direction * step, self.min_inflight
        )
        self._direction = direction

    def on_loss(self, now: float) -> None:
        if not self._loss_guard(now):
            return
        cut = max(
            self.inflight * copa_laws.LOSS_BETA, self.min_inflight
        )
        self.emit(
            "cc.backoff",
            now,
            kind="multiplicative_decrease",
            beta=copa_laws.LOSS_BETA,
            cwnd_before=self.inflight,
            cwnd_after=cut,
        )
        self.inflight = cut
        self.velocity = 1.0


class FluidVivace(FluidFlow):
    """PCC Vivace as a fluid: paired monitor intervals probing r(1±ε).

    Utility, probe schedule, and the gradient-step rule come from
    :mod:`repro.cc.laws.vivace`.  The paper does not say which Vivace
    variant it ran; its Figure 7 result (a disproportionately *large*
    share against CUBIC when Vivace flows are few) matches Vivace-Loss
    (``b = 0``), since the latency-sensitive variant concedes to
    buffer-filling competitors by design (Vivace §3).  ``latency_coeff``
    therefore defaults to 0; pass 900 for the latency-sensitive variant.
    """

    name = "vivace"
    loss_based = False

    def __init__(
        self,
        flow_id: int,
        rtt: float,
        start_time: float = 0.0,
        mss: int = 1500,
        initial_rate: float = vivace_laws.DEFAULT_INITIAL_RATE,
        latency_coeff: float = 0.0,
        loss_coeff: float = vivace_laws.LOSS_COEFF,
    ) -> None:
        super().__init__(flow_id, rtt, start_time, mss)
        self.latency_coeff = latency_coeff
        self.loss_coeff = loss_coeff
        self.rate = initial_rate
        self._mi_phase = 0
        self._mi_start: Optional[float] = None
        self._mi_end = 0.0
        self._mi_delivered = 0.0
        self._mi_lost = 0.0
        self._mi_qd_start = 0.0
        self._last_qd = 0.0
        self._pair: List[float] = []
        self._amplifier = 1.0
        self._last_direction = 0

    def utility(
        self, rate: float, rtt_gradient: float, loss_rate: float
    ) -> float:
        """Vivace utility, rate in bytes/s scored in Mbps (NSDI'18 form)."""
        return float(
            mathops.vivace_utility(
                rate,
                rtt_gradient,
                loss_rate,
                self.latency_coeff,
                self.loss_coeff,
            )
        )

    def _probe_rate(self) -> float:
        return vivace_laws.probe_rate(self.rate, self._mi_phase)

    def tick(self, ctx: TickContext) -> None:
        now = ctx.now
        self._last_rtt_measured = ctx.rtt_measured
        if self._mi_start is None:
            self._begin_mi(now, ctx)
        self._mi_delivered += ctx.throughput * ctx.dt
        self._mi_lost += ctx.lost_bytes
        self._last_qd = ctx.queue_delay
        if now >= self._mi_end:
            self._finish_mi(now, ctx)
        self.inflight = max(
            self._probe_rate() * ctx.rtt_measured, self.min_inflight
        )

    def on_drop(self, now: float, dropped_bytes: float) -> None:
        self._mi_lost += dropped_bytes

    def _begin_mi(self, now: float, ctx: TickContext) -> None:
        self._mi_start = now
        self._mi_end = now + max(ctx.rtt_measured, 4 * ctx.dt)
        self._mi_delivered = 0.0
        self._mi_lost = 0.0
        self._mi_qd_start = ctx.queue_delay

    def _finish_mi(self, now: float, ctx: TickContext) -> None:
        assert self._mi_start is not None
        elapsed = max(now - self._mi_start, 1e-6)
        rtt_gradient = (self._last_qd - self._mi_qd_start) / elapsed
        self._pair.append(
            float(
                mathops.vivace_score(
                    elapsed,
                    self._mi_delivered,
                    self._mi_lost,
                    rtt_gradient,
                    self.latency_coeff,
                    self.loss_coeff,
                )
            )
        )
        if self._mi_phase == 0:
            self._mi_phase = 1
        else:
            self._mi_phase = 0
            self._apply_step()
            self._pair = []
        self._begin_mi(now, ctx)

    def _apply_step(self) -> None:
        if len(self._pair) != 2:
            return
        u_plus, u_minus = self._pair
        self.rate, direction, self._amplifier = vivace_laws.gradient_step(
            self.rate, u_plus, u_minus, self._amplifier, self._last_direction
        )
        self._last_direction = direction


def make_fluid_flow(name: str, **kwargs: object) -> FluidFlow:
    """Instantiate a fluid flow by congestion-control name.

    Resolution goes through the canonical algorithm table
    (:mod:`repro.cc.laws.registry`), so the fluid substrate can never
    drift from the packet one.
    """
    key = name.lower()
    spec = laws_registry.ALGORITHMS.get(key)
    if spec is None or spec.fluid is None:
        raise KeyError(
            f"unknown fluid congestion control {name!r}; "
            f"available: {available_fluid_algorithms()}"
        )
    return laws_registry.fluid_class(key)(**kwargs)


def available_fluid_algorithms() -> List[str]:
    """Names of all fluid congestion-control dynamics."""
    return [
        name
        for name in laws_registry.canonical_names()
        if laws_registry.ALGORITHMS[name].fluid is not None
    ]
