"""Vectorized per-tick control-law kernels: arrays of flows at once.

Each class here is the column-array counterpart of one adapter in
:mod:`repro.fluidsim.flows`: where ``FluidCubic.tick`` updates one
Python object, :class:`VecCubic.tick` updates every CUBIC flow in a
batch with masked numpy expressions.  The contract is *bitwise*
equivalence, not approximation: every expression mirrors the scalar
adapter's association order exactly, power functions go through the
same :mod:`repro.fluidsim.mathops` kernels, and state machines become
masked updates applied in the scalar adapter's statement order.  The
parity suite (``tests/test_fluid_vec.py``) holds both substrates to
identical trajectories.

Rules that keep the mirror exact:

* masked-off rows may compute garbage under ``np.errstate`` — it is
  never written back (every state write is a ``np.where`` on the mask);
* optional scalar state (``w_max``, ``epoch_start``, ``probe_rtt_until``,
  monitor-interval start, the loss-gate timestamp) is NaN-encoded;
* windowed filters are ring buffers with monotonic-deque semantics
  matching :class:`repro.util.filters.WindowedFilter` pop-for-pop.

Kernels do not emit per-flow telemetry events (``cc.backoff``,
``cc.state``): the vectorized substrate trades per-flow event streams
for throughput, and the simulator-level counters and samples remain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cc.laws import bbr as bbr_laws
from repro.cc.laws import bbr2 as bbr2_laws
from repro.cc.laws import copa as copa_laws
from repro.cc.laws import cubic as cubic_laws
from repro.cc.laws import reno as reno_laws
from repro.cc.laws import vegas as vegas_laws
from repro.cc.laws import vivace as vivace_laws
from repro.cc.laws.base import (
    INITIAL_CWND_SEGMENTS,
    MIN_CWND_SEGMENTS,
)
from repro.fluidsim import mathops
from repro.fluidsim.mathops import np

_GAIN_CYCLE = np.array(bbr_laws.GAIN_CYCLE)


class TickState:
    """One tick's observations, as global per-flow column arrays.

    The vectorized analogue of :class:`repro.fluidsim.core.TickContext`:
    every attribute is a length-``n_flows`` float array (``active`` is
    bool), indexed by global flow row.  ``inflight`` is the *state*
    array kernels own — the simulator's working copy (trimmed by drops)
    lives in :class:`repro.fluidsim.vec.VecFluidSim`, exactly like the
    scalar loop's ``inflights`` list is distinct from ``flow.inflight``.
    """

    __slots__ = (
        "now",
        "dt",
        "throughput",
        "rtt_measured",
        "queue_delay",
        "lost_bytes",
        "active",
        "inflight",
    )

    def __init__(self, n: int) -> None:
        self.now = np.zeros(n)
        self.dt = np.zeros(n)
        self.throughput = np.zeros(n)
        self.rtt_measured = np.zeros(n)
        self.queue_delay = np.zeros(n)
        self.lost_bytes = np.zeros(n)
        self.active = np.zeros(n, dtype=bool)
        self.inflight = np.zeros(n)


class VecWindowedFilter:
    """Row-parallel sliding-window best-value filter.

    The vectorized :class:`repro.util.filters.WindowedFilter`: ``n``
    independent monotonic deques stored as flat ring buffers (capacity
    a power of two, so wrapping is a bitmask) with absolute int64
    head/tail counters.  ``update`` expires stale heads, discards
    tail entries shadowed by the new sample, pushes, and returns the
    per-row best.  Shadow removal exploits the deque invariant — the
    live values are strictly ordered best-to-worst from head to tail —
    so the shadowed entries form a suffix found with one *batched
    binary search* (a handful of full-width ops) instead of the
    scalar's pop-at-a-time loop, whose worst row would otherwise gate
    every row's progress.  The surviving entries, and therefore the
    returned estimates, match the scalar deque bitwise.  Rows start
    with capacity ``cap`` and double (with a relayout) when full.

    The scalar filter clamps non-monotonic clocks; the fluid tick loop
    only ever feeds monotonic times, so the clamp is omitted here.
    """

    def __init__(self, n: int, is_max: bool, cap: int = 16) -> None:
        self.n = n
        self.cap = cap
        self.is_max = is_max
        # Flat [n * cap] ring storage; row r owns [r * cap, (r+1) * cap).
        self.times = np.zeros(n * cap)
        self.values = np.zeros(n * cap)
        self.head = np.zeros(n, dtype=np.int64)
        self.tail = np.zeros(n, dtype=np.int64)
        self._base = np.arange(n) * cap
        # Scratch buffers: update() runs every tick, so its index
        # arithmetic writes into preallocated arrays (``out=``) rather
        # than allocating ~a dozen temporaries per search iteration.
        self._i1 = np.zeros(n, dtype=np.int64)
        self._i2 = np.zeros(n, dtype=np.int64)
        self._lo = np.zeros(n, dtype=np.int64)
        self._hi = np.zeros(n, dtype=np.int64)
        self._f1 = np.zeros(n)
        self._m1 = np.zeros(n, dtype=bool)
        self._m2 = np.zeros(n, dtype=bool)
        self._probe = np.zeros(n, dtype=bool)

    def _grow(self) -> None:
        cap, n = self.cap, self.n
        count = self.tail - self.head
        offsets = np.arange(cap)
        src = (self.head[:, None] + offsets[None, :]) & (cap - 1)
        new_times = np.zeros((n, cap * 2))
        new_values = np.zeros((n, cap * 2))
        new_times[:, :cap] = np.take_along_axis(
            self.times.reshape(n, cap), src, axis=1
        )
        new_values[:, :cap] = np.take_along_axis(
            self.values.reshape(n, cap), src, axis=1
        )
        self.times = new_times.reshape(-1)
        self.values = new_values.reshape(-1)
        self.head = np.zeros(n, dtype=np.int64)
        self.tail = count
        self.cap = cap * 2
        self._base = np.arange(n) * self.cap

    def update(
        self,
        mask: np.ndarray,
        now: np.ndarray,
        value: np.ndarray,
        window: np.ndarray,
    ) -> np.ndarray:
        """Push ``value`` at ``now`` for masked rows; return the best."""
        base, wrap = self._base, self.cap - 1
        head, tail = self.head, self.tail
        idx, mid = self._i1, self._i2
        f1, stale, cut, probing = self._f1, self._m1, self._m2, self._probe
        horizon = now - window
        while True:  # expire stale heads (amortized: one per push)
            np.bitwise_and(head, wrap, out=idx)
            np.add(idx, base, out=idx)
            self.times.take(idx, out=f1)
            np.less(f1, horizon, out=stale)
            np.less(head, tail, out=cut)  # has entries
            np.logical_and(stale, cut, out=stale)
            np.logical_and(stale, mask, out=stale)
            if not stale.any():
                break
            head += stale
        # New tail by binary search: live values run strictly best-to-
        # worst from head, so entries shadowed by the new sample are
        # exactly the suffix where (value beats entry); its first index
        # is the surviving count.
        lo, hi = self._lo, self._hi
        lo.fill(0)
        np.subtract(tail, head, out=hi)
        while True:
            np.less(lo, hi, out=probing)
            if not probing.any():
                break
            np.add(lo, hi, out=mid)
            np.right_shift(mid, 1, out=mid)
            np.add(head, mid, out=idx)
            np.bitwise_and(idx, wrap, out=idx)
            np.add(idx, base, out=idx)
            self.values.take(idx, out=f1)
            if self.is_max:
                np.greater_equal(value, f1, out=cut)
            else:
                np.less_equal(value, f1, out=cut)
            np.logical_and(cut, probing, out=cut)
            np.copyto(hi, mid, where=cut)
            np.logical_not(cut, out=cut)
            np.logical_and(cut, probing, out=cut)
            mid += 1
            np.copyto(lo, mid, where=cut)
        np.add(head, lo, out=idx)
        np.copyto(tail, idx, where=mask)
        if int((tail - head).max()) >= self.cap:
            self._grow()
            base, wrap = self._base, self.cap - 1
            head, tail = self.head, self.tail
        np.bitwise_and(tail, wrap, out=idx)
        np.add(idx, base, out=idx)
        if mask.all():
            self.times[idx] = now
            self.values[idx] = value
            tail += 1
        else:
            sel = idx[mask]
            self.times[sel] = now[mask]
            self.values[sel] = value[mask]
            tail += mask
        np.bitwise_and(head, wrap, out=idx)
        np.add(idx, base, out=idx)
        return self.values.take(idx)

    def get(self) -> np.ndarray:
        """Per-row best in window (0.0 for empty rows), no expiry —
        matching ``WindowedFilter.get()`` without a clock."""
        best = self.values.take(
            self._base + (self.head & (self.cap - 1))
        )
        return np.where(self.tail > self.head, best, 0.0)


def _pop_kwargs(
    name: str, kwargs: Dict[str, object], allowed: Sequence[str]
) -> None:
    unknown = set(kwargs) - set(allowed)
    if unknown:
        raise TypeError(
            f"{name} fluid flow got unexpected keyword arguments "
            f"{sorted(unknown)}; allowed: {sorted(allowed)}"
        )


class VecKernel:
    """Base: one congestion-control law over a row subset of the batch.

    Args:
        rows: Global flow indices (into the :class:`TickState` arrays)
            this kernel owns, ascending.
        rtt: Base RTT per row, seconds.
        mss: Segment size per row, bytes (float).
        cc_kwargs: Per-row constructor keyword dicts, mirroring the
            scalar adapters' signatures (unknown keys raise TypeError).
    """

    name = "fluid-vec"
    loss_based = True
    _allowed_kwargs: Sequence[str] = ()

    def __init__(
        self,
        rows: np.ndarray,
        rtt: np.ndarray,
        mss: np.ndarray,
        cc_kwargs: Sequence[Dict[str, object]],
    ) -> None:
        for kwargs in cc_kwargs:
            _pop_kwargs(self.name, kwargs, self._allowed_kwargs)
        self.rows = rows
        self.n = len(rows)
        self.rtt = rtt
        self.mss = mss
        self.min_inflight = MIN_CWND_SEGMENTS * mss
        self.initial_inflight = np.asarray(
            INITIAL_CWND_SEGMENTS * mss, dtype=np.float64
        )
        # CongestionEventGate, NaN-encoded: admit when no prior event or
        # at least one (last-measured) RTT has passed since the last.
        self._gate_last = np.full(self.n, np.nan)
        self._last_rtt = rtt.copy()

    def _admit(self, now: np.ndarray, mask: np.ndarray) -> np.ndarray:
        ok = mask & (
            np.isnan(self._gate_last)
            | (now - self._gate_last >= self._last_rtt)
        )
        np.copyto(self._gate_last, now, where=ok)
        return ok

    def tick(self, state: TickState) -> None:
        raise NotImplementedError

    def on_drop(
        self, state: TickState, dropped: np.ndarray, mask: np.ndarray
    ) -> None:
        """Physical drop of fluid (loss-agnostic flows just lose bytes)."""

    def on_loss(self, state: TickState, victims: np.ndarray) -> None:
        """Congestion backoff for masked victim rows (gate applies)."""

    def state_labels(self) -> Optional[List[str]]:
        """Per-row state-machine labels for sampling; None if stateless."""
        return None


class VecReno(VecKernel):
    """Vectorized :class:`repro.fluidsim.flows.FluidReno`."""

    name = "reno"
    loss_based = True

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        self.in_slow_start = np.ones(self.n, dtype=bool)

    def tick(self, state: TickState) -> None:
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        rttm = state.rtt_measured[idx]
        dt = state.dt[idx]
        w = state.inflight[idx]
        with np.errstate(all="ignore"):
            self._last_rtt = np.where(act, rttm, self._last_rtt)
            grown = np.where(
                self.in_slow_start,
                w * mathops.exp2(dt / rttm),
                w + self.mss * dt / rttm,
            )
        state.inflight[idx] = np.where(act, grown, w)

    def on_loss(self, state: TickState, victims: np.ndarray) -> None:
        idx = self.rows
        hit = victims[idx]
        if not hit.any():
            return
        adm = self._admit(state.now[idx], hit)
        w = state.inflight[idx]
        cut = np.maximum(w * reno_laws.BETA, self.min_inflight)
        state.inflight[idx] = np.where(adm, cut, w)
        self.in_slow_start = np.where(adm, False, self.in_slow_start)


class VecCubic(VecKernel):
    """Vectorized :class:`repro.fluidsim.flows.FluidCubic`."""

    name = "cubic"
    loss_based = True
    _allowed_kwargs = ("fast_convergence",)

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        self.fast_convergence = np.array(
            [bool(k.get("fast_convergence", True)) for k in cc_kwargs]
        )
        self.in_slow_start = np.ones(self.n, dtype=bool)
        self.w_max_pkts = np.full(self.n, np.nan)
        self.epoch_start = np.full(self.n, np.nan)
        self.k = np.zeros(self.n)

    def tick(self, state: TickState) -> None:
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        now = state.now[idx]
        rttm = state.rtt_measured[idx]
        thr = state.throughput[idx]
        dt = state.dt[idx]
        w = state.inflight[idx]
        with np.errstate(all="ignore"):
            np.copyto(self._last_rtt, rttm, where=act)
            ca = act & ~self.in_slow_start
            begin = ca & np.isnan(self.epoch_start)
            if begin.any():
                np.copyto(self.epoch_start, now, where=begin)
                cwnd_seg = w / self.mss
                anchor = begin & (
                    np.isnan(self.w_max_pkts) | (self.w_max_pkts < cwnd_seg)
                )
                np.copyto(self.w_max_pkts, cwnd_seg, where=anchor)
                np.copyto(self.k, 0.0, where=anchor)
                rebase = begin & ~anchor
                if rebase.any():
                    # cubic_k is elementwise, so computing it on just
                    # the rebasing rows matches the full-width np.where
                    # bitwise while skipping np.power everywhere else.
                    self.k[rebase] = mathops.cubic_k(
                        self.w_max_pkts[rebase]
                    )
            t = now - self.epoch_start
            target_pkts = mathops.cubic_window(t, self.k, self.w_max_pkts)
            target = np.maximum(target_pkts * self.mss, self.min_inflight)
            max_growth = np.maximum(thr * dt, self.mss * dt / rttm)
            grown = np.minimum(target, w + max_growth)
            np.copyto(grown, w, where=~ca)
            ss = act & self.in_slow_start
            if ss.any():
                np.copyto(grown, w * mathops.exp2(dt / rttm), where=ss)
        state.inflight[idx] = grown

    def on_loss(self, state: TickState, victims: np.ndarray) -> None:
        idx = self.rows
        hit = victims[idx]
        if not hit.any():
            return
        adm = self._admit(state.now[idx], hit)
        if not adm.any():
            return
        w = state.inflight[idx]
        with np.errstate(all="ignore"):
            cwnd_seg = w / self.mss
            shrink = (
                self.fast_convergence
                & ~np.isnan(self.w_max_pkts)
                & (cwnd_seg < self.w_max_pkts)
            )
            new_w_max = np.where(
                shrink,
                cwnd_seg * (2.0 - cubic_laws.BETA_CUBIC) / 2.0,
                cwnd_seg,
            )
            np.copyto(self.w_max_pkts, new_w_max, where=adm)
            self.k[adm] = mathops.cubic_k(self.w_max_pkts[adm])
            cut = np.maximum(w * cubic_laws.BETA_CUBIC, self.min_inflight)
            np.copyto(w, cut, where=adm)
        state.inflight[idx] = w
        np.copyto(self.epoch_start, np.nan, where=adm)
        np.copyto(self.in_slow_start, False, where=adm)


class VecVegas(VecKernel):
    """Vectorized :class:`repro.fluidsim.flows.FluidVegas`."""

    name = "vegas"
    loss_based = True

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        self.base_rtt = rtt.copy()
        self.in_slow_start = np.ones(self.n, dtype=bool)

    def tick(self, state: TickState) -> None:
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        rttm = state.rtt_measured[idx]
        dt = state.dt[idx]
        w = state.inflight[idx]
        with np.errstate(all="ignore"):
            self._last_rtt = np.where(act, rttm, self._last_rtt)
            self.base_rtt = np.where(
                act, np.minimum(self.base_rtt, rttm), self.base_rtt
            )
            # vegas_laws.queued_packets; base_rtt is finite and rttm > 0
            # on the fluid substrate, so the degenerate guard is moot.
            expected = w / self.base_rtt
            actual = w / rttm
            diff = (expected - actual) * self.base_rtt / self.mss
            per_rtt = self.mss * dt / rttm
            was_ss = self.in_slow_start.copy()
            ss = act & was_ss
            leave = ss & (diff > vegas_laws.GAMMA_PACKETS)
            self.in_slow_start = np.where(leave, False, self.in_slow_start)
            stay = ss & ~leave
            w_ss = w * mathops.exp2(dt / (2 * rttm))
            # Exiting slow start falls through to the CA rules this tick.
            ca = act & (~was_ss | leave)
            inc = ca & (diff < vegas_laws.ALPHA_PACKETS)
            dec = ca & (diff > vegas_laws.BETA_PACKETS)
            grown = np.where(
                stay,
                w_ss,
                np.where(
                    inc,
                    w + per_rtt,
                    np.where(
                        dec,
                        np.maximum(w - per_rtt, self.min_inflight),
                        w,
                    ),
                ),
            )
        state.inflight[idx] = grown

    def on_loss(self, state: TickState, victims: np.ndarray) -> None:
        idx = self.rows
        hit = victims[idx]
        if not hit.any():
            return
        adm = self._admit(state.now[idx], hit)
        self.in_slow_start = np.where(adm, False, self.in_slow_start)
        w = state.inflight[idx]
        cut = np.maximum(w * vegas_laws.LOSS_BETA, self.min_inflight)
        state.inflight[idx] = np.where(adm, cut, w)


class VecCopa(VecKernel):
    """Vectorized :class:`repro.fluidsim.flows.FluidCopa`."""

    name = "copa"
    loss_based = True
    _allowed_kwargs = ("delta",)

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        deltas = [
            float(k.get("delta", copa_laws.DEFAULT_DELTA)) for k in cc_kwargs
        ]
        for delta in deltas:
            if delta <= 0:
                raise ValueError(f"delta must be positive, got {delta}")
        self.delta = np.array(deltas)
        self.rtt_min_filter = VecWindowedFilter(self.n, is_max=False)
        self._rtt_min_window = np.full(self.n, copa_laws.RTT_MIN_WINDOW)
        self.velocity = np.ones(self.n)
        self.direction = np.zeros(self.n)
        self.same_direction = np.zeros(self.n, dtype=np.int64)
        self.next_velocity_update = np.zeros(self.n)

    def tick(self, state: TickState) -> None:
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        now = state.now[idx]
        rttm = state.rtt_measured[idx]
        thr = state.throughput[idx]
        dt = state.dt[idx]
        w = state.inflight[idx]
        with np.errstate(all="ignore"):
            self._last_rtt = np.where(act, rttm, self._last_rtt)
            rtt_min = self.rtt_min_filter.update(
                act, now, rttm, self._rtt_min_window
            )
            dq = np.maximum(rttm - rtt_min, 0.0)
            target_rate = np.where(
                dq <= 1e-9, np.inf, self.mss / (self.delta * dq)
            )
            current_rate = w / rttm
            direction = np.where(current_rate <= target_rate, 1.0, -1.0)
            flip = act & (direction != self.direction)
            self.velocity = np.where(flip, 1.0, self.velocity)
            self.same_direction = np.where(flip, 0, self.same_direction)
            due = act & ~flip & (now >= self.next_velocity_update)
            self.next_velocity_update = np.where(
                due, now + rttm, self.next_velocity_update
            )
            self.same_direction = np.where(
                due, self.same_direction + 1, self.same_direction
            )
            dbl = due & (
                self.same_direction >= copa_laws.VELOCITY_DOUBLE_ROUNDS
            )
            self.velocity = np.where(
                dbl,
                np.minimum(self.velocity * 2.0, copa_laws.VELOCITY_CAP),
                self.velocity,
            )
            acked_pkts = thr * dt / self.mss
            step = (
                self.velocity
                * self.mss
                * self.mss
                * acked_pkts
                / (self.delta * np.maximum(w, self.mss))
            )
            step = np.minimum(step, w)
            grown = np.maximum(w + direction * step, self.min_inflight)
            self.direction = np.where(act, direction, self.direction)
        state.inflight[idx] = np.where(act, grown, w)

    def on_loss(self, state: TickState, victims: np.ndarray) -> None:
        idx = self.rows
        hit = victims[idx]
        if not hit.any():
            return
        adm = self._admit(state.now[idx], hit)
        w = state.inflight[idx]
        cut = np.maximum(w * copa_laws.LOSS_BETA, self.min_inflight)
        state.inflight[idx] = np.where(adm, cut, w)
        self.velocity = np.where(adm, 1.0, self.velocity)


class VecBBR(VecKernel):
    """Vectorized :class:`repro.fluidsim.flows.FluidBBR`."""

    name = "bbr"
    loss_based = False
    _allowed_kwargs = ("gain_cycling",)
    _probe_rtt_interval = bbr_laws.RTPROP_FILTER_LEN

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        self.gain_cycling = np.array(
            [bool(k.get("gain_cycling", True)) for k in cc_kwargs]
        )
        self.bw_filter = VecWindowedFilter(self.n, is_max=True)
        self.rtt_min_est = rtt.copy()
        self.rtt_min_stamp = np.zeros(self.n)
        self.in_startup = np.ones(self.n, dtype=bool)
        self.best_bw = np.zeros(self.n)
        self.plateau = np.zeros(self.n, dtype=np.int64)
        self.next_growth_check = np.zeros(self.n)
        self.cycle_index = np.full(
            self.n, bbr_laws.PROBE_BW_NEUTRAL_PHASE, dtype=np.int64
        )
        self.cycle_stamp = np.zeros(self.n)
        self.probe_rtt_until = np.full(self.n, np.nan)
        self.inflight_before_probe = np.zeros(self.n)
        self.probe_rtt_floor = bbr_laws.PROBE_RTT_CWND_SEGMENTS * mss
        # No-estimate fallback: pace the initial window over one base RTT.
        self._initial_pacing = INITIAL_CWND_SEGMENTS * mss / rtt

    def tick(self, state: TickState) -> None:
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        now = state.now[idx]
        rttm = state.rtt_measured[idx]
        thr = state.throughput[idx]
        dt = state.dt[idx]
        w = state.inflight[idx]
        with np.errstate(all="ignore"):
            np.copyto(self._last_rtt, rttm, where=act)
            window = bbr_laws.BTLBW_FILTER_ROUNDS * rttm
            self.bw_filter.update(act & (thr > 0.0), now, thr, window)
            # _update_rtt_min: new minima refresh estimate and stamp;
            # while probing, track the best RTT seen draining.
            probing = ~np.isnan(self.probe_rtt_until)
            new_min = act & (rttm <= self.rtt_min_est)
            np.copyto(self.rtt_min_est, rttm, where=new_min)
            np.copyto(self.rtt_min_stamp, now, where=new_min)
            drain_min = act & ~new_min & probing
            if drain_min.any():
                np.minimum(
                    self.rtt_min_est,
                    rttm,
                    out=self.rtt_min_est,
                    where=drain_min,
                )

            in_probe = act & probing
            hold = in_probe & (now < self.probe_rtt_until)
            np.copyto(w, self.probe_rtt_floor, where=hold)
            leave = in_probe & ~hold
            if leave.any():
                np.copyto(self.probe_rtt_until, np.nan, where=leave)
                np.copyto(self.rtt_min_stamp, now, where=leave)
                np.copyto(self.cycle_stamp, now, where=leave)
                np.copyto(w, self.inflight_before_probe, where=leave)

            run = act & ~hold
            expire = run & (
                now - self.rtt_min_stamp > self._probe_rtt_interval
            )
            if expire.any():
                np.copyto(
                    self.probe_rtt_until,
                    now + bbr_laws.PROBE_RTT_DURATION,
                    where=expire,
                )
                np.copyto(self.inflight_before_probe, w, where=expire)
                np.copyto(w, self.probe_rtt_floor, where=expire)
                np.copyto(self.rtt_min_est, rttm, where=expire)

            go = run & ~expire
            advance = (
                go
                & ~self.in_startup
                & self.gain_cycling
                & (now - self.cycle_stamp > self.rtt_min_est)
            )
            if advance.any():
                np.copyto(
                    self.cycle_index,
                    (self.cycle_index + 1) % len(bbr_laws.GAIN_CYCLE),
                    where=advance,
                )
                np.copyto(self.cycle_stamp, now, where=advance)
            gain = np.where(
                self.in_startup,
                bbr_laws.HIGH_GAIN,
                np.where(
                    self.gain_cycling, _GAIN_CYCLE[self.cycle_index], 1.0
                ),
            )
            bw = self.bw_filter.get()
            pacing = gain * bw
            np.copyto(pacing, self._initial_pacing, where=pacing <= 0)
            w_go = w + (pacing - thr) * dt
            cap_gain = np.where(
                self.in_startup, bbr_laws.HIGH_GAIN, bbr_laws.CWND_GAIN
            )
            cap = cap_gain * bw * self.rtt_min_est
            np.minimum(w_go, cap, out=w_go, where=cap > 0)
            np.maximum(w_go, self.probe_rtt_floor, out=w_go)
            np.copyto(w, w_go, where=go)

            # _check_startup_exit, once per RTT (FullPipeDetector law).
            chk = go & self.in_startup & (now >= self.next_growth_check)
            if chk.any():
                np.copyto(self.next_growth_check, now + rttm, where=chk)
                grow = chk & (
                    bw >= self.best_bw * bbr_laws.STARTUP_GROWTH_THRESH
                )
                np.copyto(self.best_bw, bw, where=grow)
                np.copyto(self.plateau, 0, where=grow)
                stall = chk & ~grow
                self.plateau += stall
                full = stall & (
                    self.plateau >= bbr_laws.STARTUP_PLATEAU_ROUNDS
                )
                if full.any():
                    np.copyto(self.in_startup, False, where=full)
                    np.copyto(
                        self.cycle_index,
                        bbr_laws.PROBE_BW_NEUTRAL_PHASE,
                        where=full,
                    )
                    np.copyto(self.cycle_stamp, now, where=full)
                    drain_target = bw * self.rtt_min_est
                    np.copyto(
                        w,
                        np.minimum(
                            w,
                            np.maximum(
                                drain_target, self.probe_rtt_floor
                            ),
                        ),
                        where=full,
                    )
        # Every mask above is a subset of ``act``, so inactive rows of
        # ``w`` still hold their gathered values: a plain scatter equals
        # the old masked merge.
        state.inflight[idx] = w

    def state_labels(self) -> List[str]:
        labels = []
        probing = ~np.isnan(self.probe_rtt_until)
        for i in range(self.n):
            if probing[i]:
                labels.append(bbr_laws.PROBE_RTT)
            elif self.in_startup[i]:
                labels.append(bbr_laws.STARTUP)
            else:
                labels.append(bbr_laws.PROBE_BW)
        return labels


class VecBBR2(VecBBR):
    """Vectorized :class:`repro.fluidsim.flows.FluidBBR2`."""

    name = "bbr2"
    loss_based = True
    _allowed_kwargs = ()
    _probe_rtt_interval = bbr2_laws.PROBE_RTT_INTERVAL

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        self.gain_cycling = np.ones(self.n, dtype=bool)
        self.inflight_hi = np.full(self.n, np.inf)
        self.next_probe_up = np.zeros(self.n)
        self.round_lost = np.zeros(self.n)
        self.round_delivered = np.zeros(self.n)
        self.round_end = np.zeros(self.n)

    def tick(self, state: TickState) -> None:
        super().tick(state)
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        now = state.now[idx]
        rttm = state.rtt_measured[idx]
        thr = state.throughput[idx]
        dt = state.dt[idx]
        lost = state.lost_bytes[idx]
        with np.errstate(all="ignore"):
            np.add(self.round_lost, lost, out=self.round_lost, where=act)
            np.add(
                self.round_delivered,
                thr * dt,
                out=self.round_delivered,
                where=act,
            )
            roll = act & (now >= self.round_end)
            if roll.any():
                np.copyto(self.round_end, now + rttm, where=roll)
                np.copyto(self.round_lost, 0.0, where=roll)
                np.copyto(self.round_delivered, 0.0, where=roll)
            # Rows still in (or just entering) ProbeRTT stop here.
            post = act & np.isnan(self.probe_rtt_until)
            up = (
                post
                & (now >= self.next_probe_up)
                & np.isfinite(self.inflight_hi)
            )
            if up.any():
                np.multiply(
                    self.inflight_hi,
                    bbr2_laws.PROBE_UP_GAIN,
                    out=self.inflight_hi,
                    where=up,
                )
                np.copyto(
                    self.next_probe_up,
                    now + bbr2_laws.PROBE_UP_INTERVAL,
                    where=up,
                )
            w = state.inflight[idx]
            cap = bbr2_laws.HEADROOM * self.inflight_hi
            over = post & (w > cap)
            if over.any():
                np.copyto(w, np.maximum(cap, self.min_inflight), where=over)
                state.inflight[idx] = w

    def on_drop(
        self, state: TickState, dropped: np.ndarray, mask: np.ndarray
    ) -> None:
        idx = self.rows
        hit = mask[idx]
        if not hit.any():
            return
        self.round_lost = np.where(
            hit, self.round_lost + dropped[idx], self.round_lost
        )

    def on_loss(self, state: TickState, victims: np.ndarray) -> None:
        idx = self.rows
        hit = victims[idx]
        if not hit.any():
            return
        now = state.now[idx]
        with np.errstate(all="ignore"):
            total = self.round_delivered + self.round_lost
            loss_rate = np.where(
                total > 0, self.round_lost / total, 0.0
            )
            over = hit & (loss_rate > bbr2_laws.LOSS_THRESH)
            adm = self._admit(now, over)
            if not adm.any():
                return
            w = state.inflight[idx]
            bound = np.minimum(self.inflight_hi, w)
            cut = np.maximum(
                bound * (1.0 - bbr2_laws.BETA), self.min_inflight
            )
            self.inflight_hi = np.where(adm, cut, self.inflight_hi)
            state.inflight[idx] = np.where(
                adm, np.minimum(w, self.inflight_hi), w
            )
            self.next_probe_up = np.where(
                adm, now + bbr2_laws.PROBE_UP_INTERVAL, self.next_probe_up
            )


class VecVivace(VecKernel):
    """Vectorized :class:`repro.fluidsim.flows.FluidVivace`."""

    name = "vivace"
    loss_based = False
    _allowed_kwargs = ("initial_rate", "latency_coeff", "loss_coeff")

    def __init__(self, rows, rtt, mss, cc_kwargs) -> None:
        super().__init__(rows, rtt, mss, cc_kwargs)
        self.rate = np.array(
            [
                float(k.get("initial_rate", vivace_laws.DEFAULT_INITIAL_RATE))
                for k in cc_kwargs
            ]
        )
        self.latency_coeff = np.array(
            [float(k.get("latency_coeff", 0.0)) for k in cc_kwargs]
        )
        self.loss_coeff = np.array(
            [
                float(k.get("loss_coeff", vivace_laws.LOSS_COEFF))
                for k in cc_kwargs
            ]
        )
        self.mi_phase = np.zeros(self.n, dtype=np.int64)
        self.mi_start = np.full(self.n, np.nan)
        self.mi_end = np.zeros(self.n)
        self.mi_delivered = np.zeros(self.n)
        self.mi_lost = np.zeros(self.n)
        self.mi_qd_start = np.zeros(self.n)
        self.last_qd = np.zeros(self.n)
        self.pair_first = np.full(self.n, np.nan)
        self.amplifier = np.ones(self.n)
        self.last_direction = np.zeros(self.n)

    def tick(self, state: TickState) -> None:
        idx = self.rows
        act = state.active[idx]
        if not act.any():
            return
        now = state.now[idx]
        rttm = state.rtt_measured[idx]
        thr = state.throughput[idx]
        dt = state.dt[idx]
        qd = state.queue_delay[idx]
        lost = state.lost_bytes[idx]
        with np.errstate(all="ignore"):
            self._last_rtt = np.where(act, rttm, self._last_rtt)
            begin = act & np.isnan(self.mi_start)
            self._begin_mi(begin, now, rttm, dt, qd)
            self.mi_delivered = np.where(
                act, self.mi_delivered + thr * dt, self.mi_delivered
            )
            self.mi_lost = np.where(act, self.mi_lost + lost, self.mi_lost)
            self.last_qd = np.where(act, qd, self.last_qd)

            fin = act & (now >= self.mi_end)
            if fin.any():
                elapsed = np.maximum(now - self.mi_start, 1e-6)
                gradient = (self.last_qd - self.mi_qd_start) / elapsed
                score = mathops.vivace_score(
                    elapsed,
                    self.mi_delivered,
                    self.mi_lost,
                    gradient,
                    self.latency_coeff,
                    self.loss_coeff,
                )
                was_first = self.mi_phase == 0
                p0 = fin & was_first
                p1 = fin & ~was_first
                self.pair_first = np.where(p0, score, self.pair_first)
                self.mi_phase = np.where(
                    fin, np.where(was_first, 1, 0), self.mi_phase
                )
                # vivace_laws.gradient_step on the finished pair.
                u_plus, u_minus = self.pair_first, score
                eq = u_plus == u_minus
                direction = np.where(u_plus > u_minus, 1.0, -1.0)
                same = direction == self.last_direction
                amp = np.where(
                    same,
                    np.minimum(
                        self.amplifier * 2.0, vivace_laws.MAX_AMPLIFIER
                    ),
                    1.0,
                )
                stepped = np.maximum(
                    self.rate
                    + direction * vivace_laws.EPSILON * amp * self.rate,
                    vivace_laws.MIN_RATE,
                )
                moved = p1 & ~eq
                self.rate = np.where(moved, stepped, self.rate)
                self.amplifier = np.where(
                    p1, np.where(eq, 1.0, amp), self.amplifier
                )
                self.last_direction = np.where(
                    p1, np.where(eq, 0.0, direction), self.last_direction
                )
                self.pair_first = np.where(p1, np.nan, self.pair_first)
                self._begin_mi(fin, now, rttm, dt, qd)

            factor = np.where(
                self.mi_phase == 0,
                1.0 + vivace_laws.EPSILON,
                1.0 - vivace_laws.EPSILON,
            )
            grown = np.maximum(
                self.rate * factor * rttm, self.min_inflight
            )
        state.inflight[idx] = np.where(
            act, grown, state.inflight[idx]
        )

    def _begin_mi(self, mask, now, rttm, dt, qd) -> None:
        if not mask.any():
            return
        self.mi_start = np.where(mask, now, self.mi_start)
        self.mi_end = np.where(
            mask, now + np.maximum(rttm, 4 * dt), self.mi_end
        )
        self.mi_delivered = np.where(mask, 0.0, self.mi_delivered)
        self.mi_lost = np.where(mask, 0.0, self.mi_lost)
        self.mi_qd_start = np.where(mask, qd, self.mi_qd_start)

    def on_drop(
        self, state: TickState, dropped: np.ndarray, mask: np.ndarray
    ) -> None:
        idx = self.rows
        hit = mask[idx]
        if not hit.any():
            return
        self.mi_lost = np.where(
            hit, self.mi_lost + dropped[idx], self.mi_lost
        )
