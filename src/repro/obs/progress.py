"""Live campaign/sweep progress: counts, rates, ETA, worker health.

:class:`ProgressTracker` is the one implementation of the progress/ETA
math used everywhere a done/total pair is shown to a human or a machine:

* the ``--progress`` live line on ``simulate``/``figure``/``campaign
  run|resume`` (fed by the :class:`repro.exec.Engine` progress callback
  and per-worker heartbeats);
* the ``progress.json`` sidecar written next to a campaign's checkpoint
  journal (:meth:`ProgressTracker.write_sidecar`);
* ``repro-bbr top`` and ``repro-bbr campaign status --json``, which
  reconstruct a tracker from the journal and call the same
  :func:`eta_seconds` the live path uses.

The point rate is EWMA-smoothed (:attr:`ProgressTracker.ewma_alpha`) so
the ETA does not whipsaw between cache-hit bursts and slow simulated
points; before the first interval completes the cumulative mean rate is
used.  Worker health is a per-pid last-heartbeat age plus max RSS
(:func:`resource.getrusage` in the worker), shipped back with results.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from threading import Lock
from typing import Any, Dict, Optional

__all__ = [
    "PROGRESS_NAME",
    "PROGRESS_SCHEMA",
    "ProgressTracker",
    "eta_seconds",
    "format_duration",
    "rss_self_kb",
]

PROGRESS_NAME = "progress.json"
PROGRESS_SCHEMA = 1


def format_duration(seconds: Optional[float]) -> str:
    """Compact ``h:mm:ss`` / ``m:ss`` rendering (``?`` when unknown)."""
    if seconds is None or seconds != seconds or seconds == float("inf"):
        return "?"
    total = max(0, int(seconds + 0.5))
    hours, rem = divmod(total, 3600)
    minutes, secs = divmod(rem, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


def eta_seconds(
    done: int,
    total: Optional[int],
    elapsed_s: float,
    rate_per_s: Optional[float] = None,
) -> Optional[float]:
    """Seconds until ``total`` at the given (or implied) rate.

    The single ETA formula shared by the live tracker, ``campaign
    status --json``, and ``repro-bbr top``: with no explicit rate the
    cumulative mean ``done / elapsed`` is used.  None means "cannot
    estimate" (no total, nothing done yet, or a zero rate).
    """
    if total is None or done <= 0 or total <= done:
        return 0.0 if (total is not None and 0 < total <= done) else None
    rate = rate_per_s
    if rate is None:
        rate = done / elapsed_s if elapsed_s > 0 else None
    if rate is None or rate <= 0:
        return None
    return (total - done) / rate


def rss_self_kb() -> int:
    """This process's max RSS in KiB (0 when unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.  Anything implausibly
    # large for a KiB reading is normalized.
    if rss > 1 << 31:
        rss //= 1024
    return int(rss)


@dataclass
class WorkerHealth:
    """Liveness/footprint of one worker process, by pid."""

    pid: int
    last_seen: float  # epoch seconds
    rss_kb: int = 0
    points: int = 0

    def age_s(self, now: Optional[float] = None) -> float:
        return max(0.0, (time.time() if now is None else now) - self.last_seen)


class ProgressTracker:
    """Accumulates progress counts into rates, an ETA, and renderings.

    Args:
        total: Expected number of points/units, or None when unknown.
        label: Short name shown in renderings (figure id, campaign name).
        ewma_alpha: Smoothing factor for the instantaneous rate; 1.0
            means "latest interval only", smaller is smoother.
    """

    def __init__(
        self,
        total: Optional[int] = None,
        label: str = "",
        ewma_alpha: float = 0.3,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha}"
            )
        self.total = total
        self.label = label
        self.ewma_alpha = ewma_alpha
        self.done = 0
        self.submitted = 0
        self.hits = 0
        # Result rows streamed to disk so far (campaign sink feed) —
        # a counter, never a buffer: the rows themselves are gone.
        self.rows = 0
        # Engine point-level counters, distinct from done/submitted when
        # the tracked unit is coarser than a point (campaign units).
        self.points_done = 0
        self.points_submitted = 0
        self.workers: Dict[int, WorkerHealth] = {}
        self.stages: Dict[str, Dict[str, int]] = {}
        self._start = time.perf_counter()
        self._start_epoch = time.time()
        self._last_done = 0
        self._last_t = self._start
        self._ewma_rate: Optional[float] = None
        self._lock = Lock()

    # -- feeding -----------------------------------------------------------

    def update(self, done: int, submitted: int, hits: int) -> None:
        """Engine progress callback: cumulative done/submitted/hits."""
        now = time.perf_counter()
        with self._lock:
            self.done = done
            self.submitted = submitted
            self.hits = hits
            delta = done - self._last_done
            dt = now - self._last_t
            if delta > 0 and dt > 0:
                inst = delta / dt
                if self._ewma_rate is None:
                    self._ewma_rate = inst
                else:
                    self._ewma_rate = (
                        self.ewma_alpha * inst
                        + (1.0 - self.ewma_alpha) * self._ewma_rate
                    )
                self._last_done = done
                self._last_t = now

    def update_points(self, done: int, submitted: int, hits: int) -> None:
        """Engine progress callback when the tracked unit is coarser.

        Campaigns track *units* in :meth:`update` but still want the
        engine's point-level cache-hit rate; this records the point
        counters without touching the unit ETA math.
        """
        with self._lock:
            self.points_done = done
            self.points_submitted = submitted
            self.hits = hits

    def heartbeat(self, pid: int, rss_kb: int = 0, points: int = 1) -> None:
        """Record that worker ``pid`` reported in (with its max RSS)."""
        with self._lock:
            health = self.workers.get(pid)
            if health is None:
                health = self.workers[pid] = WorkerHealth(
                    pid=pid, last_seen=time.time()
                )
            else:
                health.last_seen = time.time()
            health.points += points
            if rss_kb:
                health.rss_kb = max(health.rss_kb, rss_kb)

    def stage_progress(self, stage: str, done: int, total: int) -> None:
        """Attach per-stage done/total counts (campaign layer)."""
        with self._lock:
            self.stages[stage] = {"done": done, "total": total}

    def set_rows(self, rows: int) -> None:
        """Record the cumulative result-row count (campaign sink)."""
        with self._lock:
            self.rows = rows

    # -- derived -----------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self._start

    def rate_per_s(self) -> Optional[float]:
        """EWMA points/s; cumulative mean before the first interval."""
        if self._ewma_rate is not None:
            return self._ewma_rate
        elapsed = self.elapsed_s
        if self.done > 0 and elapsed > 0:
            return self.done / elapsed
        return None

    def eta_s(self) -> Optional[float]:
        # Mirror render(): with no declared total, estimate against the
        # submitted frontier (None again when nothing is submitted).
        total = self.total
        if total is None:
            total = self.submitted or None
        return eta_seconds(self.done, total, self.elapsed_s, self.rate_per_s())

    def hit_rate(self) -> float:
        """Cache hits over resolved points (or units when points are
        not tracked separately)."""
        denom = self.points_done or self.done
        return self.hits / denom if denom else 0.0

    # -- output ------------------------------------------------------------

    def render(self, stale_after_s: float = 60.0) -> str:
        """One status line for the live ``--progress`` display."""
        total = self.total if self.total is not None else self.submitted
        rate = self.rate_per_s()
        parts = []
        if self.label:
            parts.append(self.label)
        pct = f" ({self.done / total * 100:.0f}%)" if total else ""
        parts.append(f"{self.done}/{total if total else '?'}{pct}")
        parts.append(f"{self.hits} cached ({self.hit_rate() * 100:.0f}%)")
        parts.append(f"{rate:.2f}/s" if rate is not None else "-/s")
        parts.append(f"eta {format_duration(self.eta_s())}")
        parts.append(f"elapsed {format_duration(self.elapsed_s)}")
        if self.workers:
            now = time.time()
            stale = sum(
                1
                for w in self.workers.values()
                if w.age_s(now) > stale_after_s
            )
            note = f", {stale} stale" if stale else ""
            parts.append(f"workers {len(self.workers)}{note}")
        return " | ".join(parts)

    def snapshot(self) -> Dict[str, Any]:
        """The machine-readable progress payload (``progress.json``)."""
        now = time.time()
        with self._lock:
            return {
                "schema": PROGRESS_SCHEMA,
                "kind": "progress",
                "label": self.label,
                "total": self.total,
                "done": self.done,
                "submitted": self.submitted,
                "cache_hits": self.hits,
                "hit_rate": self.hit_rate(),
                "rows": self.rows,
                "points_done": self.points_done,
                "points_submitted": self.points_submitted,
                "elapsed_s": self.elapsed_s,
                "rate_per_s": self.rate_per_s(),
                "eta_s": self.eta_s(),
                "started_at": self._start_epoch,
                "updated_at": now,
                "stages": {
                    name: dict(counts)
                    for name, counts in self.stages.items()
                },
                "workers": {
                    str(pid): {
                        "last_seen_age_s": round(health.age_s(now), 3),
                        "rss_kb": health.rss_kb,
                        "points": health.points,
                    }
                    for pid, health in self.workers.items()
                },
            }

    def write_sidecar(self, path: str) -> None:
        """Atomically write :meth:`snapshot` to ``path``.

        Written via a sibling temp file + ``os.replace`` so a reader
        (``repro-bbr top`` following a live campaign) never sees a torn
        JSON document.
        """
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
