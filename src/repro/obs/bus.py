"""Structured telemetry bus: counters, gauges, timers, and typed events.

Instrumented code throughout both simulator substrates holds an optional
:class:`Telemetry` reference (``obs``).  The convention that keeps the hot
path fast is *absence means disabled*: every instrumentation site guards
with ``if obs is not None`` — a single attribute test — so a run with
telemetry disabled (the default) pays no dict lookups, no allocations,
and no string formatting.  A run with telemetry enabled accumulates
everything in memory; nothing is written unless the caller exports it
(see :mod:`repro.obs.export`).

Four primitives:

* **counters** — monotonically accumulated floats (``count``), e.g.
  ``link.dropped_packets``;
* **gauges**   — sampled values with running min/max/mean (``gauge``),
  e.g. ``link.queue_bytes``;
* **timers**   — accumulated wall-clock durations (``timeit`` /
  ``record_time``), measured with :func:`time.perf_counter`;
* **events**   — typed, timestamped records (``event``), e.g. a BBR
  ``STARTUP → DRAIN`` transition, and periodic **samples** (``sample``),
  the event-stream form of :class:`repro.sim.trace.TraceSample`.

A module-level *default* bus supports instrumenting call chains that do
not thread ``obs`` explicitly (e.g. ``repro-bbr figure --profile``):
:func:`resolve` returns the explicit argument if given, else the default,
else None.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Telemetry",
    "TelemetryEvent",
    "GaugeStat",
    "TimerStat",
    "get_default",
    "set_default",
    "resolve",
    "use",
]


@dataclass
class TelemetryEvent:
    """One typed, timestamped occurrence on the bus.

    ``time`` is *simulation* time in seconds (wall-clock durations belong
    to timers).  ``fields`` carries arbitrary JSON-serializable payload.
    """

    name: str
    time: float
    fields: Dict[str, Any] = field(default_factory=dict)


@dataclass
class GaugeStat:
    """Running statistics over one gauge's samples."""

    last: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    total: float = 0.0
    count: int = 0

    def update(self, value: float) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 before any sample)."""
        return self.total / self.count if self.count else 0.0


@dataclass
class TimerStat:
    """Accumulated wall-clock time under one timer name."""

    calls: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def update(self, elapsed: float) -> None:
        self.calls += 1
        self.total_s += elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed


class Telemetry:
    """An in-memory telemetry bus.

    Args:
        max_events: Optional cap on retained events (and samples,
            independently).  Once reached, further records are counted in
            :attr:`dropped_records` instead of stored, so a pathological
            run cannot exhaust memory.
        sample_interval: When set, simulator front-ends attach periodic
            per-flow state samplers at this period (seconds); None means
            "no periodic sampling", which leaves only counters, gauges,
            timers, and sparse events.
    """

    def __init__(
        self,
        max_events: Optional[int] = 1_000_000,
        sample_interval: Optional[float] = None,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(
                f"max_events must be positive or None, got {max_events}"
            )
        if sample_interval is not None and sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive or None, "
                f"got {sample_interval}"
            )
        self.max_events = max_events
        self.sample_interval = sample_interval
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, GaugeStat] = {}
        self.timers: Dict[str, TimerStat] = {}
        self.events: List[TelemetryEvent] = []
        self.samples: List[Dict[str, Any]] = []
        self.dropped_records = 0

    # -- counters / gauges -------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never counted)."""
        return self.counters.get(name, 0.0)

    def gauge(self, name: str, value: float) -> None:
        """Record one sample of gauge ``name``."""
        stat = self.gauges.get(name)
        if stat is None:
            stat = self.gauges[name] = GaugeStat()
        stat.update(value)

    # -- timers ------------------------------------------------------------

    def record_time(self, name: str, elapsed_s: float) -> None:
        """Accumulate ``elapsed_s`` wall-clock seconds under ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.update(elapsed_s)

    @contextmanager
    def timeit(self, name: str) -> Iterator[None]:
        """Context manager timing its body with ``perf_counter``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_time(name, time.perf_counter() - start)

    # -- events / samples ---------------------------------------------------

    def event(self, name: str, time: float, **fields: Any) -> None:
        """Record a typed event at simulation time ``time``."""
        if (
            self.max_events is not None
            and len(self.events) >= self.max_events
        ):
            self.dropped_records += 1
            return
        self.events.append(TelemetryEvent(name=name, time=time, fields=fields))

    def sample(self, time: float, flow_id: int, **fields: Any) -> None:
        """Record one periodic per-flow state snapshot."""
        if (
            self.max_events is not None
            and len(self.samples) >= self.max_events
        ):
            self.dropped_records += 1
            return
        record = {"time": time, "flow_id": flow_id}
        record.update(fields)
        self.samples.append(record)

    # -- introspection ------------------------------------------------------

    def events_named(self, name: str) -> List[TelemetryEvent]:
        """All events with the given name, in record order."""
        return [e for e in self.events if e.name == name]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable summary of every aggregate on the bus."""
        return {
            "counters": dict(self.counters),
            "gauges": {
                name: {
                    "last": g.last,
                    "min": g.min,
                    "max": g.max,
                    "mean": g.mean,
                    "count": g.count,
                }
                for name, g in self.gauges.items()
            },
            "timers": {
                name: {
                    "calls": t.calls,
                    "total_s": t.total_s,
                    "max_s": t.max_s,
                }
                for name, t in self.timers.items()
            },
            "events": len(self.events),
            "samples": len(self.samples),
            "dropped_records": self.dropped_records,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Telemetry counters={len(self.counters)} "
            f"events={len(self.events)} samples={len(self.samples)}>"
        )


#: The process-wide default bus; None means telemetry is disabled.
_default: Optional[Telemetry] = None


def get_default() -> Optional[Telemetry]:
    """The current default bus, or None when telemetry is disabled."""
    return _default


def set_default(obs: Optional[Telemetry]) -> None:
    """Install ``obs`` as the process-wide default bus (None disables)."""
    global _default
    _default = obs


def resolve(obs: Optional[Telemetry]) -> Optional[Telemetry]:
    """An explicit bus wins; otherwise fall back to the default (or None)."""
    return obs if obs is not None else _default


@contextmanager
def use(obs: Optional[Telemetry]) -> Iterator[Optional[Telemetry]]:
    """Temporarily install ``obs`` as the default bus."""
    previous = get_default()
    set_default(obs)
    try:
        yield obs
    finally:
        set_default(previous)
