"""repro.obs — unified telemetry across both simulator substrates.

A low-overhead structured telemetry layer: a bus of counters, gauges,
timers, and typed events (:mod:`repro.obs.bus`); per-run JSON manifests
(:mod:`repro.obs.manifest`); a unified JSONL trace format joining
periodic controller samples with the event stream
(:mod:`repro.obs.export`); and run-summary reports rendered from a
manifest + trace (:mod:`repro.obs.report`).

Telemetry is **disabled by default** and is a strict no-op when disabled:
every instrumentation site in the packet simulator, the fluid simulator,
and the congestion controllers guards on ``obs is not None``.  Enable it
by passing a :class:`Telemetry` instance (``run_mix(..., obs=bus)``) or
by installing a process default (``with obs.use(bus): ...``), which is
what ``repro-bbr simulate --trace-out``/``--profile`` do.
"""

from repro.obs.bus import (
    GaugeStat,
    Telemetry,
    TelemetryEvent,
    TimerStat,
    get_default,
    resolve,
    set_default,
    use,
)
from repro.obs.export import TraceData, read_trace, tracer_samples, write_trace
from repro.obs.manifest import (
    CAMPAIGN_SCHEMA,
    SCHEMA,
    CampaignManifest,
    RunManifest,
    manifest_path_for,
)
from repro.obs.report import FlowReport, RunReport, load_report

__all__ = [
    "GaugeStat",
    "Telemetry",
    "TelemetryEvent",
    "TimerStat",
    "get_default",
    "resolve",
    "set_default",
    "use",
    "TraceData",
    "read_trace",
    "tracer_samples",
    "write_trace",
    "SCHEMA",
    "CAMPAIGN_SCHEMA",
    "CampaignManifest",
    "RunManifest",
    "manifest_path_for",
    "FlowReport",
    "RunReport",
    "load_report",
]
