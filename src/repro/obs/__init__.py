"""repro.obs — unified telemetry across both simulator substrates.

A low-overhead structured telemetry layer: a bus of counters, gauges,
timers, and typed events (:mod:`repro.obs.bus`); per-run JSON manifests
(:mod:`repro.obs.manifest`); a unified JSONL trace format joining
periodic controller samples with the event stream
(:mod:`repro.obs.export`); run-summary reports rendered from a
manifest + trace (:mod:`repro.obs.report`); hierarchical wall-clock
*spans* exported as Chrome trace-event JSON (:mod:`repro.obs.trace`);
and live progress/ETA/worker-health tracking
(:mod:`repro.obs.progress`).

Telemetry is **disabled by default** and is a strict no-op when disabled:
every instrumentation site in the packet simulator, the fluid simulator,
and the congestion controllers guards on ``obs is not None``.  Enable it
by passing a :class:`Telemetry` instance (``run_mix(..., obs=bus)``) or
by installing a process default (``with obs.use(bus): ...``), which is
what ``repro-bbr simulate --trace-out``/``--profile`` do.
"""

from repro.obs.bus import (
    GaugeStat,
    Telemetry,
    TelemetryEvent,
    TimerStat,
    get_default,
    resolve,
    set_default,
    use,
)
from repro.obs.export import (
    TraceData,
    open_maybe_gzip,
    read_trace,
    tracer_samples,
    write_trace,
)
from repro.obs.manifest import (
    CAMPAIGN_SCHEMA,
    SCHEMA,
    CampaignManifest,
    RunManifest,
    manifest_path_for,
)
from repro.obs.progress import (
    ProgressTracker,
    eta_seconds,
    format_duration,
    rss_self_kb,
)
from repro.obs.report import FlowReport, RunReport, load_report
from repro.obs.trace import (
    ChromeTrace,
    Span,
    SpanAggregate,
    Tracer,
    aggregate_spans,
    read_chrome_trace,
    render_span_report,
    write_chrome_trace,
)

__all__ = [
    "GaugeStat",
    "Telemetry",
    "TelemetryEvent",
    "TimerStat",
    "get_default",
    "resolve",
    "set_default",
    "use",
    "TraceData",
    "open_maybe_gzip",
    "read_trace",
    "tracer_samples",
    "write_trace",
    "ChromeTrace",
    "Span",
    "SpanAggregate",
    "Tracer",
    "aggregate_spans",
    "read_chrome_trace",
    "render_span_report",
    "write_chrome_trace",
    "ProgressTracker",
    "eta_seconds",
    "format_duration",
    "rss_self_kb",
    "SCHEMA",
    "CAMPAIGN_SCHEMA",
    "CampaignManifest",
    "RunManifest",
    "manifest_path_for",
    "FlowReport",
    "RunReport",
    "load_report",
]
