"""Per-run manifests: the reproducibility record written next to results.

A :class:`RunManifest` captures everything needed to re-run (and audit) a
simulation: the link configuration, flow mix, seed, backend, package
version, plus outcome aggregates — wall time, event counts, and a compact
per-flow summary.  It is written as JSON next to the trace (and embedded
as the first record *inside* the JSONL trace, so a trace file is
self-describing even when moved).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import __version__
from repro.obs.bus import Telemetry
from repro.util.config import LinkConfig

#: Manifest schema identifier; bump on incompatible changes.
SCHEMA = "repro-obs/1"

#: Campaign manifest schema identifier.
CAMPAIGN_SCHEMA = "repro-campaign/1"

__all__ = [
    "CampaignManifest",
    "CAMPAIGN_SCHEMA",
    "RunManifest",
    "SCHEMA",
    "manifest_path_for",
]


@dataclass
class RunManifest:
    """The JSON-serializable record of one simulation run."""

    schema: str
    version: str
    created_unix: float
    label: str
    link: Dict[str, Any]
    mix: List[Tuple[str, int]]
    backend: str
    duration: float
    warmup: Optional[float]
    trials: int
    seed: int
    wall_time_s: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, Any] = field(default_factory=dict)
    flows: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        label: str,
        link: LinkConfig,
        mix: Sequence[Tuple[str, int]],
        backend: str,
        duration: float,
        seed: int,
        trials: int = 1,
        warmup: Optional[float] = None,
        obs: Optional[Telemetry] = None,
        wall_time_s: float = 0.0,
        flows: Optional[List[Dict[str, Any]]] = None,
    ) -> "RunManifest":
        """Assemble a manifest from a run's configuration and telemetry."""
        counters: Dict[str, float] = {}
        timers: Dict[str, Any] = {}
        if obs is not None:
            snap = obs.snapshot()
            counters = snap["counters"]
            timers = snap["timers"]
        return cls(
            schema=SCHEMA,
            version=__version__,
            created_unix=time.time(),
            label=label,
            link={
                "capacity_mbps": link.capacity_mbps,
                "rtt_ms": link.rtt_ms,
                "buffer_bdp": link.buffer_bdp,
                "mss": link.mss,
            },
            mix=[(cc, int(count)) for cc, count in mix],
            backend=backend,
            duration=duration,
            warmup=warmup,
            trials=trials,
            seed=seed,
            wall_time_s=wall_time_s,
            counters=counters,
            timers=timers,
            flows=flows or [],
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    def write(self, path: str) -> None:
        """Write the manifest as pretty-printed JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild a manifest from its dict form (ignores unknown keys)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["mix"] = [
            (cc, int(count)) for cc, count in kwargs.get("mix", [])
        ]
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        """Read a manifest previously written with :meth:`write`."""
        with open(path) as f:
            return cls.from_dict(json.load(f))

    def cc_of_flow(self, flow_id: int) -> Optional[str]:
        """CCA name of ``flow_id`` from the per-flow summary, if known."""
        for row in self.flows:
            if row.get("flow_id") == flow_id:
                return row.get("cc")
        return None


@dataclass
class CampaignManifest:
    """The JSON-serializable record of one completed campaign.

    Written as ``manifest.json`` in the campaign output directory; the
    ``fingerprint`` is the spec's content hash, so a manifest proves
    which study produced a CSV even after the directory is moved.
    """

    schema: str
    version: str
    created_unix: float
    spec_name: str
    fingerprint: str
    total_units: int
    from_journal: int
    executed: int
    rows: int
    wall_time_s: float
    csv: str
    exec_stats: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        spec_name: str,
        fingerprint: str,
        total_units: int,
        from_journal: int,
        executed: int,
        rows: int,
        wall_time_s: float,
        csv: str,
        exec_stats: Optional[Dict[str, int]] = None,
    ) -> "CampaignManifest":
        """Assemble a manifest from a finished campaign's counters."""
        return cls(
            schema=CAMPAIGN_SCHEMA,
            version=__version__,
            created_unix=time.time(),
            spec_name=spec_name,
            fingerprint=fingerprint,
            total_units=total_units,
            from_journal=from_journal,
            executed=executed,
            rows=rows,
            wall_time_s=wall_time_s,
            csv=csv,
            exec_stats=exec_stats or {},
        )

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON-ready)."""
        return asdict(self)

    def write(self, path: str) -> None:
        """Write the manifest as pretty-printed JSON to ``path``."""
        with open(path, "w") as f:
            json.dump(self.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")

    @classmethod
    def load(cls, path: str) -> "CampaignManifest":
        """Read a manifest previously written with :meth:`write`."""
        with open(path) as f:
            data = json.load(f)
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        return cls(**{k: v for k, v in data.items() if k in known})


def manifest_path_for(trace_path: str) -> str:
    """The sibling manifest path for a JSONL trace path.

    ``run.jsonl`` → ``run.manifest.json`` (extension-insensitive: any
    final suffix is replaced; a bare name gets ``.manifest.json``).
    """
    dot = trace_path.rfind(".")
    slash = max(trace_path.rfind("/"), trace_path.rfind("\\"))
    stem = trace_path[:dot] if dot > slash else trace_path
    return stem + ".manifest.json"
