"""JSONL trace export: one unified stream of samples, events, counters.

The trace format is line-delimited JSON; every record carries a ``kind``:

* ``manifest`` — the embedded :class:`repro.obs.manifest.RunManifest`
  (always the first line when present);
* ``sample``   — a periodic per-flow state snapshot (the event-stream
  form of :class:`repro.sim.trace.TraceSample`): ``time``, ``flow_id``,
  then controller fields such as ``cwnd``/``inflight``/``state``;
* ``event``    — a typed :class:`repro.obs.bus.TelemetryEvent` (``time``,
  ``name``, and the payload nested under ``fields`` so payload keys can
  never collide with the record envelope);
* ``counter``  — one final-value counter (``name``, ``value``), written
  at export time so a trace is self-contained.

Records are time-ordered within each kind but *not* globally merged;
:func:`read_trace` hands back the three streams separately, which is what
:mod:`repro.obs.report` consumes.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterable, List, Optional

from repro.obs.bus import Telemetry, TelemetryEvent
from repro.obs.manifest import RunManifest

__all__ = [
    "TraceData",
    "open_maybe_gzip",
    "write_trace",
    "read_trace",
    "tracer_samples",
]


def open_maybe_gzip(path: str, mode: str) -> IO[str]:
    """Open ``path`` for text I/O, gzip-compressed when it ends ``.gz``.

    Long-campaign traces compress ~10x; every trace read and write path
    (JSONL telemetry traces, Chrome span traces, ``repro-bbr report``)
    routes through here so ``.jsonl.gz``/``.json.gz`` work everywhere.
    """
    if mode not in ("r", "w", "a"):
        raise ValueError(f"mode must be r, w, or a, got {mode!r}")
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


@dataclass
class TraceData:
    """Parsed contents of one JSONL trace file."""

    manifest: Optional[RunManifest] = None
    samples: List[Dict[str, Any]] = field(default_factory=list)
    events: List[TelemetryEvent] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)

    def events_named(self, name: str) -> List[TelemetryEvent]:
        """All events with the given name, in record order."""
        return [e for e in self.events if e.name == name]

    def flow_ids(self) -> List[int]:
        """Every flow id seen in samples or events, sorted."""
        ids = {s["flow_id"] for s in self.samples if "flow_id" in s}
        for e in self.events:
            fid = e.fields.get("flow_id")
            if fid is not None:
                ids.add(fid)
        return sorted(ids)

    @property
    def end_time(self) -> float:
        """Largest simulation timestamp in the trace (0.0 when empty)."""
        latest = 0.0
        if self.samples:
            latest = max(latest, max(s["time"] for s in self.samples))
        if self.events:
            latest = max(latest, max(e.time for e in self.events))
        return latest


def tracer_samples(tracer: object) -> Iterable[Dict[str, Any]]:
    """Convert :class:`repro.sim.trace.CwndTracer` samples to dict records.

    Accepts any object with a ``samples`` list of
    :class:`~repro.sim.trace.TraceSample`-shaped items.
    """
    for s in getattr(tracer, "samples", []):
        yield {
            "time": s.time,
            "flow_id": s.flow_id,
            "cwnd": s.cwnd,
            "in_flight": s.in_flight,
            "pacing_rate": s.pacing_rate,
            "state": s.state,
        }


def write_trace(
    path: str,
    obs: Telemetry,
    manifest: Optional[RunManifest] = None,
    extra_samples: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write a unified JSONL trace; returns the number of records written.

    The stream is: manifest (if any), then all samples — the bus's own
    periodic samples unified with ``extra_samples`` (e.g. converted
    :class:`~repro.sim.trace.CwndTracer` output), time-sorted — then all
    events, then final counter values.
    """
    samples: List[Dict[str, Any]] = list(obs.samples)
    if extra_samples is not None:
        samples.extend(extra_samples)
    samples.sort(key=lambda s: (s.get("time", 0.0), s.get("flow_id", -1)))

    written = 0
    with open_maybe_gzip(path, "w") as f:
        if manifest is not None:
            f.write(
                json.dumps({"kind": "manifest", **manifest.to_dict()}) + "\n"
            )
            written += 1
        for s in samples:
            f.write(json.dumps({"kind": "sample", **s}) + "\n")
            written += 1
        for e in obs.events:
            record = {
                "kind": "event",
                "name": e.name,
                "time": e.time,
                "fields": e.fields,
            }
            f.write(json.dumps(record) + "\n")
            written += 1
        for name in sorted(obs.counters):
            f.write(
                json.dumps(
                    {
                        "kind": "counter",
                        "name": name,
                        "value": obs.counters[name],
                    }
                )
                + "\n"
            )
            written += 1
    return written


def read_trace(path: str) -> TraceData:
    """Parse a JSONL trace written by :func:`write_trace`."""
    data = TraceData()
    with open_maybe_gzip(path, "r") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON record: {exc}"
                ) from exc
            kind = record.pop("kind", None)
            if kind == "manifest":
                data.manifest = RunManifest.from_dict(record)
            elif kind == "sample":
                data.samples.append(record)
            elif kind == "event":
                name = record.pop("name")
                when = record.pop("time")
                fields = record.pop("fields", record)
                data.events.append(
                    TelemetryEvent(name=name, time=when, fields=fields)
                )
            elif kind == "counter":
                data.counters[record["name"]] = record["value"]
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown record kind {kind!r}"
                )
    return data
