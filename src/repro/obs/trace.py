"""Hierarchical wall-clock span tracing (``repro.obs.trace``).

A :class:`Tracer` records *spans* — named wall-clock intervals that nest
(``campaign > stage > point > {cache_lookup, simulate, journal}``) — with
the same absence-means-disabled discipline as :mod:`repro.obs.bus` and
:mod:`repro.check`: every instrumented site holds an optional ``tracer``
and guards with a single ``if tracer is not None`` attribute test, so a
run with tracing disabled (the default) pays nothing.

Enabling mirrors :mod:`repro.check`:

* pass or install a :class:`Tracer` (:func:`set_default` / :func:`use`);
* set ``REPRO_TRACE=1`` in the environment — which is exactly what the
  CLI's ``--trace-out``/``--progress`` flags do, so ``--jobs`` worker
  processes inherit tracing.  Workers record into a fresh local tracer
  and ship their finished spans back with each result; the engine merges
  them parent-side, where each worker's ``pid`` becomes its own lane.

Export is Chrome trace-event JSON (the ``traceEvents`` object form),
loadable in Perfetto or ``chrome://tracing``; ``.json.gz`` paths are
gzip-compressed transparently.  :func:`aggregate_spans` reduces a span
list to per-name total/self wall time — the ``repro-bbr trace report``
table — where *self* time excludes time spent in enclosed child spans
on the same (pid, tid) lane.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.obs.export import open_maybe_gzip

__all__ = [
    "Span",
    "SpanAggregate",
    "Tracer",
    "aggregate_spans",
    "clear_default",
    "enabled_from_env",
    "get_default",
    "read_chrome_trace",
    "render_span_report",
    "resolve",
    "set_default",
    "use",
    "write_chrome_trace",
]

#: Fields every serialized span carries (the worker hand-off format).
_SPAN_KEYS = ("name", "cat", "start_s", "dur_s", "pid", "tid", "args")


@dataclass
class Span:
    """One finished wall-clock interval.

    ``start_s`` is epoch seconds (:func:`time.time`), so spans recorded
    in different processes on the same host share a timebase; ``dur_s``
    is measured with :func:`time.perf_counter` for resolution.
    """

    name: str
    cat: str
    start_s: float
    dur_s: float
    pid: int
    tid: int
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cat": self.cat,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            cat=str(data.get("cat", "")),
            start_s=float(data["start_s"]),
            dur_s=float(data["dur_s"]),
            pid=int(data["pid"]),
            tid=int(data.get("tid", 0)),
            args=dict(data.get("args", {})),
        )

    def to_chrome_event(self) -> Dict[str, Any]:
        """This span as a Chrome trace-event "complete" (``ph: X``)."""
        event = {
            "name": self.name,
            "cat": self.cat or "repro",
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.dur_s * 1e6,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class _OpenSpan:
    """Book-keeping for a span that has begun but not yet ended."""

    __slots__ = ("name", "cat", "args", "start_s", "start_perf")

    def __init__(self, name: str, cat: str, args: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.args = args
        self.start_s = time.time()
        self.start_perf = time.perf_counter()


class Tracer:
    """Collects nested spans; thread-safe, bounded, merge-friendly.

    Args:
        max_spans: Cap on retained spans; once reached further spans are
            counted in :attr:`dropped_spans` instead of stored.
    """

    def __init__(self, max_spans: Optional[int] = 1_000_000) -> None:
        if max_spans is not None and max_spans <= 0:
            raise ValueError(
                f"max_spans must be positive or None, got {max_spans}"
            )
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording ---------------------------------------------------------

    def _stack(self) -> List[_OpenSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, cat: str = "", **args: Any) -> Iterator[None]:
        """Record the body as one span; nests via a per-thread stack."""
        open_span = _OpenSpan(name, cat, args)
        stack = self._stack()
        stack.append(open_span)
        try:
            yield
        finally:
            stack.pop()
            self._finish(open_span)

    def _finish(self, open_span: _OpenSpan) -> None:
        dur = time.perf_counter() - open_span.start_perf
        self.add(
            Span(
                name=open_span.name,
                cat=open_span.cat,
                start_s=open_span.start_s,
                dur_s=dur,
                pid=os.getpid(),
                tid=threading.get_ident() & 0xFFFF,
                args=open_span.args,
            )
        )

    def add(self, span: Span) -> None:
        """Append one finished span (bounded by ``max_spans``)."""
        with self._lock:
            if (
                self.max_spans is not None
                and len(self.spans) >= self.max_spans
            ):
                self.dropped_spans += 1
                return
            self.spans.append(span)

    # -- worker hand-off ---------------------------------------------------

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all finished spans as picklable dicts.

        This is the worker side of the hand-off: a ``--jobs`` worker
        drains its local tracer after each point and returns the records
        with the result, so the parent can :meth:`merge` them.
        """
        with self._lock:
            spans, self.spans = self.spans, []
        return [span.to_dict() for span in spans]

    def merge(self, records: Iterable[Dict[str, Any]]) -> int:
        """Adopt spans drained from another process; returns the count.

        Each record keeps the pid it was recorded under, so merged
        worker spans render as separate per-worker lanes.
        """
        merged = 0
        for record in records:
            self.add(Span.from_dict(record))
            merged += 1
        return merged

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable summary (span count, drop count)."""
        with self._lock:
            return {
                "spans": len(self.spans),
                "dropped_spans": self.dropped_spans,
            }


# -- aggregation -------------------------------------------------------------


@dataclass
class SpanAggregate:
    """Per-name reduction over a span list."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0

    def update(self, dur_s: float, self_s: float) -> None:
        self.count += 1
        self.total_s += dur_s
        self.self_s += self_s
        if dur_s > self.max_s:
            self.max_s = dur_s


def aggregate_spans(spans: Sequence[Span]) -> List[SpanAggregate]:
    """Reduce spans to per-name count/total/self/max wall time.

    *Self* time is a span's duration minus the durations of its direct
    children — spans on the same ``(pid, tid)`` lane strictly enclosed
    by it.  Aggregates are returned sorted by descending self time.
    """
    by_name: Dict[str, SpanAggregate] = {}
    lanes: Dict[tuple, List[Span]] = {}
    for span in spans:
        lanes.setdefault((span.pid, span.tid), []).append(span)

    for lane in lanes.values():
        # Parents sort before their children: earlier start first, and
        # at equal starts the longer (enclosing) span first.
        lane.sort(key=lambda s: (s.start_s, -s.dur_s))
        stack: List[List[Any]] = []  # [span, child_total]
        for span in lane:
            while stack and span.start_s >= stack[-1][0].end_s - 1e-9:
                parent, child_total = stack.pop()
                _close(by_name, parent, child_total)
            if stack:
                stack[-1][1] += span.dur_s
            stack.append([span, 0.0])
        while stack:
            parent, child_total = stack.pop()
            _close(by_name, parent, child_total)

    return sorted(by_name.values(), key=lambda a: -a.self_s)


def _close(
    by_name: Dict[str, SpanAggregate], span: Span, child_total: float
) -> None:
    agg = by_name.get(span.name)
    if agg is None:
        agg = by_name[span.name] = SpanAggregate(name=span.name)
    agg.update(span.dur_s, max(0.0, span.dur_s - child_total))


def render_span_report(
    spans: Sequence[Span],
    hotspots: Optional[Sequence[Dict[str, Any]]] = None,
) -> str:
    """The ``repro-bbr trace report`` table: per-span self/total time."""
    lines: List[str] = []
    pids = sorted({span.pid for span in spans})
    lines.append(
        f"{len(spans)} spans from {len(pids)} process(es): "
        + ", ".join(str(pid) for pid in pids)
    )
    header = (
        f"{'span':<24} {'count':>7} {'total_s':>10} "
        f"{'self_s':>10} {'max_s':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for agg in aggregate_spans(spans):
        lines.append(
            f"{agg.name:<24} {agg.count:>7} {agg.total_s:>10.3f} "
            f"{agg.self_s:>10.3f} {agg.max_s:>9.3f}"
        )
    if hotspots:
        lines.append("")
        lines.append("profiled hotspots (cumulative seconds):")
        for row in hotspots:
            lines.append(
                f"  {row.get('cum_s', 0.0):>8.3f}s "
                f"{row.get('tot_s', 0.0):>8.3f}s "
                f"x{row.get('calls', 0):<8} {row.get('func', '?')}"
            )
    return "\n".join(lines)


# -- Chrome trace-event JSON -------------------------------------------------


def write_chrome_trace(
    path: str,
    spans: Sequence[Span],
    hotspots: Optional[Sequence[Dict[str, Any]]] = None,
    main_pid: Optional[int] = None,
) -> int:
    """Write spans as Chrome trace-event JSON; returns the event count.

    The object form (``{"traceEvents": [...]}``) is used so hotspot
    metadata can ride along under ``"reproHotspots"`` — viewers ignore
    unknown top-level keys.  A ``.gz`` suffix compresses transparently.
    """
    main = main_pid if main_pid is not None else os.getpid()
    events: List[Dict[str, Any]] = []
    for pid in sorted({span.pid for span in spans}):
        label = "main" if pid == main else f"worker-{pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    events.extend(span.to_chrome_event() for span in spans)
    payload: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if hotspots:
        payload["reproHotspots"] = list(hotspots)
    with open_maybe_gzip(path, "w") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return len(events)


def read_chrome_trace(path: str) -> "ChromeTrace":
    """Parse a Chrome trace-event JSON file written by this module."""
    with open_maybe_gzip(path, "r") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError(
            f"{path}: not a Chrome trace-event object (no traceEvents)"
        )
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError(f"{path}: traceEvents is not a list")
    spans: List[Span] = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{path}: traceEvents[{i}] is not an object")
        if event.get("ph") != "X":
            continue
        spans.append(
            Span(
                name=str(event["name"]),
                cat=str(event.get("cat", "")),
                start_s=float(event["ts"]) / 1e6,
                dur_s=float(event["dur"]) / 1e6,
                pid=int(event["pid"]),
                tid=int(event.get("tid", 0)),
                args=dict(event.get("args", {})),
            )
        )
    hotspots = data.get("reproHotspots") or []
    return ChromeTrace(spans=spans, hotspots=list(hotspots))


@dataclass
class ChromeTrace:
    """Parsed contents of one Chrome trace-event JSON file."""

    spans: List[Span] = field(default_factory=list)
    hotspots: List[Dict[str, Any]] = field(default_factory=list)

    def named(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def pids(self) -> List[int]:
        return sorted({span.pid for span in self.spans})


# -- process-wide default (mirrors repro.check) ------------------------------

_UNSET = object()
_default: Any = _UNSET
_env_tracer: Optional[Tracer] = None


def enabled_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Whether ``REPRO_TRACE`` asks for a process-wide tracer."""
    env = os.environ if environ is None else environ
    value = env.get("REPRO_TRACE", "")
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def get_default() -> Optional[Tracer]:
    """The process-wide tracer, or None.

    An explicit :func:`set_default` always wins (including an explicit
    ``None``, which disables tracing even under ``REPRO_TRACE=1``);
    otherwise the environment decides, with one shared lazily-created
    tracer per process.
    """
    global _env_tracer
    if _default is not _UNSET:
        return _default
    if not enabled_from_env():
        return None
    if _env_tracer is None:
        _env_tracer = Tracer()
    return _env_tracer


def set_default(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` as the process-wide default (None disables)."""
    global _default
    _default = tracer


def clear_default() -> None:
    """Forget any explicit default; ``REPRO_TRACE`` decides again."""
    global _default, _env_tracer
    _default = _UNSET
    _env_tracer = None


def resolve(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """An explicit tracer wins; otherwise the process default."""
    return tracer if tracer is not None else get_default()


@contextmanager
def use(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Temporarily install ``tracer`` as the process-wide default."""
    global _default
    previous = _default
    _default = tracer
    try:
        yield tracer
    finally:
        _default = previous
