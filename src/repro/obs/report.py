"""Run-summary reports rendered from a manifest + JSONL trace.

``repro-bbr report run.jsonl`` lands here: given a trace written by
:func:`repro.obs.export.write_trace` (and, when available, its sibling
manifest), build a per-flow table of throughput, losses, retransmits, and
congestion-controller phase dwell times — the §2.1/§3.2 evidence (how
long each BBR flow spent in PROBE_BW, how often each CUBIC flow took a
0.7 backoff) that raw mean throughputs hide.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.export import TraceData, read_trace
from repro.obs.manifest import RunManifest, manifest_path_for

__all__ = ["FlowReport", "RunReport", "load_report"]

#: Event names produced by the congestion controllers / substrates.
STATE_EVENT = "cc.state"
BACKOFF_EVENT = "cc.backoff"
DROP_EVENT = "link.drop"
LOSS_EVENT = "flow.loss"
RETX_EVENT = "flow.retransmit"


@dataclass
class FlowReport:
    """Aggregates for one flow, derived from the trace streams."""

    flow_id: int
    cc: str = "?"
    samples: int = 0
    loss_events: int = 0
    lost_packets: int = 0
    retransmits: int = 0
    drops: int = 0
    backoffs: int = 0
    dwell: Dict[str, float] = field(default_factory=dict)
    throughput_mbps: Optional[float] = None
    loss_rate: Optional[float] = None

    def dwell_summary(self) -> str:
        """Compact ``STATE:seconds`` rendering of the dwell map."""
        if not self.dwell:
            return "-"
        parts = [
            f"{state}:{seconds:.1f}s"
            for state, seconds in sorted(
                self.dwell.items(), key=lambda kv: -kv[1]
            )
        ]
        return " ".join(parts)


@dataclass
class RunReport:
    """A parsed trace reduced to per-flow and per-link aggregates."""

    trace: TraceData
    flows: List[FlowReport] = field(default_factory=list)

    @classmethod
    def from_trace(cls, trace: TraceData) -> "RunReport":
        """Reduce a parsed trace into per-flow aggregates."""
        manifest = trace.manifest
        end_time = trace.end_time
        if manifest is not None and manifest.duration:
            end_time = max(end_time, manifest.duration)

        reports: Dict[int, FlowReport] = {}

        def flow(fid: int) -> FlowReport:
            if fid not in reports:
                reports[fid] = FlowReport(flow_id=fid)
            return reports[fid]

        for s in trace.samples:
            fid = s.get("flow_id")
            if fid is None:
                continue
            fr = flow(fid)
            fr.samples += 1
            if fr.cc == "?" and s.get("cc"):
                fr.cc = s["cc"]

        # Phase dwell from cc.state transition events: each event carries
        # the state being *entered*; dwell accrues from entry until the
        # next transition (or the end of the run).  The state in force
        # before the first transition (STARTUP for BBR-family) is taken
        # from the first event's "from" field, accruing from t=0.
        transitions: Dict[int, List] = {}
        for e in trace.events:
            fid = e.fields.get("flow_id")
            if fid is None:
                continue
            fr = flow(fid)
            if fr.cc == "?" and e.fields.get("cc"):
                fr.cc = e.fields["cc"]
            if e.name == STATE_EVENT:
                transitions.setdefault(fid, []).append(e)
            elif e.name == BACKOFF_EVENT:
                fr.backoffs += 1
            elif e.name == LOSS_EVENT:
                fr.loss_events += 1
                fr.lost_packets += int(e.fields.get("lost_packets", 1))
            elif e.name == RETX_EVENT:
                fr.retransmits += int(e.fields.get("packets", 1))
            elif e.name == DROP_EVENT:
                fr.drops += 1

        for fid, events in transitions.items():
            fr = flow(fid)
            events.sort(key=lambda e: e.time)
            first = events[0]
            prior = first.fields.get("from")
            if prior and first.time > 0:
                fr.dwell[prior] = fr.dwell.get(prior, 0.0) + first.time
            for current, nxt in zip(events, events[1:]):
                state = current.fields.get("to", "?")
                fr.dwell[state] = fr.dwell.get(state, 0.0) + (
                    nxt.time - current.time
                )
            last = events[-1]
            state = last.fields.get("to", "?")
            if end_time > last.time:
                fr.dwell[state] = fr.dwell.get(state, 0.0) + (
                    end_time - last.time
                )

        # Manifest per-flow summary fills in cc names and outcome columns.
        if manifest is not None:
            for row in manifest.flows:
                fid = row.get("flow_id")
                if fid is None:
                    continue
                fr = flow(fid)
                if row.get("cc"):
                    fr.cc = row["cc"]
                if "throughput_mbps" in row:
                    fr.throughput_mbps = row["throughput_mbps"]
                if "loss_rate" in row:
                    fr.loss_rate = row["loss_rate"]
                if "retransmits" in row and fr.retransmits == 0:
                    fr.retransmits = int(row["retransmits"])

        return cls(
            trace=trace,
            flows=[reports[fid] for fid in sorted(reports)],
        )

    def render(self) -> str:
        """Terminal rendering: header, per-flow table, link counters."""
        lines: List[str] = []
        manifest = self.trace.manifest
        if manifest is not None:
            link = manifest.link
            lines.append(
                f"== run: {manifest.label} "
                f"({link['capacity_mbps']:g} Mbps, {link['rtt_ms']:g} ms, "
                f"{link['buffer_bdp']:g} BDP) "
                f"backend={manifest.backend} duration={manifest.duration:g}s "
                f"seed={manifest.seed} =="
            )
            if manifest.wall_time_s:
                lines.append(f"wall time: {manifest.wall_time_s:.2f}s")

        header = (
            f"{'flow':>4} {'cc':>8} {'mbps':>8} {'loss%':>7} "
            f"{'retx':>6} {'backoffs':>8}  phase dwell"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for fr in self.flows:
            mbps = (
                f"{fr.throughput_mbps:8.2f}"
                if fr.throughput_mbps is not None
                else f"{'-':>8}"
            )
            loss = (
                f"{fr.loss_rate * 100:7.2f}"
                if fr.loss_rate is not None
                else f"{'-':>7}"
            )
            lines.append(
                f"{fr.flow_id:>4} {fr.cc:>8} {mbps} {loss} "
                f"{fr.retransmits:>6} {fr.backoffs:>8}  "
                f"{fr.dwell_summary()}"
            )

        drop_counters = {
            name: value
            for name, value in sorted(self.trace.counters.items())
            if name.startswith(("link.", "sim.", "fluid."))
        }
        if drop_counters:
            lines.append("")
            lines.append("link/substrate counters:")
            for name, value in drop_counters.items():
                lines.append(f"  {name:<28} {value:g}")
        return "\n".join(lines)


def load_report(trace_path: str) -> RunReport:
    """Read a trace (plus its sibling manifest, if present) and reduce it.

    The manifest embedded in the JSONL stream is used when present; a
    sibling ``<stem>.manifest.json`` overrides it (it may have been
    regenerated with richer per-flow summaries).
    """
    trace = read_trace(trace_path)
    sibling = manifest_path_for(trace_path)
    if os.path.exists(sibling):
        trace.manifest = RunManifest.load(sibling)
    return RunReport.from_trace(trace)
