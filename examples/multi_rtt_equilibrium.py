#!/usr/bin/env python3
"""Multi-RTT Nash Equilibrium: who ends up on CUBIC?

§4.5 of the paper: when flows with different base RTTs share a
bottleneck, Nash Equilibria still exist — and the flows that choose
CUBIC at the NE are always the *shortest-RTT* flows (CUBIC favours short
RTTs, BBR favours long ones).  This example runs the group game for
three RTT classes and prints the equilibrium composition.

Run:  python examples/multi_rtt_equilibrium.py
"""

from repro.core.game import FlowGroup, GroupGame
from repro.experiments.runner import group_payoff_fn
from repro.util.config import LinkConfig


def main() -> None:
    rtts = [0.010, 0.030, 0.050]      # 10 / 30 / 50 ms classes.
    sizes = [3, 3, 3]
    # Buffer normalized to the shortest RTT's BDP, as in the paper.
    link = LinkConfig.from_mbps_ms(100, 10, buffer_bdp=10)
    print(f"bottleneck: {link.describe()}")
    classes = [f"{r * 1e3:g}ms x{s}" for r, s in zip(rtts, sizes)]
    print(f"flow classes: {classes}\n")

    payoff = group_payoff_fn(link, rtts, sizes, duration=90, seed=1)
    game = GroupGame(
        groups=[FlowGroup(rtt=r, size=s) for r, s in zip(rtts, sizes)],
        payoff=payoff,
    )

    # Best-response descent from two extreme starting points.
    print("best-response dynamics (state = #BBR per RTT class):")
    candidates = set()
    for start in [(0, 1, 3), (3, 3, 3)]:
        path = game.best_response_path(start)
        print(f"  from {start}: " + " -> ".join(map(str, path)))
        candidates.add(path[-1])

    equilibria = [s for s in candidates if game.is_nash(s)]
    if not equilibria:
        print("\n(no exact NE among endpoints; reporting the last state)")
        equilibria = sorted(candidates)[:1]

    for state in equilibria:
        print(f"\nNash Equilibrium state {state}:")
        payoffs = game.payoffs(state)
        for g, (rtt, size) in enumerate(zip(rtts, sizes)):
            n_bbr = state[g]
            n_cubic = size - n_bbr
            cubic_tput, bbr_tput = payoffs[g]
            parts = []
            if n_cubic:
                parts.append(
                    f"{n_cubic} CUBIC @ {cubic_tput * 8 / 1e6:.1f} Mbps"
                )
            if n_bbr:
                parts.append(
                    f"{n_bbr} BBR @ {bbr_tput * 8 / 1e6:.1f} Mbps"
                )
            print(f"  {rtt * 1e3:4.0f} ms class: " + ", ".join(parts))
    print(
        "\n→ the short-RTT class stays on CUBIC, the long-RTT class "
        "switches to BBR: each algorithm's RTT bias picks its users."
    )


if __name__ == "__main__":
    main()
