#!/usr/bin/env python3
"""Buffer sizing in a mixed CUBIC/BBR world.

§5 of the paper ("Implications on Internet Buffer Sizing"): classic
buffer-sizing rules assume loss-based flows, but BBR keeps 2×BDP in
flight regardless.  This example sweeps the bottleneck buffer and asks,
for each depth:

* how is bandwidth split between CUBIC and BBR (model + fluid sim)?
* what queuing delay does everyone pay?
* where does the Nash Equilibrium settle — i.e. what CCA mix should an
  operator actually expect at that buffer depth?

Run:  python examples/buffer_sizing.py
"""

from repro import LinkConfig, predict_nash, predict_two_flow
from repro.experiments.runner import run_mix


def main() -> None:
    base = LinkConfig.from_mbps_ms(100, 40, 1)
    n_flows = 20
    print(
        "buffer  | 1v1 BBR share      | queuing delay | NE mix "
        f"(of {n_flows} flows)"
    )
    print(
        " (BDP)  | model    simulated | (ms, mixed)   | #CUBIC "
        "(sync-desync)"
    )
    print("-" * 72)
    for depth in (1.5, 2, 3, 5, 8, 12, 20, 30):
        link = base.with_buffer_bdp(depth)
        pred = predict_two_flow(link)
        sim = run_mix(
            link,
            [("cubic", 1), ("bbr", 1)],
            duration=90,
            backend="fluid",
            trials=2,
            seed=7,
        )
        sim_share = sim.per_flow["bbr"] / link.capacity
        ne = predict_nash(link, n_flows)
        print(
            f" {depth:5.1f}  | {pred.bbr_fraction * 100:5.1f}%   "
            f"{sim_share * 100:5.1f}%    | "
            f"{sim.mean_queuing_delay * 1e3:9.1f}   | "
            f"{ne.n_cubic_desync:4.1f} - {ne.n_cubic_sync:4.1f}"
        )

    print(
        "\nReading the table: deeper buffers push the NE toward CUBIC "
        "(BBR's RTT-bloat advantage saturates), but everyone pays the "
        "queuing delay CUBIC creates.  A ~2-5 BDP buffer keeps delay "
        "moderate while still leaving a mixed, stable CCA population — "
        "sizing for pure loss-based traffic no longer tells the whole "
        "story once BBR holds 2×BDP in flight."
    )


if __name__ == "__main__":
    main()
