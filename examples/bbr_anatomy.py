#!/usr/bin/env python3
"""Anatomy of a BBR flow: watch the §2.1 state machine run.

Traces one BBR flow competing with one CUBIC flow through the
packet-level simulator and prints:

* the state-machine timeline (STARTUP → DRAIN → PROBE_BW with ProbeRTT
  dips every ~10 s),
* how BBR's RTT_min estimate gets bloated by CUBIC's buffer occupancy
  (Equation 9 — the effect the whole model hinges on),
* the resulting 2×BDP in-flight cap versus what the model predicts.

Run:  python examples/bbr_anatomy.py
"""

from repro import LinkConfig, predict_two_flow
from repro.sim.network import DumbbellNetwork, FlowSpec
from repro.sim.trace import CwndTracer

DURATION = 60.0


def main() -> None:
    link = LinkConfig.from_mbps_ms(20, 40, 5)
    print(f"bottleneck: {link.describe()}")
    print("flows: 1 CUBIC vs 1 BBR, 60 s\n")

    net = DumbbellNetwork(link, [FlowSpec("cubic"), FlowSpec("bbr")])
    tracer = CwndTracer(net, interval=0.25)
    result = net.run(DURATION, warmup=10)

    # 1. State timeline, compressed to transitions.
    print("BBR state timeline:")
    samples = tracer.for_flow(1)
    last_state = None
    for sample in samples:
        if sample.state != last_state:
            print(f"  {sample.time:7.2f}s  -> {sample.state}")
            last_state = sample.state
    durations = tracer.state_durations(1)
    total = sum(durations.values())
    print("\ntime in each state:")
    for state, seconds in sorted(durations.items(), key=lambda kv: -kv[1]):
        print(f"  {state:10} {seconds:6.1f}s  ({seconds / total:5.1%})")

    # 2. The RTT_min bloat (Equation 9).
    bbr = net.senders[1].cc
    pred = predict_two_flow(link)
    print(
        f"\nRTT_min estimate: {bbr.rtprop * 1e3:.1f} ms measured "
        f"(base {link.rtt_ms:.0f} ms; model's RTT+ "
        f"{pred.rtt_plus * 1e3:.1f} ms)"
    )
    print(
        "  → CUBIC's leftover queue during ProbeRTT inflates BBR's "
        "'minimum', raising its in-flight cap (Eq. 9)."
    )

    # 3. The cap vs the model (steady-state cwnd: max over the last
    #    half of the run, avoiding a post-ProbeRTT rebuild snapshot).
    steady = [
        s.cwnd
        for s in samples
        if s.time > DURATION / 2 and s.state == "PROBE_BW"
    ]
    cap = max(steady) if steady else bbr.cwnd
    print(
        f"\nsteady in-flight cap: {cap / 1500:.0f} packets "
        f"({cap / link.bdp_bytes:.2f} BDP of the base RTT — the model's "
        f"2×BDP of the *bloated* RTT)"
    )
    bbr_result = result.flows[1]
    print(
        f"measured BBR throughput: {bbr_result.throughput_mbps:.2f} Mbps "
        f"(model: {pred.bbr_bandwidth * 8 / 1e6:.2f} Mbps)"
    )
    print(
        f"measured CUBIC throughput: "
        f"{result.flows[0].throughput_mbps:.2f} Mbps"
    )


if __name__ == "__main__":
    main()
