#!/usr/bin/env python3
"""Three eras of congestion control as three games.

§5 of the paper ("Incentives to switch to better congestion control"):

* CUBIC replaced New Reno because it was simply more aggressive — a
  Reno flow always gains by switching, so the game's only equilibrium
  is all-CUBIC: full replacement.
* Vegas never displaced Reno for the opposite reason: it concedes to
  buffer-fillers, so nobody gains by switching *to* it.
* BBR vs CUBIC is different: the advantage self-limits, the equilibrium
  is mixed — hence the paper's prediction that BBR will NOT fully
  replace CUBIC.

This example plays all three games on the fluid simulator and prints
each one's equilibrium structure.

Run:  python examples/cca_transitions.py
"""

from repro import LinkConfig
from repro.core.game import ThroughputTable
from repro.experiments.runner import distribution_throughput_fn

N_FLOWS = 8
DURATION = 100.0


def play(link, incumbent: str, challenger: str, seed: int = 21):
    fn = distribution_throughput_fn(
        link,
        N_FLOWS,
        challenger=challenger,
        incumbent=incumbent,
        duration=DURATION,
        backend="fluid",
        seed=seed,
    )
    table = ThroughputTable.from_function(N_FLOWS, fn)
    tolerance = 0.02 * link.capacity / N_FLOWS
    equilibria = table.nash_equilibria(tolerance=tolerance)
    print(f"\n=== {incumbent.upper()} vs {challenger.upper()} ===")
    print(f"  #{challenger}  {incumbent}/flow  {challenger}/flow  (Mbps)")
    for k in range(N_FLOWS + 1):
        inc = table.lambda_a[k] * 8 / 1e6
        cha = table.lambda_b[k] * 8 / 1e6
        tag = "  <-- NE" if k in equilibria else ""
        print(f"  {k:4d}  {inc:12.2f}  {cha:15.2f}{tag}")
    if equilibria == [N_FLOWS]:
        verdict = f"full replacement: everyone switches to {challenger}"
    elif equilibria == [0]:
        verdict = f"no adoption: {challenger} never pays off"
    elif any(0 < k < N_FLOWS for k in equilibria):
        verdict = "mixed equilibrium: both CCAs coexist"
    else:
        verdict = "boundary equilibria only"
    print(f"  → {verdict}")
    return equilibria


def main() -> None:
    link = LinkConfig.from_mbps_ms(100, 40, 3)
    print(f"bottleneck: {link.describe()}, {N_FLOWS} flows per game")

    # Era 1 (the 2000s): Reno-dominant Internet meets CUBIC.
    play(link, incumbent="reno", challenger="cubic")

    # The road not taken: Reno-dominant Internet meets Vegas.
    play(link, incumbent="reno", challenger="vegas")

    # Era 3 (now): CUBIC-dominant Internet meets BBR — the paper's game.
    play(link, incumbent="cubic", challenger="bbr")

    print(
        "\nThe paper's point in one table each: aggression without "
        "self-limitation (CUBIC vs Reno) replaces the incumbent; "
        "politeness (Vegas) never gets adopted; BBR's self-limiting "
        "aggression stops in the middle — a mixed Internet."
    )


if __name__ == "__main__":
    main()
