#!/usr/bin/env python3
"""CDN bottleneck: which congestion control should your service run?

The paper's framing (§1, §4): CDN operators cite throughput as the
reason to switch CCAs.  This example puts a service's flows at a shared
edge bottleneck against a background population and compares candidate
CCAs — BBR, BBRv2, Copa, Vivace — as the *deployment decision* an
operator faces, including how the answer changes once competitors also
switch.

Run:  python examples/cdn_fairness.py
"""

from repro import LinkConfig
from repro.experiments.runner import run_mix

CANDIDATES = ("cubic", "bbr", "bbr2", "copa", "vivace")


def deployment_table(
    link: LinkConfig, ours: int, background_cc: str, background: int
) -> None:
    fair = link.capacity * 8 / 1e6 / (ours + background)
    print(
        f"\n{ours} of our flows vs {background} background "
        f"{background_cc.upper()} flows "
        f"({link.describe()}; fair share {fair:.1f} Mbps):"
    )
    print("  our CCA    our Mbps/flow  background Mbps/flow  queue (ms)")
    for cc in CANDIDATES:
        if cc == background_cc:
            # Same CCA on both sides: just a homogeneous population.
            result = run_mix(
                link,
                [(cc, ours + background)],
                duration=120,
                backend="fluid",
                trials=2,
                seed=3,
            )
            mine = theirs = result.per_flow_mbps(cc)
        else:
            result = run_mix(
                link,
                [(cc, ours), (background_cc, background)],
                duration=120,
                backend="fluid",
                trials=2,
                seed=3,
            )
            mine = result.per_flow_mbps(cc)
            theirs = result.per_flow_mbps(background_cc)
        marker = "  <-- beats fair share" if mine > fair * 1.02 else ""
        print(
            f"  {cc:8} {mine:14.2f} {theirs:20.2f} "
            f"{result.mean_queuing_delay * 1e3:11.1f}{marker}"
        )


def main() -> None:
    link = LinkConfig.from_mbps_ms(100, 40, 3)

    # Scenario 1: today's Internet — background is CUBIC-dominated.
    deployment_table(link, ours=2, background_cc="cubic", background=8)

    # Scenario 2: everyone else already switched to BBR.
    deployment_table(link, ours=2, background_cc="bbr", background=8)

    print(
        "\nTakeaway: against a CUBIC background, BBR/Vivace flows gain "
        "well above fair share — the adoption incentive.  Against a BBR "
        "background the advantage is gone (and CUBIC becomes perfectly "
        "viable): the incentive self-destructs as adoption grows, which "
        "is exactly why the paper predicts a mixed equilibrium."
    )


if __name__ == "__main__":
    main()
