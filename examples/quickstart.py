#!/usr/bin/env python3
"""Quickstart: predict and simulate CUBIC-vs-BBR competition.

Covers the three layers of the library in ~40 lines of calls:

1. the analytical model (§2 of the paper),
2. the Nash-equilibrium prediction (§4),
3. a simulator run to check the model's prediction.

Run:  python examples/quickstart.py
"""

from repro import LinkConfig, predict_nash, predict_two_flow
from repro.core.ware import ware_prediction
from repro.experiments.runner import run_mix


def main() -> None:
    # A typical paper configuration: 100 Mbps, 40 ms RTT, 5 BDP buffer.
    link = LinkConfig.from_mbps_ms(100, 40, buffer_bdp=5)
    print(f"bottleneck: {link.describe()}\n")

    # 1. The 2-flow model: how much does one BBR flow take from CUBIC?
    pred = predict_two_flow(link)
    print("2-flow model (1 CUBIC vs 1 BBR):")
    print(f"  BBR   gets {pred.bbr_bandwidth * 8 / 1e6:6.2f} Mbps "
          f"({pred.bbr_fraction * 100:.1f}% of the link)")
    print(f"  CUBIC gets {pred.cubic_bandwidth * 8 / 1e6:6.2f} Mbps")
    print(f"  BBR's bloated RTT estimate: {pred.rtt_plus * 1e3:.1f} ms "
          f"(base {link.rtt_ms:.0f} ms)")

    ware = ware_prediction(link)
    print(f"  (Ware et al. would have said "
          f"{ware.bbr_bandwidth * 8 / 1e6:.2f} Mbps)\n")

    # 2. The game-theoretic prediction: where does switching stop paying?
    n_flows = 20
    ne = predict_nash(link, n_flows)
    print(f"Nash equilibrium among {n_flows} same-RTT flows:")
    print(f"  predicted mix: {ne.n_cubic_low:.1f}-{ne.n_cubic_high:.1f} "
          f"CUBIC flows, the rest BBR")
    print("  → a mixed CUBIC/BBR Internet, not a BBR-dominant one.\n")

    # 3. Check the 2-flow prediction against the packet-level simulator.
    #    (2-minute flows, like the paper's experiments: BBR takes tens of
    #    seconds to become cwnd-limited, so short runs understate it.)
    print("packet-level simulation (120 s, same bottleneck):")
    result = run_mix(
        link,
        [("cubic", 1), ("bbr", 1)],
        duration=120,
        backend="packet",
    )
    print(f"  BBR   measured {result.per_flow_mbps('bbr'):6.2f} Mbps")
    print(f"  CUBIC measured {result.per_flow_mbps('cubic'):6.2f} Mbps")
    print(f"  queuing delay  {result.mean_queuing_delay * 1e3:6.1f} ms")


if __name__ == "__main__":
    main()
