#!/usr/bin/env python3
"""Internet evolution: best-response dynamics toward the Nash Equilibrium.

The paper's motivating story (§1): websites keep switching to whichever
congestion control gives them more throughput.  This example simulates
that process year by year — starting from today's mostly-CUBIC Internet,
each "year" one website switches CCA if doing so raises its throughput —
and shows the population converging to the mixed NE instead of going
all-BBR.

Run:  python examples/internet_evolution.py
"""

from repro import LinkConfig, predict_nash
from repro.core.game import ThroughputTable
from repro.experiments.runner import distribution_throughput_fn


def evolve(link: LinkConfig, n_flows: int, duration: float = 120.0) -> None:
    print(f"bottleneck: {link.describe()}, {n_flows} websites\n")

    # Measure the whole game once with the fluid simulator.
    fn = distribution_throughput_fn(
        link, n_flows, duration=duration, backend="fluid", seed=42
    )
    print("measuring all distributions (fluid simulator)...")
    table = ThroughputTable.from_function(n_flows, fn)

    # Start from a CUBIC-dominant Internet: 1 early adopter runs BBR.
    print("\n year  #BBR  per-flow BBR  per-flow CUBIC   event")
    path = table.best_response_path(1)
    for year, k in enumerate(path):
        bbr = table.lambda_b[k] * 8 / 1e6
        cubic = table.lambda_a[k] * 8 / 1e6
        if year == 0:
            event = "first adopter switches to BBR"
        elif k > path[year - 1]:
            event = "a CUBIC website switches to BBR"
        elif k < path[year - 1]:
            event = "a BBR website switches back to CUBIC"
        else:
            event = "stable"
        print(
            f"  {year:3d}  {k:4d}  {bbr:10.2f}    {cubic:10.2f}      "
            f"{event}"
        )

    final = path[-1]
    print(f"\nconverged: {final} BBR / {n_flows - final} CUBIC flows")
    equilibria = table.nash_equilibria(
        tolerance=0.02 * link.capacity / n_flows
    )
    print(f"empirical NE set (±2% tolerance): {equilibria}")

    ne = predict_nash(link, n_flows)
    lo, hi = sorted((ne.n_bbr_sync, ne.n_bbr_desync))
    print(f"model-predicted NE: {lo:.1f}-{hi:.1f} BBR flows")
    if final < n_flows:
        print(
            "\n→ BBR did NOT take over: past the equilibrium, switching "
            "to BBR costs throughput."
        )


def main() -> None:
    link = LinkConfig.from_mbps_ms(100, 40, buffer_bdp=5)
    evolve(link, n_flows=12)


if __name__ == "__main__":
    main()
