#!/usr/bin/env python3
"""Internet evolution: adoption dynamics toward the Nash Equilibrium.

The paper's motivating story (§1): websites keep switching to whichever
congestion control gives them more throughput.  This example evolves
that process with ``repro.population`` — a heterogeneous internet of
RTT classes, each a cell of flows repeatedly choosing between CUBIC and
BBR under replicator dynamics, payoffs served by the tiered oracle
(closed-form model where trusted, fluid simulation where not) — and
shows the population converging to the mixed NE instead of going
all-BBR.

Run:  python examples/internet_evolution.py
"""

from repro import LinkConfig, predict_nash
from repro.population import (
    CellSpec,
    DynamicsConfig,
    TieredOracle,
    run_population,
)


def evolve(n_flows: int = 100, ticks: int = 60) -> None:
    # A small heterogeneous internet: three RTT classes share the same
    # bottleneck class (100 Mbps, 5 BDP of buffer).
    cells = [
        CellSpec(
            link=LinkConfig.from_mbps_ms(100, rtt, buffer_bdp=5),
            n_flows=n_flows,
            label=f"rtt{rtt}ms",
        )
        for rtt in (20, 40, 80)
    ]
    total = sum(cell.n_flows for cell in cells)
    print(f"the internet: {len(cells)} RTT classes, {total} websites")
    for cell in cells:
        print(f"  {cell.describe()}")

    # Start from a CUBIC-dominant internet: 10% early BBR adopters.
    # Each tick, flows drift toward whichever CCA pays more (replicator
    # dynamics); the tiered oracle answers with the paper's closed-form
    # model, calibrated per region against the fluid substrate.
    print("\nevolving (replicator dynamics, tiered payoff oracle)...")
    result = run_population(
        cells,
        dynamics=DynamicsConfig(name="replicator", step=0.5),
        ticks=ticks,
        seed=42,
        init_share=0.1,
        oracle=TieredOracle(duration=30.0, seed=42),
    )

    print("\n tick  " + "  ".join(f"{c.label:>9}" for c in cells))
    for entry in result.trajectory[:: max(1, ticks // 12)]:
        shares = "  ".join(
            f"{row[-1]:9.3f}" for row in entry["shares"]
        )
        print(f"  {entry['tick']:3d}  {shares}")

    print("\nfinal BBR share per class (vs model NE, Eq. 25):")
    for i, cell in enumerate(cells):
        ne = predict_nash(cell.link, cell.n_flows)
        print(
            f"  {cell.label}: {result.final_shares[i][-1]:.3f} "
            f"(predicted {ne.n_bbr_sync / cell.n_flows:.3f}-"
            f"{ne.n_bbr_desync / cell.n_flows:.3f})"
        )
    final = result.final_share("bbr")
    stats = result.oracle
    print(
        f"\noverall BBR share: {final:.3f}  "
        + ("(converged)" if result.converged else "(still moving)")
    )
    print(
        f"oracle: {stats['queries']} payoff queries, "
        f"tier0 {stats['tier0']} / tier1 {stats['tier1']}, "
        f"{stats['sim_points']} simulation points"
    )
    if final < 0.99:
        print(
            "\n→ BBR did NOT take over: past the equilibrium, switching "
            "to BBR costs throughput."
        )


def main() -> None:
    evolve()


if __name__ == "__main__":
    main()
