"""Ware et al. baseline model (Equations 2–4)."""

import pytest

from repro.core.ware import ware_prediction
from repro.util.config import LinkConfig


def link(bdp, mbps=50, rtt=40):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def test_equation3_p_value():
    """p = 1/2 − 1/(2X) − 4N/q for a hand-checked configuration."""
    cfg = link(10)
    pred = ware_prediction(cfg, n_bbr=1)
    q = cfg.buffer_packets
    expected_p = 0.5 - 1 / 20 - 4 / q
    assert pred.cubic_fraction == pytest.approx(expected_p)


def test_probe_time_fraction():
    """Equation (4): (q/c + 0.2 + l)·(d/10) out of d."""
    cfg = link(5)
    pred = ware_prediction(cfg, duration=120)
    drain = cfg.buffer_bytes / cfg.capacity
    expected = (drain + 0.2 + cfg.rtt) / 10.0
    assert pred.probe_time_fraction == pytest.approx(expected)


def test_fraction_clamped_to_unit_interval():
    # Tiny buffer: the 4N/q term dominates and raw p is negative.
    pred = ware_prediction(link(1, mbps=1, rtt=10), n_bbr=100)
    assert 0.0 <= pred.cubic_fraction <= 1.0
    assert 0.0 <= pred.bbr_fraction <= 1.0


def test_bbr_share_roughly_half_in_deep_buffers():
    """Ware's signature claim: BBR takes ~(1−p) ≈ 50% regardless of
    competing CUBIC flows in deep buffers (modulo ProbeRTT loss)."""
    pred = ware_prediction(link(40), n_bbr=1, duration=120)
    assert pred.cubic_fraction == pytest.approx(0.5, abs=0.05)


def test_independent_of_cubic_count():
    """The model has no N_cubic input at all — a key §2.2 criticism."""
    a = ware_prediction(link(10), n_bbr=2)
    b = ware_prediction(link(10), n_bbr=2)
    assert a == b


def test_more_bbr_flows_reduce_cubic_share():
    a = ware_prediction(link(3), n_bbr=1)
    b = ware_prediction(link(3), n_bbr=8)
    assert b.cubic_fraction < a.cubic_fraction


def test_bandwidth_consistent_with_fraction():
    cfg = link(10)
    pred = ware_prediction(cfg)
    assert pred.bbr_bandwidth == pytest.approx(
        pred.bbr_fraction * cfg.capacity
    )


def test_validation():
    with pytest.raises(ValueError):
        ware_prediction(link(5), n_bbr=0)
    with pytest.raises(ValueError):
        ware_prediction(link(5), duration=0)
