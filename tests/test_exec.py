"""Execution engine: fingerprints, result cache, parallel determinism."""

import json
import logging

import pytest

from repro.core.game import bisect_nash
from repro.exec import (
    CACHE_SCHEMA,
    Engine,
    ResultCache,
    ScenarioPoint,
    default_cache_root,
    fingerprint_payload,
)
from repro.exec import engine as engine_mod
from repro.exec import fingerprint as fingerprint_mod
from repro.experiments.runner import (
    ScenarioResult,
    distribution_throughput_fn,
    group_payoff_fn,
    run_mix,
)
from repro.obs import Telemetry
from repro.util.config import LinkConfig


def link(bdp=3, mbps=20, rtt=20):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def points(n=3, duration=8.0, **kwargs):
    return [
        ScenarioPoint(
            link=link(bdp=1 + i),
            mix=(("cubic", 2), ("bbr", 2)),
            duration=duration,
            **kwargs,
        )
        for i in range(n)
    ]


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_is_stable_across_instances():
    a = ScenarioPoint(link=link(), mix=(("cubic", 2), ("bbr", 2)))
    b = ScenarioPoint(link=link(), mix=(("cubic", 2), ("bbr", 2)))
    assert a == b
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_canonicalizes_spelling():
    base = ScenarioPoint(
        link=link(), mix=(("cubic", 1), ("bbr", 1)), duration=30.0
    )
    spelled = ScenarioPoint(
        link=link(),
        mix=(("CUBIC", 1), ("reno", 0), ("BBR", 1)),
        duration=30.0,
        warmup=5.0,  # == duration / 6, the resolved default
        rtts=None,
    )
    assert spelled == base
    assert spelled.fingerprint() == base.fingerprint()


def test_fingerprint_rtts_order_insensitive():
    a = ScenarioPoint(
        link=link(),
        mix=(("cubic", 1), ("bbr", 1)),
        rtts=(("cubic", 0.01), ("bbr", 0.05)),
    )
    b = ScenarioPoint(
        link=link(),
        mix=(("cubic", 1), ("bbr", 1)),
        rtts=(("bbr", 0.05), ("cubic", 0.01)),
    )
    assert a.fingerprint() == b.fingerprint()


@pytest.mark.parametrize(
    "change",
    [
        {"seed": 1},
        {"trials": 2},
        {"duration": 31.0},
        {"warmup": 2.5},
        {"backend": "packet"},
        {"loss_mode": "sync"},
        {"mix": (("cubic", 1), ("bbr", 1))},
        {"mix": (("bbr", 1), ("cubic", 2))},  # Order is identity.
        {"link": link(bdp=5)},
        {"rtts": (("bbr", 0.08),)},
    ],
)
def test_fingerprint_changes_with_inputs(change):
    base = dict(
        link=link(), mix=(("cubic", 2), ("bbr", 1)), duration=30.0
    )
    a = ScenarioPoint(**base)
    b = ScenarioPoint(**{**base, **change})
    assert a.fingerprint() != b.fingerprint()


def test_fingerprint_changes_with_package_version(monkeypatch):
    point = ScenarioPoint(link=link(), mix=(("cubic", 1),))
    before = point.fingerprint()
    monkeypatch.setattr(fingerprint_mod, "REPRO_VERSION", "999.0.0")
    assert point.fingerprint() != before


def test_fingerprint_payload_namespaced_by_kind():
    params = {"x": 1}
    assert fingerprint_payload("a", params) != fingerprint_payload(
        "b", params
    )


def test_scenario_point_validation():
    with pytest.raises(ValueError):
        ScenarioPoint(link=link(), mix=(("cubic", 0),))
    with pytest.raises(ValueError):
        ScenarioPoint(link=link(), mix=(("cubic", 1),), backend="ns3")
    with pytest.raises(ValueError):
        ScenarioPoint(link=link(), mix=(("cubic", 1),), trials=0)
    with pytest.raises(ValueError):
        ScenarioPoint(link=link(), mix=(("cubic", 1),), duration=0)


# -- cache -------------------------------------------------------------------


def test_cache_roundtrip_and_byte_identical_writes(tmp_path):
    cache = ResultCache(tmp_path)
    payload = {"per_flow": {"bbr": 1.25e6}, "drop_rate": 0.0}
    fp = "ab" + "0" * 62
    path = cache.put(fp, payload)
    first = path.read_bytes()
    assert cache.get(fp) == payload
    cache.put(fp, payload)
    assert path.read_bytes() == first  # Canonical encoding.
    assert fp in cache
    assert len(cache) == 1


def test_cache_miss_on_absent_entry(tmp_path):
    assert ResultCache(tmp_path).get("cd" + "1" * 62) is None


def test_cache_corrupt_entry_is_logged_miss(tmp_path, caplog):
    cache = ResultCache(tmp_path)
    fp = "ef" + "2" * 62
    path = cache.path_for(fp)
    path.parent.mkdir(parents=True)
    path.write_text("{not json")
    with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
        assert cache.get(fp) is None
    assert "corrupt" in caplog.text


def test_cache_rejects_schema_and_key_mismatch(tmp_path):
    cache = ResultCache(tmp_path)
    fp = "0a" + "3" * 62
    cache.put(fp, {"x": 1})
    entry = json.loads(cache.path_for(fp).read_text())
    entry["schema"] = CACHE_SCHEMA + 1
    cache.path_for(fp).write_text(json.dumps(entry))
    assert cache.get(fp) is None  # Stale schema self-invalidates.

    other = "0a" + "4" * 62
    cache.put(other, {"x": 2})
    moved = cache.path_for(fp)
    moved.write_text(cache.path_for(other).read_text())
    assert cache.get(fp) is None  # Renamed entry rejected.


def test_default_cache_root_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_root() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_root() == tmp_path / "xdg" / "repro-bbr"


# -- engine ------------------------------------------------------------------


def test_cached_rerun_equals_uncached_run(tmp_path):
    pts = points(2)
    uncached = Engine().run_points(pts)
    cold = Engine(cache=ResultCache(tmp_path)).run_points(pts)
    warm_engine = Engine(cache=ResultCache(tmp_path))
    warm = warm_engine.run_points(pts)
    assert cold == uncached
    assert warm == uncached
    assert warm_engine.stats["simulated"] == 0
    assert warm_engine.stats["cache_hits"] == len(pts)


def test_cached_payload_is_byte_identical_for_same_fingerprint(tmp_path):
    pts = points(1)
    fp = pts[0].fingerprint()
    cache_a, cache_b = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
    Engine(cache=cache_a).run_points(pts)
    Engine(cache=cache_b).run_points(pts)
    assert (
        cache_a.path_for(fp).read_bytes() == cache_b.path_for(fp).read_bytes()
    )


def test_parallel_jobs_match_sequential_exactly(tmp_path):
    pts = points(4)
    sequential = Engine(jobs=1).run_points(pts)
    parallel = Engine(jobs=4).run_points(pts)
    assert parallel == sequential
    warm = Engine(jobs=4, cache=ResultCache(tmp_path))
    warm.run_points(pts)
    assert warm.run_points(pts) == sequential


def test_engine_results_keep_submission_order():
    pts = points(3)
    results = Engine(jobs=3).run_points(list(reversed(pts)))
    forward = Engine(jobs=1).run_points(pts)
    assert results == list(reversed(forward))


def test_duplicate_points_simulated_once():
    pts = points(1) * 3
    engine = Engine(jobs=2)
    results = engine.run_points(pts)
    assert engine.stats["simulated"] == 1
    assert results[0] == results[1] == results[2]


def test_corrupt_cache_entry_counts_error_and_reruns(tmp_path):
    pts = points(1)
    cache = ResultCache(tmp_path)
    fresh = Engine(cache=cache).run_points(pts)[0]
    path = cache.path_for(pts[0].fingerprint())
    path.write_text("garbage")
    engine = Engine(cache=ResultCache(tmp_path))
    again = engine.run_points(pts)[0]
    assert again == fresh  # Re-simulated, not crashed.
    assert engine.stats["cache_errors"] == 1
    assert engine.stats["simulated"] == 1
    # The re-run repaired the entry.
    assert Engine(cache=ResultCache(tmp_path)).run_points(pts)[0] == fresh


def test_engine_records_obs_counters(tmp_path):
    obs = Telemetry()
    engine = Engine(cache=ResultCache(tmp_path), obs=obs)
    engine.run_points(points(2))
    engine.run_points(points(2))
    assert obs.counter("exec.points.submitted") == 4
    assert obs.counter("exec.points.simulated") == 2
    assert obs.counter("exec.cache.hits") == 2
    assert obs.counter("exec.cache.misses") == 2
    assert obs.counter("exec.cache.stores") == 2
    assert obs.timers["exec.point.wall"].calls == 2


def test_engine_progress_callback_is_cumulative():
    seen = []
    engine = Engine(progress=lambda d, s, h: seen.append((d, s, h)))
    engine.run_points(points(2))
    assert seen[-1] == (2, 2, 0)
    engine.run_points(points(2))
    assert seen[-1] == (4, 4, 0)


def test_engine_run_mix_matches_runner_run_mix():
    result = Engine().run_mix(
        link(), [("cubic", 2), ("bbr", 2)], duration=10, seed=3
    )
    direct = run_mix(
        link(), [("cubic", 2), ("bbr", 2)], duration=10, seed=3
    )
    assert result == direct


def test_engine_jobs_validation():
    with pytest.raises(ValueError):
        Engine(jobs=0)


def test_default_engine_install_and_resolve():
    assert engine_mod.get_default() is None
    custom = Engine()
    with engine_mod.use(custom):
        assert engine_mod.resolve(None) is custom
    assert engine_mod.get_default() is None
    fallback = engine_mod.resolve(None)
    assert fallback.jobs == 1 and fallback.cache is None


# -- scenario-result serialization -------------------------------------------


def test_scenario_result_dict_roundtrip_exact():
    result = run_mix(link(), [("cubic", 2), ("bbr", 2)], duration=10)
    data = json.loads(json.dumps(result.to_dict()))
    assert ScenarioResult.from_dict(data) == result


# -- NE machinery through the cache ------------------------------------------


def test_bisect_nash_reuses_cached_points_across_sweeps(tmp_path):
    cache = ResultCache(tmp_path)
    cold = Engine(cache=cache)
    fn = distribution_throughput_fn(
        link(), n_flows=5, duration=8, engine=cold
    )
    equilibria, _ = bisect_nash(5, fn)
    assert cold.stats["simulated"] > 0

    warm = Engine(cache=ResultCache(tmp_path))
    fn2 = distribution_throughput_fn(
        link(), n_flows=5, duration=8, engine=warm
    )
    equilibria2, _ = bisect_nash(5, fn2)
    assert equilibria2 == equilibria
    assert warm.stats["simulated"] == 0
    assert warm.stats["cache_hits"] == warm.stats["submitted"]


def test_group_payoff_fn_cached(tmp_path):
    kwargs = dict(
        group_rtts=[0.010, 0.030], group_sizes=[2, 2], duration=8
    )
    cold = Engine(cache=ResultCache(tmp_path))
    first = group_payoff_fn(link(), engine=cold, **kwargs)((1, 2))
    warm = Engine(cache=ResultCache(tmp_path))
    second = group_payoff_fn(link(), engine=warm, **kwargs)((1, 2))
    assert second == first
    assert warm.stats["simulated"] == 0
    assert warm.stats["cache_hits"] == 1
    # Validation still happens before the cache is consulted.
    with pytest.raises(ValueError):
        group_payoff_fn(link(), engine=warm, **kwargs)((3, 0))


# -- worker-death hardening --------------------------------------------------


def _die_in_worker(point):
    """Replacement worker entry that kills the process abruptly."""
    import os

    os._exit(13)


def test_broken_pool_retries_lost_points_inline(monkeypatch):
    """A dead worker poisons the pool; the batch must still complete."""
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("monkeypatched worker entry needs fork start method")

    batch = points(3, duration=5.0)
    expected = Engine().run_points(batch)

    engine = Engine(jobs=2)
    monkeypatch.setattr(engine_mod, "_execute_point", _die_in_worker)
    obs = Telemetry()
    engine._obs = obs
    results = engine.run_points(batch)

    assert engine.worker_failures == 1
    assert engine.stats["worker_failures"] == 1
    assert obs.snapshot()["counters"].get("exec.worker_failures") == 1
    # Every point was recovered inline with identical numbers.
    assert [r.to_dict() for r in results] == [
        r.to_dict() for r in expected
    ]


def test_broken_pool_results_cached_after_retry(tmp_path, monkeypatch):
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("monkeypatched worker entry needs fork start method")

    batch = points(2, duration=5.0)
    engine = Engine(jobs=2, cache=ResultCache(tmp_path))
    monkeypatch.setattr(engine_mod, "_execute_point", _die_in_worker)
    engine.run_points(batch)
    assert engine.worker_failures == 1

    warm = Engine(cache=ResultCache(tmp_path))
    warm.run_points(batch)
    assert warm.stats["simulated"] == 0
    assert warm.stats["cache_hits"] == 2


# -- warmup validation (PR 5 satellite) -------------------------------------


@pytest.mark.parametrize("warmup", [-0.5, 8.0, 9.0])
def test_scenario_point_rejects_out_of_range_warmup(warmup):
    with pytest.raises(ValueError, match="warmup must lie in"):
        ScenarioPoint(
            link=link(),
            mix=(("cubic", 1),),
            duration=8.0,
            warmup=warmup,
        )


def test_scenario_point_accepts_boundary_warmups():
    zero = ScenarioPoint(
        link=link(), mix=(("cubic", 1),), duration=8.0, warmup=0.0
    )
    assert zero.warmup == 0.0
    near = ScenarioPoint(
        link=link(), mix=(("cubic", 1),), duration=8.0, warmup=7.999
    )
    assert near.warmup == pytest.approx(7.999)


def test_run_mix_rejects_out_of_range_warmup():
    with pytest.raises(ValueError, match="warmup must lie in"):
        run_mix(link(), [("cubic", 1)], duration=8.0, warmup=8.0)
    with pytest.raises(ValueError, match="warmup must lie in"):
        run_mix(link(), [("cubic", 1)], duration=8.0, warmup=-1.0)


# -- cache durability (PR 5 satellite) --------------------------------------


def test_cache_put_fsyncs_before_rename(tmp_path, monkeypatch):
    import os as os_mod

    calls = []
    real_fsync, real_replace = os_mod.fsync, os_mod.replace

    def spy_fsync(fd):
        calls.append("fsync")
        return real_fsync(fd)

    def spy_replace(src, dst):
        calls.append("replace")
        return real_replace(src, dst)

    monkeypatch.setattr("repro.exec.cache.os.fsync", spy_fsync)
    monkeypatch.setattr("repro.exec.cache.os.replace", spy_replace)
    cache = ResultCache(tmp_path)
    point = points(1)[0]
    cache.put(point.fingerprint(), {"throughput": 1.0})
    # Contents must be durable before the entry becomes visible; the
    # trailing fsync is the best-effort shard-directory sync.
    assert calls[0] == "fsync"
    assert "replace" in calls
    assert calls.index("fsync") < calls.index("replace")


def test_cache_crash_before_rename_leaves_no_entry(tmp_path, monkeypatch):
    def exploding_replace(src, dst):
        raise OSError("simulated crash at the rename boundary")

    monkeypatch.setattr("repro.exec.cache.os.replace", exploding_replace)
    cache = ResultCache(tmp_path)
    fingerprint = points(1)[0].fingerprint()
    with pytest.raises(OSError):
        cache.put(fingerprint, {"throughput": 1.0})
    # The partially-written temp was cleaned up and the final key is
    # absent: readers can never observe a truncated entry.
    assert cache.get(fingerprint) is None
    assert fingerprint not in cache
    shard = tmp_path / fingerprint[:2]
    assert not any(shard.glob("*.tmp"))


def test_cache_dir_fsync_failure_is_swallowed(tmp_path, monkeypatch):
    import os as os_mod

    from repro.exec import cache as cache_mod

    real_open = os_mod.open

    def refusing_open(path, flags, *args, **kwargs):
        # Refuse directory opens only (some platforms genuinely do);
        # tempfile.mkstemp file opens must keep working.
        if os_mod.path.isdir(path):
            raise OSError("directories not openable on this platform")
        return real_open(path, flags, *args, **kwargs)

    monkeypatch.setattr("repro.exec.cache.os.open", refusing_open)
    cache_mod._fsync_dir(tmp_path)  # Must not raise.
    cache = ResultCache(tmp_path)
    fingerprint = points(1)[0].fingerprint()
    cache.put(fingerprint, {"throughput": 2.0})
    assert cache.get(fingerprint) == {"throughput": 2.0}


# -- progress accounting (exactly-once done/hits) ----------------------------


def test_progress_done_advances_once_per_index(tmp_path):
    """``done``/``hits`` advance exactly once per submitted index: cache
    hits at scan time, executed points (and their duplicates) when the
    result lands — never at submit time."""
    pts = points(3, duration=5.0)
    Engine(cache=ResultCache(tmp_path)).run_points(pts[:2])  # warm 2

    seen = []
    engine = Engine(
        jobs=2,
        cache=ResultCache(tmp_path),
        progress=lambda d, s, h: seen.append((d, s, h)),
    )
    # 4 submissions: two warm hits, one cold, one duplicate of the cold.
    engine.run_points(pts + [pts[2]])
    assert engine.stats["submitted"] == 4
    assert engine.done == 4
    assert engine.hits == 2
    # done is strictly +1 per resolution and never exceeds submitted.
    assert [d for d, _s, _h in seen] == [1, 2, 3, 4]
    assert all(d <= s and h <= d for d, s, h in seen)
    # The two hits are counted during the scan, before any execution.
    assert [h for _d, _s, h in seen] == [1, 2, 2, 2]


def test_progress_accounting_with_broken_pool_retry(monkeypatch):
    """Inline retries after a dead worker advance ``done`` exactly once
    per lost point — the pre-fix code double-counted or skipped."""
    import multiprocessing

    if multiprocessing.get_start_method() != "fork":
        pytest.skip("monkeypatched worker entry needs fork start method")

    seen = []
    engine = Engine(
        jobs=2, progress=lambda d, s, h: seen.append((d, s, h))
    )
    monkeypatch.setattr(engine_mod, "_execute_point", _die_in_worker)
    engine.run_points(points(3, duration=5.0))
    assert engine.worker_failures == 1
    assert engine.done == 3
    assert engine.hits == 0
    assert [d for d, _s, _h in seen] == [1, 2, 3]


def test_persistent_pool_reused_across_batches():
    """The worker pool survives between batches (single points included)
    and is shut down by close()."""
    engine = Engine(jobs=2)
    with engine:
        engine.run_points(points(1, duration=5.0))
        first_pool = engine._executor
        assert first_pool is not None  # single point still fans out
        engine.run_points(points(2, duration=5.0))
        assert engine._executor is first_pool
    assert engine._executor is None


# -- chunked dispatch --------------------------------------------------------


def vec_points(n=5, duration=6.0):
    return [
        ScenarioPoint(
            link=link(bdp=1 + i),
            mix=(("cubic", 2), ("bbr", 2)),
            duration=duration,
            backend="fluid-vec",
        )
        for i in range(n)
    ]


def test_dispatch_units_group_cheap_points():
    engine = Engine(jobs=2)
    pending = {p.fingerprint(): p for p in points(5)}
    units = engine._dispatch_units(pending)
    assert sorted(len(unit) for unit in units) == [2, 3]
    assert {fp for unit in units for fp in unit} == set(pending)


def test_dispatch_units_keep_expensive_points_solo():
    expensive = ScenarioPoint(
        link=link(),
        mix=(("cubic", 25), ("bbr", 25)),
        duration=120.0,
        trials=10,
    )
    pending = {expensive.fingerprint(): expensive}
    for point in points(4):
        pending[point.fingerprint()] = point
    units = Engine(jobs=2)._dispatch_units(pending)
    assert [expensive.fingerprint()] in units
    assert sorted(len(unit) for unit in units) == [1, 2, 2]


def test_dispatch_units_chunking_off_or_profiling_means_solo():
    pending = {p.fingerprint(): p for p in points(5)}
    for engine in (
        Engine(jobs=2, chunking=False),
        Engine(jobs=2, profile_slowest=2),
    ):
        units = engine._dispatch_units(pending)
        assert all(len(unit) == 1 for unit in units)
        assert len(units) == 5


def test_chunked_inline_vec_pooling_matches_unchunked():
    engine = Engine(jobs=1)
    results = engine.run_points(vec_points())
    baseline = Engine(jobs=1, chunking=False).run_points(vec_points())
    assert results == baseline
    assert engine.done == engine.submitted == 5
    assert engine.simulated == 5


def test_chunked_parallel_matches_sequential():
    baseline = Engine(jobs=1, chunking=False).run_points(vec_points())
    with Engine(jobs=2) as engine:
        assert engine.run_points(vec_points()) == baseline


def test_chunked_batch_shares_duplicate_executions():
    pts = vec_points(3) + vec_points(3)
    engine = Engine(jobs=1)
    results = engine.run_points(pts)
    assert results[:3] == results[3:]
    assert engine.simulated == 3
    assert engine.done == 6


def test_del_swallows_recoverable_close_errors(monkeypatch):
    """GC-time close races (pool already torn down) are counted, not
    raised; anything unexpected escapes with context."""
    engine = Engine(jobs=1)

    def broken_close():
        raise OSError("pool machinery already gone")

    monkeypatch.setattr(engine, "close", broken_close)
    engine.__del__()  # Must not raise.
    assert engine.close_errors == 1
    assert engine.stats["close_errors"] == 1


def test_del_reraises_unexpected_close_errors(monkeypatch):
    engine = Engine(jobs=1)

    def broken_close():
        raise ValueError("not a teardown race")

    monkeypatch.setattr(engine, "close", broken_close)
    with pytest.raises(RuntimeError, match="during finalization"):
        engine.__del__()
    assert engine.close_errors == 0
