"""The paper's 2-flow model (§2.3): algebra, invariants, known values."""


import pytest

from repro.core.two_flow import (
    CUBIC_BACKOFF,
    ModelPrediction,
    predict_two_flow,
    solve_bbr_buffer_share,
)
from repro.util.config import LinkConfig


def link(bdp, mbps=100, rtt=40):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def test_equation18_residual_is_zero():
    """The returned b_b actually satisfies Equation (18)."""
    cfg = link(7)
    b = cfg.buffer_bytes
    k = cfg.bdp_bytes
    h = (b - k) / 2
    bb = solve_bbr_buffer_share(cfg)
    lhs = h + h * k / (h + bb)
    rhs = CUBIC_BACKOFF * (b - bb) * (1 + k / b)
    assert lhs == pytest.approx(rhs, rel=1e-9)


def test_quadratic_matches_bisection():
    """Closed form agrees with a direct bisection of Eq. (18)."""
    for bdp in (1.5, 2, 5, 10, 30, 80):
        cfg = link(bdp)
        b, k = cfg.buffer_bytes, cfg.bdp_bytes
        h = (b - k) / 2
        g = CUBIC_BACKOFF * (1 + k / b)
        lo, hi = 0.0, b
        for _ in range(200):
            mid = (lo + hi) / 2
            f = h + h * k / (h + mid) - g * (b - mid)
            if f < 0:
                lo = mid
            else:
                hi = mid
        assert solve_bbr_buffer_share(cfg) == pytest.approx(
            (lo + hi) / 2, rel=1e-6
        )


def test_bandwidths_sum_to_capacity():
    """Equation (20): λ_b = C − λ_c (assumption 1: full utilization)."""
    for bdp in (1.2, 2, 5, 10, 25, 50):
        pred = predict_two_flow(link(bdp))
        total = pred.bbr_bandwidth + pred.cubic_bandwidth
        assert total == pytest.approx(link(bdp).capacity, rel=1e-9)


def test_buffer_shares_sum_to_buffer():
    pred = predict_two_flow(link(8))
    assert pred.bbr_buffer + pred.cubic_buffer == pytest.approx(
        link(8).buffer_bytes
    )


def test_bbr_share_decreases_with_buffer_depth():
    """Figure 3's headline shape: deeper buffers favour CUBIC."""
    shares = [
        predict_two_flow(link(bdp)).bbr_fraction
        for bdp in (1.5, 2, 3, 5, 10, 20, 40)
    ]
    assert all(a > b for a, b in zip(shares, shares[1:]))


def test_bbr_dominates_in_shallow_buffers():
    assert predict_two_flow(link(1.2)).bbr_fraction > 0.8


def test_deep_buffer_asymptote():
    """As B→∞ the share tends to (0.7 − 0.5)/0.7 ≈ 28.6%."""
    pred = predict_two_flow(link(500))
    assert pred.bbr_fraction == pytest.approx(
        (CUBIC_BACKOFF - 0.5) / CUBIC_BACKOFF, rel=0.05
    )


def test_scale_invariance_in_bdp_units():
    """§4.4: once the buffer is normalized to BDP, predictions depend on
    neither C nor RTT individually."""
    a = predict_two_flow(link(10, mbps=100, rtt=40))
    b = predict_two_flow(link(10, mbps=50, rtt=80))
    assert a.bbr_fraction == pytest.approx(b.bbr_fraction, rel=1e-9)


def test_rtt_plus_matches_equation9():
    """RTT⁺ = RTT + b_cmin/C."""
    cfg = link(5)
    pred = predict_two_flow(cfg)
    assert pred.rtt_plus == pytest.approx(
        cfg.rtt + pred.cubic_min_buffer / cfg.capacity
    )


def test_b_cmin_is_half_excess_buffer():
    """With b_b + b_c ≈ B, Eq. (10) pins b_cmin = (B − C·RTT)/2."""
    cfg = link(9)
    pred = predict_two_flow(cfg)
    assert pred.cubic_min_buffer == pytest.approx(
        (cfg.buffer_bytes - cfg.bdp_bytes) / 2
    )


def test_validity_flags():
    assert predict_two_flow(link(5)).in_validity_range
    assert not predict_two_flow(link(0.5)).in_validity_range
    assert not predict_two_flow(link(150)).in_validity_range


def test_shallow_buffer_gives_bbr_everything():
    cfg = link(0.8)
    assert solve_bbr_buffer_share(cfg) == cfg.buffer_bytes


def test_generalized_backoff_monotone():
    """Larger aggregate backoff factor (de-synchronized CUBIC) keeps more
    packets in the buffer and raises BBR's share — the ordering behind
    the multi-flow bounds."""
    cfg = link(10)
    b_sync = solve_bbr_buffer_share(cfg, backoff=0.7)
    b_desync = solve_bbr_buffer_share(cfg, backoff=0.94)
    assert b_desync > b_sync


def test_backoff_validation():
    with pytest.raises(ValueError):
        solve_bbr_buffer_share(link(5), backoff=0.0)
    with pytest.raises(ValueError):
        solve_bbr_buffer_share(link(5), backoff=1.5)


def test_cwnd_gain_validation():
    with pytest.raises(ValueError):
        solve_bbr_buffer_share(link(5), cwnd_gain=1.0)


def test_cwnd_gain_default_matches_paper_model():
    """γ = 2 is exactly the paper's Eq. (18)."""
    cfg = link(7)
    assert solve_bbr_buffer_share(cfg) == pytest.approx(
        solve_bbr_buffer_share(cfg, cwnd_gain=2.0)
    )


def test_cwnd_gain_monotone():
    """§5: a smaller in-flight cap (closer to 1 BDP) means less BBR
    bandwidth — the model's γ = 2 choice is its aggressive edge."""
    cfg = link(7)
    shares = [
        predict_two_flow(cfg, cwnd_gain=g).bbr_fraction
        for g in (1.2, 1.5, 2.0)
    ]
    assert shares[0] < shares[1] < shares[2]


def test_cwnd_gain_generalized_b_cmin():
    """b_cmin = (B − (γ−1)K)/γ from the generalized Eq. (10)."""
    cfg = link(9)
    gain = 1.5
    pred = predict_two_flow(cfg, cwnd_gain=gain)
    expected = (cfg.buffer_bytes - (gain - 1) * cfg.bdp_bytes) / gain
    assert pred.cubic_min_buffer == pytest.approx(expected)


def test_bbr_fraction_property():
    pred = ModelPrediction(
        bbr_buffer=1,
        cubic_buffer=1,
        cubic_min_buffer=1,
        bbr_bandwidth=30.0,
        cubic_bandwidth=70.0,
        rtt_plus=0.05,
        in_validity_range=True,
    )
    assert pred.bbr_fraction == pytest.approx(0.3)
