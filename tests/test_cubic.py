"""CUBIC: Equation (1) window curve, 0.7 backoff, fast convergence."""

import pytest

from repro.cc.cubic import BETA_CUBIC, C_CUBIC, Cubic
from repro.cc.signals import LossEvent


def loss(now, in_flight=100_000):
    return LossEvent(lost_bytes=1500, in_flight=in_flight, now=now)


def test_paper_constants():
    # §2.1: "CUBIC's implementation in the Linux kernel sets C=0.4,
    # beta_cubic=0.3" (i.e. it reduces *to* 0.7).
    assert C_CUBIC == 0.4
    assert BETA_CUBIC == 0.7


def test_backoff_to_seventy_percent(driver_factory):
    cc = Cubic(mss=1000, fast_convergence=False)
    d = driver_factory(cc)
    d.acks(50)
    before = cc.cwnd
    d.lose()
    assert cc.cwnd == pytest.approx(before * 0.7)


def test_slow_start_until_first_loss(driver_factory):
    cc = Cubic(mss=1000)
    d = driver_factory(cc)
    start = cc.cwnd
    d.acks(10)
    assert cc.cwnd == start + 10_000  # One segment per ACK.


def test_w_max_recorded_on_loss(driver_factory):
    cc = Cubic(mss=1000, fast_convergence=False)
    d = driver_factory(cc)
    d.acks(40)
    w = cc.cwnd_segments
    d.lose()
    assert cc.w_max_segments == pytest.approx(w)


def test_fast_convergence_reduces_w_max(driver_factory):
    cc = Cubic(mss=1000, fast_convergence=True)
    d = driver_factory(cc)
    d.acks(40)
    d.lose()
    w_after_first = cc.w_max_segments
    # Lose again below the previous W_max: fast convergence kicks in.
    d.run_for(0.1)
    w_at_loss = cc.cwnd_segments
    assert w_at_loss < w_after_first
    d.lose()
    assert cc.w_max_segments == pytest.approx(
        w_at_loss * (2.0 - BETA_CUBIC) / 2.0
    )


def test_cubic_window_function_shape():
    """The curve is concave-then-convex around K with plateau at W_max."""
    cc = Cubic(mss=1000)
    cc.w_max_segments = 100.0
    cc._k = (100.0 * (1 - BETA_CUBIC) / C_CUBIC) ** (1 / 3)
    at_k = cc._cubic_window(cc._k)
    assert at_k == pytest.approx(100.0)
    # Before K: below W_max.  After K: above.
    assert cc._cubic_window(cc._k - 1.0) < 100.0
    assert cc._cubic_window(cc._k + 1.0) > 100.0


def test_k_formula():
    """K = cbrt(W_max(1-beta)/C) — time to return to W_max."""
    cc = Cubic(mss=1000, fast_convergence=False)
    cc.cwnd = 100 * 1000
    cc.ssthresh = cc.cwnd
    cc.on_loss(loss(now=1.0))
    expected_k = (100.0 * (1 - BETA_CUBIC) / C_CUBIC) ** (1 / 3)
    assert cc._k == pytest.approx(expected_k)


def test_recovers_toward_w_max_after_k_seconds(driver_factory):
    cc = Cubic(mss=1000, tcp_friendly=False)
    d = driver_factory(cc, rate=2e6, rtt=0.02)
    d.acks(60)
    w_max = cc.cwnd
    d.lose()
    k = cc._k
    d.run_for(k + 0.1)
    # After K seconds of growth the window is back near W_max.
    assert cc.cwnd == pytest.approx(w_max, rel=0.15)


def test_growth_is_slow_near_w_max(driver_factory):
    """The cubic plateau: growth rate is smallest around W_max."""
    cc = Cubic(mss=1000, tcp_friendly=False)
    d = driver_factory(cc, rate=2e6, rtt=0.02)
    d.acks(60)
    d.lose()
    k = cc._k
    # Growth in the first tenth of the epoch...
    start = cc.cwnd
    d.run_for(k / 10)
    early_growth = cc.cwnd - start
    # ...versus growth around the inflection point K.
    d.run_for(k - k / 5)
    start = cc.cwnd
    d.run_for(k / 10)
    plateau_growth = cc.cwnd - start
    assert plateau_growth < early_growth


def test_loss_events_gated_per_rtt(driver_factory):
    cc = Cubic(mss=1000)
    d = driver_factory(cc)
    d.acks(50)
    before = cc.cwnd
    d.lose()
    d.lose()
    d.lose()
    assert cc.cwnd == pytest.approx(before * 0.7)


def test_tcp_friendly_floor(driver_factory):
    """With the Reno-emulation region the window at least matches W_est."""
    cc = Cubic(mss=1000, tcp_friendly=True)
    d = driver_factory(cc, rate=1e6, rtt=0.1)
    d.acks(30)
    d.lose()
    w_max = cc.w_max_segments
    d.run_for(0.5)
    t = 0.5
    w_est = w_max * BETA_CUBIC + (3 * 0.3 / 1.7) * (t / 0.1)
    assert cc.cwnd_segments >= w_est * 0.8  # Allow srtt jitter.


def test_window_floor_respected(driver_factory):
    cc = Cubic(mss=1000)
    d = driver_factory(cc)
    for _ in range(30):
        d.lose()
        d.run_for(0.2)
    assert cc.cwnd >= cc.min_cwnd
