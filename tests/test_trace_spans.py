"""repro.obs.trace: span recording, aggregation, Chrome export, workers.

The pool tests exercise the worker hand-off end to end: spans recorded
inside live ``ProcessPoolExecutor`` workers are drained, shipped back
with each result, and merged parent-side with per-worker pid lanes.
"""

import json
import os

import pytest

from repro.exec import Engine, ScenarioPoint
from repro.obs import Telemetry
from repro.obs.trace import (
    Span,
    Tracer,
    aggregate_spans,
    enabled_from_env,
    read_chrome_trace,
    render_span_report,
    write_chrome_trace,
)
from repro.util.config import LinkConfig

#: Span timestamps mix time.time() starts with perf_counter durations,
#: so nesting checks allow a small cross-clock epsilon.
EPS = 5e-3


def link(bdp=3, mbps=20, rtt=20):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def points(n=3, duration=5.0, **kwargs):
    return [
        ScenarioPoint(
            link=link(bdp=1 + i),
            mix=(("cubic", 2), ("bbr", 2)),
            duration=duration,
            **kwargs,
        )
        for i in range(n)
    ]


# -- Tracer basics -----------------------------------------------------------


def test_span_nesting_records_both_levels():
    tracer = Tracer()
    with tracer.span("outer", cat="t"):
        with tracer.span("inner", cat="t", detail=1):
            pass
    names = [span.name for span in tracer.spans]
    assert names == ["inner", "outer"]  # children finish first
    inner, outer = tracer.spans
    assert inner.start_s >= outer.start_s - EPS
    assert inner.end_s <= outer.end_s + EPS
    assert inner.args == {"detail": 1}
    assert inner.pid == os.getpid()


def test_tracer_snapshot_and_cap():
    tracer = Tracer(max_spans=2)
    for _ in range(4):
        with tracer.span("s"):
            pass
    snap = tracer.snapshot()
    assert snap == {"spans": 2, "dropped_spans": 2}


def test_tracer_rejects_bad_cap():
    with pytest.raises(ValueError, match="max_spans"):
        Tracer(max_spans=0)


def test_drain_merge_roundtrip():
    a = Tracer()
    with a.span("work", cat="x", k="v"):
        pass
    records = a.drain()
    assert a.spans == []
    b = Tracer()
    assert b.merge(records) == 1
    assert b.spans[0].name == "work"
    assert b.spans[0].args == {"k": "v"}
    assert b.spans[0].pid == os.getpid()


def test_enabled_from_env_values():
    assert not enabled_from_env({})
    for off in ("", "0", "false", "No", "OFF"):
        assert not enabled_from_env({"REPRO_TRACE": off})
    for on in ("1", "true", "yes", "spans"):
        assert enabled_from_env({"REPRO_TRACE": on})


# -- aggregation -------------------------------------------------------------


def test_aggregate_self_time_excludes_children():
    spans = [
        Span("child", "t", start_s=1.0, dur_s=2.0, pid=1, tid=1),
        Span("parent", "t", start_s=0.0, dur_s=10.0, pid=1, tid=1),
        Span("child", "t", start_s=5.0, dur_s=1.0, pid=1, tid=1),
    ]
    by_name = {agg.name: agg for agg in aggregate_spans(spans)}
    assert by_name["parent"].total_s == pytest.approx(10.0)
    assert by_name["parent"].self_s == pytest.approx(7.0)
    assert by_name["child"].count == 2
    assert by_name["child"].self_s == pytest.approx(3.0)
    assert by_name["child"].max_s == pytest.approx(2.0)


def test_aggregate_keeps_lanes_separate():
    # Same wall-clock interval on two pids: neither nests in the other.
    spans = [
        Span("a", "t", start_s=0.0, dur_s=4.0, pid=1, tid=1),
        Span("b", "t", start_s=1.0, dur_s=2.0, pid=2, tid=1),
    ]
    by_name = {agg.name: agg for agg in aggregate_spans(spans)}
    assert by_name["a"].self_s == pytest.approx(4.0)
    assert by_name["b"].self_s == pytest.approx(2.0)


def test_render_span_report_lists_pids_and_hotspots():
    spans = [Span("x", "t", start_s=0.0, dur_s=1.0, pid=7, tid=0)]
    hotspots = [{"func": "f.py:1(g)", "calls": 3, "cum_s": 0.5}]
    text = render_span_report(spans, hotspots)
    assert "1 spans from 1 process(es): 7" in text
    assert "f.py:1(g)" in text


# -- Chrome trace-event JSON -------------------------------------------------


@pytest.mark.parametrize("suffix", ["json", "json.gz"])
def test_chrome_roundtrip(tmp_path, suffix):
    tracer = Tracer()
    with tracer.span("outer", cat="t"):
        pass
    path = str(tmp_path / f"trace.{suffix}")
    hotspots = [{"func": "f", "calls": 1, "cum_s": 0.1, "tot_s": 0.1}]
    events = write_chrome_trace(path, tracer.spans, hotspots=hotspots)
    assert events == 2  # one metadata + one span
    parsed = read_chrome_trace(path)
    assert [span.name for span in parsed.spans] == ["outer"]
    assert parsed.spans[0].dur_s == pytest.approx(
        tracer.spans[0].dur_s, abs=1e-6
    )
    assert parsed.hotspots == hotspots
    assert parsed.pids() == [os.getpid()]


def test_chrome_export_is_loadable_object_form(tmp_path):
    tracer = Tracer()
    with tracer.span("s"):
        pass
    path = tmp_path / "t.json"
    write_chrome_trace(str(path), tracer.spans)
    data = json.loads(path.read_text())
    assert isinstance(data["traceEvents"], list)
    assert data["displayTimeUnit"] == "ms"
    phases = {event["ph"] for event in data["traceEvents"]}
    assert phases == {"M", "X"}
    x_events = [e for e in data["traceEvents"] if e["ph"] == "X"]
    assert all(
        e["ts"] >= 0 and e["dur"] >= 0 and "pid" in e and "tid" in e
        for e in x_events
    )


def test_read_chrome_trace_rejects_non_trace(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"spans": []}')
    with pytest.raises(ValueError, match="traceEvents"):
        read_chrome_trace(str(bad))


# -- live worker pools -------------------------------------------------------


def _engine_with_tracing(monkeypatch, jobs, obs=None):
    monkeypatch.setenv("REPRO_TRACE", "1")
    tracer = Tracer()
    return Engine(jobs=jobs, obs=obs, tracer=tracer), tracer


def _span_names(tracer):
    names = {}
    for span in tracer.spans:
        names[span.name] = names.get(span.name, 0) + 1
    return names


def test_pool_merges_worker_spans(monkeypatch):
    """Spans recorded inside pool workers come back merged, well-formed,
    and monotonically timed, with worker pids as separate lanes."""
    engine, tracer = _engine_with_tracing(monkeypatch, jobs=2)
    with engine:
        engine.run_points(points(3))

    spans = list(tracer.spans)
    point_spans = [s for s in spans if s.name == "point"]
    simulate_spans = [s for s in spans if s.name == "simulate"]
    assert len(point_spans) == 3
    assert len(simulate_spans) == 3
    main = os.getpid()
    assert all(s.pid != main for s in point_spans)  # ran in workers
    assert {s.pid for s in spans if s.name == "cache_lookup"} == {main}
    for span in spans:
        assert span.dur_s >= 0
        assert span.start_s > 0
    # Each worker's simulate nests inside its point span.
    for sim in simulate_spans:
        parents = [
            p
            for p in point_spans
            if p.pid == sim.pid
            and sim.start_s >= p.start_s - EPS
            and sim.end_s <= p.end_s + EPS
        ]
        assert parents, f"simulate span has no enclosing point: {sim}"


def test_span_structure_stable_across_jobs(monkeypatch):
    """jobs=1 and jobs=4 record the same span names and counts; only
    the pids differ (inline vs worker lanes)."""
    inline_engine, inline_tracer = _engine_with_tracing(monkeypatch, 1)
    inline_engine.run_points(points(3))
    pool_engine, pool_tracer = _engine_with_tracing(monkeypatch, 4)
    with pool_engine:
        pool_engine.run_points(points(3))
    assert _span_names(inline_tracer) == _span_names(pool_tracer)
    assert {s.pid for s in inline_tracer.spans} == {os.getpid()}
    assert len({s.pid for s in pool_tracer.spans}) > 1


def test_telemetry_snapshot_under_pool(monkeypatch):
    """Engine counters on the parent's bus stay exact with live workers
    (worker-side telemetry is disabled, not double-counted)."""
    obs = Telemetry()
    engine, tracer = _engine_with_tracing(monkeypatch, 2, obs=obs)
    with engine:
        engine.run_points(points(3))
    snap = obs.snapshot()
    assert snap["counters"]["exec.points.submitted"] == 3
    assert snap["counters"]["exec.points.simulated"] == 3
    assert "exec.cache.hits" not in snap["counters"]
    assert snap["timers"]["exec.point.wall"]["calls"] == 3
    assert tracer.snapshot()["spans"] == len(tracer.spans)


def test_pool_heartbeats_reach_parent(monkeypatch):
    beats = []
    monkeypatch.setenv("REPRO_TRACE", "1")
    engine = Engine(
        jobs=2, heartbeat=lambda pid, rss: beats.append((pid, rss))
    )
    with engine:
        engine.run_points(points(2))
    assert len(beats) == 2
    assert all(pid != os.getpid() for pid, _rss in beats)
    assert all(rss > 0 for _pid, rss in beats)


def test_profile_slowest_collects_hotspots():
    engine = Engine(profile_slowest=1)
    engine.run_points(points(2))
    assert len(engine.profiled) == 1  # only the slowest kept
    hotspots = engine.hotspots()
    assert hotspots
    assert all(
        {"func", "calls", "tot_s", "cum_s"} <= set(row) for row in hotspots
    )


def test_profile_points_env_inherited_by_workers(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE", "1")
    monkeypatch.setenv("REPRO_PROFILE_POINTS", "2")
    engine = Engine(jobs=2, profile_slowest=2)
    with engine:
        engine.run_points(points(2))
    assert len(engine.profiled) == 2
    assert engine.hotspots()
