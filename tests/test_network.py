"""Dumbbell network integration: utilization, fairness, queue behaviour.

These run the full packet-level stack on small links so they stay fast.
"""

import pytest

from repro.sim.network import DumbbellNetwork, FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


@pytest.fixture(scope="module")
def reno_pair_result():
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    return run_dumbbell(
        link,
        [FlowSpec("reno"), FlowSpec("reno")],
        duration=30,
        warmup=5,
    )


def test_link_fully_utilized(reno_pair_result):
    total = reno_pair_result.aggregate_throughput() * 8 / 1e6
    assert total == pytest.approx(10.0, rel=0.1)


def test_symmetric_flows_share_fairly(reno_pair_result):
    a, b = (f.throughput for f in reno_pair_result.flows)
    assert a / b == pytest.approx(1.0, abs=0.35)


def test_no_flow_exceeds_capacity(reno_pair_result):
    for flow in reno_pair_result.flows:
        assert flow.throughput <= 10e6 / 8 * 1.01


def test_single_cubic_fills_link():
    link = LinkConfig.from_mbps_ms(10, 20, 2)
    result = run_dumbbell(link, [FlowSpec("cubic")], duration=20, warmup=5)
    assert result.flows[0].throughput_mbps == pytest.approx(10.0, rel=0.08)


def test_single_bbr_fills_link_with_low_delay():
    link = LinkConfig.from_mbps_ms(10, 20, 10)
    result = run_dumbbell(link, [FlowSpec("bbr")], duration=20, warmup=5)
    assert result.flows[0].throughput_mbps == pytest.approx(10.0, rel=0.1)
    # Alone, BBR keeps the queue near-empty (≤ ~1 BDP on average),
    # unlike CUBIC which fills the buffer.
    assert result.mean_queuing_delay < 0.040


def test_cubic_fills_buffer_alone():
    link = LinkConfig.from_mbps_ms(10, 20, 5)
    result = run_dumbbell(link, [FlowSpec("cubic")], duration=30, warmup=5)
    # CUBIC's sawtooth keeps the buffer mostly occupied.
    assert result.mean_queuing_delay > 0.3 * link.max_queuing_delay


def test_min_rtt_close_to_base_rtt():
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    result = run_dumbbell(link, [FlowSpec("cubic")], duration=10)
    # Serialization adds a little; propagation dominates.
    assert result.flows[0].min_rtt == pytest.approx(0.020, rel=0.15)


def test_per_flow_rtt_override():
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    net = DumbbellNetwork(
        link,
        [FlowSpec("cubic", rtt=0.080), FlowSpec("cubic")],
    )
    result = net.run(10)
    assert result.flows[0].min_rtt == pytest.approx(0.080, rel=0.1)
    assert result.flows[1].min_rtt == pytest.approx(0.020, rel=0.2)


def test_short_rtt_cubic_beats_long_rtt_cubic():
    """Known CUBIC RTT-unfairness (§4.5): shorter RTT wins."""
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    result = run_dumbbell(
        link,
        [FlowSpec("cubic", rtt=0.010), FlowSpec("cubic", rtt=0.080)],
        duration=30,
        warmup=5,
    )
    short, long_ = result.flows
    assert short.throughput > long_.throughput


def test_staggered_start():
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    result = run_dumbbell(
        link,
        [FlowSpec("cubic"), FlowSpec("cubic", start_time=5.0)],
        duration=20,
    )
    first, second = result.flows
    assert first.delivered_bytes > second.delivered_bytes


def test_by_cc_and_means():
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    result = run_dumbbell(
        link,
        [FlowSpec("cubic"), FlowSpec("cubic"), FlowSpec("bbr")],
        duration=15,
    )
    assert len(result.by_cc("cubic")) == 2
    assert len(result.by_cc("bbr")) == 1
    assert result.mean_throughput("cubic") == pytest.approx(
        result.aggregate_throughput("cubic") / 2
    )


def test_losses_occur_at_droptail_bottleneck():
    link = LinkConfig.from_mbps_ms(10, 20, 2)
    result = run_dumbbell(link, [FlowSpec("cubic")], duration=20)
    assert result.drop_rate > 0
    assert result.flows[0].loss_rate > 0


def test_validation_errors():
    link = LinkConfig.from_mbps_ms(10, 20, 3)
    with pytest.raises(ValueError):
        DumbbellNetwork(link, [])
    net = DumbbellNetwork(link, [FlowSpec("cubic")])
    with pytest.raises(ValueError):
        net.run(duration=0)
    net = DumbbellNetwork(link, [FlowSpec("cubic")])
    with pytest.raises(ValueError):
        net.run(duration=10, warmup=10)
    with pytest.raises(ValueError):
        DumbbellNetwork(link, [FlowSpec("cubic", rtt=-1.0)])
