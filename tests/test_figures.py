"""Figure-generator plumbing (fast paths only; heavy figures run in
benchmarks/)."""

import pytest

from repro.experiments.figures import (
    FIGURES,
    figure5,
    figure6,
    figure9,
)


def test_registry_covers_every_evaluation_figure():
    # Figure 2 is a schematic and Table 1 the notation table; everything
    # else in the paper's evaluation must be regenerable.
    expected = {
        "fig1",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
    }
    assert set(FIGURES) == expected


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        figure6(scale="huge")
    with pytest.raises(ValueError):
        figure9(scale="paper")


def test_figure6_is_pure_model_and_fast():
    fig = figure6()
    assert fig.figure_id == "fig6"
    assert "fair-share" in fig.names
    assert len(fig.get("bbr-per-flow-sync").y) == 10
    assert "N_b" in fig.notes


def test_figure6_custom_size():
    fig = figure6(n_flows=6, buffer_bdp=5)
    assert len(fig.get("bbr-per-flow-sync").y) == 6


def test_figure5_counts_include_endpoint():
    # 20 flows at quick scale steps by 2 but must still end at 20.
    fig = figure5(n_flows=4, buffer_bdp=3)
    assert fig.get("actual").x[-1] == 4
