"""CoDel AQM (RFC 8289, simplified)."""

import pytest

from repro.sim.aqm import CoDel, CoDelConfig
from repro.sim.network import DumbbellNetwork, FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


class TestCoDelConfig:
    def test_defaults(self):
        cfg = CoDelConfig()
        assert cfg.target == pytest.approx(0.005)
        assert cfg.interval == pytest.approx(0.100)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoDelConfig(target=0.0)
        with pytest.raises(ValueError):
            CoDelConfig(target=0.1, interval=0.05)


class TestCoDelStateMachine:
    def test_never_drops_below_target(self):
        codel = CoDel()
        now = 0.0
        for _ in range(1000):
            now += 0.001
            assert not codel.on_dequeue(now, sojourn=0.001)

    def test_no_drop_until_interval_elapses(self):
        codel = CoDel()
        # Sojourn above target, but for less than one interval.
        assert not codel.on_dequeue(0.00, 0.02)
        assert not codel.on_dequeue(0.05, 0.02)

    def test_drops_after_sustained_high_sojourn(self):
        codel = CoDel()
        now = 0.0
        dropped = 0
        for _ in range(1000):
            now += 0.001
            if codel.on_dequeue(now, sojourn=0.05):
                dropped += 1
        assert dropped > 0

    def test_drop_rate_escalates(self):
        """Drops come faster over time (interval/√count spacing)."""
        codel = CoDel()
        now = 0.0
        drop_times = []
        for _ in range(4000):
            now += 0.001
            if codel.on_dequeue(now, sojourn=0.05):
                drop_times.append(now)
        assert len(drop_times) >= 4
        gaps = [b - a for a, b in zip(drop_times, drop_times[1:])]
        assert gaps[-1] < gaps[0]

    def test_recovers_when_queue_drains(self):
        codel = CoDel()
        now = 0.0
        for _ in range(500):
            now += 0.001
            codel.on_dequeue(now, sojourn=0.05)
        assert codel._dropping
        # Sojourn back under target: dropping state clears.
        now += 0.001
        codel.on_dequeue(now, sojourn=0.001)
        now += 0.3
        assert not codel.on_dequeue(now, sojourn=0.001)
        assert not codel._dropping

    def test_enqueue_never_drops(self):
        assert not CoDel().on_enqueue(1e9)


class TestCoDelEndToEnd:
    def test_codel_holds_delay_near_target(self):
        link = LinkConfig.from_mbps_ms(10, 20, 10)
        plain = run_dumbbell(
            link, [FlowSpec("cubic")], duration=30, warmup=10
        )
        codel = run_dumbbell(
            link,
            [FlowSpec("cubic")],
            duration=30,
            warmup=10,
            codel=CoDelConfig(),
        )
        # Drop-tail CUBIC bloats the 200 ms buffer; CoDel holds the
        # standing queue within a small multiple of its 5 ms target.
        assert plain.mean_queuing_delay > 0.05
        assert codel.mean_queuing_delay < 0.03

    def test_codel_preserves_reasonable_utilization(self):
        link = LinkConfig.from_mbps_ms(10, 20, 10)
        result = run_dumbbell(
            link,
            [FlowSpec("cubic")],
            duration=30,
            warmup=10,
            codel=CoDelConfig(),
        )
        assert result.flows[0].throughput_mbps > 7.0

    def test_mutually_exclusive_aqms(self):
        from repro.sim.aqm import REDConfig

        link = LinkConfig.from_mbps_ms(10, 20, 5)
        with pytest.raises(ValueError):
            DumbbellNetwork(
                link,
                [FlowSpec("cubic")],
                red=REDConfig.for_buffer(link.buffer_bytes),
                codel=CoDelConfig(),
            )

    def test_bbr_wins_harder_under_codel(self):
        """CoDel removes CUBIC's buffer-filling advantage: BBR's share
        against CUBIC rises versus drop-tail."""
        link = LinkConfig.from_mbps_ms(10, 20, 10)
        flows = [FlowSpec("cubic"), FlowSpec("bbr")]
        plain = run_dumbbell(link, flows, duration=60, warmup=10)
        codel = run_dumbbell(
            link, flows, duration=60, warmup=10, codel=CoDelConfig()
        )
        assert codel.flows[1].throughput > plain.flows[1].throughput
