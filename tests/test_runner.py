"""Scenario runner: backend dispatch, trials, throughput functions."""

import pytest

from repro.experiments.runner import (
    distribution_throughput_fn,
    expand_mix,
    group_payoff_fn,
    run_mix,
    spaced_seed,
)
from repro.util.config import LinkConfig


def link(bdp=3, mbps=20, rtt=20):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def test_fluid_backend_mix():
    result = run_mix(
        link(), [("cubic", 2), ("bbr", 2)], duration=30, backend="fluid"
    )
    assert set(result.per_flow) == {"cubic", "bbr"}
    total = sum(result.aggregate.values())
    assert total <= link().capacity * 1.001


def test_packet_backend_mix():
    result = run_mix(
        link(bdp=3, mbps=10),
        [("cubic", 1), ("bbr", 1)],
        duration=15,
        backend="packet",
    )
    assert result.per_flow["cubic"] > 0
    assert result.per_flow["bbr"] > 0


def test_zero_count_classes_skipped():
    result = run_mix(
        link(), [("cubic", 0), ("bbr", 2)], duration=20, backend="fluid"
    )
    assert "cubic" not in result.per_flow
    assert "bbr" in result.per_flow


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        run_mix(link(), [("cubic", 1)], backend="ns3")


def test_trials_must_be_positive():
    with pytest.raises(ValueError):
        run_mix(link(), [("cubic", 1)], trials=0)


def test_multi_trial_averaging_differs_from_single():
    kwargs = dict(duration=30, backend="fluid", seed=3)
    one = run_mix(link(), [("cubic", 2), ("bbr", 2)], trials=1, **kwargs)
    three = run_mix(link(), [("cubic", 2), ("bbr", 2)], trials=3, **kwargs)
    assert one.per_flow["bbr"] != three.per_flow["bbr"]


def test_per_flow_mbps_helper():
    result = run_mix(link(), [("cubic", 1)], duration=20, backend="fluid")
    assert result.per_flow_mbps("cubic") == pytest.approx(
        result.per_flow["cubic"] * 8 / 1e6
    )
    assert result.per_flow_mbps("bbr") == 0.0


def test_rtt_override():
    result = run_mix(
        link(),
        [("cubic", 1), ("bbr", 1)],
        duration=30,
        backend="fluid",
        rtts={"cubic": 0.010, "bbr": 0.060},
    )
    assert result.per_flow["cubic"] > 0


def test_distribution_throughput_fn_shape():
    fn = distribution_throughput_fn(
        link(), n_flows=4, duration=20, backend="fluid"
    )
    cubic, bbr = fn(2)
    assert cubic > 0 and bbr > 0
    cubic0, bbr0 = fn(0)
    assert bbr0 == 0.0
    cubic4, bbr4 = fn(4)
    assert cubic4 == 0.0
    with pytest.raises(ValueError):
        fn(5)


def test_group_payoff_fn_shape():
    payoff = group_payoff_fn(
        link(),
        group_rtts=[0.010, 0.030],
        group_sizes=[2, 2],
        duration=20,
    )
    result = payoff((1, 2))
    assert len(result) == 2
    inc0, cha0 = result[0]
    assert inc0 > 0 and cha0 > 0
    inc1, cha1 = result[1]
    assert inc1 == 0.0  # Group 1 is all-challenger.
    with pytest.raises(ValueError):
        payoff((3, 0))


def test_group_payoff_fn_validates_lengths():
    with pytest.raises(ValueError):
        group_payoff_fn(link(), [0.01], [2, 2])


def test_expand_mix_lowercases_and_applies_rtts():
    flows = expand_mix(
        [("CUBIC", 2), ("reno", 0), ("BBR", 1)],
        rtts={"bbr": 0.05},
    )
    assert flows == [("cubic", None), ("cubic", None), ("bbr", 0.05)]


def test_spaced_seed_no_collisions_for_large_trial_counts():
    # Regression: the old spacing ``seed + 1000 * k`` collided as soon as
    # trial offsets exceeded 1000 (seed + 1000*k + trial == the base seed
    # of distribution index k + 1).  The hashed spacing keeps every
    # (index, trial) stream disjoint even for huge trial counts.
    trials = 2500
    seeds = {
        spaced_seed(0, k) + trial
        for k in range(20)
        for trial in range(trials)
    }
    assert len(seeds) == 20 * trials


def test_spaced_seed_deterministic_and_seed_sensitive():
    assert spaced_seed(7, 3) == spaced_seed(7, 3)
    assert spaced_seed(7, 3) != spaced_seed(8, 3)
    assert spaced_seed(7, 3) != spaced_seed(7, 4)
    assert 0 <= spaced_seed(0, 0) < 2**56
