"""Copa: delay-targeted rate control."""

import pytest

from repro.cc.copa import Copa


def test_delta_validation():
    with pytest.raises(ValueError):
        Copa(delta=0.0)


def test_grows_when_queue_empty(driver_factory):
    """With RTT at the minimum (no queue), the target rate is unbounded
    and Copa opens its window."""
    cc = Copa(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    start = cc.cwnd
    d.acks(100, rtt=0.04)
    assert cc.cwnd > start


def test_backs_off_when_queue_delay_high(driver_factory):
    """Once queuing delay exceeds the 1/(δ·dq) target, Copa closes."""
    cc = Copa(mss=1000, delta=0.5)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.acks(20, rtt=0.04)          # Establish RTT_min = 40 ms.
    cc.cwnd = 200_000             # Large window...
    d.acks(300, rtt=0.30)         # ...and a massively bloated RTT.
    assert cc.cwnd < 200_000


def test_equilibrium_window_scales_with_inverse_delta(driver_factory):
    """At equilibrium Copa holds ~1/δ + small packets of queue; smaller δ
    should settle at a larger window under the same conditions."""
    results = {}
    for delta in (0.1, 0.5):
        cc = Copa(mss=1000, delta=delta)
        d = driver_factory(cc, rate=1.25e6, rtt=0.04)
        # Self-induced queue: RTT grows with cwnd (crude single-flow pipe).
        for _ in range(3000):
            rtt = 0.04 + max(cc.cwnd - 50_000, 0.0) / 1.25e6
            d.ack(rtt=rtt)
        results[delta] = cc.cwnd
    assert results[0.1] > results[0.5]


def test_loss_halves_window(driver_factory):
    cc = Copa(mss=1000)
    d = driver_factory(cc)
    d.acks(50)
    before = cc.cwnd
    d.lose()
    assert cc.cwnd == pytest.approx(before / 2, rel=0.01)
    assert cc.velocity == 1.0


def test_loss_gated_per_rtt(driver_factory):
    cc = Copa(mss=1000)
    d = driver_factory(cc)
    d.acks(50)
    before = cc.cwnd
    d.lose()
    d.lose()
    assert cc.cwnd == pytest.approx(before / 2, rel=0.01)


def test_velocity_doubles_with_consistent_direction(driver_factory):
    cc = Copa(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.run_for(1.0, rtt=0.04)  # Consistently opening.
    assert cc.velocity > 1.0


def test_velocity_resets_on_direction_flip(driver_factory):
    cc = Copa(mss=1000)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.run_for(1.0, rtt=0.04)
    assert cc.velocity > 1.0
    cc.cwnd = 500_000
    d.acks(50, rtt=0.5)  # Force closing.
    assert cc.velocity == 1.0


def test_pacing_rate_set(driver_factory):
    cc = Copa(mss=1000)
    d = driver_factory(cc)
    d.acks(10)
    assert cc.pacing_rate is not None and cc.pacing_rate > 0


def test_competitive_mode_shrinks_delta(driver_factory):
    cc = Copa(mss=1000, competitive_mode=True)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.acks(10, rtt=0.04)
    # Sustained large queue: a buffer-filling competitor is presumed.
    d.run_for(3.0, rtt=0.20)
    assert cc.delta < 0.5


def test_default_mode_keeps_delta(driver_factory):
    cc = Copa(mss=1000, competitive_mode=False)
    d = driver_factory(cc, rate=1.25e6, rtt=0.04)
    d.acks(10, rtt=0.04)
    d.run_for(3.0, rtt=0.20)
    assert cc.delta == 0.5
