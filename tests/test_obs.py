"""Telemetry bus, trace export round-trips, manifests, and reports."""

import json

import pytest

from repro.obs import (
    RunManifest,
    Telemetry,
    get_default,
    load_report,
    manifest_path_for,
    read_trace,
    resolve,
    set_default,
    tracer_samples,
    use,
    write_trace,
)
from repro.sim.network import DumbbellNetwork, FlowSpec, run_dumbbell
from repro.sim.trace import CwndTracer
from repro.util.config import LinkConfig


class TestTelemetryBus:
    def test_counters_accumulate(self):
        obs = Telemetry()
        obs.count("x")
        obs.count("x", 4)
        assert obs.counter("x") == 5
        assert obs.counter("never") == 0.0

    def test_gauges_track_min_max_mean(self):
        obs = Telemetry()
        for v in (2.0, 8.0, 5.0):
            obs.gauge("q", v)
        stat = obs.gauges["q"]
        assert stat.min == 2.0
        assert stat.max == 8.0
        assert stat.last == 5.0
        assert stat.mean == pytest.approx(5.0)

    def test_timer_contextmanager(self):
        obs = Telemetry()
        with obs.timeit("work"):
            pass
        with obs.timeit("work"):
            pass
        timer = obs.timers["work"]
        assert timer.calls == 2
        assert timer.total_s >= 0.0
        assert timer.max_s <= timer.total_s

    def test_events_are_typed_and_queryable(self):
        obs = Telemetry()
        obs.event("cc.state", time=1.5, cc="bbr", **{"from": "STARTUP",
                                                     "to": "DRAIN"})
        obs.event("link.drop", time=2.0, flow_id=0)
        states = obs.events_named("cc.state")
        assert len(states) == 1
        assert states[0].fields["to"] == "DRAIN"
        assert states[0].time == 1.5

    def test_max_events_cap_counts_drops(self):
        obs = Telemetry(max_events=2)
        for i in range(5):
            obs.event("e", time=float(i))
        assert len(obs.events) == 2
        assert obs.dropped_records == 3

    def test_snapshot_is_json_serializable(self):
        obs = Telemetry()
        obs.count("c", 3)
        obs.gauge("g", 1.0)
        with obs.timeit("t"):
            pass
        obs.event("e", time=0.0)
        obs.sample(0.0, 0, cwnd=10.0)
        snap = obs.snapshot()
        json.dumps(snap)  # Must not raise.
        assert snap["counters"]["c"] == 3
        assert snap["events"] == 1
        assert snap["samples"] == 1

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            Telemetry(max_events=0)
        with pytest.raises(ValueError):
            Telemetry(sample_interval=-0.1)


class TestDefaultBus:
    def test_resolve_prefers_explicit(self):
        explicit = Telemetry()
        installed = Telemetry()
        set_default(installed)
        try:
            assert resolve(explicit) is explicit
            assert resolve(None) is installed
        finally:
            set_default(None)
        assert resolve(None) is None

    def test_use_restores_previous(self):
        bus = Telemetry()
        assert get_default() is None
        with use(bus) as active:
            assert active is bus
            assert get_default() is bus
        assert get_default() is None


class TestInstrumentedPacketRun:
    @pytest.fixture(scope="class")
    def traced_run(self):
        obs = Telemetry(sample_interval=0.05)
        link = LinkConfig.from_mbps_ms(5, 20, 2)
        net = DumbbellNetwork(
            link, [FlowSpec("cubic"), FlowSpec("bbr")], obs=obs
        )
        result = net.run(duration=15.0)
        return obs, net, result

    def test_bbr_phase_transitions_recorded(self, traced_run):
        obs, _net, _result = traced_run
        states = obs.events_named("cc.state")
        assert states, "expected cc.state events from the BBR flow"
        pairs = {(e.fields["from"], e.fields["to"]) for e in states}
        assert ("STARTUP", "DRAIN") in pairs
        assert obs.counter("cc.state_transitions") == len(states)

    def test_drop_and_loss_counters(self, traced_run):
        obs, _net, result = traced_run
        assert obs.counter("link.dropped_packets") > 0
        assert obs.counter("link.dropped_bytes") > 0
        assert obs.counter("flow.lost_packets") > 0
        assert result.drop_rate > 0

    def test_tracer_attached_and_mirrored(self, traced_run):
        obs, net, _result = traced_run
        assert net.tracer is not None
        assert len(obs.samples) == len(net.tracer.samples)
        assert {s["flow_id"] for s in obs.samples} == {0, 1}

    def test_retransmits_surface_in_flow_results(self, traced_run):
        _obs, _net, result = traced_run
        cubic = result.by_cc("cubic")[0]
        assert cubic.retransmits > 0
        assert cubic.loss_rate > 0

    def test_event_count_matches_result(self, traced_run):
        obs, _net, result = traced_run
        assert result.events_processed > 0
        assert obs.counter("sim.events") == result.events_processed


class TestTraceRoundTrip:
    def test_tracer_and_events_unify_in_jsonl(self, tmp_path):
        # A standalone CwndTracer (no obs mirroring) merges into the
        # trace via extra_samples, exercising the unification path.
        obs = Telemetry()
        link = LinkConfig.from_mbps_ms(5, 20, 2)
        net = DumbbellNetwork(link, [FlowSpec("cubic"), FlowSpec("bbr")],
                              obs=obs)
        tracer = CwndTracer(net, interval=0.1)
        net.run(duration=10.0)

        path = str(tmp_path / "run.jsonl")
        written = write_trace(
            path, obs, extra_samples=tracer_samples(tracer)
        )
        assert written > 0

        trace = read_trace(path)
        assert len(trace.samples) == len(tracer.samples)
        assert trace.events_named("cc.state")
        assert trace.counters["link.dropped_packets"] > 0
        assert trace.flow_ids() == [0, 1]
        # Samples are time-sorted on export.
        times = [s["time"] for s in trace.samples]
        assert times == sorted(times)

    def test_event_payload_kind_key_survives(self, tmp_path):
        # cc.backoff events carry a "kind" field, which must not collide
        # with the record envelope's own "kind" discriminator.
        obs = Telemetry()
        obs.event("cc.backoff", time=1.0, kind="multiplicative_decrease",
                  beta=0.7)
        path = str(tmp_path / "t.jsonl")
        write_trace(path, obs)
        trace = read_trace(path)
        (event,) = trace.events
        assert event.fields["kind"] == "multiplicative_decrease"

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "nope"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            read_trace(str(path))
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_trace(str(path))


class TestManifest:
    def test_round_trip(self, tmp_path):
        obs = Telemetry()
        obs.count("sim.events", 42)
        link = LinkConfig.from_mbps_ms(100, 40, 5)
        manifest = RunManifest.build(
            label="test",
            link=link,
            mix=[("cubic", 2), ("bbr", 1)],
            backend="fluid",
            duration=30.0,
            seed=7,
            obs=obs,
            flows=[{"flow_id": 0, "cc": "cubic"}],
        )
        path = str(tmp_path / "run.manifest.json")
        manifest.write(path)
        loaded = RunManifest.load(path)
        assert loaded.mix == [("cubic", 2), ("bbr", 1)]
        assert loaded.counters["sim.events"] == 42
        assert loaded.seed == 7
        assert loaded.cc_of_flow(0) == "cubic"
        assert loaded.cc_of_flow(99) is None

    def test_sibling_path_convention(self):
        assert manifest_path_for("run.jsonl") == "run.manifest.json"
        assert manifest_path_for("a/b/run.jsonl") == "a/b/run.manifest.json"
        assert manifest_path_for("noext") == "noext.manifest.json"
        assert (
            manifest_path_for("dir.v1/trace") == "dir.v1/trace.manifest.json"
        )


class TestReport:
    def test_phase_dwell_and_per_flow_table(self, tmp_path):
        obs = Telemetry(sample_interval=0.1)
        link = LinkConfig.from_mbps_ms(5, 20, 2)
        result = run_dumbbell(
            link, [FlowSpec("cubic"), FlowSpec("bbr")],
            duration=15.0, obs=obs,
        )
        manifest = RunManifest.build(
            label="report-test", link=link,
            mix=[("cubic", 1), ("bbr", 1)], backend="packet",
            duration=15.0, seed=0, obs=obs,
            flows=[
                {
                    "flow_id": f.flow_id,
                    "cc": f.cc,
                    "throughput_mbps": f.throughput_mbps,
                    "loss_rate": f.loss_rate,
                    "retransmits": f.retransmits,
                }
                for f in result.flows
            ],
        )
        path = str(tmp_path / "run.jsonl")
        write_trace(path, obs, manifest=manifest)

        report = load_report(path)
        assert len(report.flows) == 2
        bbr = next(f for f in report.flows if f.cc == "bbr")
        assert bbr.dwell, "BBR flow should have phase dwell times"
        assert sum(bbr.dwell.values()) == pytest.approx(15.0, rel=0.05)
        rendered = report.render()
        assert "report-test" in rendered
        assert "phase dwell" in rendered
        assert "STARTUP" in rendered

    def test_sibling_manifest_overrides_embedded(self, tmp_path):
        obs = Telemetry()
        obs.event("cc.state", time=1.0, flow_id=0, cc="bbr",
                  **{"from": "STARTUP", "to": "DRAIN"})
        path = str(tmp_path / "run.jsonl")
        write_trace(path, obs)
        link = LinkConfig.from_mbps_ms(10, 10, 2)
        RunManifest.build(
            label="sibling", link=link, mix=[("bbr", 1)],
            backend="packet", duration=5.0, seed=0,
        ).write(manifest_path_for(path))
        report = load_report(path)
        assert report.trace.manifest is not None
        assert report.trace.manifest.label == "sibling"
        assert "sibling" in report.render()
