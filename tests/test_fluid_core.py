"""Fluid simulator core: queue solving, overflow, conservation."""

import pytest

from repro.fluidsim.core import FluidSimulation, FluidSpec, run_fluid
from repro.util.config import LinkConfig


def link(mbps=100, rtt=40, bdp=5):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def test_rejects_empty_flows():
    with pytest.raises(ValueError):
        FluidSimulation(link(), [])


def test_rejects_bad_loss_mode():
    with pytest.raises(ValueError):
        FluidSimulation(link(), [FluidSpec("cubic")], loss_mode="chaos")


def test_rejects_bad_duration():
    sim = FluidSimulation(link(), [FluidSpec("cubic")])
    with pytest.raises(ValueError):
        sim.run(0)


def test_rejects_second_run():
    sim = FluidSimulation(link(), [FluidSpec("cubic")])
    sim.run(1.0)
    with pytest.raises(RuntimeError):
        sim.run(1.0)


def test_single_cubic_fills_link():
    result = run_fluid(link(), [FluidSpec("cubic")], duration=60, warmup=10)
    assert result.flows[0].throughput_mbps == pytest.approx(100, rel=0.05)


def test_single_bbr_fills_link():
    result = run_fluid(link(), [FluidSpec("bbr")], duration=60, warmup=10)
    assert result.flows[0].throughput_mbps == pytest.approx(100, rel=0.1)


def test_total_throughput_never_exceeds_capacity():
    specs = [FluidSpec("cubic")] * 3 + [FluidSpec("bbr")] * 3
    result = run_fluid(link(), specs, duration=60, warmup=10)
    assert result.aggregate_throughput() <= link().capacity * 1.001


def test_high_utilization_with_adequate_buffer():
    specs = [FluidSpec("cubic")] * 3 + [FluidSpec("bbr")] * 3
    result = run_fluid(link(), specs, duration=60, warmup=10)
    assert result.aggregate_throughput() >= link().capacity * 0.9


def test_queue_bounded_by_buffer():
    sim = FluidSimulation(link(bdp=2), [FluidSpec("cubic")] * 4)
    sim.run(30)
    assert sim.queue_bytes <= link(bdp=2).buffer_bytes * 1.0001


def test_mean_queuing_delay_bounded():
    result = run_fluid(
        link(bdp=2), [FluidSpec("cubic")] * 4, duration=30, warmup=5
    )
    assert 0 <= result.mean_queuing_delay <= link(bdp=2).max_queuing_delay


def test_symmetric_cubic_flows_fair():
    result = run_fluid(
        link(),
        [FluidSpec("cubic")] * 4,
        duration=120,
        warmup=30,
        seed=5,
        start_jitter=1.0,
    )
    rates = [f.throughput for f in result.flows]
    assert max(rates) / min(rates) < 1.6


def test_all_bbr_flows_reach_fair_share():
    """§4.1 point B: all-BBR flows split the link evenly."""
    n = 5
    result = run_fluid(
        link(), [FluidSpec("bbr")] * n, duration=120, warmup=30
    )
    fair = link().capacity / n
    for f in result.flows:
        assert f.throughput == pytest.approx(fair, rel=0.25)


def test_loss_modes_produce_different_outcomes():
    specs = [FluidSpec("cubic")] * 5 + [FluidSpec("bbr")] * 5
    results = {}
    for mode in ("sync", "desync"):
        r = run_fluid(
            link(), specs, duration=90, warmup=20, loss_mode=mode, seed=2
        )
        results[mode] = r.mean_throughput("bbr")
    # Synchronized CUBIC backoffs leave more for BBR's max filter.
    assert results["sync"] != results["desync"]


def test_seed_determinism():
    specs = [FluidSpec("cubic")] * 3 + [FluidSpec("bbr")] * 2
    a = run_fluid(link(), specs, duration=30, seed=9, start_jitter=1.0)
    b = run_fluid(link(), specs, duration=30, seed=9, start_jitter=1.0)
    for fa, fb in zip(a.flows, b.flows):
        assert fa.throughput == fb.throughput


def test_different_seeds_differ():
    specs = [FluidSpec("cubic")] * 3 + [FluidSpec("bbr")] * 2
    a = run_fluid(link(), specs, duration=30, seed=1, start_jitter=1.0)
    b = run_fluid(link(), specs, duration=30, seed=2, start_jitter=1.0)
    assert any(
        fa.throughput != fb.throughput for fa, fb in zip(a.flows, b.flows)
    )


def test_start_time_honoured():
    specs = [FluidSpec("cubic"), FluidSpec("cubic", start_time=20.0)]
    result = run_fluid(link(), specs, duration=40)
    assert result.flows[0].delivered_bytes > result.flows[1].delivered_bytes


def test_heterogeneous_rtt_queue_solver():
    """Mixed RTTs exercise the bisection queue solver."""
    specs = [
        FluidSpec("cubic", rtt=0.010),
        FluidSpec("cubic", rtt=0.050),
    ]
    result = run_fluid(link(), specs, duration=60, warmup=10)
    total = result.aggregate_throughput()
    assert total == pytest.approx(link().capacity, rel=0.1)
    # CUBIC RTT-unfairness: the short-RTT flow gets more.
    assert result.flows[0].throughput > result.flows[1].throughput
