"""Model-predicted Nash Equilibria (§4.1, Equation 25)."""

import pytest

from repro.core.multi_flow import predict_multi_flow
from repro.core.nash import nash_region, predict_nash
from repro.util.config import LinkConfig


def link(bdp, mbps=100, rtt=40):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def test_equation25_satisfied_at_sync_solution():
    """λ̄_b/N_b = C/N at the predicted sync NE."""
    cfg = link(10)
    n = 50
    pred = predict_nash(cfg, n)
    n_b = pred.n_bbr_sync
    agg = predict_multi_flow(cfg, 1, 1).bbr_aggregate_sync
    assert agg / n_b == pytest.approx(cfg.capacity / n, rel=1e-6)


def test_desync_solution_is_fixed_point():
    cfg = link(10)
    n = 50
    pred = predict_nash(cfg, n)
    n_b = pred.n_bbr_desync
    n_c = max(int(round(n - n_b)), 1)
    agg = predict_multi_flow(cfg, n_c, 1).bbr_aggregate_desync
    assert n * agg / cfg.capacity == pytest.approx(n_b, rel=0.02)


def test_shallow_buffer_ne_is_all_bbr():
    pred = predict_nash(link(0.5), 50)
    assert pred.n_cubic_low == 0
    assert pred.n_cubic_high == 0


def test_mixed_ne_for_realistic_buffers():
    """The paper's headline: realistic buffers yield *mixed* NE."""
    for bdp in (3, 5, 10, 20, 50):
        pred = predict_nash(link(bdp), 50)
        assert 0 < pred.n_cubic_low
        assert pred.n_cubic_high < 50


def test_more_cubic_at_ne_in_deeper_buffers():
    """Figure 9's trend."""
    values = [
        predict_nash(link(bdp), 50).n_cubic_sync
        for bdp in (2, 5, 10, 25, 50)
    ]
    assert all(a < b for a, b in zip(values, values[1:]))


def test_region_scale_invariant_in_bdp_units():
    """§4.4: the predicted region is identical across link speeds and
    RTTs once the buffer is in BDP."""
    for bdp in (2, 10, 40):
        a = predict_nash(link(bdp, mbps=50, rtt=20), 50)
        b = predict_nash(link(bdp, mbps=100, rtt=80), 50)
        assert a.n_cubic_sync == pytest.approx(b.n_cubic_sync, rel=1e-9)
        assert a.n_cubic_desync == pytest.approx(
            b.n_cubic_desync, rel=1e-9
        )


def test_ne_scales_linearly_with_flow_count():
    a = predict_nash(link(10), 25)
    b = predict_nash(link(10), 50)
    assert b.n_cubic_sync == pytest.approx(2 * a.n_cubic_sync, rel=1e-6)


def test_contains_n_cubic():
    pred = predict_nash(link(10), 50)
    mid = (pred.n_cubic_low + pred.n_cubic_high) / 2
    assert pred.contains_n_cubic(mid)
    assert not pred.contains_n_cubic(pred.n_cubic_high + 5)
    assert pred.contains_n_cubic(pred.n_cubic_high + 5, slack=6)


def test_bounds_ordering():
    pred = predict_nash(link(10), 50)
    assert pred.n_cubic_low <= pred.n_cubic_high
    # Desync favours BBR → more BBR, fewer CUBIC flows at that bound.
    assert pred.n_cubic_desync <= pred.n_cubic_sync


def test_nash_region_sweep():
    points = nash_region(link(1), 50, [0.5, 2, 10, 50])
    assert len(points) == 4
    assert points[0].n_cubic_sync == 0
    assert points[-1].in_validity_range
    assert not points[0].in_validity_range
    assert points[-1].n_cubic_sync > points[1].n_cubic_sync


def test_validation():
    with pytest.raises(ValueError):
        predict_nash(link(5), 0)


def test_prediction_deterministic_across_repeat_calls():
    """Same link, same n -> bit-identical prediction, at both extremes
    of the flow count (the population layer leans on this)."""
    for n in (1, 2, 50, 10**6):
        a = predict_nash(link(10), n)
        b = predict_nash(link(10), n)
        assert (a.n_bbr_sync, a.n_bbr_desync) == (
            b.n_bbr_sync,
            b.n_bbr_desync,
        )
        assert a.in_validity_range == b.in_validity_range


def test_flow_count_extremes_stay_in_range():
    for n in (1, 10**6):
        pred = predict_nash(link(10), n)
        assert 0 <= pred.n_bbr_sync <= n
        assert 0 <= pred.n_bbr_desync <= n


def test_million_flow_share_matches_small_game():
    """Eq. 25 is linear in N: the BBR *share* at the sync bound is the
    same at 50 flows and at a million."""
    small = predict_nash(link(10), 50)
    big = predict_nash(link(10), 10**6)
    assert big.n_bbr_sync / 10**6 == pytest.approx(
        small.n_bbr_sync / 50, rel=1e-9
    )
