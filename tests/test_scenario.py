"""First-class scenario schema (repro.scenario).

Covers the canonical bottleneck spec end-to-end: AQM and capacity-trace
parsing (every accepted spelling, every rejected one), canonical
``to_dict``/``from_dict`` round trips, the fingerprint property that two
differently-spelled-but-identical scenarios hash equal while any real
scenario change hashes differently, the field-coverage regression that
keeps ``link_params`` honest when the schema grows, the CLI's
``scenario_overrides`` context, scalar-vs-vectorized *bitwise* parity on
AQM and traced-capacity scenarios, and seeded accounting defects that
the sanitizer must catch (corrupt AQM drop split, corrupt ECN marks,
illegal capacity steps).
"""

import dataclasses

import pytest

from repro.check import Checker, InvariantViolation
from repro.exec.fingerprint import ScenarioPoint, link_params
from repro.fluidsim import FluidSpec, run_fluid, run_fluid_vec
from repro.obs import Telemetry
from repro.scenario import (
    AQM_KINDS,
    DROP_TAIL,
    TRACE_KINDS,
    BottleneckSpec,
    CoDelSpec,
    ConstantTrace,
    REDSpec,
    SampledTrace,
    StepsTrace,
    aqm_from_dict,
    parse_aqm,
    parse_capacity_trace,
    scenario_overrides,
    trace_from_dict,
)
from repro.sim.link import Link
from repro.sim.network import FlowSpec, run_dumbbell
from repro.util.config import LinkConfig


def small_link(mbps=10, rtt=20, bdp=5, **scenario):
    return BottleneckSpec.from_mbps_ms(mbps, rtt, bdp, **scenario)


# -- AQM parsing and validation --------------------------------------------


@pytest.mark.parametrize(
    "spelling", ["droptail", "drop-tail", "drop_tail", "tail", "none", "DropTail"]
)
def test_parse_aqm_droptail_spellings(spelling):
    assert parse_aqm(spelling) == DROP_TAIL


def test_parse_aqm_none_is_droptail():
    assert parse_aqm(None) is DROP_TAIL


@pytest.mark.parametrize("spelling,cls", [("red", REDSpec), ("CoDel", CoDelSpec)])
def test_parse_aqm_kind_strings(spelling, cls):
    assert parse_aqm(spelling) == cls()


def test_parse_aqm_passes_instances_through():
    spec = REDSpec(max_p=0.2)
    assert parse_aqm(spec) is spec


def test_parse_aqm_accepts_partial_dicts():
    spec = parse_aqm({"kind": "red", "ecn": True})
    assert spec == REDSpec(ecn=True)
    assert spec.max_p == REDSpec().max_p  # Missing fields take defaults.


def test_parse_aqm_ecn_override():
    assert parse_aqm("red", ecn=True) == REDSpec(ecn=True)
    assert parse_aqm(REDSpec(ecn=True), ecn=False) == REDSpec(ecn=False)
    # ecn=False on drop-tail is a no-op, not an error.
    assert parse_aqm(None, ecn=False) is DROP_TAIL


def test_parse_aqm_ecn_requires_an_aqm():
    with pytest.raises(ValueError, match="ECN marking requires an AQM"):
        parse_aqm(None, ecn=True)
    with pytest.raises(ValueError, match="ECN marking requires an AQM"):
        parse_aqm("droptail", ecn=True)


def test_parse_aqm_rejects_unknown_spellings():
    with pytest.raises(ValueError, match="aqm must be one of"):
        parse_aqm("pie")
    with pytest.raises(ValueError, match="cannot interpret"):
        parse_aqm(3.14)


def test_aqm_from_dict_rejects_typos():
    with pytest.raises(ValueError, match="needs a 'kind' key"):
        aqm_from_dict({"ecn": True})
    with pytest.raises(ValueError, match="unknown REDSpec keys"):
        aqm_from_dict({"kind": "red", "max_prob": 0.2})


@pytest.mark.parametrize(
    "kwargs",
    [
        {"min_frac": 0.0},
        {"min_frac": 0.6, "max_frac": 0.5},
        {"max_frac": 1.5},
        {"max_p": 0.0},
        {"max_p": 2.0},
        {"weight": 0.0},
        {"weight": float("nan")},
    ],
)
def test_red_spec_validation(kwargs):
    with pytest.raises(ValueError):
        REDSpec(**kwargs)


@pytest.mark.parametrize("kwargs", [{"target": 0.0}, {"interval": -1.0}])
def test_codel_spec_validation(kwargs):
    with pytest.raises(ValueError):
        CoDelSpec(**kwargs)


@pytest.mark.parametrize("kind", AQM_KINDS)
def test_aqm_to_dict_round_trips(kind):
    spec = parse_aqm(kind)
    assert aqm_from_dict(spec.to_dict()) == spec


def test_aqm_round_trip_preserves_non_defaults():
    spec = REDSpec(min_frac=0.1, max_frac=0.9, max_p=0.5, ecn=True, seed=7)
    assert aqm_from_dict(spec.to_dict()) == spec


# -- capacity-trace parsing and behavior -----------------------------------


@pytest.mark.parametrize("spelling", [None, "constant", " Constant "])
def test_parse_trace_constant_spellings(spelling):
    assert parse_capacity_trace(spelling) == ConstantTrace()


def test_parse_trace_steps_dsl():
    trace = parse_capacity_trace("steps:5@0.5,10@1.0")
    assert trace == StepsTrace(steps=((5.0, 0.5), (10.0, 1.0)))
    assert trace.scale_at(0.0) == 1.0
    assert trace.scale_at(5.0) == 0.5
    assert trace.scale_at(9.99) == 0.5
    assert trace.scale_at(10.0) == 1.0
    assert trace.change_events() == ((5.0, 0.5), (10.0, 1.0))


def test_parse_trace_sampled_dsl():
    trace = parse_capacity_trace("trace:2:1,0.5,0.8")
    assert trace == SampledTrace(period=2.0, scales=(1.0, 0.5, 0.8))
    assert trace.scale_at(0.0) == 1.0
    assert trace.scale_at(2.0) == 0.5
    assert trace.scale_at(100.0) == 0.8  # Last sample holds forever.


def test_sampled_trace_collapses_equal_samples():
    trace = SampledTrace(period=1.0, scales=(0.5, 0.5, 0.8, 0.8, 0.5))
    # Only genuine changes become events; the t=0 sample is initial state.
    assert trace.change_events() == ((2.0, 0.8), (4.0, 0.5))


@pytest.mark.parametrize(
    "spelling",
    [
        "steps:10@0.5,5@1.0",  # Non-increasing times.
        "steps:0@0.5",  # t=0 is the initial scale, not a step.
        "steps:5@-1",  # Negative scale.
        "steps:5",  # Missing @SCALE.
        "trace:2:",  # No samples.
        "trace:0:1,2",  # Zero period.
        "trace:-1:1",  # Negative period.
        "ramp:1,2",  # Unknown kind.
        "trace:5",  # Missing sample list.
    ],
)
def test_parse_trace_rejects_bad_dsl(spelling):
    with pytest.raises(ValueError):
        parse_capacity_trace(spelling)


def test_trace_from_dict_rejects_typos():
    with pytest.raises(ValueError, match="needs a 'kind' key"):
        trace_from_dict({"steps": [[5, 0.5]]})
    with pytest.raises(ValueError, match="unknown steps-trace keys"):
        trace_from_dict({"kind": "steps", "step": [[5, 0.5]]})
    with pytest.raises(ValueError, match="constant trace takes no keys"):
        trace_from_dict({"kind": "constant", "period": 1})
    with pytest.raises(ValueError, match="trace kind must be one of"):
        trace_from_dict({"kind": "ramp"})


@pytest.mark.parametrize(
    "trace",
    [
        ConstantTrace(),
        StepsTrace(steps=((3.0, 0.25), (9.0, 1.0))),
        SampledTrace(period=0.5, scales=(1.0, 0.7, 0.7, 1.2)),
    ],
)
def test_trace_to_dict_round_trips(trace):
    assert trace_from_dict(trace.to_dict()) == trace
    assert sorted(TRACE_KINDS) == sorted(("constant", "steps", "trace"))


# -- the bottleneck spec ---------------------------------------------------


def test_linkconfig_is_the_scenario_spec():
    """The historical LinkConfig name is an alias, not a parallel type."""
    assert LinkConfig is BottleneckSpec


def test_default_spec_is_the_paper_scenario():
    link = small_link()
    assert link.aqm is DROP_TAIL
    assert link.capacity_trace == ConstantTrace()
    assert link.is_default_scenario
    assert link.scenario_family == "droptail"


def test_scenario_classification():
    assert not small_link(aqm="red").is_default_scenario
    assert not small_link(capacity_trace="steps:5@0.5").is_default_scenario
    assert small_link(aqm="codel").scenario_family == "codel"


def test_spec_coerces_spellings_in_constructor():
    link = BottleneckSpec(
        capacity=1.25e6,
        rtt=0.02,
        buffer_bdp=5,
        aqm={"kind": "red", "ecn": True},
        capacity_trace="steps:5@0.5",
    )
    assert link.aqm == REDSpec(ecn=True)
    assert link.capacity_trace == StepsTrace(steps=((5.0, 0.5),))


def test_spec_to_dict_round_trips():
    link = small_link(aqm="codel", ecn=True, capacity_trace="trace:2:1,0.5")
    clone = BottleneckSpec.from_dict(link.to_dict())
    assert clone == link
    assert clone.to_dict() == link.to_dict()


def test_with_aqm_and_with_capacity_trace_return_copies():
    base = small_link()
    red = base.with_aqm("red", ecn=True)
    stepped = base.with_capacity_trace("steps:5@0.5")
    assert base.is_default_scenario  # Originals untouched (frozen).
    assert red.aqm == REDSpec(ecn=True)
    assert stepped.capacity_trace == StepsTrace(steps=((5.0, 0.5),))
    assert red.capacity == base.capacity


# -- fingerprint identity properties ---------------------------------------


def _fingerprint(link):
    return ScenarioPoint(
        link=link, mix=(("cubic", 1), ("bbr", 1)), duration=10.0
    ).fingerprint()


def test_differently_spelled_scenarios_fingerprint_equal():
    """String, dict, instance, and default spellings of one scenario
    must produce the same canonical dict and the same fingerprint."""
    spellings = [
        small_link(aqm="red", ecn=True),
        small_link(aqm={"kind": "red", "ecn": True}),
        small_link(aqm=REDSpec(ecn=True)),
        small_link().with_aqm("red", ecn=True),
    ]
    dicts = {str(sorted(s.to_dict().items())) for s in spellings}
    assert len(dicts) == 1
    assert len({_fingerprint(s) for s in spellings}) == 1


def test_default_and_explicit_droptail_fingerprint_equal():
    implicit = small_link()
    explicit = small_link(aqm="drop-tail", capacity_trace="constant")
    assert implicit == explicit
    assert _fingerprint(implicit) == _fingerprint(explicit)


def test_scenario_changes_change_the_fingerprint():
    base = small_link()
    variants = [
        small_link(aqm="red"),
        small_link(aqm="red", ecn=True),
        small_link(aqm="codel"),
        small_link(capacity_trace="steps:5@0.5"),
        small_link(capacity_trace="trace:5:1,0.5"),
        small_link(aqm=REDSpec(max_p=0.2)),
    ]
    prints = [_fingerprint(v) for v in [base] + variants]
    assert len(set(prints)) == len(prints)


def test_link_params_covers_every_spec_field():
    """Regression for the silent-truncation bug: if BottleneckSpec grows
    a field that ``link_params`` does not serialize, two different
    scenarios would silently share a cache entry.  This fails the moment
    a new field is added without extending the canonical dict."""
    link = small_link(aqm="red", ecn=True, capacity_trace="steps:5@0.5")
    params = link_params(link)
    for spec_field in dataclasses.fields(BottleneckSpec):
        assert spec_field.name in params, (
            f"BottleneckSpec.{spec_field.name} is missing from "
            "link_params: extend BottleneckSpec.to_dict (and bump "
            "CACHE_SCHEMA) or cached results will collide"
        )
    # And the sub-specs serialize their full payload, not a summary.
    assert params["aqm"] == link.aqm.to_dict()
    assert params["capacity_trace"] == link.capacity_trace.to_dict()


def test_scenario_point_rejects_unknown_backend():
    with pytest.raises(ValueError, match="backend must be one of"):
        ScenarioPoint(link=small_link(), mix=(("bbr", 1),), backend="ns3")


# -- scenario_overrides (CLI flags -> internally built links) --------------


def test_overrides_fill_unset_arguments():
    with scenario_overrides(aqm="red", ecn=True, capacity_trace="steps:5@0.5"):
        link = small_link()
    assert link.aqm == REDSpec(ecn=True)
    assert link.capacity_trace == StepsTrace(steps=((5.0, 0.5),))


def test_explicit_arguments_beat_overrides():
    with scenario_overrides(aqm="red", ecn=True, capacity_trace="steps:5@0.5"):
        link = small_link(aqm="codel", capacity_trace="trace:2:1,0.5")
    assert link.aqm == CoDelSpec()  # Explicit aqm also suppresses ecn=True.
    assert link.capacity_trace == SampledTrace(period=2.0, scales=(1.0, 0.5))


def test_overrides_nest_and_restore():
    with scenario_overrides(aqm="red"):
        with scenario_overrides(aqm="codel"):
            assert isinstance(small_link().aqm, CoDelSpec)
        assert isinstance(small_link().aqm, REDSpec)
    assert small_link().aqm is DROP_TAIL


def test_empty_override_is_a_noop():
    with scenario_overrides():
        assert small_link() == small_link()
        assert small_link().is_default_scenario


# -- scalar vs. vectorized fluid: bitwise parity on scenarios --------------

#: A shallow buffer so AQM and overflow both fire.
PARITY_LINK_ARGS = dict(mbps=20, rtt=20, bdp=1.5)

SCENARIOS = {
    "red": dict(aqm="red"),
    "red-ecn": dict(aqm="red", ecn=True),
    "codel": dict(aqm="codel"),
    "codel-ecn": dict(aqm="codel", ecn=True),
    "steps": dict(capacity_trace="steps:3@0.5,6@1.0"),
    "red-trace": dict(aqm="red", capacity_trace="trace:2:1,0.6,1.0"),
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_vec_matches_scalar_bitwise_on_scenarios(name):
    link = small_link(**PARITY_LINK_ARGS, **SCENARIOS[name])
    flows = [FluidSpec(cc=cc) for cc in ("cubic", "bbr", "cubic", "bbr")]
    kwargs = dict(duration=10.0, warmup=2.0, seed=11, start_jitter=0.4)
    scalar = run_fluid(link, flows, **kwargs)
    vec = run_fluid_vec(link, flows, **kwargs)
    assert vec == scalar


def test_fluid_red_actually_drops():
    """The RED scenario must differ from drop-tail, or the parity test
    above would pass vacuously on a dead code path."""
    flows = [FluidSpec(cc="cubic"), FluidSpec(cc="bbr")]
    kwargs = dict(duration=10.0, warmup=2.0, seed=3)
    plain = run_fluid(small_link(**PARITY_LINK_ARGS), flows, **kwargs)
    red = run_fluid(
        small_link(**PARITY_LINK_ARGS, aqm="red"), flows, **kwargs
    )
    assert red != plain
    assert red.drop_rate > plain.drop_rate


def test_fluid_capacity_trace_throttles_throughput():
    flows = [FluidSpec(cc="cubic")]
    kwargs = dict(duration=10.0, warmup=0.0, seed=3)
    plain = run_fluid(small_link(**PARITY_LINK_ARGS), flows, **kwargs)
    halved = run_fluid(
        small_link(**PARITY_LINK_ARGS, capacity_trace="steps:1@0.5"),
        flows,
        **kwargs,
    )
    total = lambda result: sum(f.throughput for f in result.flows)
    assert total(halved) < 0.75 * total(plain)


def test_fluid_ecn_marks_instead_of_dropping():
    obs = Telemetry()
    link = small_link(**PARITY_LINK_ARGS, aqm="codel", ecn=True)
    run_fluid(
        link,
        [FluidSpec(cc="cubic"), FluidSpec(cc="bbr")],
        duration=10.0,
        warmup=2.0,
        seed=3,
        obs=obs,
    )
    assert obs.counter("link.ecn_marks") > 0
    assert obs.counter("link.aqm_drops") == 0


def test_fluid_trace_emits_capacity_change_events():
    obs = Telemetry()
    link = small_link(**PARITY_LINK_ARGS, capacity_trace="steps:3@0.5,6@1.0")
    run_fluid(
        link, [FluidSpec(cc="cubic")], duration=10.0, seed=3, obs=obs
    )
    assert obs.counter("link.capacity_changes") == 2


# -- seeded defects: the sanitizer must catch broken AQM accounting --------


class SplitCorruptingLink(Link):
    """A broken link that double-counts AQM drops in the split."""

    def _record_drop(self, packet, aqm=False):
        super()._record_drop(packet, aqm=aqm)
        if aqm:
            # The seeded defect: aqm_dropped_bytes outruns dropped_bytes.
            self.stats.aqm_dropped_bytes += packet.size


class MarkCorruptingLink(Link):
    """A broken link whose ECN-mark counter runs wild."""

    def _record_mark(self, packet):
        super()._record_mark(packet)
        self.stats.marked_bytes += 10**12  # More than ever passed through.


def _run_packet_aqm(link, check):
    return run_dumbbell(
        link,
        [FlowSpec(cc="cubic"), FlowSpec(cc="cubic")],
        duration=10.0,
        check=check,
    )


def test_corrupt_aqm_drop_split_trips_conservation(monkeypatch):
    monkeypatch.setattr("repro.sim.network.Link", SplitCorruptingLink)
    link = small_link(bdp=2, aqm="red")
    with pytest.raises(InvariantViolation) as excinfo:
        _run_packet_aqm(link, Checker())
    exc = excinfo.value
    assert exc.check == "link.conservation"
    assert "drop split" in exc.message or "AQM" in exc.message


def test_corrupt_ecn_marks_trip_conservation(monkeypatch):
    monkeypatch.setattr("repro.sim.network.Link", MarkCorruptingLink)
    link = small_link(bdp=2, aqm="codel", ecn=True)
    with pytest.raises(InvariantViolation) as excinfo:
        _run_packet_aqm(link, Checker())
    assert excinfo.value.check == "link.conservation"
    assert "marked" in excinfo.value.message


def test_illegal_capacity_step_trips_trace_check():
    check = Checker()
    with pytest.raises(InvariantViolation) as excinfo:
        check.capacity_change(1.0, 0.0)
    assert excinfo.value.check == "link.capacity_trace"
    with pytest.raises(InvariantViolation):
        check.capacity_change(1.0, float("nan"))


@pytest.mark.parametrize(
    "scenario",
    [
        dict(aqm="red"),
        dict(aqm="codel", ecn=True),
        dict(capacity_trace="steps:3@0.5"),
    ],
)
def test_packet_aqm_runs_clean_under_sanitizer(scenario):
    check = Checker()
    link = small_link(bdp=2, **scenario)
    _run_packet_aqm(link, check)
    assert check.checks_run > 0


@pytest.mark.parametrize("runner", [run_fluid, run_fluid_vec])
def test_fluid_aqm_runs_clean_under_sanitizer(runner):
    check = Checker()
    link = small_link(
        **PARITY_LINK_ARGS, aqm="red", capacity_trace="steps:3@0.5"
    )
    runner(
        link,
        [FluidSpec(cc="cubic"), FluidSpec(cc="bbr")],
        duration=8.0,
        warmup=2.0,
        seed=3,
        check=check,
    )
    assert check.checks_run > 0
