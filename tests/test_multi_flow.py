"""Multi-flow model (§2.4): aggregate bounds and per-flow division."""

import pytest

from repro.core.multi_flow import (
    aggregate_bbr_bandwidth,
    desync_backoff,
    predict_multi_flow,
)
from repro.core.two_flow import predict_two_flow
from repro.util.config import LinkConfig


def link(bdp=5, mbps=100, rtt=40):
    return LinkConfig.from_mbps_ms(mbps, rtt, bdp)


def test_desync_backoff_formula():
    """Equation (22): (N_c − 0.3)/N_c."""
    assert desync_backoff(1) == pytest.approx(0.7)
    assert desync_backoff(5) == pytest.approx(4.7 / 5)
    assert desync_backoff(10) == pytest.approx(9.7 / 10)


def test_desync_backoff_validation():
    with pytest.raises(ValueError):
        desync_backoff(0)


def test_one_cubic_flow_bounds_coincide():
    """With a single CUBIC flow both bounds reduce to the 2-flow model."""
    pred = predict_multi_flow(link(), 1, 1)
    assert pred.bbr_aggregate_sync == pytest.approx(
        pred.bbr_aggregate_desync
    )
    two = predict_two_flow(link())
    assert pred.bbr_aggregate_sync == pytest.approx(two.bbr_bandwidth)


def test_desync_bound_gives_bbr_more():
    """De-synchronized CUBIC keeps the buffer fuller, bloating BBR's RTT
    estimate and raising its bandwidth bound."""
    pred = predict_multi_flow(link(), 5, 5)
    assert pred.bbr_aggregate_desync > pred.bbr_aggregate_sync


def test_aggregates_sum_to_capacity():
    pred = predict_multi_flow(link(), 4, 6)
    c = link().capacity
    assert pred.bbr_aggregate_sync + pred.cubic_aggregate_sync == (
        pytest.approx(c)
    )
    assert pred.bbr_aggregate_desync + pred.cubic_aggregate_desync == (
        pytest.approx(c)
    )


def test_per_flow_division():
    """Equations (23)–(24)."""
    pred = predict_multi_flow(link(), 4, 6)
    assert pred.per_flow_bbr_sync == pytest.approx(
        pred.bbr_aggregate_sync / 6
    )
    assert pred.per_flow_cubic_sync == pytest.approx(
        pred.cubic_aggregate_sync / 4
    )


def test_all_bbr_takes_whole_link():
    pred = predict_multi_flow(link(), 0, 8)
    assert pred.bbr_aggregate_sync == pytest.approx(link().capacity)
    assert pred.per_flow_bbr_sync == pytest.approx(link().capacity / 8)


def test_all_cubic_takes_whole_link():
    pred = predict_multi_flow(link(), 8, 0)
    assert pred.cubic_aggregate_sync == pytest.approx(link().capacity)
    assert pred.per_flow_bbr_sync == 0.0


def test_sync_aggregate_independent_of_counts():
    """The synchronized aggregate behaves like one big CUBIC flow, so the
    bound does not depend on how many flows each class has."""
    a = predict_multi_flow(link(), 2, 3).bbr_aggregate_sync
    b = predict_multi_flow(link(), 9, 1).bbr_aggregate_sync
    assert a == pytest.approx(b)


def test_desync_aggregate_grows_with_cubic_count():
    """More de-synchronized CUBIC flows keep more of the buffer occupied
    after a single-flow backoff."""
    a = predict_multi_flow(link(), 2, 5).bbr_aggregate_desync
    b = predict_multi_flow(link(), 20, 5).bbr_aggregate_desync
    assert b > a


def test_diminishing_returns_per_flow():
    """The paper's central observation (§3.3): BBR's per-flow bandwidth
    falls as the proportion of BBR flows rises."""
    n = 10
    values = [
        predict_multi_flow(link(3), n - k, k).per_flow_bbr_desync
        for k in range(1, n)
    ]
    assert all(a > b for a, b in zip(values, values[1:]))


def test_region_contains_helper():
    pred = predict_multi_flow(link(), 5, 5)
    lo, hi = pred.per_flow_bbr_bounds()
    assert pred.contains_bbr_per_flow((lo + hi) / 2)
    assert not pred.contains_bbr_per_flow(hi * 2)
    assert pred.contains_bbr_per_flow(hi * 2, tolerance=hi * 1.5)


def test_validation():
    with pytest.raises(ValueError):
        predict_multi_flow(link(), -1, 5)
    with pytest.raises(ValueError):
        predict_multi_flow(link(), 0, 0)


def test_aggregate_bbr_bandwidth_all_bbr():
    assert aggregate_bbr_bandwidth(link(), 0, 0.7) == link().capacity
