"""BBRv1 state machine: the four states of §2.1 and the 2×BDP cap."""

import pytest

from repro.cc.bbr import (
    DRAIN,
    GAIN_CYCLE,
    HIGH_GAIN,
    PROBE_BW,
    PROBE_RTT,
    STARTUP,
    BBRv1,
)


def make_driver(driver_factory, rate=1.25e6, rtt=0.04):
    cc = BBRv1(mss=1000)
    return cc, driver_factory(cc, rate=rate, rtt=rtt)


def test_starts_in_startup():
    cc = BBRv1()
    assert cc.state == STARTUP
    assert cc.pacing_gain == pytest.approx(HIGH_GAIN)


def test_high_gain_value():
    # 2/ln(2) ≈ 2.885 — the exponential-search gain from §2.1.
    assert HIGH_GAIN == pytest.approx(2.885, rel=1e-3)


def test_gain_cycle_shape():
    # §2.1: 8 phases — probe at 1.25, compensate at 0.75, then 6 × 1.0.
    assert len(GAIN_CYCLE) == 8
    assert GAIN_CYCLE[0] == 1.25
    assert GAIN_CYCLE[1] == 0.75
    assert all(g == 1.0 for g in GAIN_CYCLE[2:])


def test_bandwidth_filter_tracks_delivery_rate(driver_factory):
    cc, d = make_driver(driver_factory)
    d.acks(50, delivery_rate=1.25e6)
    assert cc.btl_bw == pytest.approx(1.25e6)


def test_app_limited_samples_ignored_unless_larger(driver_factory):
    cc, d = make_driver(driver_factory)
    d.acks(30, delivery_rate=1.25e6)
    d.acks(30, delivery_rate=0.5e6, app_limited=True)
    assert cc.btl_bw == pytest.approx(1.25e6)
    d.ack(delivery_rate=2e6, app_limited=True)
    assert cc.btl_bw == pytest.approx(2e6)


def test_rtprop_tracks_minimum(driver_factory):
    cc, d = make_driver(driver_factory)
    d.ack(rtt=0.050)
    d.ack(rtt=0.042)
    d.ack(rtt=0.061)
    assert cc.rtprop == pytest.approx(0.042)


def test_startup_exits_on_bandwidth_plateau(driver_factory):
    cc, d = make_driver(driver_factory)
    # Constant delivery rate: the filter stops growing, full_pipe after
    # three round trips.
    d.run_for(1.0, delivery_rate=1.25e6)
    assert cc.full_pipe
    assert cc.state in (DRAIN, PROBE_BW)


def test_reaches_probe_bw_with_low_inflight(driver_factory):
    cc, d = make_driver(driver_factory)
    d.run_for(1.0, delivery_rate=1.25e6, in_flight=10_000)
    assert cc.state == PROBE_BW
    assert cc.cwnd_gain == 2.0


def test_cwnd_capped_at_twice_bdp(driver_factory):
    """Assumption 2 of the model: in-flight cap = 2 × estimated BDP."""
    cc, d = make_driver(driver_factory, rate=1.25e6, rtt=0.04)
    d.run_for(3.0, delivery_rate=1.25e6, in_flight=10_000)
    bdp = 1.25e6 * 0.04
    assert cc.cwnd <= 2.0 * bdp * 1.0001
    assert cc.cwnd == pytest.approx(2.0 * bdp, rel=0.05)


def test_loss_agnostic(driver_factory):
    """Assumption 4: BBRv1 ignores packet loss."""
    cc, d = make_driver(driver_factory)
    d.run_for(2.0, delivery_rate=1.25e6, in_flight=10_000)
    cwnd = cc.cwnd
    pacing = cc.pacing_rate
    for _ in range(10):
        d.lose()
    assert cc.cwnd == cwnd
    assert cc.pacing_rate == pacing


def test_probe_rtt_entered_when_rtprop_stale(driver_factory):
    cc, d = make_driver(driver_factory)
    d.run_for(2.0, delivery_rate=1.25e6, in_flight=10_000)
    assert cc.state == PROBE_BW
    # Keep RTT above the recorded minimum for >10 s.
    d.run_for(10.5, rtt=0.08, in_flight=10_000)
    seen_probe_rtt = cc.state == PROBE_RTT
    assert seen_probe_rtt
    assert cc.cwnd == 4 * cc.mss


def test_probe_rtt_exits_after_dwell_and_refreshes_stamp(driver_factory):
    cc, d = make_driver(driver_factory)
    d.run_for(2.0, delivery_rate=1.25e6, in_flight=10_000)
    d.run_for(10.5, rtt=0.08, in_flight=10_000)
    assert cc.state == PROBE_RTT
    # Drain: in-flight at/below 4 packets, then 200 ms + a round.
    d.run_for(0.5, rtt=0.04, in_flight=3000)
    assert cc.state == PROBE_BW
    assert cc.rtprop == pytest.approx(0.04)


def test_pacing_rate_follows_gain(driver_factory):
    cc, d = make_driver(driver_factory)
    d.run_for(2.0, delivery_rate=1.25e6, in_flight=10_000)
    assert cc.state == PROBE_BW
    assert cc.pacing_rate == pytest.approx(
        cc.pacing_gain * cc.btl_bw, rel=1e-6
    )


def test_gain_cycling_advances(driver_factory):
    cc, d = make_driver(driver_factory)
    d.run_for(2.0, delivery_rate=1.25e6, in_flight=10_000)
    seen_gains = set()
    for _ in range(30):
        d.run_for(0.045, in_flight=10_000)  # ~1 RTprop per step.
        seen_gains.add(cc.pacing_gain)
    assert 1.25 in seen_gains
    assert 0.75 in seen_gains
    assert 1.0 in seen_gains


def test_bdp_zero_before_estimates():
    cc = BBRv1()
    assert cc.bdp() == 0.0
